//! The serving runtime end to end, over a real socket: the epoll-backed
//! reactor accepts TCP clients on loopback, the front end admits and
//! batches their queries, DIMM shards execute them, and responses travel
//! back through the same reactor. Every response is checked against a
//! checksum oracle computed client-side before the query is sent.
//!
//! ```text
//! cargo run --release --example serve_demo [num_clients] [per_client]
//! ```
//!
//! Each client opens its own connection and issues `per_client` in-order
//! queries through the line protocol (`LineClient`). The metrics report
//! printed at shutdown includes the reactor counters: polls, wakeups,
//! accepts, and the measured shard wake latency that calibrates the
//! discrete-event simulator's dispatch overhead.

use std::net::TcpListener;
use std::sync::Arc;

use pimdl::engine::shapes::TransformerShape;
use pimdl::serve::codec::{ErrorKind, ServerMsg};
use pimdl::serve::{LineClient, Runtime, ServeConfig};
use pimdl::sim::PlatformConfig;
use pimdl::tensor::rng::DataRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let num_clients: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(4);
    let per_client: usize = std::env::args()
        .nth(2)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(50);

    let mut platform = PlatformConfig::upmem();
    platform.num_pes = 64;
    let shape = TransformerShape::tiny();
    let cfg = ServeConfig::example();
    let rt = Arc::new(Runtime::new(platform, shape, cfg)?);

    // Compress simulated service times so the demo finishes quickly: one
    // single-request service time ≈ 1 ms of wall time.
    let single_s = rt.service_model().batch_service_s(1)?;
    let speedup = (single_s / 1e-3).max(1.0);

    let listener = TcpListener::bind("127.0.0.1:0")?;
    let handle = rt.serve(listener, speedup)?;
    let addr = handle.addr();
    println!(
        "serving on {addr}: {} shards, max_batch {}, window {:.1} ms, queue {} deep",
        cfg.num_shards,
        cfg.policy.max_batch,
        cfg.policy.max_wait_s * 1e3,
        cfg.queue_capacity,
    );
    println!(
        "load: {num_clients} clients x {per_client} queries \
         (single-request service {single_s:.4} s, clock speedup {speedup:.0}x)\n"
    );

    let workload = rt.replica().workload();
    let clients: Vec<_> = (0..num_clients)
        .map(|c| {
            let rt = Arc::clone(&rt);
            std::thread::spawn(move || -> Result<(usize, usize), String> {
                let mut client = LineClient::connect(addr).map_err(|e| e.to_string())?;
                let mut rng = DataRng::new(0xD0_0D + c as u64);
                let (mut ok, mut shed) = (0usize, 0usize);
                for k in 0..per_client {
                    let indices: Vec<u16> = (0..workload.n * workload.cb)
                        .map(|_| rng.index(workload.ct) as u16)
                        .collect();
                    let oracle = rt
                        .replica()
                        .checksum_of(&indices)
                        .map_err(|e| e.to_string())?
                        .to_bits();
                    let tag = format!("c{c}-{k}");
                    match client.query(&tag, &indices).map_err(|e| e.to_string())? {
                        ServerMsg::Result {
                            tag: rtag,
                            correct,
                            checksum_bits,
                        } => {
                            if rtag != tag || !correct || checksum_bits != oracle {
                                return Err(format!("{tag}: response mismatched the oracle"));
                            }
                            ok += 1;
                        }
                        ServerMsg::Error { kind, .. } => {
                            if kind != ErrorKind::Rejected {
                                return Err(format!("{tag}: unexpected error {kind:?}"));
                            }
                            shed += 1;
                        }
                    }
                }
                Ok((ok, shed))
            })
        })
        .collect();

    let (mut ok, mut shed) = (0usize, 0usize);
    for c in clients {
        let (o, s) = c.join().expect("client thread panicked")?;
        ok += o;
        shed += s;
    }
    let snap = handle.shutdown()?;

    println!("{}", snap.render());
    println!(
        "\nclients saw {ok} correct results and {shed} admission rejections \
         ({} queries total)",
        num_clients * per_client,
    );
    println!(
        "conservation: {} | every result matched its client-side oracle",
        snap.completed + snap.rejected + snap.deadline_exceeded
            == (num_clients * per_client) as u64,
    );
    Ok(())
}
