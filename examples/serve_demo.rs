//! The serving runtime end to end, over a real socket: the epoll-backed
//! reactor accepts TCP clients on loopback, the front end admits and
//! batches their queries, DIMM shards execute them, and responses travel
//! back through the same reactor. Every response is checked against a
//! checksum oracle computed client-side before the query is sent.
//!
//! ```text
//! cargo run --release --example serve_demo [num_clients] [per_client]
//! cargo run --release --example serve_demo -- --http [num_clients] [per_client]
//! cargo run --release --example serve_demo -- --fabric N [num_clients] [per_client]
//! ```
//!
//! In the default mode each client opens its own connection and issues
//! `per_client` in-order queries through the line protocol
//! (`LineClient`). With `--http` the same reactor instead speaks
//! HTTP/1.1: two calibrated LUT models are registered under distinct
//! names, each client is a named tenant issuing keep-alive
//! `POST /v1/models/{name}/infer` requests through `HttpClient`, and the
//! demo finishes by scraping `GET /metrics` (Prometheus text) over the
//! same connection. The metrics report printed at shutdown includes the
//! reactor counters: polls, wakeups, accepts, and the measured shard wake
//! latency that calibrates the discrete-event simulator's dispatch
//! overhead.
//!
//! With `--fabric N` the same front end drives the distributed shard
//! fabric (DESIGN.md §13): `N >= 2` shard *worker processes* are spawned
//! (this example re-executes itself via a hidden `__fabric-shard` argv),
//! each serving consistent-hash-placed LUT tables over the binary frame
//! protocol, and one worker is SIGKILLed mid-run — the supervisor
//! re-replicates its tables to the hash successor and every in-flight
//! query still completes against its client-side oracle.

use std::net::TcpListener;
use std::sync::Arc;

use pimdl::engine::fabric::FabricConfig;
use pimdl::engine::scheduler::TenantQuota;
use pimdl::engine::shapes::TransformerShape;
use pimdl::serve::codec::{ErrorKind, ServerMsg};
use pimdl::serve::http;
use pimdl::serve::server::HttpConfig;
use pimdl::serve::{HttpClient, LineClient, ModelRegistry, ReplicaModel, Runtime, ServeConfig};
use pimdl::sim::PlatformConfig;
use pimdl::tensor::rng::DataRng;

/// Hidden argv marker for the fabric mode's self-exec shard workers.
const WORKER_SUBCOMMAND: &str = "__fabric-shard";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Fabric shard workers are this same executable, re-invoked as
    // `serve_demo __fabric-shard <addr> <shard_id> <speedup> <spec-json>`.
    let raw: Vec<String> = std::env::args().collect();
    if raw.get(1).map(String::as_str) == Some(WORKER_SUBCOMMAND) {
        if raw.len() != 6 {
            return Err(format!(
                "{WORKER_SUBCOMMAND} needs 4 operands, got {}",
                raw.len() - 2
            )
            .into());
        }
        pimdl::serve::fabric::shard_worker_main(
            &raw[2],
            raw[3].parse()?,
            raw[4].parse()?,
            &raw[5],
        )?;
        return Ok(());
    }

    let mut positional: Vec<String> = Vec::new();
    let mut http_mode = false;
    let mut fabric_shards: Option<usize> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--http" {
            http_mode = true;
        } else if arg == "--fabric" {
            let n = args.next().ok_or("--fabric needs a shard count")?;
            fabric_shards = Some(n.parse()?);
        } else {
            positional.push(arg);
        }
    }
    let num_clients: usize = positional
        .first()
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(4);
    let per_client: usize = positional
        .get(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(50);

    let mut platform = PlatformConfig::upmem();
    platform.num_pes = 64;
    let shape = TransformerShape::tiny();
    let mut cfg = ServeConfig::example();
    if fabric_shards.is_some() {
        // The fabric demo's contract is zero lost requests across a worker
        // kill, so nothing may be queue-rejected or deadline-shed either.
        cfg.queue_capacity = (num_clients * per_client).max(cfg.queue_capacity);
        cfg.deadline_s = f64::INFINITY;
    }
    let rt = Arc::new(Runtime::new(platform, shape, cfg)?);

    // Compress simulated service times so the demo finishes quickly: one
    // single-request service time ≈ 1 ms of wall time.
    let single_s = rt.service_model().batch_service_s(1)?;
    let speedup = (single_s / 1e-3).max(1.0);

    if let Some(num_shards) = fabric_shards {
        return run_fabric(&rt, single_s, speedup, num_shards, num_clients, per_client);
    }
    if http_mode {
        return run_http(&rt, &cfg, single_s, speedup, num_clients, per_client);
    }

    let listener = TcpListener::bind("127.0.0.1:0")?;
    let handle = rt.serve(listener, speedup)?;
    let addr = handle.addr();
    println!(
        "serving on {addr}: {} shards, max_batch {}, window {:.1} ms, queue {} deep",
        cfg.num_shards,
        cfg.policy.max_batch,
        cfg.policy.max_wait_s * 1e3,
        cfg.queue_capacity,
    );
    println!(
        "load: {num_clients} clients x {per_client} queries \
         (single-request service {single_s:.4} s, clock speedup {speedup:.0}x)\n"
    );

    let workload = rt.replica().workload();
    let clients: Vec<_> = (0..num_clients)
        .map(|c| {
            let rt = Arc::clone(&rt);
            std::thread::spawn(move || -> Result<(usize, usize), String> {
                let mut client = LineClient::connect(addr).map_err(|e| e.to_string())?;
                let mut rng = DataRng::new(0xD0_0D + c as u64);
                let (mut ok, mut shed) = (0usize, 0usize);
                for k in 0..per_client {
                    let indices: Vec<u16> = (0..workload.n * workload.cb)
                        .map(|_| rng.index(workload.ct) as u16)
                        .collect();
                    let oracle = rt
                        .replica()
                        .checksum_of(&indices)
                        .map_err(|e| e.to_string())?
                        .to_bits();
                    let tag = format!("c{c}-{k}");
                    match client.query(&tag, &indices).map_err(|e| e.to_string())? {
                        ServerMsg::Result {
                            tag: rtag,
                            correct,
                            checksum_bits,
                        } => {
                            if rtag != tag || !correct || checksum_bits != oracle {
                                return Err(format!("{tag}: response mismatched the oracle"));
                            }
                            ok += 1;
                        }
                        ServerMsg::Error { kind, .. } => {
                            if kind != ErrorKind::Rejected {
                                return Err(format!("{tag}: unexpected error {kind:?}"));
                            }
                            shed += 1;
                        }
                    }
                }
                Ok((ok, shed))
            })
        })
        .collect();

    let (mut ok, mut shed) = (0usize, 0usize);
    for c in clients {
        let (o, s) = c.join().expect("client thread panicked")?;
        ok += o;
        shed += s;
    }
    let snap = handle.shutdown()?;

    println!("{}", snap.render());
    println!(
        "\nclients saw {ok} correct results and {shed} admission rejections \
         ({} queries total)",
        num_clients * per_client,
    );
    println!(
        "conservation: {} | every result matched its client-side oracle",
        snap.completed + snap.rejected + snap.deadline_exceeded
            == (num_clients * per_client) as u64,
    );
    Ok(())
}

/// The `--fabric N` mode: the line protocol served by `N` shard worker
/// processes, with a SIGKILL of worker 0 mid-run to showcase the
/// zero-lost-requests re-replication contract.
fn run_fabric(
    rt: &Arc<Runtime>,
    single_s: f64,
    speedup: f64,
    num_shards: usize,
    num_clients: usize,
    per_client: usize,
) -> Result<(), Box<dyn std::error::Error>> {
    if num_shards < 2 {
        return Err(
            "--fabric needs at least 2 shards (a lone shard's death loses its tables)".into(),
        );
    }
    // One LUT table per shard; the consistent-hash ring decides the actual
    // placement. Clients keep per-table oracle replicas.
    let tables: Vec<(String, u64)> = (0..num_shards)
        .map(|i| (format!("table-{i}"), 0xFAB + i as u64))
        .collect();
    let oracles: Arc<Vec<(String, Arc<ReplicaModel>)>> = Arc::new(
        tables
            .iter()
            .map(|(name, seed)| Ok((name.clone(), rt.build_replica(*seed)?)))
            .collect::<Result<_, pimdl::serve::ServeError>>()?,
    );

    let mut fabric = FabricConfig::example();
    fabric.num_shards = num_shards;
    // Deaths are EOF-detected; a huge *virtual* timeout keeps the
    // accelerated clock from expiring slow-but-alive workers.
    fabric.hello_timeout_s = 1e6;
    let exe = std::env::current_exe()?;
    let worker_argv = vec![
        exe.to_string_lossy().into_owned(),
        WORKER_SUBCOMMAND.to_string(),
    ];

    let listener = TcpListener::bind("127.0.0.1:0")?;
    let handle = rt.serve_fabric(listener, speedup, fabric, tables.clone(), worker_argv)?;
    // EOF-driven death detection needs the victim to have connected: wait
    // for every table to route before the SIGKILL below, or a slow worker
    // killed pre-Hello would strand its tables until the huge timeout.
    handle.wait_all_ready(std::time::Duration::from_secs(120))?;
    let addr = handle.addr();
    println!(
        "fabric serving on {addr}: {num_shards} worker processes, {} tables \
         (consistent-hash placement, vnodes {})",
        tables.len(),
        FabricConfig::example().vnodes,
    );
    println!(
        "load: {num_clients} clients x {per_client} queries round-robined over the tables \
         (single-request service {single_s:.4} s, clock speedup {speedup:.0}x)"
    );
    println!("worker 0 will be SIGKILLed mid-run — zero lost requests is the contract\n");

    let workload = rt.replica().workload();
    let clients: Vec<_> = (0..num_clients)
        .map(|c| {
            let oracles = Arc::clone(&oracles);
            std::thread::spawn(move || -> Result<usize, String> {
                let mut client = LineClient::connect(addr).map_err(|e| e.to_string())?;
                let mut rng = DataRng::new(0xFAB0 + c as u64);
                let mut ok = 0usize;
                for k in 0..per_client {
                    let (table, replica) = &oracles[(c + k) % oracles.len()];
                    let indices: Vec<u16> = (0..workload.n * workload.cb)
                        .map(|_| rng.index(workload.ct) as u16)
                        .collect();
                    let oracle = replica
                        .checksum_of(&indices)
                        .map_err(|e| e.to_string())?
                        .to_bits();
                    let tag = format!("c{c}-{k}");
                    client
                        .send_to(&tag, &indices, Some(table))
                        .map_err(|e| e.to_string())?;
                    match client.recv().map_err(|e| e.to_string())? {
                        ServerMsg::Result {
                            tag: rtag,
                            correct,
                            checksum_bits,
                        } => {
                            if rtag != tag || !correct || checksum_bits != oracle {
                                return Err(format!("{tag}: response mismatched the oracle"));
                            }
                            ok += 1;
                        }
                        ServerMsg::Error { kind, .. } => {
                            return Err(format!(
                                "{tag}: refused with {kind:?} — a worker kill must not shed requests"
                            ));
                        }
                    }
                }
                Ok(ok)
            })
        })
        .collect();

    // Let the fleet get batches in flight, then kill a worker for real.
    std::thread::sleep(std::time::Duration::from_millis(30));
    handle.kill_worker(0)?;
    println!("SIGKILLed worker 0; supervisor re-replicates its tables to the hash successor\n");

    let mut ok = 0usize;
    for c in clients {
        ok += c.join().expect("client thread panicked")?;
    }
    let snap = handle.shutdown()?;

    println!("{}", snap.render());
    println!(
        "\nclients saw {ok}/{} correct results across the worker kill — zero lost",
        num_clients * per_client,
    );
    println!(
        "conservation: {} | every result matched its client-side oracle",
        snap.completed == (num_clients * per_client) as u64,
    );
    Ok(())
}

/// The `--http` mode: multi-tenant keep-alive inference over HTTP/1.1.
fn run_http(
    rt: &Arc<Runtime>,
    cfg: &ServeConfig,
    single_s: f64,
    speedup: f64,
    num_clients: usize,
    per_client: usize,
) -> Result<(), Box<dyn std::error::Error>> {
    // Two calibrated LUT models from distinct table seeds; clients keep
    // oracle handles so every response is checked end to end.
    let models = [
        ("demo-a", rt.build_replica(0xA)?),
        ("demo-b", rt.build_replica(0xB)?),
    ];
    let mut registry = ModelRegistry::new();
    for (name, replica) in &models {
        registry.register(name, Arc::clone(replica))?;
    }

    // Even-numbered clients are the weight-3 "gold" tenant, odd-numbered
    // the weight-1 "bronze" tenant; both hold real in-flight quotas.
    let http_cfg = HttpConfig {
        tenants: vec![
            ("gold".to_string(), TenantQuota::new(3, 32)?),
            ("bronze".to_string(), TenantQuota::new(1, 32)?),
        ],
        default_quota: None,
        ..HttpConfig::default()
    };

    let listener = TcpListener::bind("127.0.0.1:0")?;
    let handle = rt.serve_http(listener, speedup, http_cfg, registry)?;
    let addr = handle.addr();
    println!(
        "HTTP/1.1 serving on {addr}: {} shards, max_batch {}, window {:.1} ms, queue {} deep",
        cfg.num_shards,
        cfg.policy.max_batch,
        cfg.policy.max_wait_s * 1e3,
        cfg.queue_capacity,
    );
    println!("models: demo-a, demo-b | tenants: gold (weight 3), bronze (weight 1)");
    println!(
        "load: {num_clients} keep-alive clients x {per_client} infers \
         (single-request service {single_s:.4} s, clock speedup {speedup:.0}x)\n"
    );

    let workload = rt.replica().workload();
    let clients: Vec<_> = (0..num_clients)
        .map(|c| {
            let (model_name, replica) = &models[c % models.len()];
            let model_name = model_name.to_string();
            let replica = Arc::clone(replica);
            let tenant = if c % 2 == 0 { "gold" } else { "bronze" };
            std::thread::spawn(move || -> Result<(usize, usize), String> {
                let mut client = HttpClient::connect(addr).map_err(|e| e.to_string())?;
                let target = format!("/v1/models/{model_name}/infer");
                let mut rng = DataRng::new(0x177E + c as u64);
                let (mut ok, mut refused) = (0usize, 0usize);
                for k in 0..per_client {
                    let indices: Vec<u16> = (0..workload.n * workload.cb)
                        .map(|_| rng.index(workload.ct) as u16)
                        .collect();
                    let oracle = replica
                        .checksum_of(&indices)
                        .map_err(|e| e.to_string())?
                        .to_bits();
                    let body = indices
                        .iter()
                        .map(|i| i.to_string())
                        .collect::<Vec<_>>()
                        .join(",");
                    let resp = client
                        .request("POST", &target, &[("X-Tenant", tenant)], body.as_bytes())
                        .map_err(|e| e.to_string())?;
                    match resp.status {
                        200 => {
                            let (correct, bits) =
                                http::parse_infer_result(&resp.body).map_err(|e| e.to_string())?;
                            if !correct || bits != oracle {
                                return Err(format!(
                                    "{tenant} req {k}: response mismatched the oracle"
                                ));
                            }
                            ok += 1;
                        }
                        429 | 503 => refused += 1,
                        s => return Err(format!("{tenant} req {k}: unexpected status {s}")),
                    }
                }
                Ok((ok, refused))
            })
        })
        .collect();

    let (mut ok, mut refused) = (0usize, 0usize);
    for c in clients {
        let (o, r) = c.join().expect("client thread panicked")?;
        ok += o;
        refused += r;
    }

    // Scrape the live Prometheus endpoint before shutting down.
    let mut probe = HttpClient::connect(addr)?;
    let metrics = probe.request("GET", "/metrics", &[], &[])?;
    let text = String::from_utf8(metrics.body)?;
    println!("GET /metrics ({} bytes, selected series):", text.len());
    for line in text
        .lines()
        .filter(|l| l.starts_with("pimdl_requests_") || l.starts_with("pimdl_batches_"))
    {
        println!("  {line}");
    }

    let snap = handle.shutdown()?;
    println!("\n{}", snap.render());
    println!(
        "\nclients saw {ok} correct results and {refused} quota/queue refusals \
         ({} infers total)",
        num_clients * per_client,
    );
    println!(
        "conservation: {} | every 200 matched its client-side oracle",
        snap.completed + snap.rejected + snap.deadline_exceeded
            == (num_clients * per_client) as u64,
    );
    Ok(())
}
