//! The serving runtime end to end: synthetic open-loop load through the
//! real multi-threaded front end — bounded admission, continuous batching,
//! least-loaded DIMM-shard routing — with the metrics report printed at
//! shutdown.
//!
//! ```text
//! cargo run --release --example serve_demo [num_requests] [rate_multiplier]
//! ```
//!
//! `rate_multiplier` scales the arrival rate relative to the single-request
//! service rate of one shard (default 3.0: beyond one shard, comfortably
//! within two with batching).

use pimdl::engine::shapes::TransformerShape;
use pimdl::serve::{OpenLoop, Runtime, ServeConfig};
use pimdl::sim::PlatformConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let num_requests: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(2000);
    let rate_x: f64 = std::env::args()
        .nth(2)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(3.0);

    let mut platform = PlatformConfig::upmem();
    platform.num_pes = 64;
    let shape = TransformerShape::tiny();
    let mut cfg = ServeConfig::example();
    cfg.queue_capacity = 256;

    let rt = Runtime::new(platform, shape, cfg)?;
    let single_s = rt.service_model().batch_service_s(1)?;
    let rate_rps = rate_x / single_s;
    println!(
        "serving runtime: {} shards, max_batch {}, window {:.1} ms, queue {} deep",
        cfg.num_shards,
        cfg.policy.max_batch,
        cfg.policy.max_wait_s * 1e3,
        cfg.queue_capacity,
    );
    println!(
        "open-loop load: {num_requests} requests at {rate_rps:.1} rps \
         ({rate_x:.1}x the single-request rate, single = {single_s:.4} s)\n"
    );

    // Compress simulated service times so the demo finishes quickly: one
    // single-request service time ≈ 2 ms of wall time.
    let speedup = (single_s / 2e-3).max(1.0);
    let load = OpenLoop {
        rate_rps,
        num_requests,
        seed: 42,
    };
    let report = rt.run_threaded(&load, speedup)?;

    println!("{}", report.metrics.render());
    println!(
        "\nledger: {} completed / {} rejected / {} deadline-exceeded over {:.2} simulated s",
        report.completed(),
        report.rejected(),
        report.deadline_exceeded(),
        report.makespan_s,
    );
    println!(
        "conservation: {} | metrics consistent: {} | all outputs correct: {}",
        report.conserves(num_requests),
        report.consistent_with_metrics(),
        report.all_completed_correct(),
    );

    // The same load through the deterministic virtual-clock driver, for
    // comparison (identical state machines, idealized timing).
    let virt = rt.run_virtual(&load)?;
    println!(
        "\nvirtual-clock reference: {} completed, mean batch {:.2}, p95 latency {:.4} s",
        virt.completed(),
        virt.metrics.mean_batch,
        virt.metrics.p95_latency_s,
    );
    Ok(())
}
