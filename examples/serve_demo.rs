//! The serving runtime end to end, over a real socket: the epoll-backed
//! reactor accepts TCP clients on loopback, the front end admits and
//! batches their queries, DIMM shards execute them, and responses travel
//! back through the same reactor. Every response is checked against a
//! checksum oracle computed client-side before the query is sent.
//!
//! ```text
//! cargo run --release --example serve_demo [num_clients] [per_client]
//! cargo run --release --example serve_demo -- --http [num_clients] [per_client]
//! ```
//!
//! In the default mode each client opens its own connection and issues
//! `per_client` in-order queries through the line protocol
//! (`LineClient`). With `--http` the same reactor instead speaks
//! HTTP/1.1: two calibrated LUT models are registered under distinct
//! names, each client is a named tenant issuing keep-alive
//! `POST /v1/models/{name}/infer` requests through `HttpClient`, and the
//! demo finishes by scraping `GET /metrics` (Prometheus text) over the
//! same connection. The metrics report printed at shutdown includes the
//! reactor counters: polls, wakeups, accepts, and the measured shard wake
//! latency that calibrates the discrete-event simulator's dispatch
//! overhead.

use std::net::TcpListener;
use std::sync::Arc;

use pimdl::engine::scheduler::TenantQuota;
use pimdl::engine::shapes::TransformerShape;
use pimdl::serve::codec::{ErrorKind, ServerMsg};
use pimdl::serve::http;
use pimdl::serve::server::HttpConfig;
use pimdl::serve::{HttpClient, LineClient, ModelRegistry, Runtime, ServeConfig};
use pimdl::sim::PlatformConfig;
use pimdl::tensor::rng::DataRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut positional: Vec<String> = Vec::new();
    let mut http_mode = false;
    for arg in std::env::args().skip(1) {
        if arg == "--http" {
            http_mode = true;
        } else {
            positional.push(arg);
        }
    }
    let num_clients: usize = positional
        .first()
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(4);
    let per_client: usize = positional
        .get(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(50);

    let mut platform = PlatformConfig::upmem();
    platform.num_pes = 64;
    let shape = TransformerShape::tiny();
    let cfg = ServeConfig::example();
    let rt = Arc::new(Runtime::new(platform, shape, cfg)?);

    // Compress simulated service times so the demo finishes quickly: one
    // single-request service time ≈ 1 ms of wall time.
    let single_s = rt.service_model().batch_service_s(1)?;
    let speedup = (single_s / 1e-3).max(1.0);

    if http_mode {
        return run_http(&rt, &cfg, single_s, speedup, num_clients, per_client);
    }

    let listener = TcpListener::bind("127.0.0.1:0")?;
    let handle = rt.serve(listener, speedup)?;
    let addr = handle.addr();
    println!(
        "serving on {addr}: {} shards, max_batch {}, window {:.1} ms, queue {} deep",
        cfg.num_shards,
        cfg.policy.max_batch,
        cfg.policy.max_wait_s * 1e3,
        cfg.queue_capacity,
    );
    println!(
        "load: {num_clients} clients x {per_client} queries \
         (single-request service {single_s:.4} s, clock speedup {speedup:.0}x)\n"
    );

    let workload = rt.replica().workload();
    let clients: Vec<_> = (0..num_clients)
        .map(|c| {
            let rt = Arc::clone(&rt);
            std::thread::spawn(move || -> Result<(usize, usize), String> {
                let mut client = LineClient::connect(addr).map_err(|e| e.to_string())?;
                let mut rng = DataRng::new(0xD0_0D + c as u64);
                let (mut ok, mut shed) = (0usize, 0usize);
                for k in 0..per_client {
                    let indices: Vec<u16> = (0..workload.n * workload.cb)
                        .map(|_| rng.index(workload.ct) as u16)
                        .collect();
                    let oracle = rt
                        .replica()
                        .checksum_of(&indices)
                        .map_err(|e| e.to_string())?
                        .to_bits();
                    let tag = format!("c{c}-{k}");
                    match client.query(&tag, &indices).map_err(|e| e.to_string())? {
                        ServerMsg::Result {
                            tag: rtag,
                            correct,
                            checksum_bits,
                        } => {
                            if rtag != tag || !correct || checksum_bits != oracle {
                                return Err(format!("{tag}: response mismatched the oracle"));
                            }
                            ok += 1;
                        }
                        ServerMsg::Error { kind, .. } => {
                            if kind != ErrorKind::Rejected {
                                return Err(format!("{tag}: unexpected error {kind:?}"));
                            }
                            shed += 1;
                        }
                    }
                }
                Ok((ok, shed))
            })
        })
        .collect();

    let (mut ok, mut shed) = (0usize, 0usize);
    for c in clients {
        let (o, s) = c.join().expect("client thread panicked")?;
        ok += o;
        shed += s;
    }
    let snap = handle.shutdown()?;

    println!("{}", snap.render());
    println!(
        "\nclients saw {ok} correct results and {shed} admission rejections \
         ({} queries total)",
        num_clients * per_client,
    );
    println!(
        "conservation: {} | every result matched its client-side oracle",
        snap.completed + snap.rejected + snap.deadline_exceeded
            == (num_clients * per_client) as u64,
    );
    Ok(())
}

/// The `--http` mode: multi-tenant keep-alive inference over HTTP/1.1.
fn run_http(
    rt: &Arc<Runtime>,
    cfg: &ServeConfig,
    single_s: f64,
    speedup: f64,
    num_clients: usize,
    per_client: usize,
) -> Result<(), Box<dyn std::error::Error>> {
    // Two calibrated LUT models from distinct table seeds; clients keep
    // oracle handles so every response is checked end to end.
    let models = [
        ("demo-a", rt.build_replica(0xA)?),
        ("demo-b", rt.build_replica(0xB)?),
    ];
    let mut registry = ModelRegistry::new();
    for (name, replica) in &models {
        registry.register(name, Arc::clone(replica))?;
    }

    // Even-numbered clients are the weight-3 "gold" tenant, odd-numbered
    // the weight-1 "bronze" tenant; both hold real in-flight quotas.
    let http_cfg = HttpConfig {
        tenants: vec![
            ("gold".to_string(), TenantQuota::new(3, 32)?),
            ("bronze".to_string(), TenantQuota::new(1, 32)?),
        ],
        default_quota: None,
        ..HttpConfig::default()
    };

    let listener = TcpListener::bind("127.0.0.1:0")?;
    let handle = rt.serve_http(listener, speedup, http_cfg, registry)?;
    let addr = handle.addr();
    println!(
        "HTTP/1.1 serving on {addr}: {} shards, max_batch {}, window {:.1} ms, queue {} deep",
        cfg.num_shards,
        cfg.policy.max_batch,
        cfg.policy.max_wait_s * 1e3,
        cfg.queue_capacity,
    );
    println!("models: demo-a, demo-b | tenants: gold (weight 3), bronze (weight 1)");
    println!(
        "load: {num_clients} keep-alive clients x {per_client} infers \
         (single-request service {single_s:.4} s, clock speedup {speedup:.0}x)\n"
    );

    let workload = rt.replica().workload();
    let clients: Vec<_> = (0..num_clients)
        .map(|c| {
            let (model_name, replica) = &models[c % models.len()];
            let model_name = model_name.to_string();
            let replica = Arc::clone(replica);
            let tenant = if c % 2 == 0 { "gold" } else { "bronze" };
            std::thread::spawn(move || -> Result<(usize, usize), String> {
                let mut client = HttpClient::connect(addr).map_err(|e| e.to_string())?;
                let target = format!("/v1/models/{model_name}/infer");
                let mut rng = DataRng::new(0x177E + c as u64);
                let (mut ok, mut refused) = (0usize, 0usize);
                for k in 0..per_client {
                    let indices: Vec<u16> = (0..workload.n * workload.cb)
                        .map(|_| rng.index(workload.ct) as u16)
                        .collect();
                    let oracle = replica
                        .checksum_of(&indices)
                        .map_err(|e| e.to_string())?
                        .to_bits();
                    let body = indices
                        .iter()
                        .map(|i| i.to_string())
                        .collect::<Vec<_>>()
                        .join(",");
                    let resp = client
                        .request("POST", &target, &[("X-Tenant", tenant)], body.as_bytes())
                        .map_err(|e| e.to_string())?;
                    match resp.status {
                        200 => {
                            let (correct, bits) =
                                http::parse_infer_result(&resp.body).map_err(|e| e.to_string())?;
                            if !correct || bits != oracle {
                                return Err(format!(
                                    "{tenant} req {k}: response mismatched the oracle"
                                ));
                            }
                            ok += 1;
                        }
                        429 | 503 => refused += 1,
                        s => return Err(format!("{tenant} req {k}: unexpected status {s}")),
                    }
                }
                Ok((ok, refused))
            })
        })
        .collect();

    let (mut ok, mut refused) = (0usize, 0usize);
    for c in clients {
        let (o, r) = c.join().expect("client thread panicked")?;
        ok += o;
        refused += r;
    }

    // Scrape the live Prometheus endpoint before shutting down.
    let mut probe = HttpClient::connect(addr)?;
    let metrics = probe.request("GET", "/metrics", &[], &[])?;
    let text = String::from_utf8(metrics.body)?;
    println!("GET /metrics ({} bytes, selected series):", text.len());
    for line in text
        .lines()
        .filter(|l| l.starts_with("pimdl_requests_") || l.starts_with("pimdl_batches_"))
    {
        println!("  {line}");
    }

    let snap = handle.shutdown()?;
    println!("\n{}", snap.render());
    println!(
        "\nclients saw {ok} correct results and {refused} quota/queue refusals \
         ({} infers total)",
        num_clients * per_client,
    );
    println!(
        "conservation: {} | every 200 matched its client-side oracle",
        snap.completed + snap.rejected + snap.deadline_exceeded
            == (num_clients * per_client) as u64,
    );
    Ok(())
}
