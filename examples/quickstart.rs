//! Quickstart: convert one linear layer to LUT-NN and execute it on the
//! simulated UPMEM platform, checking the functional result against the
//! host reference.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use pimdl::lutnn::lut::LutTable;
use pimdl::lutnn::pq::ProductQuantizer;
use pimdl::sim::cost::estimate_cost;
use pimdl::sim::exec::{run_lut_kernel, LutKernelData};
use pimdl::sim::{LutWorkload, PlatformConfig};
use pimdl::tensor::gemm;
use pimdl::tensor::rng::DataRng;
use pimdl::tuner::tune;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A linear layer: Y = X · W with X: 256×64, W: 64×128.
    let mut rng = DataRng::new(0);
    let calib_acts = rng.normal_matrix(1024, 64, 0.0, 1.0);
    let weight = rng.normal_matrix(64, 128, 0.0, 0.5);
    let x = rng.normal_matrix(256, 64, 0.0, 1.0);

    // 2. LUT-NN conversion: fit codebooks (V=4, CT=16), precompute tables.
    let pq = ProductQuantizer::fit(&calib_acts, 4, 16, 15, &mut rng)?;
    let lut = LutTable::build(&pq, &weight)?;
    let qlut = lut.quantize();
    println!(
        "converted 64x128 weight into {} codebooks x {} centroids; INT8 LUT = {} KiB",
        pq.cb(),
        pq.ct(),
        qlut.size_bytes() / 1024
    );

    // 3. Closest-centroid search on the host (the CCS operator).
    let indices = pq.encode(&x)?;

    // 4. Auto-tune the LUT operator's mapping for a 64-PE UPMEM slice.
    let mut platform = PlatformConfig::upmem();
    platform.num_pes = 64;
    let workload = LutWorkload::new(x.rows(), pq.cb(), pq.ct(), weight.cols())?;
    let tuned = tune(&platform, &workload)?;
    println!(
        "auto-tuner picked N_s-tile={}, F_s-tile={}, scheme={}, predicted {:.3} ms over {} candidates",
        tuned.mapping.n_stile,
        tuned.mapping.f_stile,
        tuned.mapping.kernel.load_scheme.name(),
        tuned.predicted_total_s * 1e3,
        tuned.evaluated
    );

    // 5. Execute functionally on the simulated PEs.
    let data = LutKernelData {
        indices: indices.as_slice(),
        table: qlut.table().codes(),
        scale: qlut.table().scale(),
    };
    let (pim_out, report) = run_lut_kernel(&platform, &workload, &tuned.mapping, data)?;
    println!(
        "simulated kernel: {:.3} ms total ({:.3} ms host<->PIM, {:.3} ms micro-kernel)",
        report.time.total_s() * 1e3,
        report.time.sub_lut_total_s() * 1e3,
        report.time.micro_kernel_total_s() * 1e3
    );

    // 6. Validate: PIM output == host INT8 LUT reference; both approximate
    //    the exact GEMM.
    let host_ref = qlut.lookup(&indices)?;
    assert!(pim_out.approx_eq(&host_ref, 1e-5), "PIM result mismatch");
    let exact = gemm::matmul(&x, &weight)?;
    let err = pim_out.sub(&exact)?.frobenius_sq().sqrt() / exact.frobenius_sq().sqrt();
    println!("functional check passed; relative approximation error vs exact GEMM = {err:.3}");

    // 7. Cost model agrees with the functional run.
    let estimated = estimate_cost(&platform, &workload, &tuned.mapping)?;
    println!(
        "cost-model estimate {:.3} ms (uses expected index-repeat rate; run measured {:.3})",
        estimated.time.total_s() * 1e3,
        report.repeat_fraction
    );
    Ok(())
}
