//! Explores the LUT-kernel mapping space (the Fig. 13 scenario): runs the
//! auto-tuner on BERT-large's FFN1 workload, then sweeps load schemes and
//! traversal orders around the winner to show the trade-offs the tuner
//! navigates.
//!
//! ```text
//! cargo run --release --example autotune_explore
//! ```

use pimdl::sim::cost::estimate_cost;
use pimdl::sim::{LoadScheme, LutWorkload, PlatformConfig, TraversalOrder};
use pimdl::tuner::model::analytical_cost;
use pimdl::tuner::space::{kernel_candidates, mapping_of, sub_lut_candidates};
use pimdl::tuner::tune;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let platform = PlatformConfig::upmem();
    // BERT-large FFN1 at batch 64 x seq 512, V = 4: (N, CB, CT, F).
    let workload = LutWorkload::new(32768, 256, 16, 4096)?;
    println!(
        "workload: N={} CB={} CT={} F={} on {} PEs ({} legal sub-LUT tilings)\n",
        workload.n,
        workload.cb,
        workload.ct,
        workload.f,
        platform.num_pes,
        sub_lut_candidates(&workload, &platform).len()
    );

    let started = std::time::Instant::now();
    let tuned = tune(&platform, &workload)?;
    println!(
        "Algorithm 1 searched {} candidates in {:.2} s",
        tuned.evaluated,
        started.elapsed().as_secs_f64()
    );
    let m = tuned.mapping;
    println!(
        "winner: N_s={} F_s={} | N_m={} F_m={} CB_m={} | {} | {}",
        m.n_stile,
        m.f_stile,
        m.kernel.n_mtile,
        m.kernel.f_mtile,
        m.kernel.cb_mtile,
        m.kernel.traversal,
        m.kernel.load_scheme.name()
    );
    let sim = estimate_cost(&platform, &workload, &m)?;
    println!(
        "predicted {:.2} ms | simulated {:.2} ms (model error {:.1} %)\n",
        tuned.predicted_total_s * 1e3,
        sim.time.total_s() * 1e3,
        100.0 * (tuned.predicted_total_s - sim.time.total_s()).abs() / sim.time.total_s()
    );

    // Ablation 1: swap the load scheme, keep everything else.
    println!("load-scheme ablation at the winning tiling:");
    for scheme in [
        LoadScheme::Static,
        LoadScheme::CoarseGrain {
            cb_load: m.kernel.cb_mtile.min(4),
            f_load: m.kernel.f_mtile.min(4),
        },
        LoadScheme::FineGrain {
            f_load: m.kernel.f_mtile.min(8),
            threads: 16,
        },
    ] {
        let mut variant = m;
        variant.kernel.load_scheme = scheme;
        match estimate_cost(&platform, &workload, &variant) {
            Ok(c) => println!(
                "  {:12} {:9.2} ms (WRAM {:5} KiB)",
                scheme.name(),
                c.time.total_s() * 1e3,
                c.wram_bytes / 1024
            ),
            Err(e) => println!("  {:12} illegal: {e}", scheme.name()),
        }
    }

    // Ablation 2: traversal orders.
    println!("\ntraversal-order ablation:");
    for order in TraversalOrder::all() {
        let mut variant = m;
        variant.kernel.traversal = order;
        if let Ok(c) = estimate_cost(&platform, &workload, &variant) {
            println!(
                "  {:6} {:9.2} ms",
                order.to_string(),
                c.time.total_s() * 1e3
            );
        }
    }

    // Ablation 3: model-vs-simulator error across a slice of the space.
    let mut errors = Vec::new();
    for kernel in kernel_candidates(&workload, &platform, m.n_stile, m.f_stile)
        .into_iter()
        .step_by(97)
    {
        let candidate = mapping_of(m.n_stile, m.f_stile, kernel);
        if let (Ok(pred), Ok(meas)) = (
            analytical_cost(&platform, &workload, &candidate),
            estimate_cost(&platform, &workload, &candidate),
        ) {
            errors.push((pred.total_s() - meas.time.total_s()).abs() / meas.time.total_s());
        }
    }
    let avg = errors.iter().sum::<f64>() / errors.len().max(1) as f64;
    let max = errors.iter().copied().fold(0.0_f64, f64::max);
    println!(
        "\nanalytical-model error over {} sampled mappings: avg {:.2} %, max {:.2} % \
         (paper: avg 3.44 %, max 13.73 %)",
        errors.len(),
        100.0 * avg,
        100.0 * max
    );
    Ok(())
}
