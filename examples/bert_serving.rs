//! BERT serving on the UPMEM platform: the Fig. 10/11 scenario in one
//! program. Serves BERT-base with PIM-DL, prints the operator breakdown,
//! and compares against the CPU FP32/INT8 servers and GEMM-on-PIM.
//!
//! ```text
//! cargo run --release --example bert_serving [batch] [seq_len]
//! ```

use pimdl::engine::baseline::{host_inference, pim_gemm_inference, HostModel};
use pimdl::engine::pipeline::{PimDlEngine, ServingConfig};
use pimdl::engine::shapes::TransformerShape;
use pimdl::sim::PlatformConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let batch: usize = args.next().map(|s| s.parse()).transpose()?.unwrap_or(64);
    let seq_len: usize = args.next().map(|s| s.parse()).transpose()?.unwrap_or(512);

    let shape = TransformerShape::bert_base();
    let platform = PlatformConfig::upmem();
    let engine = PimDlEngine::new(platform.clone());
    let cfg = ServingConfig {
        batch,
        seq_len,
        v: 4,
        ct: 16,
    };

    println!(
        "Serving {} (H={}, {} layers) at batch {batch} x seq {seq_len}, V={} CT={}\n",
        shape.name, shape.hidden, shape.layers, cfg.v, cfg.ct
    );

    let report = engine.serve(&shape, &cfg)?;
    println!("PIM-DL on UPMEM (8 DIMMs, 1024 DPUs):");
    println!("  total latency      {:8.2} s", report.total_s);
    println!(
        "  LUT operator (PIM) {:8.2} s  ({:.1} %)",
        report.lut_s,
        100.0 * report.lut_s / report.total_s
    );
    println!(
        "  CCS (host)         {:8.2} s  ({:.1} %)",
        report.ccs_s,
        100.0 * report.ccs_s / report.total_s
    );
    println!(
        "  attention (host)   {:8.2} s  ({:.1} %)",
        report.attention_s,
        100.0 * report.attention_s / report.total_s
    );
    println!(
        "  other (host)       {:8.2} s  ({:.1} %)",
        report.other_s,
        100.0 * report.other_s / report.total_s
    );
    println!("  energy             {:8.1} J", report.energy.total_j());
    println!("\nPer-operator mappings chosen by the auto-tuner:");
    for lc in &report.per_linear {
        println!(
            "  {:5}  ({:6}, {:4}, {:2}, {:5})  N_s={:6} F_s={:5} {:12}  {:7.3} s",
            lc.name,
            lc.workload.n,
            lc.workload.cb,
            lc.workload.ct,
            lc.workload.f,
            lc.mapping.n_stile,
            lc.mapping.f_stile,
            lc.mapping.kernel.load_scheme.name(),
            lc.lut_s,
        );
    }

    let fp32 = host_inference(&HostModel::cpu_fp32(), &shape, batch, seq_len, 4).total_s();
    let int8 = host_inference(&HostModel::cpu_int8(), &shape, batch, seq_len, 1).total_s();
    let gemm = pim_gemm_inference(&platform, &shape, batch, seq_len).total_s();
    println!("\nBaselines:");
    println!(
        "  CPU FP32 (GGML)  {fp32:8.2} s   -> PIM-DL speedup {:.2}x",
        fp32 / report.total_s
    );
    println!(
        "  CPU INT8 (GGML)  {int8:8.2} s   -> PIM-DL speedup {:.2}x",
        int8 / report.total_s
    );
    println!(
        "  GEMM on PIM      {gemm:8.2} s   -> PIM-DL speedup {:.2}x",
        gemm / report.total_s
    );
    println!(
        "\nPaper reference (batch 64, seq 512, geomean over 3 models): 3.07x vs FP32, 1.71x vs INT8, 18.91x vs GEMM-on-PIM"
    );
    Ok(())
}
