//! Serves the same transformer across the three commodity DRAM-PIM
//! platforms (UPMEM PIM-DIMM, HBM-PIM, AiM) and their natural baselines —
//! the Figs. 14/15 scenario.
//!
//! ```text
//! cargo run --release --example platform_compare [hidden] [batch]
//! ```

use pimdl::engine::baseline::{host_inference, pim_gemm_inference, HostModel};
use pimdl::engine::pipeline::{PimDlEngine, ServingConfig};
use pimdl::engine::shapes::TransformerShape;
use pimdl::sim::PlatformConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let hidden: usize = args.next().map(|s| s.parse()).transpose()?.unwrap_or(2048);
    let batch: usize = args.next().map(|s| s.parse()).transpose()?.unwrap_or(4);
    let seq_len = 128;
    let shape = TransformerShape::with_hidden(hidden, 24);
    let cfg = ServingConfig {
        batch,
        seq_len,
        v: 4,
        ct: 16,
    };
    println!(
        "model H={hidden} ({} layers), batch {batch} x seq {seq_len}, V=4 CT=16\n",
        shape.layers
    );

    let v100 = host_inference(&HostModel::gpu_v100_fp32(), &shape, batch, seq_len, 4).total_s();
    println!("V100 GPU (PyTorch FP32):        {:9.2} ms", v100 * 1e3);

    println!(
        "\n{:10} {:>14} {:>14} {:>12} {:>12}",
        "platform", "PIM-DL", "GEMM-on-PIM", "vs GEMM", "vs V100"
    );
    for platform in PlatformConfig::all() {
        let engine = PimDlEngine::new(platform.clone());
        let pimdl = engine.serve(&shape, &cfg)?.total_s;
        let gemm = pim_gemm_inference(&platform, &shape, batch, seq_len).total_s();
        println!(
            "{:10} {:11.2} ms {:11.2} ms {:11.2}x {:11.2}x",
            platform.kind.name(),
            pimdl * 1e3,
            gemm * 1e3,
            gemm / pimdl,
            v100 / pimdl
        );
    }
    println!(
        "\nPaper reference (seq 128, batch 1-8 sweep): PIM-DL beats GEMM-on-PIM by\n\
         23.94x (HBM-PIM) / 19.06x (AiM); vs V100, AiM reaches up to 1.20x and\n\
         HBM-PIM ~0.39x geomean."
    );
    Ok(())
}
