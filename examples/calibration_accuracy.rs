//! eLUT-NN calibration in action (the Tables 4/5 scenario): trains a small
//! transformer on a synthetic task, replaces *all* linear layers with LUTs,
//! and compares the k-means baseline against eLUT-NN (reconstruction loss +
//! straight-through estimator).
//!
//! ```text
//! cargo run --release --example calibration_accuracy
//! ```

use pimdl::lutnn::calibrate::{
    convert_elutnn, convert_lutnn_baseline, BaselineLutNnConfig, CalibrationConfig, CentroidInit,
};
use pimdl::lutnn::convert::lut_accuracy;
use pimdl::nn::data::{nlp_dataset, NlpTask};
use pimdl::nn::train::{evaluate, train, TrainConfig};
use pimdl::nn::transformer::{InputKind, ModelConfig, TransformerClassifier};
use pimdl::tensor::rng::DataRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = DataRng::new(42);
    let task = NlpTask::ContainsAnswer;
    let mut train_set = nlp_dataset(task, 360, 16, 8, &mut rng);
    let test_set = train_set.split_off(100);

    // Train the dense model.
    let model_cfg = ModelConfig {
        input: InputKind::Tokens { vocab: 16 },
        hidden: 32,
        heads: 4,
        layers: 2,
        ffn_dim: 64,
        max_seq: 8,
        classes: task.classes(),
    };
    let mut model = TransformerClassifier::new(&model_cfg, &mut rng);
    println!(
        "training dense transformer on synthetic '{}' task...",
        task.glue_name()
    );
    let stats = train(
        &mut model,
        &train_set,
        &TrainConfig {
            epochs: 12,
            batch_size: 16,
            lr: 3e-3,
            schedule: Default::default(),
            seed: 1,
        },
    )?;
    let original = evaluate(&model, &test_set)?;
    println!(
        "  dense accuracy = {:.1} % (final train loss {:.3})",
        100.0 * original,
        stats.final_loss().unwrap_or(f32::NAN)
    );

    // Convert with an aggressive compression (V=4, CT=8 against hidden 32 —
    // the per-sub-vector coding rate of the paper's V=2/CT=16 at H=768).
    let calib_set = train_set.take(48);
    println!(
        "\ncalibrating with {} sequences ({:.1} % of training data)...",
        calib_set.len(),
        100.0 * calib_set.len() as f32 / train_set.len() as f32
    );
    let bcfg = BaselineLutNnConfig {
        v: 4,
        ct: 8,
        init: CentroidInit::Random,
        kmeans_iters: 0,
        tau: 1.0,
        gumbel_noise: true,
        lr: 2e-3,
        epochs: 6,
        batch_size: 8,
        seed: 2,
        max_activation_rows: 4096,
    };
    let ccfg = CalibrationConfig {
        v: 4,
        ct: 8,
        init: CentroidInit::Random,
        kmeans_iters: 0,
        beta: 1e-3,
        lr: 2e-3,
        epochs: 6,
        batch_size: 8,
        seed: 2,
        max_activation_rows: 4096,
    };

    let (baseline, _) = convert_lutnn_baseline(&model, &calib_set, &bcfg)?;
    let baseline_acc = lut_accuracy(&baseline, &test_set, true)?;
    println!(
        "  baseline LUT-NN (Gumbel-softmax estimator, random init):    {:.1} %",
        100.0 * baseline_acc
    );

    let (elut, cstats) = convert_elutnn(&model, &calib_set, &ccfg)?;
    let elut_acc = lut_accuracy(&elut, &test_set, true)?;
    println!(
        "  eLUT-NN (recon loss + STE fine-tuning):                {:.1} %",
        100.0 * elut_acc
    );
    println!(
        "  calibration loss trajectory: {:?}",
        cstats
            .losses
            .iter()
            .map(|l| (l * 1000.0).round() / 1000.0)
            .collect::<Vec<_>>()
    );
    println!(
        "\nLUT storage the PIM modules hold: {} KiB (INT8)",
        elut.total_lut_bytes() / 1024
    );
    println!("\nper-layer diagnostics on the test inputs:");
    println!("  block op    quant MSE  idx repeat  LUT KiB");
    for d in elut.layer_diagnostics(&test_set.inputs[..20.min(test_set.inputs.len())])? {
        println!(
            "  {:>5} {:5} {:9.4}  {:9.3}  {:7}",
            d.block,
            d.operator,
            d.quantization_mse,
            d.index_repeat_fraction,
            d.lut_bytes / 1024
        );
    }
    println!(
        "\nPaper shape: original ≈ eLUT-NN >> baseline LUT-NN (Tables 4/5).\n\
         Here: {:.1} % / {:.1} % / {:.1} %",
        100.0 * original,
        100.0 * elut_acc,
        100.0 * baseline_acc
    );
    Ok(())
}
