//! Cloud serving under load: dynamic batching over the PIM-DL engine (the
//! paper's §2.2 batched-inference motivation).
//!
//! ```text
//! cargo run --release --example serving_load [seq_len]
//! ```

use pimdl::engine::pipeline::{PimDlEngine, ServingConfig};
use pimdl::engine::scheduler::{BatchScheduler, BatchingPolicy, Workload};
use pimdl::engine::shapes::TransformerShape;
use pimdl::sim::PlatformConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seq_len: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(128);

    let engine = PimDlEngine::new(PlatformConfig::upmem());
    let shape = TransformerShape::bert_base();
    let policy = BatchingPolicy {
        max_batch: 64,
        max_wait_s: 0.05,
    };
    let mut sched = BatchScheduler::new(
        &engine,
        &shape,
        ServingConfig {
            batch: 1,
            seq_len,
            v: 4,
            ct: 16,
        },
        policy,
    );
    let single = sched.batch_latency_s(1)?;
    println!(
        "{} at seq {} on UPMEM | single-request latency {:.3} s | policy: max_batch {}, window {:.0} ms\n",
        shape.name, seq_len, single, policy.max_batch, policy.max_wait_s * 1e3
    );
    println!(
        "{:>14} {:>14} {:>11} {:>12} {:>12}",
        "offered (rps)", "achieved (rps)", "mean batch", "p50 latency", "p95 latency"
    );
    for x in [0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0] {
        let rate = x / single;
        let stats = sched.simulate(&Workload {
            rate_rps: rate,
            duration_s: 300.0 / rate,
            seed: 7,
        })?;
        println!(
            "{:>14.2} {:>14.2} {:>11.1} {:>10.2} s {:>10.2} s",
            rate, stats.throughput_rps, stats.mean_batch, stats.p50_latency_s, stats.p95_latency_s
        );
    }
    println!(
        "\nThe knee is where batching stops keeping up: batches hit max_batch and\n\
         queueing delay takes over the tail (classic serving curve, powered by the\n\
         Fig. 12-(c) batch-efficiency effect)."
    );
    Ok(())
}
