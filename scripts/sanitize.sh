#!/usr/bin/env bash
# ThreadSanitizer run over the concurrent serving runtime (reactor, shard
# workers, worker pool). TSan needs a nightly toolchain with the
# rust-src component (`-Zbuild-std` instruments std itself); on a
# stable-only or offline box this script skips with exit 0 so it can sit
# in CI next to scripts/check.sh without gating environments that cannot
# run it.
set -euo pipefail
cd "$(dirname "$0")/.."

skip() {
    echo "sanitize.sh: SKIPPED — $1"
    echo "sanitize.sh: the race-condition gate did NOT run; this is not a pass."
    exit 0
}

command -v rustup >/dev/null 2>&1 || skip "rustup not installed"
rustup toolchain list 2>/dev/null | grep -q '^nightly' \
    || skip "no nightly toolchain installed (rustup toolchain install nightly)"

host="$(rustc -vV | awk '/^host:/ {print $2}')"
rustup component list --toolchain nightly 2>/dev/null \
    | grep -q '^rust-src (installed)' \
    || skip "nightly rust-src component missing (rustup component add rust-src --toolchain nightly)"

echo "==> ThreadSanitizer: pimdl-serve + pimdl-tensor test suites (${host})"
RUSTFLAGS="-Zsanitizer=thread" \
RUSTDOCFLAGS="-Zsanitizer=thread" \
TSAN_OPTIONS="halt_on_error=1" \
cargo +nightly test --offline \
    -Zbuild-std \
    --target "${host}" \
    -p pimdl-serve -p pimdl-tensor

echo "sanitize.sh: no data races reported."
