#!/usr/bin/env bash
# Pre-merge gate for the host kernels and serving runtime: formatting,
# lints on every kernel-touching crate, the crate test suites, and a fast
# kernel-performance smoke, all offline (see README.md, "Offline builds").
set -euo pipefail
cd "$(dirname "$0")/.."

KERNEL_CRATES=(pimdl-tensor pimdl-lutnn pimdl-serve pimdl-engine pimdl-bench)

echo "==> cargo fmt --check"
cargo fmt --check

for crate in "${KERNEL_CRATES[@]}"; do
    echo "==> cargo clippy -p ${crate} -- -D warnings"
    cargo clippy --offline -p "${crate}" --all-targets -- -D warnings
done

for crate in pimdl-tensor pimdl-lutnn pimdl-serve; do
    echo "==> cargo test -p ${crate} --offline"
    cargo test --offline -p "${crate}"
done

# Reactor end-to-end: the deterministic SimPoller pipeline (1k scripted
# requests, bit-identical across runs) and the real-epoll loopback smoke.
echo "==> cargo test -p pimdl --test reactor_pipeline"
cargo test --offline -p pimdl --test reactor_pipeline
echo "==> cargo test -p pimdl-serve --test loopback"
cargo test --offline -p pimdl-serve --test loopback

# Kernel-performance smoke: small shape, best-of-reps timing; the binary
# exits non-zero if the fused kernel regresses below the scalar two-pass.
echo "==> reproduce bench_kernels --smoke"
cargo run --offline --release -p pimdl-bench --bin reproduce -- bench_kernels --smoke

echo "All checks passed."
