#!/usr/bin/env bash
# Pre-merge gate for the host kernels and serving runtime: formatting,
# the pimdl-lint static-analysis passes, lints on every workspace crate,
# the crate test suites, and a fast kernel-performance smoke, all offline
# (see README.md, "Offline builds" and "Static analysis").
set -euo pipefail
cd "$(dirname "$0")/.."

WORKSPACE_CRATES=(
    pimdl-tensor pimdl-lutnn pimdl-sim pimdl-nn
    pimdl-engine pimdl-tuner pimdl-serve pimdl-bench
    pimdl-lint
)

echo "==> cargo fmt --check"
cargo fmt --check

# Static analysis: unsafe audit, panic-path, atomic-ordering, lock-order,
# syscall-confinement, the lockset race heuristic, the L7 untrusted-
# input taint pass, and the L8 interval-overflow pass over the whole
# workspace (hard gate; exemptions live in lint-allow.toml and must
# carry justifications). The human report ends with a per-pass
# finding-count / wall-time summary; the unsafe-site, lock-identity, and
# taint source/sink inventories land in results/lint_inventory.json for
# drift review. Under GitHub Actions the findings come out as ::error
# annotations instead. The wall-time budget (2x the pre-L7 baseline of
# 1.4s) flags creeping pass cost without failing the gate.
#
# A content-hash cache skips the lint when nothing it reads has changed:
# the key covers every .rs file under crates/ (the lint's scan set,
# which includes its own sources and fixtures) plus lint-allow.toml.
# LINT_NO_CACHE=1 forces a full run.
echo "==> pimdl-lint"
LINT_FORMAT=human
if [[ "${GITHUB_ACTIONS:-}" == "1" || "${GITHUB_ACTIONS:-}" == "true" ]]; then
    LINT_FORMAT=github
fi
mkdir -p results
LINT_CACHE=results/.lint_cache
lint_hash=$(
    {
        find crates -name '*.rs' -print0 | sort -z | xargs -0 sha256sum
        sha256sum lint-allow.toml
    } | sha256sum | cut -d' ' -f1
)
if [[ "${LINT_NO_CACHE:-0}" != "1" && -f "${LINT_CACHE}" \
      && -f results/lint_inventory.json \
      && "$(cat "${LINT_CACHE}")" == "${lint_hash}" ]]; then
    echo "pimdl-lint: clean at cached content hash ${lint_hash:0:12}" \
        "(LINT_NO_CACHE=1 to force a run)"
else
    LINT_BUDGET_US="${LINT_BUDGET_US:-2800000}"
    lint_start_ns=$(date +%s%N)
    cargo run --offline -q -p pimdl-lint -- \
        --format "${LINT_FORMAT}" --inventory results/lint_inventory.json
    lint_elapsed_us=$(( ($(date +%s%N) - lint_start_ns) / 1000 ))
    echo "pimdl-lint wall time: ${lint_elapsed_us}us (budget ${LINT_BUDGET_US}us)"
    if (( lint_elapsed_us > LINT_BUDGET_US )); then
        echo "WARNING: pimdl-lint exceeded its wall-time budget" \
            "(${lint_elapsed_us}us > ${LINT_BUDGET_US}us)" >&2
    fi
    echo "${lint_hash}" > "${LINT_CACHE}"
fi

# Inventory drift gate: growth in the attack/audit surface (unsafe sites,
# taint sinks) must arrive as an explicit diff to the committed
# results/lint_inventory.json baseline, not a silent regeneration. The
# gate fails when the fresh inventory shows more unsafe sites or taint
# sinks than HEAD's copy; re-committing the regenerated file (after
# reviewing the new sites) is the only way through.
echo "==> lint inventory drift gate"
if git cat-file -e HEAD:results/lint_inventory.json 2>/dev/null; then
    python3 - <(git show HEAD:results/lint_inventory.json) \
        results/lint_inventory.json <<'PY'
import json
import sys

base = json.load(open(sys.argv[1]))
cur = json.load(open(sys.argv[2]))
fail = False
for key in ("unsafe_count", "taint_sinks"):
    b, c = int(base.get(key, 0)), int(cur.get(key, 0))
    if c > b:
        print(
            f"ERROR: lint inventory drift: {key} grew {b} -> {c}. Review the"
            " new sites and re-commit results/lint_inventory.json to accept.",
            file=sys.stderr,
        )
        fail = True
    else:
        print(f"inventory {key}: {c} (baseline {b})")
sys.exit(1 if fail else 0)
PY
else
    echo "no committed inventory baseline yet; drift gate skipped"
fi

for crate in "${WORKSPACE_CRATES[@]}"; do
    echo "==> cargo clippy -p ${crate} -- -D warnings"
    cargo clippy --offline -p "${crate}" --all-targets -- -D warnings
done

for crate in pimdl-tensor pimdl-lutnn pimdl-tuner pimdl-serve pimdl-lint; do
    echo "==> cargo test -p ${crate} --offline"
    cargo test --offline -p "${crate}"
done

# Reactor end-to-end: the deterministic SimPoller pipeline (1k scripted
# requests, bit-identical across runs) and the real-epoll loopback smoke.
echo "==> cargo test -p pimdl --test reactor_pipeline"
cargo test --offline -p pimdl --test reactor_pipeline
echo "==> cargo test -p pimdl-serve --test loopback"
cargo test --offline -p pimdl-serve --test loopback

# HTTP front end: the scripted conformance corpus (status codes, pipelined
# keep-alive, quota 429s, weighted-fair sharing — any 4xx/5xx mismatch
# fails the suite) and the real-socket HTTP loopback smoke.
echo "==> cargo test -p pimdl --test http_pipeline"
cargo test --offline -p pimdl --test http_pipeline
echo "==> cargo test -p pimdl-serve --test http_loopback"
cargo test --offline -p pimdl-serve --test http_loopback

# Shard fabric: the frame-protocol property corpus (round-trip under
# arbitrary splits, truncation starves, corruption poisons exactly once),
# the deterministic SimPoller fault-injection suite (shard death
# mid-batch loses nothing, bit-identical reruns), and the real-process
# loopback smoke including a kill -9 of a live worker.
echo "==> cargo test -p pimdl-serve --test fabric_protocol"
cargo test --offline -p pimdl-serve --test fabric_protocol
echo "==> cargo test -p pimdl --test fabric_pipeline"
cargo test --offline -p pimdl --test fabric_pipeline
echo "==> cargo test -p pimdl-serve --test fabric_loopback"
cargo test --offline -p pimdl-serve --test fabric_loopback

# Kernel-performance smoke: small shape, best-of-reps timing; the binary
# exits non-zero if the fused kernel regresses below the scalar two-pass.
echo "==> reproduce bench_kernels --smoke"
cargo run --offline --release -p pimdl-bench --bin reproduce -- bench_kernels --smoke

# Auto-tuner smoke: branch-and-bound vs the exhaustive oracle on a tiny
# model plus the per-layer capacity sweep (the library tests assert the
# optima match bit-for-bit; this exercises the CLI path end to end).
echo "==> reproduce tuner --quick"
cargo run --offline --release -p pimdl-bench --bin reproduce -- tuner --quick

echo "All checks passed."
