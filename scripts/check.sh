#!/usr/bin/env bash
# Pre-merge gate for the serving runtime: formatting, lints, and the
# pimdl-serve test suite, all offline (see README.md, "Offline builds").
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy -p pimdl-serve -- -D warnings"
cargo clippy --offline -p pimdl-serve -- -D warnings

echo "==> cargo test -p pimdl-serve --offline"
cargo test --offline -p pimdl-serve

echo "All checks passed."
