//! `pimdl` — command-line front end to the PIM-DL reproduction.
//!
//! ```text
//! pimdl platforms
//!     List the modeled DRAM-PIM platforms and their headline numbers.
//!
//! pimdl tune --n N --cb CB --ct CT --f F [--platform upmem|hbm-pim|aim]
//!     Auto-tune a LUT workload (Algorithm 1) and print the winning mapping
//!     with its predicted and simulated latency.
//!
//! pimdl serve --model bert-base|bert-large|vit-huge|hHIDDEN
//!             [--platform P] [--batch B] [--seq S] [--v V] [--ct CT]
//!     Estimate end-to-end PIM-DL serving latency/energy with the operator
//!     breakdown, next to the CPU/GPU/PIM-GEMM baselines.
//!
//! pimdl trace --n N --cb CB --ct CT --f F [--platform P] [--skew AMP]
//!     Show the per-PE load-balance picture of the tuned kernel under a PE
//!     speed-variation model (limitation L3).
//!
//! pimdl compile --n N --cb CB --ct CT --f F [--platform P] [--limit K]
//!     Tune a workload, lower the winning mapping to the PE instruction
//!     set, and disassemble the resulting PIM binary.
//!
//! pimdl export [--platform P]
//!     Print a platform configuration as JSON; edit it and pass it back
//!     anywhere via `--platform my-platform.json`.
//! ```

use std::collections::HashMap;
use std::process::ExitCode;

use pimdl::engine::baseline::{host_inference, pim_gemm_inference, HostModel};
use pimdl::engine::pipeline::{PimDlEngine, ServingConfig};
use pimdl::engine::shapes::TransformerShape;
use pimdl::sim::cost::estimate_cost;
use pimdl::sim::trace::{trace_kernel, PeVariation};
use pimdl::sim::{LutWorkload, PlatformConfig};
use pimdl::tuner::tune;

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("pimdl: {e}");
            ExitCode::FAILURE
        }
    }
}

type CliError = Box<dyn std::error::Error>;

fn run() -> Result<(), CliError> {
    let mut args = std::env::args().skip(1);
    let Some(cmd) = args.next() else {
        return Err("usage: pimdl <platforms|tune|serve|trace> [flags]".into());
    };
    let flags = parse_flags(args)?;
    match cmd.as_str() {
        "platforms" => platforms(),
        "tune" => tune_cmd(&flags),
        "serve" => serve_cmd(&flags),
        "trace" => trace_cmd(&flags),
        "compile" => compile_cmd(&flags),
        "export" => export_cmd(&flags),
        other => Err(format!("unknown command: {other}").into()),
    }
}

fn parse_flags(args: impl Iterator<Item = String>) -> Result<HashMap<String, String>, CliError> {
    let mut flags = HashMap::new();
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        let Some(name) = arg.strip_prefix("--") else {
            return Err(format!("expected --flag, got {arg}").into());
        };
        let value = args
            .next()
            .ok_or_else(|| format!("--{name} requires a value"))?;
        flags.insert(name.to_string(), value);
    }
    Ok(flags)
}

fn flag_usize(
    flags: &HashMap<String, String>,
    name: &str,
    default: usize,
) -> Result<usize, CliError> {
    match flags.get(name) {
        None => Ok(default),
        Some(v) => Ok(v.parse()?),
    }
}

fn flag_platform(flags: &HashMap<String, String>) -> Result<PlatformConfig, CliError> {
    match flags.get("platform").map(String::as_str) {
        None | Some("upmem") => Ok(PlatformConfig::upmem()),
        Some("hbm-pim") => Ok(PlatformConfig::hbm_pim()),
        Some("aim") => Ok(PlatformConfig::aim()),
        Some("upmem-adder-only") => Ok(PlatformConfig::upmem_adder_only()),
        // A path to a JSON file gives a fully custom platform (the schema
        // is `PlatformConfig`'s serde form; dump one with `pimdl export`).
        Some(path) if path.ends_with(".json") => {
            let body = std::fs::read_to_string(path)?;
            Ok(serde_json::from_str(&body)?)
        }
        Some(other) => Err(format!(
            "unknown platform {other} (expected upmem|hbm-pim|aim|upmem-adder-only|<file.json>)"
        )
        .into()),
    }
}

fn platforms() -> Result<(), CliError> {
    println!(
        "{:<10} {:>6} {:>12} {:>14} {:>12} {:>10}",
        "platform", "PEs", "WRAM (KiB)", "int BW (GB/s)", "peak GOP/s", "power (W)"
    );
    for p in PlatformConfig::all() {
        println!(
            "{:<10} {:>6} {:>12} {:>14.1} {:>12.1} {:>10.1}",
            p.kind.name(),
            p.num_pes,
            p.wram_bytes / 1024,
            p.peak_internal_bw_gbps,
            p.peak_gops,
            p.pim_power_w
        );
    }
    Ok(())
}

/// Tunes a workload and disassembles the resulting PIM binary.
fn compile_cmd(flags: &HashMap<String, String>) -> Result<(), CliError> {
    let platform = flag_platform(flags)?;
    let workload = workload_from_flags(flags)?;
    let limit = flag_usize(flags, "limit", 32)?;
    let tuned = tune(&platform, &workload)?;
    let program = pimdl::sim::isa::compile(&workload, &tuned.mapping)?;
    let (idx, out_in, out_st, lut, acc) = program.instruction_mix();
    println!(
        "PIM binary for (N,CB,CT,F)=({},{},{},{}) | mapping N_s={} F_s={} {} {}",
        workload.n,
        workload.cb,
        workload.ct,
        workload.f,
        tuned.mapping.n_stile,
        tuned.mapping.f_stile,
        tuned.mapping.kernel.traversal,
        tuned.mapping.kernel.load_scheme.name()
    );
    println!(
        "{} instructions: {idx} index loads, {out_in} output loads, {out_st} output stores, {lut} LUT loads, {acc} accumulates\n",
        program.len()
    );
    print!("{}", program.disassemble(limit));
    Ok(())
}

/// Dumps a built-in platform's JSON so users can edit and reload it with
/// `--platform file.json`.
fn export_cmd(flags: &HashMap<String, String>) -> Result<(), CliError> {
    let platform = flag_platform(flags)?;
    println!("{}", serde_json::to_string_pretty(&platform)?);
    Ok(())
}

fn workload_from_flags(flags: &HashMap<String, String>) -> Result<LutWorkload, CliError> {
    let n = flag_usize(flags, "n", 4096)?;
    let cb = flag_usize(flags, "cb", 192)?;
    let ct = flag_usize(flags, "ct", 16)?;
    let f = flag_usize(flags, "f", 768)?;
    Ok(LutWorkload::new(n, cb, ct, f)?)
}

fn tune_cmd(flags: &HashMap<String, String>) -> Result<(), CliError> {
    let platform = flag_platform(flags)?;
    let workload = workload_from_flags(flags)?;
    let started = std::time::Instant::now();
    let result = tune(&platform, &workload)?;
    let sim = estimate_cost(&platform, &workload, &result.mapping)?;
    let m = result.mapping;
    println!(
        "workload (N, CB, CT, F) = ({}, {}, {}, {}) on {} ({} PEs)",
        workload.n,
        workload.cb,
        workload.ct,
        workload.f,
        platform.kind.name(),
        platform.num_pes
    );
    println!(
        "searched {} candidates in {:.2} s",
        result.evaluated,
        started.elapsed().as_secs_f64()
    );
    println!(
        "mapping: N_s={} F_s={} | N_m={} F_m={} CB_m={} | {} | {}",
        m.n_stile,
        m.f_stile,
        m.kernel.n_mtile,
        m.kernel.f_mtile,
        m.kernel.cb_mtile,
        m.kernel.traversal,
        m.kernel.load_scheme.name()
    );
    println!(
        "predicted {:.3} ms | simulated {:.3} ms | WRAM {} B | host<->PIM {} KiB",
        result.predicted_total_s * 1e3,
        sim.time.total_s() * 1e3,
        sim.wram_bytes,
        sim.host_pim_bytes / 1024
    );
    Ok(())
}

fn shape_from_flags(flags: &HashMap<String, String>) -> Result<TransformerShape, CliError> {
    match flags.get("model").map(String::as_str) {
        None | Some("bert-base") => Ok(TransformerShape::bert_base()),
        Some("bert-large") => Ok(TransformerShape::bert_large()),
        Some("vit-huge") => Ok(TransformerShape::vit_huge()),
        Some(s) if s.starts_with('h') => {
            let hidden: usize = s[1..].parse()?;
            Ok(TransformerShape::with_hidden(hidden, 24))
        }
        Some(other) => Err(format!(
            "unknown model {other} (expected bert-base|bert-large|vit-huge|h<hidden>)"
        )
        .into()),
    }
}

fn serve_cmd(flags: &HashMap<String, String>) -> Result<(), CliError> {
    let platform = flag_platform(flags)?;
    let shape = shape_from_flags(flags)?;
    let cfg = ServingConfig {
        batch: flag_usize(flags, "batch", 64)?,
        seq_len: flag_usize(flags, "seq", 512)?,
        v: flag_usize(flags, "v", 4)?,
        ct: flag_usize(flags, "ct", 16)?,
    };
    let engine = PimDlEngine::new(platform.clone());
    let report = engine.serve(&shape, &cfg)?;
    println!(
        "{} on {} | batch {} x seq {} | V={} CT={}",
        shape.name,
        platform.kind.name(),
        cfg.batch,
        cfg.seq_len,
        cfg.v,
        cfg.ct
    );
    println!("total      {:>10.3} s", report.total_s);
    println!(
        "  LUT      {:>10.3} s ({:.1} %)",
        report.lut_s,
        100.0 * report.lut_s / report.total_s
    );
    println!(
        "  CCS      {:>10.3} s ({:.1} %)",
        report.ccs_s,
        100.0 * report.ccs_s / report.total_s
    );
    println!(
        "  attn     {:>10.3} s ({:.1} %)",
        report.attention_s,
        100.0 * report.attention_s / report.total_s
    );
    println!(
        "  other    {:>10.3} s ({:.1} %)",
        report.other_s,
        100.0 * report.other_s / report.total_s
    );
    println!("energy     {:>10.1} J", report.energy.total_j());

    let fp32 = host_inference(&HostModel::cpu_fp32(), &shape, cfg.batch, cfg.seq_len, 4).total_s();
    let int8 = host_inference(&HostModel::cpu_int8(), &shape, cfg.batch, cfg.seq_len, 1).total_s();
    let gemm = pim_gemm_inference(&platform, &shape, cfg.batch, cfg.seq_len).total_s();
    println!(
        "\nspeedups: {:.2}x vs CPU FP32 | {:.2}x vs CPU INT8 | {:.2}x vs GEMM-on-PIM",
        fp32 / report.total_s,
        int8 / report.total_s,
        gemm / report.total_s
    );
    Ok(())
}

fn trace_cmd(flags: &HashMap<String, String>) -> Result<(), CliError> {
    let platform = flag_platform(flags)?;
    let workload = workload_from_flags(flags)?;
    let amplitude: f64 = match flags.get("skew") {
        None => 0.15,
        Some(v) => v.parse()?,
    };
    let tuned = tune(&platform, &workload)?;
    let trace = trace_kernel(
        &platform,
        &workload,
        &tuned.mapping,
        1.0 / workload.ct as f64,
        PeVariation { amplitude, seed: 1 },
    )?;
    println!(
        "kernel on {} PEs | PE speed variation amplitude {:.0} %",
        trace.entries.len(),
        amplitude * 100.0
    );
    println!(
        "per-PE kernel time: min {:.3} ms | mean {:.3} ms | max {:.3} ms",
        trace.min_kernel_s * 1e3,
        trace.mean_kernel_s * 1e3,
        trace.max_kernel_s * 1e3
    );
    println!(
        "finish time {:.3} ms (straggler penalty {:.2}x, idle fraction {:.1} %)",
        trace.total_s * 1e3,
        trace.straggler_penalty(),
        100.0 * trace.imbalance
    );
    // A tiny textual histogram of the per-PE times.
    let buckets = 8;
    let span = (trace.max_kernel_s - trace.min_kernel_s).max(1e-18);
    let mut hist = vec![0usize; buckets];
    for e in &trace.entries {
        let b =
            (((e.kernel_s - trace.min_kernel_s) / span) * (buckets - 1) as f64).round() as usize;
        hist[b.min(buckets - 1)] += 1;
    }
    println!("\nper-PE time distribution (fast -> slow):");
    for (i, count) in hist.iter().enumerate() {
        println!("  [{i}] {}", "#".repeat(*count));
    }
    Ok(())
}
