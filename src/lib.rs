//! # PIM-DL — LUT-NN inference on commodity DRAM-PIM simulators
//!
//! Facade crate for the PIM-DL reproduction (ASPLOS 2024). Re-exports the
//! workspace crates under one roof so examples and downstream users can
//! depend on a single crate:
//!
//! * [`tensor`] — dense matrices, GEMM, INT8 quantization (substrate).
//! * [`nn`] — trainable transformer with manual backprop + synthetic
//!   calibration datasets (substrate).
//! * [`lutnn`] — the LUT-NN paradigm: codebooks, CCS, look-up tables, and
//!   the eLUT-NN calibration algorithm (the paper's core contribution).
//! * [`sim`] — UPMEM PIM-DIMM / HBM-PIM / AiM simulator with functional PE
//!   micro-kernels and cycle/energy accounting (substrate).
//! * [`tuner`] — the analytical dataflow model and Algorithm-1 auto-tuner.
//! * [`engine`] — end-to-end transformer serving on DRAM-PIM platforms plus
//!   CPU/GPU/PIM-GEMM baselines.
//! * [`serve`] — multi-threaded serving runtime: bounded admission,
//!   continuous batching, least-loaded DIMM-shard routing, and latency
//!   metrics (with a deterministic virtual-clock driver for tests).
//!
//! # Quickstart
//!
//! ```rust
//! use pimdl::lutnn::pq::ProductQuantizer;
//! use pimdl::lutnn::lut::LutTable;
//! use pimdl::tensor::{gemm, rng::DataRng};
//!
//! // Convert one linear layer to LUT-NN and run it.
//! let mut rng = DataRng::new(0);
//! let calib_acts = rng.normal_matrix(256, 16, 0.0, 1.0);
//! let weight = rng.normal_matrix(16, 8, 0.0, 0.5);
//!
//! let pq = ProductQuantizer::fit(&calib_acts, 2, 16, 15, &mut rng)?;
//! let lut = LutTable::build(&pq, &weight)?;
//!
//! let x = rng.normal_matrix(4, 16, 0.0, 1.0);
//! let approx = lut.lookup(&pq.encode(&x)?)?;
//! let exact = gemm::matmul(&x, &weight)?;
//! assert!(approx.sub(&exact)?.max_abs() < 2.0); // centroid approximation
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub use pimdl_engine as engine;
pub use pimdl_lutnn as lutnn;
pub use pimdl_nn as nn;
pub use pimdl_serve as serve;
pub use pimdl_sim as sim;
pub use pimdl_tensor as tensor;
pub use pimdl_tuner as tuner;
