//! Failure-injection tests: corrupt inputs, degenerate configurations, and
//! poisoned data must fail loudly (typed errors or documented panics), not
//! silently produce garbage.

use pimdl::lutnn::lut::LutTable;
use pimdl::lutnn::pq::{IndexMatrix, ProductQuantizer};
use pimdl::sim::cost::estimate_cost;
use pimdl::sim::exec::{run_lut_kernel, LutKernelData};
use pimdl::sim::mapping::MicroKernel;
use pimdl::sim::{LoadScheme, LutWorkload, Mapping, PlatformConfig, TraversalOrder};
use pimdl::tensor::rng::DataRng;
use pimdl::tensor::Matrix;
use pimdl::tuner::tune;

#[test]
fn nan_activations_are_rejected_by_conversion() {
    let mut rng = DataRng::new(0);
    let mut acts = rng.normal_matrix(32, 8, 0.0, 1.0);
    acts.set(3, 5, f32::NAN);
    let err = ProductQuantizer::fit(&acts, 2, 4, 10, &mut rng).unwrap_err();
    assert!(err.to_string().contains("non-finite"), "{err}");

    let mut acts_inf = rng.normal_matrix(32, 8, 0.0, 1.0);
    acts_inf.set(0, 0, f32::INFINITY);
    assert!(ProductQuantizer::fit(&acts_inf, 2, 4, 10, &mut rng).is_err());
}

#[test]
fn out_of_range_indices_fail_closed_everywhere() {
    let mut rng = DataRng::new(1);
    let acts = rng.normal_matrix(64, 8, 0.0, 1.0);
    let weight = rng.normal_matrix(8, 4, 0.0, 1.0);
    let pq = ProductQuantizer::fit(&acts, 2, 4, 10, &mut rng).unwrap();
    let lut = LutTable::build(&pq, &weight).unwrap();

    // Corrupt an index beyond CT.
    let corrupted = IndexMatrix::from_vec(2, pq.cb(), vec![200; 2 * pq.cb()]).unwrap();
    assert!(lut.lookup(&corrupted).is_err());
    assert!(lut.quantize().lookup(&corrupted).is_err());
    assert!(pq.decode(&corrupted).is_err());

    // The simulator also rejects them.
    let mut platform = PlatformConfig::upmem();
    platform.num_pes = 4;
    let w = LutWorkload::new(2, pq.cb(), pq.ct(), 4).unwrap();
    let mapping = Mapping {
        n_stile: 1,
        f_stile: 2,
        kernel: MicroKernel {
            n_mtile: 1,
            f_mtile: 2,
            cb_mtile: 2,
            traversal: TraversalOrder::Nfc,
            load_scheme: LoadScheme::Static,
        },
    };
    let qlut = lut.quantize();
    let bad = vec![200u16; 2 * pq.cb()];
    let result = run_lut_kernel(
        &platform,
        &w,
        &mapping,
        LutKernelData {
            indices: &bad,
            table: qlut.table().codes(),
            scale: 1.0,
        },
    );
    assert!(result.is_err());
}

#[test]
fn truncated_operands_are_detected() {
    let mut platform = PlatformConfig::upmem();
    platform.num_pes = 4;
    let w = LutWorkload::new(8, 4, 4, 8).unwrap();
    let mapping = Mapping {
        n_stile: 4,
        f_stile: 4,
        kernel: MicroKernel {
            n_mtile: 4,
            f_mtile: 4,
            cb_mtile: 4,
            traversal: TraversalOrder::Nfc,
            load_scheme: LoadScheme::Static,
        },
    };
    let indices = vec![0u16; 8 * 4];
    let table = vec![1i8; 4 * 4 * 8];
    // Drop the last element of each operand in turn.
    assert!(run_lut_kernel(
        &platform,
        &w,
        &mapping,
        LutKernelData {
            indices: &indices[..indices.len() - 1],
            table: &table,
            scale: 1.0
        }
    )
    .is_err());
    assert!(run_lut_kernel(
        &platform,
        &w,
        &mapping,
        LutKernelData {
            indices: &indices,
            table: &table[..table.len() - 1],
            scale: 1.0
        }
    )
    .is_err());
}

#[test]
fn degenerate_platforms_do_not_produce_nonsense() {
    // Near-zero bandwidth: latency explodes but stays finite and positive.
    let mut platform = PlatformConfig::upmem();
    platform.num_pes = 4;
    platform.host_transfer.to_pim_peak_gbps = 1e-12;
    platform.host_transfer.broadcast_peak_gbps = 1e-12;
    platform.host_transfer.from_pim_peak_gbps = 1e-12;
    let w = LutWorkload::new(8, 4, 4, 8).unwrap();
    let mapping = Mapping {
        n_stile: 4,
        f_stile: 4,
        kernel: MicroKernel {
            n_mtile: 4,
            f_mtile: 4,
            cb_mtile: 4,
            traversal: TraversalOrder::Nfc,
            load_scheme: LoadScheme::Static,
        },
    };
    let report = estimate_cost(&platform, &w, &mapping).unwrap();
    assert!(report.time.total_s().is_finite());
    assert!(report.time.total_s() > 0.0);
}

#[test]
fn impossible_workloads_fail_with_typed_errors() {
    // Prime dimensions that cannot satisfy Eq. 5 on a power-of-two PE count.
    let platform = PlatformConfig::upmem(); // 1024 PEs
    let w = LutWorkload::new(7, 3, 4, 11).unwrap();
    let err = tune(&platform, &w).unwrap_err();
    assert!(err.to_string().contains("no legal mapping"), "{err}");
}

#[test]
fn corrupted_quantized_matrix_roundtrip_is_bounded() {
    // Even adversarial i8 codes dequantize to bounded values (scale × 127).
    let m = Matrix::full(4, 4, 3.0);
    let q = pimdl::tensor::quant::QuantMatrix::quantize(&m);
    let back = q.dequantize();
    assert!(back.max_abs() <= q.scale() * 127.0 + 1e-6);
}
