//! Deterministic conformance and fairness tests of the HTTP/1.1 front
//! end, driven entirely through the simulated event source
//! ([`SimPoller`]) on a [`VirtualClock`]: scripted connections carry raw
//! HTTP bytes through the full parse → route → admit → weighted-fair
//! batch → execute → respond pipeline. No sockets, no threads, no real
//! sleeps — and the fairness scenario must reproduce bit-for-bit across
//! runs.

use std::sync::Arc;

use pimdl::engine::scheduler::TenantQuota;
use pimdl::engine::shapes::TransformerShape;
use pimdl::serve::reactor::Token;
use pimdl::serve::{
    Clock, EventSource, HttpConfig, HttpServerLoop, Metrics, MetricsSnapshot, ModelRegistry,
    Runtime, ServeConfig, SimExecutor, SimPoller, VirtualClock,
};
use pimdl::sim::{LutWorkload, PlatformConfig};

fn runtime(queue_capacity: usize, deadline_s: f64) -> Runtime {
    let mut platform = PlatformConfig::upmem();
    platform.num_pes = 64;
    let mut cfg = ServeConfig::example(); // 2 shards, max_batch 4
    cfg.queue_capacity = queue_capacity;
    cfg.deadline_s = deadline_s;
    Runtime::new(platform, TransformerShape::tiny(), cfg).unwrap()
}

/// Deterministic index payload `k` for workload `w`.
fn indices_for(w: LutWorkload, k: usize) -> Vec<u16> {
    (0..w.n * w.cb)
        .map(|i| ((k * 7 + i * 3) % w.ct) as u16)
        .collect()
}

fn csv(indices: &[u16]) -> String {
    indices
        .iter()
        .map(u16::to_string)
        .collect::<Vec<_>>()
        .join(",")
}

/// Raw HTTP/1.1 request bytes.
fn req(method: &str, target: &str, headers: &[(&str, &str)], body: &[u8]) -> Vec<u8> {
    let mut s = format!("{method} {target} HTTP/1.1\r\nHost: sim\r\n");
    for (k, v) in headers {
        s.push_str(&format!("{k}: {v}\r\n"));
    }
    if !body.is_empty() {
        s.push_str(&format!("Content-Length: {}\r\n", body.len()));
    }
    s.push_str("\r\n");
    let mut bytes = s.into_bytes();
    bytes.extend_from_slice(body);
    bytes
}

fn infer_req(model: &str, tenant: &str, body: &str) -> Vec<u8> {
    req(
        "POST",
        &format!("/v1/models/{model}/infer"),
        &[("X-Tenant", tenant)],
        body.as_bytes(),
    )
}

/// One parsed server response.
#[derive(Debug, Clone, PartialEq)]
struct Resp {
    status: u16,
    headers: Vec<(String, String)>,
    body: Vec<u8>,
}

impl Resp {
    fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

fn find(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack.windows(needle.len()).position(|w| w == needle)
}

/// Parses a byte stream of back-to-back responses (Content-Length and
/// chunked framing).
fn parse_responses(mut bytes: &[u8]) -> Vec<Resp> {
    let mut out = Vec::new();
    while !bytes.is_empty() {
        let head_end = find(bytes, b"\r\n\r\n").expect("response head terminator");
        let head = std::str::from_utf8(&bytes[..head_end]).expect("ASCII head");
        let mut lines = head.split("\r\n");
        let status_line = lines.next().expect("status line");
        assert!(status_line.starts_with("HTTP/1.1 "), "bad: {status_line}");
        let status: u16 = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .expect("numeric status");
        let headers: Vec<(String, String)> = lines
            .map(|l| {
                let (k, v) = l.split_once(':').expect("header field");
                (k.trim().to_ascii_lowercase(), v.trim().to_string())
            })
            .collect();
        bytes = &bytes[head_end + 4..];
        let chunked = headers
            .iter()
            .any(|(k, v)| k == "transfer-encoding" && v == "chunked");
        let body = if chunked {
            let mut b = Vec::new();
            loop {
                let line_end = find(bytes, b"\r\n").expect("chunk size line");
                let sz = usize::from_str_radix(
                    std::str::from_utf8(&bytes[..line_end]).expect("hex size"),
                    16,
                )
                .expect("hex chunk size");
                bytes = &bytes[line_end + 2..];
                if sz == 0 {
                    break;
                }
                b.extend_from_slice(&bytes[..sz]);
                bytes = &bytes[sz + 2..];
            }
            bytes = &bytes[2..]; // final CRLF after the zero chunk
            b
        } else {
            let len: usize = headers
                .iter()
                .find(|(k, _)| k == "content-length")
                .map(|(_, v)| v.parse().expect("numeric length"))
                .unwrap_or(0);
            let b = bytes[..len].to_vec();
            bytes = &bytes[len..];
            b
        };
        out.push(Resp {
            status,
            headers,
            body,
        });
    }
    out
}

/// Everything one scripted run produced.
struct SimRun {
    snapshot: MetricsSnapshot,
    outputs: Vec<Vec<u8>>,
    dispatches: Vec<u64>,
    wakeups: Vec<u64>,
}

/// Runs a scripted HTTP scenario against `models` (name, table-seed
/// pairs) under `http_cfg`. The script gets the poller and returns the
/// connection tokens whose outputs the caller wants back.
fn run_sim(
    rt: &Runtime,
    http_cfg: HttpConfig,
    models: &[(&str, u64)],
    script: &dyn Fn(&mut SimPoller) -> Vec<Token>,
) -> SimRun {
    let mut registry = ModelRegistry::new();
    for &(name, seed) in models {
        registry
            .register(name, rt.build_replica(seed).unwrap())
            .unwrap();
    }
    let clock = Arc::new(VirtualClock::new());
    let mut poller = SimPoller::new(Arc::clone(&clock));
    let metrics = Arc::new(Metrics::new(rt.config().policy.max_batch));
    let conns = script(&mut poller);
    let mut executor = SimExecutor::new(
        Arc::clone(&clock),
        poller.handle(),
        Arc::clone(&metrics),
        rt.config().num_shards,
    );
    let clock_dyn: Arc<dyn Clock> = Arc::clone(&clock) as Arc<dyn Clock>;
    let mut server =
        HttpServerLoop::new(rt, http_cfg, registry, clock_dyn, Arc::clone(&metrics)).unwrap();
    server.run(&mut poller, &mut executor).unwrap();
    SimRun {
        dispatches: server.shards().dispatch_counts().to_vec(),
        wakeups: server.shards().wakeup_counts().to_vec(),
        snapshot: metrics.snapshot_with_reactor(poller.stats().snapshot()),
        outputs: conns.iter().map(|&c| poller.output_of(c)).collect(),
    }
}

#[test]
fn conformance_corpus_scripted_statuses() {
    let rt = runtime(64, f64::INFINITY);
    let w = rt.replica().workload();
    let oracle = rt.build_replica(101).unwrap();
    let good = csv(&indices_for(w, 0));

    let run = run_sim(
        &rt,
        HttpConfig::default(),
        &[("m-a", 101)],
        &|poller: &mut SimPoller| {
            // Connection A: a pipelined keep-alive conversation that
            // survives a semantic 400 (bad infer body is not a framing
            // error) and keeps answering in order.
            let a = poller.connect_at(0.0);
            poller.send_at(0.001, a, req("GET", "/healthz", &[], b""));
            poller.send_at(0.002, a, infer_req("m-a", "t0", &good));
            poller.send_at(0.003, a, req("GET", "/metrics", &[], b""));
            poller.send_at(0.004, a, req("GET", "/nope", &[], b""));
            poller.send_at(0.005, a, req("DELETE", "/healthz", &[], b""));
            poller.send_at(0.006, a, infer_req("ghost", "t0", &good));
            poller.send_at(0.007, a, infer_req("m-a", "t0", "not,numbers"));
            poller.send_at(0.008, a, req("GET", "/healthz", &[], b""));
            poller.close_at(2.0, a);

            // Connection B: malformed request line → exactly one 400 and a
            // close — the trailing garbage must not produce a kill-loop of
            // further error responses.
            let b = poller.connect_at(0.0);
            poller.send_at(
                0.001,
                b,
                b"GARBAGE\r\n\r\nmore garbage that must stay unanswered\r\n\r\n".to_vec(),
            );
            poller.close_at(2.0, b);

            // Connection C: oversized declared body → 413.
            let c = poller.connect_at(0.0);
            poller.send_at(
                0.001,
                c,
                b"POST /v1/models/m-a/infer HTTP/1.1\r\nContent-Length: 300000\r\n\r\n".to_vec(),
            );
            poller.close_at(2.0, c);

            // Connection D: header flood → 431.
            let d = poller.connect_at(0.0);
            let mut flood = b"GET /healthz HTTP/1.1\r\n".to_vec();
            flood.extend_from_slice(format!("X-Pad: {}\r\n", "x".repeat(9000)).as_bytes());
            flood.extend_from_slice(b"\r\n");
            poller.send_at(0.001, d, flood);
            poller.close_at(2.0, d);

            // Connection E: unsupported version → 505.
            let e = poller.connect_at(0.0);
            poller.send_at(0.001, e, b"GET /healthz HTTP/2.0\r\n\r\n".to_vec());
            poller.close_at(2.0, e);

            // Connection F: request body with Transfer-Encoding → 501.
            let f = poller.connect_at(0.0);
            poller.send_at(
                0.001,
                f,
                b"POST /v1/models/m-a/infer HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
                    .to_vec(),
            );
            poller.close_at(2.0, f);

            vec![a, b, c, d, e, f]
        },
    );

    // Connection A: eight in-order responses.
    let a = parse_responses(&run.outputs[0]);
    let statuses: Vec<u16> = a.iter().map(|r| r.status).collect();
    assert_eq!(statuses, [200, 200, 200, 404, 405, 404, 400, 200]);
    assert_eq!(a[0].body, b"ok\n");
    let (correct, bits) = pimdl::serve::http::parse_infer_result(&a[1].body).unwrap();
    assert!(correct, "PIM result must match the host oracle");
    assert_eq!(
        bits,
        oracle.checksum_of(&indices_for(w, 0)).unwrap().to_bits(),
        "served checksum must come from the registered model's table"
    );
    // The /metrics response is chunked Prometheus text: parse and assert.
    assert_eq!(a[2].header("transfer-encoding"), Some("chunked"));
    let prom = std::str::from_utf8(&a[2].body).unwrap();
    let mut samples = 0;
    for line in prom.lines() {
        if line.starts_with("# HELP ") || line.starts_with("# TYPE ") {
            continue;
        }
        assert!(!line.starts_with('#'), "bad comment line: {line}");
        let (name, value) = line.split_once(' ').expect("sample line");
        assert!(
            name.starts_with("pimdl_")
                && name.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'_'),
            "bad metric name: {name}"
        );
        let v: f64 = value.parse().expect("numeric sample");
        assert!(v.is_finite());
        samples += 1;
    }
    assert!(samples >= 20, "full metric family expected, got {samples}");
    assert!(prom.contains("pimdl_requests_submitted_total 1\n"));
    assert!(prom.contains("pimdl_reactor_polls_total "));
    assert!(prom.contains("pimdl_reactor_accepts_total 6\n"));

    // Connection B: exactly one 400, marked close, nothing else — no
    // error-response kill-loop on the trailing garbage.
    let b = parse_responses(&run.outputs[1]);
    assert_eq!(b.len(), 1, "one response for a poisoned stream: {b:?}");
    assert_eq!(b[0].status, 400);
    assert_eq!(b[0].header("connection"), Some("close"));
    assert_eq!(
        find(&run.outputs[1], b"HTTP/1.1"),
        Some(0),
        "only one response on the wire"
    );
    assert_eq!(find(&run.outputs[1][1..], b"HTTP/1.1"), None);

    for (idx, want) in [(2usize, 413u16), (3, 431), (4, 505), (5, 501)] {
        let r = parse_responses(&run.outputs[idx]);
        assert_eq!(r.len(), 1, "conn {idx}: {r:?}");
        assert_eq!(r[0].status, want, "conn {idx}");
        assert_eq!(r[0].header("connection"), Some("close"), "conn {idx}");
    }

    // Ledger: exactly one well-formed infer entered (the bad-body and
    // unknown-model ones never reached admission).
    assert_eq!(run.snapshot.submitted, 1);
    assert_eq!(run.snapshot.completed, 1);
    assert_eq!(run.snapshot.rejected, 0);
    assert_eq!(run.snapshot.shard_wakeups, run.snapshot.batches);
    assert_eq!(run.snapshot.reactor.accepts, 6);
}

#[test]
fn pipelined_infers_answer_in_order_across_models() {
    let rt = runtime(64, f64::INFINITY);
    let w = rt.replica().workload();
    let models: &[(&str, u64)] = &[("m-a", 101), ("m-b", 202)];
    let oracles = [
        rt.build_replica(101).unwrap(),
        rt.build_replica(202).unwrap(),
    ];
    const N: usize = 12;

    let run = run_sim(&rt, HttpConfig::default(), models, &|poller| {
        let a = poller.connect_at(0.0);
        // One write carrying N pipelined infers alternating between the
        // two registered models.
        let mut bytes = Vec::new();
        for k in 0..N {
            let model = models[k % 2].0;
            bytes.extend_from_slice(&infer_req(model, "t0", &csv(&indices_for(w, k))));
        }
        poller.send_at(0.001, a, bytes);
        poller.close_at(2.0, a);
        vec![a]
    });

    let responses = parse_responses(&run.outputs[0]);
    assert_eq!(responses.len(), N, "every pipelined request answered");
    for (k, r) in responses.iter().enumerate() {
        assert_eq!(r.status, 200, "request {k}");
        let (correct, bits) = pimdl::serve::http::parse_infer_result(&r.body).unwrap();
        assert!(correct, "request {k}");
        let want = oracles[k % 2]
            .checksum_of(&indices_for(w, k))
            .unwrap()
            .to_bits();
        assert_eq!(bits, want, "request {k}: in-order response for its model");
    }
    assert_eq!(run.snapshot.submitted, N as u64);
    assert_eq!(run.snapshot.completed, N as u64);
    // Batches are model-uniform, so the 12 alternating requests cannot
    // ride in fewer than 2 model-pure batches.
    assert!(run.snapshot.batches >= 2);
    assert_eq!(run.snapshot.shard_wakeups, run.snapshot.batches);
    assert_eq!(run.dispatches, run.wakeups);
}

#[test]
fn quota_exceeded_tenant_gets_429_while_others_complete() {
    let rt = runtime(64, f64::INFINITY);
    let w = rt.replica().workload();
    let http_cfg = HttpConfig {
        tenants: vec![
            ("small".to_string(), TenantQuota::new(1, 1).unwrap()),
            ("big".to_string(), TenantQuota::new(1, 16).unwrap()),
        ],
        default_quota: None,
        ..HttpConfig::default()
    };

    let run = run_sim(&rt, http_cfg, &[("m-a", 101)], &|poller| {
        // Tenant "small" (in-flight quota 1) bursts 4 infers; only the
        // first fits, the rest must bounce with 429.
        let s = poller.connect_at(0.0);
        let mut burst = Vec::new();
        for k in 0..4 {
            burst.extend_from_slice(&infer_req("m-a", "small", &csv(&indices_for(w, k))));
        }
        poller.send_at(0.001, s, burst);
        poller.close_at(2.0, s);

        // Tenant "big" (quota 16) sends 4 infers at the same time; all
        // must complete — small's quota trouble is invisible to big.
        let b = poller.connect_at(0.0);
        let mut burst = Vec::new();
        for k in 10..14 {
            burst.extend_from_slice(&infer_req("m-a", "big", &csv(&indices_for(w, k))));
        }
        poller.send_at(0.001, b, burst);
        poller.close_at(2.0, b);

        // An unconfigured tenant with no default quota → 403.
        let u = poller.connect_at(0.0);
        poller.send_at(
            0.001,
            u,
            infer_req("m-a", "nobody", &csv(&indices_for(w, 20))),
        );
        poller.close_at(2.0, u);

        vec![s, b, u]
    });

    let small: Vec<u16> = parse_responses(&run.outputs[0])
        .iter()
        .map(|r| r.status)
        .collect();
    assert_eq!(small, [200, 429, 429, 429], "quota admits exactly one");
    let big: Vec<u16> = parse_responses(&run.outputs[1])
        .iter()
        .map(|r| r.status)
        .collect();
    assert_eq!(big, [200, 200, 200, 200], "big tenant is unaffected");
    let unknown: Vec<u16> = parse_responses(&run.outputs[2])
        .iter()
        .map(|r| r.status)
        .collect();
    assert_eq!(unknown, [403]);

    assert_eq!(run.snapshot.submitted, 9);
    assert_eq!(run.snapshot.completed, 5);
    assert_eq!(run.snapshot.rejected, 4); // three 429s + one 403
    assert_eq!(run.snapshot.deadline_exceeded, 0);
}

/// Overload scenario: two tenants with 3:1 weights flood their own
/// registered models under a tight deadline. Stride scheduling must give
/// the heavy tenant ~3/4 of the completions while the light tenant keeps
/// completing (no starvation).
fn run_weighted_fair() -> (SimRun, usize, usize) {
    let t1 = runtime(64, f64::INFINITY)
        .service_model()
        .batch_service_s(1)
        .unwrap();
    // Deadline ~2 single-request service times: with a standing backlog,
    // a queued job only survives if its tenant's turn comes up quickly, so
    // completions track the stride scheduler's dispatch share rather than
    // the (symmetric) admission-rejection rate.
    let rt = runtime(16, 2.0 * t1);
    let w = rt.replica().workload();
    let http_cfg = HttpConfig {
        tenants: vec![
            ("heavy".to_string(), TenantQuota::new(3, 64).unwrap()),
            ("light".to_string(), TenantQuota::new(1, 64).unwrap()),
        ],
        default_quota: None,
        ..HttpConfig::default()
    };
    const N: usize = 150;

    let run = run_sim(&rt, http_cfg, &[("m-a", 101), ("m-b", 202)], &|poller| {
        // Arrivals 10x faster than service: a standing backlog, so
        // the stride scheduler (not idleness) decides who runs.
        let dt = t1 / 10.0;
        let heavy = poller.connect_at(0.0);
        let light = poller.connect_at(0.0);
        for k in 0..N {
            let t = 0.001 + k as f64 * dt;
            poller.send_at(
                t,
                heavy,
                infer_req("m-a", "heavy", &csv(&indices_for(w, k))),
            );
            poller.send_at(
                t + dt / 3.0,
                light,
                infer_req("m-b", "light", &csv(&indices_for(w, 1000 + k))),
            );
        }
        let t_end = 0.001 + N as f64 * dt + 100.0 * t1;
        poller.close_at(t_end, heavy);
        poller.close_at(t_end, light);
        vec![heavy, light]
    });

    let count_ok = |out: &[u8]| {
        parse_responses(out)
            .iter()
            .filter(|r| r.status == 200)
            .count()
    };
    let heavy_ok = count_ok(&run.outputs[0]);
    let light_ok = count_ok(&run.outputs[1]);
    (run, heavy_ok, light_ok)
}

#[test]
fn weighted_fair_sharing_holds_under_overload() {
    let (run, heavy_ok, light_ok) = run_weighted_fair();

    // Every request terminated exactly one way.
    assert_eq!(run.snapshot.submitted, 300);
    assert_eq!(
        run.snapshot.completed + run.snapshot.rejected + run.snapshot.deadline_exceeded,
        300
    );
    assert_eq!(run.snapshot.completed as usize, heavy_ok + light_ok);
    assert!(
        run.snapshot.rejected + run.snapshot.deadline_exceeded > 0,
        "the scenario must actually overload"
    );

    // The weighted-fair bound: weight-3 tenant gets ~3/4 of completions.
    let share = heavy_ok as f64 / (heavy_ok + light_ok) as f64;
    assert!(
        (0.60..=0.90).contains(&share),
        "heavy share {share:.3} outside the 3:1 weighted-fair bound \
         (heavy {heavy_ok}, light {light_ok})"
    );
    assert!(
        light_ok > 0,
        "the light tenant must keep completing (no starvation)"
    );

    // Reactor invariants carry over to the HTTP front end.
    assert_eq!(run.snapshot.shard_wakeups, run.snapshot.batches);
    assert_eq!(run.dispatches, run.wakeups);
    assert_eq!(run.snapshot.reactor.spurious_wakeups, 0);
}

/// The quiescence contract (shared with `ServerLoop` and the fabric loop,
/// each pinned in its own suite): with no shutdown wake, two pipelined
/// infers — half a batch — from a client that hangs up immediately are
/// still executed when the flush window expires (final drain), the loop
/// exits on quiescence, and accept-error counters recorded on the reactor
/// survive into the final snapshot.
#[test]
fn final_drain_and_accept_errors_reach_the_snapshot() {
    let rt = runtime(64, f64::INFINITY);
    let w = rt.replica().workload();

    let run = run_sim(&rt, HttpConfig::default(), &[("m-a", 101)], &|poller| {
        for _ in 0..2 {
            poller.stats().record_accept_error();
        }
        let a = poller.connect_at(0.0);
        let mut bytes = Vec::new();
        for k in 0..2 {
            bytes.extend_from_slice(&infer_req("m-a", "t0", &csv(&indices_for(w, k))));
        }
        poller.send_at(0.05, a, bytes);
        poller.close_at(0.0501, a);
        vec![a]
    });

    assert_eq!(run.snapshot.submitted, 2);
    assert_eq!(
        run.snapshot.completed, 2,
        "final drain must flush the partial batch"
    );
    assert_eq!(run.snapshot.deadline_exceeded, 0);
    assert_eq!(run.snapshot.batches, 1, "one partial batch of two");
    assert_eq!(run.snapshot.reactor.accept_errors, 2);
}

#[test]
fn weighted_fair_runs_are_bit_identical() {
    let (a, a_heavy, a_light) = run_weighted_fair();
    let (b, b_heavy, b_light) = run_weighted_fair();
    assert_eq!(
        a.snapshot, b.snapshot,
        "metrics snapshots (incl. reactor counters) must be bit-identical"
    );
    assert_eq!(a.outputs, b.outputs, "wire bytes must be identical");
    assert_eq!((a.dispatches, a.wakeups), (b.dispatches, b.wakeups));
    assert_eq!((a_heavy, a_light), (b_heavy, b_light));
}
