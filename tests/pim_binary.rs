//! Cross-validation of the three execution layers of the simulator:
//! the closed-form cost model (`pimdl_sim::cost`), the direct functional
//! executor (`pimdl_sim::exec`), and the compiled PIM binary interpreted
//! per PE (`pimdl_sim::isa` + `pimdl_sim::interp`). All three must agree on
//! results and on access accounting.

use pimdl::sim::exec::{run_lut_kernel, LutKernelData};
use pimdl::sim::interp::{interpret, PeOperands};
use pimdl::sim::isa::compile;
use pimdl::sim::mapping::MicroKernel;
use pimdl::sim::{LoadScheme, LutWorkload, Mapping, PlatformConfig, TraversalOrder};
use pimdl::tensor::rng::DataRng;
use pimdl::tensor::Matrix;

fn setup() -> (PlatformConfig, LutWorkload, Vec<u16>, Vec<i8>) {
    let mut platform = PlatformConfig::upmem();
    platform.num_pes = 8;
    let w = LutWorkload::new(32, 4, 8, 16).unwrap();
    let mut rng = DataRng::new(3);
    let indices: Vec<u16> = (0..w.n * w.cb).map(|_| rng.index(w.ct) as u16).collect();
    let table: Vec<i8> = (0..w.cb * w.ct * w.f)
        .map(|_| (rng.index(255) as i32 - 127) as i8)
        .collect();
    (platform, w, indices, table)
}

fn mapping(scheme: LoadScheme) -> Mapping {
    Mapping {
        n_stile: 8,
        f_stile: 8,
        kernel: MicroKernel {
            n_mtile: 4,
            f_mtile: 4,
            cb_mtile: 2,
            traversal: TraversalOrder::Ncf,
            load_scheme: scheme,
        },
    }
}

/// Extracts PE `(group, member)`'s index tile and LUT tile from the global
/// operands, in the layout the interpreter expects.
fn pe_operands(
    w: &LutWorkload,
    m: &Mapping,
    indices: &[u16],
    table: &[i8],
    group: usize,
    member: usize,
) -> (Vec<u16>, Vec<i8>) {
    let idx_tile: Vec<u16> = (0..m.n_stile)
        .flat_map(|r| {
            let global_r = group * m.n_stile + r;
            (0..w.cb).map(move |c| (global_r, c))
        })
        .map(|(r, c)| indices[r * w.cb + c])
        .collect();
    let col0 = member * m.f_stile;
    let mut lut_tile = Vec::with_capacity(w.cb * w.ct * m.f_stile);
    for cb in 0..w.cb {
        for ct in 0..w.ct {
            let base = (cb * w.ct + ct) * w.f + col0;
            lut_tile.extend_from_slice(&table[base..base + m.f_stile]);
        }
    }
    (idx_tile, lut_tile)
}

#[test]
fn interpreted_pim_binary_matches_functional_executor() {
    let (platform, w, indices, table) = setup();
    for scheme in [
        LoadScheme::Static,
        LoadScheme::CoarseGrain {
            cb_load: 2,
            f_load: 2,
        },
        LoadScheme::FineGrain {
            f_load: 4,
            threads: 8,
        },
    ] {
        let m = mapping(scheme);
        let (full_out, _) = run_lut_kernel(
            &platform,
            &w,
            &m,
            LutKernelData {
                indices: &indices,
                table: &table,
                scale: 0.02,
            },
        )
        .unwrap();

        let program = compile(&w, &m).unwrap();
        let mut assembled = Matrix::zeros(w.n, w.f);
        for group in 0..m.groups(&w) {
            for member in 0..m.pes_per_group(&w) {
                let (idx_tile, lut_tile) = pe_operands(&w, &m, &indices, &table, group, member);
                let (pe_out, stats) = interpret(
                    &program,
                    &platform,
                    PeOperands {
                        indices: &idx_tile,
                        lut: &lut_tile,
                        scale: 0.02,
                    },
                )
                .unwrap();
                assert!(stats.time_s > 0.0);
                assembled
                    .set_submatrix(group * m.n_stile, member * m.f_stile, &pe_out)
                    .unwrap();
            }
        }
        assert!(
            assembled.approx_eq(&full_out, 1e-4),
            "{}: max diff {}",
            scheme.name(),
            assembled.sub(&full_out).unwrap().max_abs()
        );
    }
}

#[test]
fn interpreted_time_is_uniform_across_pes() {
    // Every PE runs the same program over the same-shaped tile, so (with
    // deterministic schemes) execution time is identical — the L3 load
    // balance of the partition, observed at the instruction level.
    let (platform, w, indices, table) = setup();
    let m = mapping(LoadScheme::Static);
    let program = compile(&w, &m).unwrap();
    let mut times = Vec::new();
    for group in 0..m.groups(&w) {
        for member in 0..m.pes_per_group(&w) {
            let (idx_tile, lut_tile) = pe_operands(&w, &m, &indices, &table, group, member);
            let (_, stats) = interpret(
                &program,
                &platform,
                PeOperands {
                    indices: &idx_tile,
                    lut: &lut_tile,
                    scale: 1.0,
                },
            )
            .unwrap();
            times.push(stats.time_s);
        }
    }
    let first = times[0];
    for t in &times {
        assert!((t - first).abs() < 1e-15, "{t} vs {first}");
    }
}
