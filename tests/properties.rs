//! Cross-crate property-based tests (proptest) on the system's core
//! invariants: the LUT path computes exactly the snapped GEMM; simulated
//! execution matches the host reference for every legal partition; the
//! partition is always perfectly load-balanced; the tuner's pick is always
//! legal.

use proptest::prelude::*;

use pimdl::lutnn::lut::LutTable;
use pimdl::lutnn::pq::ProductQuantizer;
use pimdl::sim::cost::{cost_with_repeat, estimate_cost};
use pimdl::sim::exec::{measure_repeat_fraction, run_lut_kernel, LutKernelData};
use pimdl::sim::mapping::MicroKernel;
use pimdl::sim::{LoadScheme, LutWorkload, Mapping, PlatformConfig, TraversalOrder};
use pimdl::tensor::gemm;
use pimdl::tensor::rng::DataRng;
use pimdl::tuner::tune;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// LUT(encode(x)) == decode(encode(x)) · W for arbitrary shapes.
    #[test]
    fn lut_equals_snapped_gemm(
        seed in 0u64..1000,
        cb in 1usize..5,
        v in 1usize..4,
        ct_pow in 1u32..4,
        f in 1usize..12,
        n in 1usize..10,
    ) {
        let ct = 1usize << ct_pow;
        let h = cb * v;
        let mut rng = DataRng::new(seed);
        let calib = rng.normal_matrix((4 * ct).max(8), h, 0.0, 1.0);
        let weight = rng.normal_matrix(h, f, 0.0, 0.5);
        let pq = ProductQuantizer::fit(&calib, v, ct, 8, &mut rng).unwrap();
        let lut = LutTable::build(&pq, &weight).unwrap();
        let x = rng.normal_matrix(n, h, 0.0, 1.0);

        let (snapped, indices) = pq.snap(&x).unwrap();
        let via_lut = lut.lookup(&indices).unwrap();
        let via_gemm = gemm::matmul(&snapped, &weight).unwrap();
        prop_assert!(via_lut.approx_eq(&via_gemm, 1e-3),
            "max diff {}", via_lut.sub(&via_gemm).unwrap().max_abs());
    }

    /// Simulated execution matches a scalar host reference for every legal
    /// random partition, and the attached cost equals the estimator at the
    /// measured repeat fraction.
    #[test]
    fn simulator_matches_reference_for_random_partitions(
        seed in 0u64..1000,
        groups_pow in 0u32..3,
        per_group_pow in 0u32..3,
    ) {
        let w = LutWorkload::new(32, 4, 8, 16).unwrap();
        let groups = 1usize << groups_pow;       // 1, 2, 4
        let per_group = 1usize << per_group_pow; // 1, 2, 4
        let n_s = w.n / groups;
        let f_s = w.f / per_group;
        let mut platform = PlatformConfig::upmem();
        platform.num_pes = groups * per_group;

        let mapping = Mapping {
            n_stile: n_s,
            f_stile: f_s,
            kernel: MicroKernel {
                n_mtile: n_s.min(4),
                f_mtile: f_s.min(4),
                cb_mtile: 2,
                traversal: TraversalOrder::Ncf,
                load_scheme: LoadScheme::FineGrain { f_load: f_s.min(4), threads: 8 },
            },
        };
        let mut rng = DataRng::new(seed);
        let indices: Vec<u16> = (0..w.n * w.cb).map(|_| rng.index(w.ct) as u16).collect();
        let table: Vec<i8> = (0..w.cb * w.ct * w.f)
            .map(|_| (rng.index(255) as i32 - 127) as i8)
            .collect();

        let (out, report) = run_lut_kernel(&platform, &w, &mapping, LutKernelData {
            indices: &indices, table: &table, scale: 0.5,
        }).unwrap();

        // Scalar reference.
        for r in 0..w.n {
            for fcol in 0..w.f {
                let mut acc = 0i32;
                for cb in 0..w.cb {
                    let k = indices[r * w.cb + cb] as usize;
                    acc += table[(cb * w.ct + k) * w.f + fcol] as i32;
                }
                let expected = acc as f32 * 0.5;
                prop_assert!((out.get(r, fcol) - expected).abs() < 1e-5);
            }
        }

        let repeat = measure_repeat_fraction(&indices, w.n, w.cb);
        let est = cost_with_repeat(&platform, &w, &mapping, repeat).unwrap();
        prop_assert_eq!(report, est);
    }

    /// Every legal sub-LUT partition is perfectly load-balanced (L3): each
    /// PE owns exactly N_s × F_s output elements and they tile the output.
    #[test]
    fn partition_is_balanced_and_exact(
        n_pow in 2u32..6,
        f_pow in 2u32..6,
        g_pow in 0u32..3,
        p_pow in 0u32..3,
    ) {
        let n = 1usize << n_pow;
        let f = 1usize << f_pow;
        let groups = 1usize << g_pow.min(n_pow);
        let per_group = 1usize << p_pow.min(f_pow);
        let w = LutWorkload::new(n, 2, 4, f).unwrap();
        let mapping = Mapping {
            n_stile: n / groups,
            f_stile: f / per_group,
            kernel: MicroKernel {
                n_mtile: 1,
                f_mtile: 1,
                cb_mtile: 1,
                traversal: TraversalOrder::Nfc,
                load_scheme: LoadScheme::Static,
            },
        };
        let mut platform = PlatformConfig::upmem();
        platform.num_pes = groups * per_group;
        mapping.validate(&w, &platform).unwrap();

        // Per-PE element counts are identical and sum to the output size.
        let per_pe = mapping.n_stile * mapping.f_stile;
        prop_assert_eq!(per_pe * platform.num_pes, n * f);
        // Coverage: every element belongs to exactly one (group, member).
        prop_assert_eq!(mapping.groups(&w) * mapping.n_stile, n);
        prop_assert_eq!(mapping.pes_per_group(&w) * mapping.f_stile, f);
    }

    /// Whatever workload the tuner accepts, its returned mapping validates
    /// and its prediction never exceeds the simulator's estimate.
    #[test]
    fn tuner_pick_is_legal_and_underestimates(
        n_pow in 3u32..7,
        f_pow in 3u32..7,
        cb in 1usize..9,
        pes_pow in 1u32..5,
    ) {
        let w = LutWorkload::new(1 << n_pow, cb, 16, 1 << f_pow).unwrap();
        let mut platform = PlatformConfig::upmem();
        platform.num_pes = 1 << pes_pow;
        if let Ok(result) = tune(&platform, &w) {
            result.mapping.validate(&w, &platform).unwrap();
            let sim = estimate_cost(&platform, &w, &result.mapping).unwrap();
            prop_assert!(result.predicted_total_s <= sim.time.total_s() + 1e-12);
        }
    }
}
