//! Deterministic end-to-end test of the reactor-driven serving pipeline.
//!
//! Drives the full admit → batch → execute → respond loop through the
//! simulated event source ([`SimPoller`]) on a [`VirtualClock`]: 1000
//! scripted queries arrive over 8 scripted connections at an overloading
//! rate, so all three terminal outcomes occur. No sockets, no threads, no
//! real sleeps — two consecutive runs must be bit-identical, down to the
//! metrics snapshot and the reactor counters.

use std::collections::BTreeMap;
use std::sync::Arc;

use pimdl::engine::shapes::TransformerShape;
use pimdl::serve::codec::{self, ErrorKind, ServerMsg};
use pimdl::serve::reactor::Token;
use pimdl::serve::{
    Clock, EventSource, Metrics, MetricsSnapshot, Runtime, ServeConfig, ServerLoop, SimExecutor,
    SimPoller, VirtualClock,
};
use pimdl::sim::PlatformConfig;
use pimdl::tensor::rng::DataRng;

const NUM_CONNS: usize = 8;
const NUM_QUERIES: usize = 1000;

fn runtime(deadline_s: f64) -> Runtime {
    let mut platform = PlatformConfig::upmem();
    platform.num_pes = 64;
    let mut cfg = ServeConfig::example(); // 2 shards, max_batch 4
    cfg.queue_capacity = 12;
    cfg.deadline_s = deadline_s;
    Runtime::new(platform, TransformerShape::tiny(), cfg).unwrap()
}

/// Final metrics snapshot (with reactor stats), every parsed response
/// keyed by tag, and the per-shard dispatch/wakeup counts.
type PipelineRun = (
    MetricsSnapshot,
    BTreeMap<String, ServerMsg>,
    (Vec<u64>, Vec<u64>),
);

/// One deterministic run.
fn run_pipeline() -> PipelineRun {
    // Overload: arrivals 20x faster than single-request service, deadline
    // 1.5 service times, a 12-deep queue. Early arrivals complete; the
    // backlog then rejects at the queue bound and sheds on deadline.
    let t1 = runtime(f64::INFINITY)
        .service_model()
        .batch_service_s(1)
        .unwrap();
    let rate = 20.0 / t1;
    let rt = runtime(1.5 * t1);
    let w = rt.replica().workload();

    let clock = Arc::new(VirtualClock::new());
    let mut poller = SimPoller::new(Arc::clone(&clock));
    let metrics = Arc::new(Metrics::new(rt.config().policy.max_batch));

    // Script: 8 connections at t=0, then 1000 Poisson-spaced queries
    // round-robined across them. Payload indices and expected checksums
    // come from the same seeded generator, so the oracle is fixed.
    let conns: Vec<Token> = (0..NUM_CONNS).map(|_| poller.connect_at(0.0)).collect();
    let mut rng = DataRng::new(20240207);
    let mut expected: BTreeMap<String, u64> = BTreeMap::new();
    let mut t = 0.0f64;
    for k in 0..NUM_QUERIES {
        let u = f64::from(rng.uniform(1e-7, 1.0));
        t += -u.ln() / rate;
        let indices: Vec<u16> = (0..w.n * w.cb).map(|_| rng.index(w.ct) as u16).collect();
        let tag = format!("q{k}");
        let checksum = rt.replica().checksum_of(&indices).unwrap();
        expected.insert(tag.clone(), checksum.to_bits());
        poller.send_at(t, conns[k % NUM_CONNS], codec::encode_query(&tag, &indices));
    }
    for &c in &conns {
        poller.close_at(t + 1.0, c);
    }

    let mut executor = SimExecutor::new(
        Arc::clone(&clock),
        poller.handle(),
        Arc::clone(&metrics),
        rt.config().num_shards,
    );
    let clock_dyn: Arc<dyn Clock> = Arc::clone(&clock) as Arc<dyn Clock>;
    let mut server = ServerLoop::new(&rt, clock_dyn, Arc::clone(&metrics)).unwrap();
    server.run(&mut poller, &mut executor).unwrap();

    let shards = (
        server.shards().dispatch_counts().to_vec(),
        server.shards().wakeup_counts().to_vec(),
    );
    let snapshot = metrics.snapshot_with_reactor(poller.stats().snapshot());

    let mut responses: BTreeMap<String, ServerMsg> = BTreeMap::new();
    for &c in &conns {
        let out = poller.output_of(c);
        for line in out.split(|&b| b == b'\n').filter(|l| !l.is_empty()) {
            let msg = codec::parse_server_msg(line).expect("server emitted a malformed line");
            let tag = match &msg {
                ServerMsg::Result { tag, .. } | ServerMsg::Error { tag, .. } => tag.clone(),
            };
            let dup = responses.insert(tag.clone(), msg);
            assert!(dup.is_none(), "tag {tag} answered more than once");
        }
    }
    assert_eq!(
        expected.keys().collect::<Vec<_>>(),
        responses.keys().collect::<Vec<_>>(),
        "every scripted query must be answered exactly once"
    );
    for (tag, msg) in &responses {
        match msg {
            ServerMsg::Result {
                correct,
                checksum_bits,
                ..
            } => {
                assert!(*correct, "tag {tag}: PIM result mismatched host oracle");
                assert_eq!(
                    *checksum_bits, expected[tag],
                    "tag {tag}: server checksum differs from client-side oracle"
                );
            }
            ServerMsg::Error { kind, .. } => {
                assert!(
                    matches!(kind, ErrorKind::Rejected | ErrorKind::Deadline),
                    "tag {tag}: unexpected refusal {kind:?}"
                );
            }
        }
    }
    (snapshot, responses, shards)
}

#[test]
fn scripted_1000_requests_conserve_and_verify() {
    let (snap, responses, (dispatches, wakeups)) = run_pipeline();

    let completed = responses
        .values()
        .filter(|m| matches!(m, ServerMsg::Result { .. }))
        .count();
    let rejected = responses
        .values()
        .filter(|m| {
            matches!(
                m,
                ServerMsg::Error {
                    kind: ErrorKind::Rejected,
                    ..
                }
            )
        })
        .count();
    let deadline = responses
        .values()
        .filter(|m| {
            matches!(
                m,
                ServerMsg::Error {
                    kind: ErrorKind::Deadline,
                    ..
                }
            )
        })
        .count();
    assert_eq!(completed + rejected + deadline, NUM_QUERIES);
    assert!(completed > 0, "some requests must be served");
    assert!(rejected > 0, "overload must overflow the 12-deep queue");
    assert!(deadline > 0, "overload must shed on the tight deadline");

    // Ledger <-> metrics consistency, counted from the wire responses.
    assert_eq!(snap.submitted as usize, NUM_QUERIES);
    assert_eq!(snap.completed as usize, completed);
    assert_eq!(snap.rejected as usize, rejected);
    assert_eq!(snap.deadline_exceeded as usize, deadline);

    // The reactor invariant: one shard wakeup per dispatched batch, no
    // spurious wakeups, and both shards participated.
    assert_eq!(snap.shard_wakeups, snap.batches);
    assert_eq!(snap.reactor.spurious_wakeups, 0);
    assert_eq!(dispatches, wakeups);
    assert!(dispatches.iter().all(|&d| d > 0), "both shards took work");
    assert_eq!(dispatches.iter().sum::<u64>(), snap.batches);

    // The simulated transport accounted its I/O.
    assert_eq!(snap.reactor.accepts as usize, NUM_CONNS);
    assert!(snap.reactor.reads >= snap.batches);
    assert!(snap.reactor.writes > 0);
    assert_eq!(snap.reactor.mean_wake_latency_s, 0.0);
}

#[test]
fn two_consecutive_runs_are_bit_identical() {
    let (snap_a, responses_a, shards_a) = run_pipeline();
    let (snap_b, responses_b, shards_b) = run_pipeline();
    assert_eq!(
        snap_a, snap_b,
        "metrics snapshots (incl. reactor counters) must be bit-identical"
    );
    assert_eq!(responses_a, responses_b, "wire responses must be identical");
    assert_eq!(shards_a, shards_b, "per-shard accounting must be identical");
}

/// The quiescence contract (shared with `HttpServerLoop` and the fabric
/// loop, each pinned in its own suite): with no shutdown wake at all, a
/// partial batch whose client already hung up is still flushed when its
/// wait window expires (final drain), the loop then exits on quiescence,
/// and reactor accept-error counters recorded before the run survive into
/// the final snapshot.
#[test]
fn final_drain_and_accept_errors_reach_the_snapshot() {
    let rt = runtime(f64::INFINITY);
    let w = rt.replica().workload();
    let clock = Arc::new(VirtualClock::new());
    let mut poller = SimPoller::new(Arc::clone(&clock));
    let metrics = Arc::new(Metrics::new(rt.config().policy.max_batch));
    for _ in 0..2 {
        poller.stats().record_accept_error();
    }

    // Two queries — half a batch — then an immediate hang-up, long before
    // the 4 ms flush window. No shutdown wake is ever scripted.
    let conn = poller.connect_at(0.0);
    for k in 0..2 {
        let indices: Vec<u16> = (0..w.n * w.cb).map(|i| ((k + i) % w.ct) as u16).collect();
        poller.send_at(0.05, conn, codec::encode_query(&format!("q{k}"), &indices));
    }
    poller.close_at(0.0501, conn);

    let mut executor = SimExecutor::new(
        Arc::clone(&clock),
        poller.handle(),
        Arc::clone(&metrics),
        rt.config().num_shards,
    );
    let clock_dyn: Arc<dyn Clock> = Arc::clone(&clock) as Arc<dyn Clock>;
    let mut server = ServerLoop::new(&rt, clock_dyn, Arc::clone(&metrics)).unwrap();
    server.run(&mut poller, &mut executor).unwrap();

    let snap = metrics.snapshot_with_reactor(poller.stats().snapshot());
    assert_eq!(snap.submitted, 2);
    assert_eq!(
        snap.completed, 2,
        "final drain must flush the partial batch"
    );
    assert_eq!(snap.deadline_exceeded, 0);
    assert_eq!(snap.batches, 1, "one partial batch of two");
    assert_eq!(snap.reactor.accept_errors, 2);
}
