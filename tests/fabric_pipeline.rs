//! Deterministic fault-injection tests of the distributed shard fabric,
//! driven entirely through the simulated event source ([`SimPoller`]) on
//! a [`VirtualClock`]: scripted shard connections speak the binary frame
//! protocol ([`SimShardEngine`] stands in for the worker processes),
//! scripted clients speak the line protocol, and shard death is injected
//! as a scripted EOF at a chosen virtual instant — including mid-batch.
//! The contracts under test: zero lost requests across a shard death,
//! re-replication to the consistent-hash successor, error-draining (never
//! silent dropping) of terminally lost tables, hello-timeout eviction of
//! silent shards, the quiescence/final-drain exit shared with the other
//! server loops, and bit-identical reruns.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use pimdl::engine::fabric::FabricConfig;
use pimdl::engine::shapes::TransformerShape;
use pimdl::serve::codec::{self, ErrorKind, ServerMsg};
use pimdl::serve::reactor::Token;
use pimdl::serve::{
    Clock, EventSource, FabricServerLoop, Frame, HashRing, Metrics, MetricsSnapshot, Runtime,
    ServeConfig, ShardState, SimPoller, SimShardEngine, TableState, VirtualClock,
};
use pimdl::sim::{LutWorkload, PlatformConfig};

fn runtime(queue_capacity: usize) -> Runtime {
    let mut platform = PlatformConfig::upmem();
    platform.num_pes = 64;
    let mut cfg = ServeConfig::example(); // max_batch 4, max_wait 4ms
    cfg.queue_capacity = queue_capacity;
    cfg.deadline_s = f64::INFINITY;
    Runtime::new(platform, TransformerShape::tiny(), cfg).unwrap()
}

fn fabric_cfg(num_shards: usize, hello_timeout_s: f64) -> FabricConfig {
    let mut f = FabricConfig::example();
    f.num_shards = num_shards;
    f.hello_timeout_s = hello_timeout_s;
    f
}

/// Deterministic index payload `k` for workload `w`.
fn indices_for(w: LutWorkload, k: usize) -> Vec<u16> {
    (0..w.n * w.cb)
        .map(|i| ((k * 7 + i * 3) % w.ct) as u16)
        .collect()
}

fn hello(shard_id: u32) -> Vec<u8> {
    Frame::Hello { shard_id }.encode().unwrap()
}

/// Everything one scripted fabric run produced.
struct FabricRun {
    snapshot: MetricsSnapshot,
    outputs: Vec<Vec<u8>>,
    shard_states: Vec<Option<ShardState>>,
    table_states: Vec<(String, Option<TableState>)>,
    all_ready: bool,
    any_lost: bool,
}

/// Runs a scripted fabric scenario over `num_shards` simulated shards and
/// `tables`, with `accept_errors` synthetic accept failures recorded on
/// the reactor before the run (the counter must survive into the final
/// snapshot). The script returns the client tokens whose outputs the
/// caller wants back.
fn run_fabric(
    rt: &Runtime,
    num_shards: usize,
    hello_timeout_s: f64,
    tables: &[(String, u64)],
    accept_errors: u64,
    script: &dyn Fn(&mut SimPoller) -> Vec<Token>,
) -> FabricRun {
    let clock = Arc::new(VirtualClock::new());
    let mut poller = SimPoller::new(Arc::clone(&clock));
    let metrics = Arc::new(Metrics::new(rt.config().policy.max_batch));
    for _ in 0..accept_errors {
        poller.stats().record_accept_error();
    }
    let conns = script(&mut poller);
    let mut engine = SimShardEngine::new(rt, poller.handle(), 0.01);
    let clock_dyn: Arc<dyn Clock> = Arc::clone(&clock) as Arc<dyn Clock>;
    let ready_latch = Arc::new(AtomicBool::new(false));
    let mut server = FabricServerLoop::new(
        rt,
        fabric_cfg(num_shards, hello_timeout_s),
        tables,
        clock_dyn,
        Arc::clone(&metrics),
    )
    .unwrap()
    .with_ready_flag(Arc::clone(&ready_latch));
    server.run(&mut poller, &mut engine).unwrap();
    assert_eq!(server.queued(), 0, "quiescent exit with queued work");
    let sup = server.supervisor();
    // The latch FabricHandle::wait_all_ready observes: it must be set
    // whenever every table ended the run routable (it latches the *first*
    // moment of full readiness, so death scenarios that recover re-assert
    // it and scenarios that never reached readiness leave it false).
    assert!(
        !sup.all_tables_ready() || ready_latch.load(Ordering::Relaxed),
        "all tables routable but the ready latch was never set"
    );
    FabricRun {
        shard_states: (0..num_shards as u32).map(|s| sup.shard_state(s)).collect(),
        table_states: tables
            .iter()
            .map(|(n, _)| (n.clone(), sup.table_state(n)))
            .collect(),
        all_ready: sup.all_tables_ready(),
        any_lost: sup.any_table_lost(),
        snapshot: metrics.snapshot_with_reactor(poller.stats().snapshot()),
        outputs: conns.iter().map(|&c| poller.output_of(c)).collect(),
    }
}

/// Parses a client connection's line-protocol output into tag → message,
/// asserting no tag is answered twice.
fn parse_lines(out: &[u8]) -> BTreeMap<String, ServerMsg> {
    let mut msgs = BTreeMap::new();
    for line in out.split(|&b| b == b'\n').filter(|l| !l.is_empty()) {
        let msg = codec::parse_server_msg(line).expect("server emitted a malformed line");
        let tag = match &msg {
            ServerMsg::Result { tag, .. } | ServerMsg::Error { tag, .. } => tag.clone(),
        };
        let dup = msgs.insert(tag.clone(), msg);
        assert!(dup.is_none(), "tag {tag} answered more than once");
    }
    msgs
}

/// The ring placement the loop will compute, so scripts can pick their
/// victim shard deterministically (the shard owning `tables[0]`).
fn owner_of_first(num_shards: u32, tables: &[(String, u64)]) -> u32 {
    let mut ring = HashRing::new(FabricConfig::example().vnodes);
    for s in 0..num_shards {
        ring.add_shard(s);
    }
    ring.owner_of(&tables[0].0).expect("non-empty ring")
}

/// The central fault-injection scenario: 3 shards, 3 tables, 8 queries
/// per table; the shard owning `t-0` is EOF-killed while its first batch
/// is in flight. Every request must still be answered correctly — the
/// in-flight batch re-queues and re-dispatches to the consistent-hash
/// successor once it has re-replicated the lost tables.
fn run_shard_death_mid_batch() -> (FabricRun, BTreeMap<String, u64>) {
    let rt = runtime(64);
    let w = rt.replica().workload();
    let t4 = rt.service_model().batch_service_s(4).unwrap();
    let tables: Vec<(String, u64)> = (0..3).map(|i| (format!("t-{i}"), 100 + i as u64)).collect();
    let victim = owner_of_first(3, &tables);
    let oracles: BTreeMap<&str, _> = tables
        .iter()
        .map(|(n, seed)| (n.as_str(), rt.build_replica(*seed).unwrap()))
        .collect();

    let mut expected: BTreeMap<String, u64> = BTreeMap::new();
    let mut queries: Vec<(String, String, Vec<u16>)> = Vec::new();
    for (ti, (table, _)) in tables.iter().enumerate() {
        for k in 0..8 {
            let indices = indices_for(w, ti * 31 + k);
            let tag = format!("{table}-q{k}");
            let sum = oracles[table.as_str()].checksum_of(&indices).unwrap();
            expected.insert(tag.clone(), sum.to_bits());
            queries.push((tag, table.clone(), indices));
        }
    }

    let run = run_fabric(&rt, 3, 10.0, &tables, 0, &|poller| {
        let mut shard_conns = Vec::new();
        for s in 0..3u32 {
            let conn = poller.connect_at(0.0);
            poller.send_at(0.0, conn, hello(s));
            shard_conns.push(conn);
        }
        let client = poller.connect_at(0.0);
        for (tag, table, indices) in &queries {
            poller.send_at(
                0.1,
                client,
                codec::encode_query_for(tag, indices, Some(table)),
            );
        }
        // The first batches dispatch at t=0.1 (queues are full); their
        // ExecDone lands at 0.1 + service(4). Killing the victim halfway
        // through guarantees a batch is in flight when the EOF arrives.
        poller.close_at(0.1 + 0.5 * t4, shard_conns[victim as usize]);
        poller.close_at(5.0, client);
        vec![client]
    });
    (run, expected)
}

#[test]
fn shard_death_mid_batch_loses_nothing_and_rereplicates() {
    let (run, expected) = run_shard_death_mid_batch();
    let victim = {
        let tables: Vec<(String, u64)> =
            (0..3).map(|i| (format!("t-{i}"), 100 + i as u64)).collect();
        owner_of_first(3, &tables)
    };

    // Zero lost requests: all 24 answered, all correct, all matching the
    // host oracle — including the batch the dead shard never finished.
    let msgs = parse_lines(&run.outputs[0]);
    assert_eq!(
        msgs.keys().collect::<Vec<_>>(),
        expected.keys().collect::<Vec<_>>(),
        "every query answered exactly once"
    );
    for (tag, msg) in &msgs {
        match msg {
            ServerMsg::Result {
                correct,
                checksum_bits,
                ..
            } => {
                assert!(*correct, "{tag}: PIM result mismatched the host");
                assert_eq!(*checksum_bits, expected[tag], "{tag}: wrong checksum");
            }
            ServerMsg::Error { kind, .. } => {
                panic!("{tag}: refused with {kind:?} — a shard death must not shed requests")
            }
        }
    }
    assert_eq!(run.snapshot.submitted, 24);
    assert_eq!(run.snapshot.completed, 24);
    assert_eq!(run.snapshot.rejected, 0);
    assert_eq!(run.snapshot.deadline_exceeded, 0);

    // The victim is dead; the survivors are ready; every table (the dead
    // shard's included) ended Ready on a live shard — re-replication, not
    // loss.
    for (s, state) in run.shard_states.iter().enumerate() {
        let want = if s as u32 == victim {
            ShardState::Dead
        } else {
            ShardState::Ready
        };
        assert_eq!(*state, Some(want), "shard {s}");
    }
    assert!(
        run.all_ready,
        "tables must re-replicate: {:?}",
        run.table_states
    );
    assert!(!run.any_lost);
}

#[test]
fn fault_injection_runs_are_bit_identical() {
    let (a, _) = run_shard_death_mid_batch();
    let (b, _) = run_shard_death_mid_batch();
    assert_eq!(
        a.snapshot, b.snapshot,
        "metrics snapshots (incl. reactor counters) must be bit-identical"
    );
    assert_eq!(a.outputs, b.outputs, "wire bytes must be identical");
    assert_eq!(a.shard_states, b.shard_states);
    assert_eq!(a.table_states, b.table_states);
}

/// With a single shard there is no successor: its death makes every table
/// terminally `Lost`, and queued queries must be error-drained with an
/// explicit refusal — never silently dropped, never stranding the loop.
#[test]
fn lone_shard_death_error_drains_lost_tables() {
    let rt = runtime(64);
    let w = rt.replica().workload();
    let t4 = rt.service_model().batch_service_s(4).unwrap();
    let tables = vec![("solo".to_string(), 7u64)];

    let run = run_fabric(&rt, 1, 10.0, &tables, 0, &|poller| {
        let shard = poller.connect_at(0.0);
        poller.send_at(0.0, shard, hello(0));
        let client = poller.connect_at(0.0);
        for k in 0..8 {
            let tag = format!("q{k}");
            poller.send_at(
                0.1,
                client,
                codec::encode_query_for(&tag, &indices_for(w, k), Some("solo")),
            );
        }
        // One batch in flight, four more queued — then the only shard dies.
        poller.close_at(0.1 + 0.5 * t4, shard);
        poller.close_at(5.0, client);
        vec![client]
    });

    let msgs = parse_lines(&run.outputs[0]);
    assert_eq!(msgs.len(), 8, "every query answered exactly once: {msgs:?}");
    for (tag, msg) in &msgs {
        match msg {
            ServerMsg::Error { kind, .. } => {
                assert_eq!(*kind, ErrorKind::Shutdown, "{tag}: lost-table refusal kind")
            }
            ServerMsg::Result { .. } => {
                panic!("{tag}: a table with no live replica cannot produce results")
            }
        }
    }
    assert_eq!(run.shard_states, vec![Some(ShardState::Dead)]);
    assert_eq!(
        run.table_states,
        vec![("solo".to_string(), Some(TableState::Lost))]
    );
    assert!(run.any_lost);
    assert_eq!(run.snapshot.submitted, 8);
    assert_eq!(run.snapshot.completed, 0);
}

/// A worker that connects but never says `Hello` (or never connects at
/// all) is evicted at the hello timeout and its tables re-place to the
/// surviving shard — queries sent after the eviction still complete.
#[test]
fn silent_shard_is_timed_out_and_replaced() {
    let rt = runtime(64);
    let w = rt.replica().workload();
    let tables: Vec<(String, u64)> = (0..4).map(|i| (format!("t-{i}"), 50 + i as u64)).collect();
    let oracles: BTreeMap<&str, _> = tables
        .iter()
        .map(|(n, seed)| (n.as_str(), rt.build_replica(*seed).unwrap()))
        .collect();

    let run = run_fabric(&rt, 2, 0.5, &tables, 0, &|poller| {
        let s0 = poller.connect_at(0.0);
        poller.send_at(0.0, s0, hello(0));
        // Shard 1 connects but stays silent: no Hello ever arrives, so the
        // supervisor must declare it dead at t=0.5 and re-place its tables.
        let s1 = poller.connect_at(0.0);
        poller.close_at(4.0, s1);
        let client = poller.connect_at(0.0);
        for (ti, (table, _)) in tables.iter().enumerate() {
            let tag = format!("{table}-q");
            poller.send_at(
                1.0,
                client,
                codec::encode_query_for(&tag, &indices_for(w, ti), Some(table)),
            );
        }
        poller.close_at(4.0, client);
        vec![client]
    });

    let msgs = parse_lines(&run.outputs[0]);
    assert_eq!(msgs.len(), 4);
    for (ti, (table, _)) in tables.iter().enumerate() {
        let tag = format!("{table}-q");
        match &msgs[&tag] {
            ServerMsg::Result {
                correct,
                checksum_bits,
                ..
            } => {
                let want = oracles[table.as_str()]
                    .checksum_of(&indices_for(w, ti))
                    .unwrap()
                    .to_bits();
                assert!(*correct, "{tag}");
                assert_eq!(*checksum_bits, want, "{tag}");
            }
            ServerMsg::Error { kind, .. } => panic!("{tag}: refused with {kind:?}"),
        }
    }
    assert_eq!(run.shard_states[0], Some(ShardState::Ready));
    assert_eq!(run.shard_states[1], Some(ShardState::Dead));
    assert!(
        run.all_ready,
        "all tables on shard 0: {:?}",
        run.table_states
    );
    assert_eq!(run.snapshot.completed, 4);
}

/// The quiescence contract the fabric loop shares with `ServerLoop` and
/// `HttpServerLoop`: with no shutdown wake at all, a partial batch whose
/// clients have already hung up is still flushed when its wait window
/// expires (final drain), the loop then exits on quiescence, and reactor
/// accept-error counters taken before/during the run survive into the
/// final snapshot.
#[test]
fn fabric_final_drain_and_accept_errors_reach_the_snapshot() {
    let rt = runtime(64);
    let w = rt.replica().workload();
    let tables = vec![("only".to_string(), 9u64)];

    let run = run_fabric(&rt, 1, 10.0, &tables, 3, &|poller| {
        let shard = poller.connect_at(0.0);
        poller.send_at(0.0, shard, hello(0));
        let client = poller.connect_at(0.0);
        // Two queries — half a batch — and an immediate client hang-up,
        // long before the 4 ms flush window.
        for k in 0..2 {
            let tag = format!("q{k}");
            poller.send_at(
                0.05,
                client,
                codec::encode_query_for(&tag, &indices_for(w, k), None),
            );
        }
        poller.close_at(0.0501, client);
        vec![client]
    });

    // Final drain: both requests executed (the loop advanced the virtual
    // clock to the flush window on its own) even though nobody is left to
    // read the responses, and the run exited without any shutdown signal.
    assert_eq!(run.snapshot.submitted, 2);
    assert_eq!(run.snapshot.completed, 2);
    assert_eq!(run.snapshot.deadline_exceeded, 0);
    assert_eq!(run.snapshot.batches, 1, "one partial batch of two");
    // The synthetic accept failures recorded on the reactor reached the
    // run's final snapshot through `snapshot_with_reactor`.
    assert_eq!(run.snapshot.reactor.accept_errors, 3);
    assert!(run.all_ready);
}
