//! Deployment artifact tests: a converted LUT-NN model (codebooks + INT8
//! LUTs + norms + head) round-trips through serde and keeps producing
//! identical predictions — the artifact the converter ships to a PIM
//! serving host.

use pimdl::lutnn::calibrate::convert_kmeans_only;
use pimdl::lutnn::convert::LutClassifier;
use pimdl::nn::data::{nlp_dataset, NlpTask};
use pimdl::nn::embedding::SequenceInput;
use pimdl::nn::train::{train, TrainConfig};
use pimdl::nn::transformer::{InputKind, ModelConfig, TransformerClassifier};
use pimdl::tensor::rng::DataRng;

fn converted_model() -> (LutClassifier, Vec<SequenceInput>) {
    let mut rng = DataRng::new(77);
    let ds = nlp_dataset(NlpTask::Majority, 120, 12, 6, &mut rng);
    let cfg = ModelConfig {
        input: InputKind::Tokens { vocab: 12 },
        hidden: 16,
        heads: 2,
        layers: 2,
        ffn_dim: 32,
        max_seq: 6,
        classes: 3,
    };
    let mut model = TransformerClassifier::new(&cfg, &mut rng);
    train(
        &mut model,
        &ds,
        &TrainConfig {
            epochs: 3,
            batch_size: 8,
            lr: 3e-3,
            schedule: Default::default(),
            seed: 1,
        },
    )
    .unwrap();
    let lut_model = convert_kmeans_only(&model, &ds, 4, 8, 10, 2048, &mut rng).unwrap();
    (lut_model, ds.inputs[..10].to_vec())
}

#[test]
fn lut_model_roundtrips_through_json() {
    let (model, inputs) = converted_model();
    let json = serde_json::to_string(&model).expect("serialize");
    let restored: LutClassifier = serde_json::from_str(&json).expect("deserialize");

    assert_eq!(restored.hidden(), model.hidden());
    assert_eq!(restored.total_lut_bytes(), model.total_lut_bytes());
    for input in &inputs {
        for int8 in [false, true] {
            let a = model.predict(input, int8).unwrap();
            let b = restored.predict(input, int8).unwrap();
            assert_eq!(a, b, "prediction drift after round-trip (int8={int8})");
        }
    }
}

#[test]
fn artifact_is_compact() {
    // The INT8 LUTs dominate the artifact; its JSON should be within a
    // small factor of the raw LUT bytes (sanity check that we do not ship
    // caches or gradients... gradients DO ship with Param today for the
    // norms/head — they are zero vectors; verify they do not explode size).
    let (model, _) = converted_model();
    let json = serde_json::to_string(&model).expect("serialize");
    let lut_bytes = model.total_lut_bytes();
    assert!(lut_bytes > 0);
    // JSON of i8 arrays costs ~4 bytes per entry plus structure; allow 64x.
    assert!(
        json.len() < lut_bytes * 64,
        "artifact {} bytes for {} LUT bytes",
        json.len(),
        lut_bytes
    );
}

#[test]
fn tampered_artifact_fails_closed() {
    let (model, inputs) = converted_model();
    let mut json = serde_json::to_string(&model).expect("serialize");
    // Corrupt the structure (truncate) — must error, not mis-deserialize.
    json.truncate(json.len() / 2);
    let result: Result<LutClassifier, _> = serde_json::from_str(&json);
    assert!(result.is_err());
    let _ = inputs;
}
