//! Cross-crate integration tests: the full PIM-DL pipeline from a trained
//! model through conversion, auto-tuning, and simulated execution.

use pimdl::engine::baseline::{host_inference, pim_gemm_inference, HostModel};
use pimdl::engine::pipeline::{PimDlEngine, ServingConfig};
use pimdl::engine::shapes::TransformerShape;
use pimdl::lutnn::calibrate::{convert_elutnn, CalibrationConfig, CentroidInit};
use pimdl::lutnn::convert::lut_accuracy;
use pimdl::lutnn::lut::LutTable;
use pimdl::lutnn::pq::ProductQuantizer;
use pimdl::nn::data::{nlp_dataset, NlpTask};
use pimdl::nn::train::{evaluate, train, TrainConfig};
use pimdl::nn::transformer::{InputKind, ModelConfig, TransformerClassifier};
use pimdl::sim::cost::estimate_cost;
use pimdl::sim::exec::{run_lut_kernel, LutKernelData};
use pimdl::sim::{LutWorkload, PlatformConfig};
use pimdl::tensor::rng::DataRng;
use pimdl::tuner::tune;

/// Train → eLUT-NN convert → INT8 LUT inference: the full algorithmic
/// pipeline holds accuracy.
#[test]
fn train_convert_infer_pipeline() {
    let mut rng = DataRng::new(100);
    let mut ds = nlp_dataset(NlpTask::Majority, 200, 12, 6, &mut rng);
    let test = ds.split_off(50);
    let cfg = ModelConfig {
        input: InputKind::Tokens { vocab: 12 },
        hidden: 16,
        heads: 2,
        layers: 2,
        ffn_dim: 32,
        max_seq: 6,
        classes: 3,
    };
    let mut model = TransformerClassifier::new(&cfg, &mut rng);
    train(
        &mut model,
        &ds,
        &TrainConfig {
            epochs: 10,
            batch_size: 8,
            lr: 3e-3,
            schedule: Default::default(),
            seed: 1,
        },
    )
    .unwrap();
    let original = evaluate(&model, &test).unwrap();
    assert!(original > 0.6, "dense model failed to learn: {original}");

    let ccfg = CalibrationConfig {
        v: 4,
        ct: 8,
        init: CentroidInit::Random,
        kmeans_iters: 0,
        beta: 1e-3,
        lr: 3e-3,
        epochs: 6,
        batch_size: 8,
        seed: 2,
        max_activation_rows: 2048,
    };
    let (lut_model, _) = convert_elutnn(&model, &ds.take(50), &ccfg).unwrap();
    let int8_acc = lut_accuracy(&lut_model, &test, true).unwrap();
    assert!(
        int8_acc >= original - 0.3,
        "converted accuracy {int8_acc} too far below {original}"
    );
}

/// The LUT workload of a converted layer runs identically on the host and
/// on the simulated PIM under a tuned mapping.
#[test]
fn converted_layer_runs_on_simulator() {
    let mut rng = DataRng::new(200);
    let calib = rng.normal_matrix(512, 32, 0.0, 1.0);
    let weight = rng.normal_matrix(32, 64, 0.0, 0.5);
    let pq = ProductQuantizer::fit(&calib, 4, 16, 10, &mut rng).unwrap();
    let lut = LutTable::build(&pq, &weight).unwrap();
    let qlut = lut.quantize();

    let x = rng.normal_matrix(128, 32, 0.0, 1.0);
    let indices = pq.encode(&x).unwrap();
    let host_out = qlut.lookup(&indices).unwrap();

    let mut platform = PlatformConfig::upmem();
    platform.num_pes = 32;
    let workload = LutWorkload::new(128, pq.cb(), pq.ct(), 64).unwrap();
    let tuned = tune(&platform, &workload).unwrap();
    let (sim_out, report) = run_lut_kernel(
        &platform,
        &workload,
        &tuned.mapping,
        LutKernelData {
            indices: indices.as_slice(),
            table: qlut.table().codes(),
            scale: qlut.table().scale(),
        },
    )
    .unwrap();
    assert!(sim_out.approx_eq(&host_out, 1e-5));
    assert!(report.time.total_s() > 0.0);

    // The tuner-cached estimate for the same mapping matches the executed
    // cost structure.
    let est = estimate_cost(&platform, &workload, &tuned.mapping).unwrap();
    assert_eq!(est.wram_bytes, report.wram_bytes);
    assert_eq!(est.host_pim_bytes, report.host_pim_bytes);
}

/// The engine-level headline ordering holds end to end on all platforms:
/// PIM-DL beats GEMM-on-PIM everywhere.
#[test]
fn engine_headline_ordering_all_platforms() {
    let shape = TransformerShape::with_hidden(512, 4);
    let cfg = ServingConfig {
        batch: 8,
        seq_len: 64,
        v: 4,
        ct: 16,
    };
    for platform in PlatformConfig::all() {
        let engine = PimDlEngine::new(platform.clone());
        let pimdl = engine.serve(&shape, &cfg).unwrap().total_s;
        let gemm = pim_gemm_inference(&platform, &shape, cfg.batch, cfg.seq_len).total_s();
        assert!(
            gemm > pimdl,
            "{}: GEMM-on-PIM {gemm} should exceed PIM-DL {pimdl}",
            platform.kind.name()
        );
    }
}

/// Speedup over the CPU grows with batch size (the Fig. 12-(c) trend),
/// checked through the whole stack.
#[test]
fn speedup_grows_with_batch() {
    let engine = PimDlEngine::new(PlatformConfig::upmem());
    let shape = TransformerShape::bert_base();
    let cpu = HostModel::cpu_int8();
    let speedup = |batch: usize| {
        let cfg = ServingConfig {
            batch,
            seq_len: 128,
            v: 4,
            ct: 16,
        };
        let pimdl = engine.serve(&shape, &cfg).unwrap().total_s;
        host_inference(&cpu, &shape, batch, 128, 1).total_s() / pimdl
    };
    let s8 = speedup(8);
    let s64 = speedup(64);
    assert!(s64 > s8, "batch 64 speedup {s64} <= batch 8 speedup {s8}");
}

/// Facade re-exports stay wired.
#[test]
fn facade_exports() {
    let _ = pimdl::sim::PlatformConfig::upmem();
    let _ = pimdl::engine::shapes::TransformerShape::tiny();
    let _ = pimdl::tensor::Matrix::zeros(1, 1);
}
