//! Offline `#[derive(Serialize, Deserialize)]` for the vendored serde
//! stand-in.
//!
//! Upstream serde_derive builds on `syn`/`quote`; neither is available in
//! this offline environment, so these macros parse the derive input token
//! stream by hand. They cover exactly the shapes this workspace derives
//! on:
//!
//! * structs with named fields (including `#[serde(default)]` and
//!   `#[serde(default = "path")]` field attributes),
//! * unit structs,
//! * enums whose variants are unit or struct-like (named fields).
//!
//! Generics are not supported — no derived type in the workspace has any.
//! The generated code targets the stand-in's `Value` data model
//! (`serde::Serialize::serde_to_value` / `Deserialize::serde_from_value`)
//! with the same JSON conventions upstream serde_json uses.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the stand-in `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item.data {
        Data::Struct(fields) => {
            let mut s =
                String::from("let mut entries: Vec<(String, ::serde::Value)> = Vec::new();\n");
            for f in fields {
                s.push_str(&format!(
                    "entries.push((\"{name}\".to_string(), \
                     ::serde::Serialize::serde_to_value(&self.{name})));\n",
                    name = f.name
                ));
            }
            s.push_str("::serde::Value::Map(entries)");
            s
        }
        Data::UnitStruct => format!("::serde::Value::Str(\"{}\".to_string())", item.name),
        Data::Enum(variants) => {
            let mut s = String::from("match self {\n");
            for v in variants {
                if v.fields.is_empty() {
                    s.push_str(&format!(
                        "{ty}::{var} => ::serde::Value::Str(\"{var}\".to_string()),\n",
                        ty = item.name,
                        var = v.name
                    ));
                } else {
                    let pat: Vec<String> = v.fields.iter().map(|f| f.name.clone()).collect();
                    s.push_str(&format!(
                        "{ty}::{var} {{ {pat} }} => {{\n\
                         let mut entries: Vec<(String, ::serde::Value)> = Vec::new();\n",
                        ty = item.name,
                        var = v.name,
                        pat = pat.join(", ")
                    ));
                    for f in &v.fields {
                        s.push_str(&format!(
                            "entries.push((\"{name}\".to_string(), \
                             ::serde::Serialize::serde_to_value({name})));\n",
                            name = f.name
                        ));
                    }
                    s.push_str(&format!(
                        "::serde::Value::Map(vec![(\"{var}\".to_string(), \
                         ::serde::Value::Map(entries))])\n}},\n",
                        var = v.name
                    ));
                }
            }
            s.push('}');
            s
        }
    };
    let out = format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn serde_to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n",
        name = item.name,
    );
    out.parse()
        .expect("serde_derive: generated Serialize impl must parse")
}

/// Derives the stand-in `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item.data {
        Data::Struct(fields) => {
            let mut s = format!(
                "let map = match value {{\n\
                 ::serde::Value::Map(m) => m,\n\
                 other => return Err(::serde::DeError::new(format!(\n\
                 \"expected object for {name}, got {{other:?}}\"))),\n\
                 }};\n\
                 Ok({name} {{\n",
                name = item.name
            );
            for f in fields {
                s.push_str(&field_init(f, &item.name));
            }
            s.push_str("})");
            s
        }
        Data::UnitStruct => format!(
            "match value {{\n\
             ::serde::Value::Str(s) if s == \"{name}\" => Ok({name}),\n\
             ::serde::Value::Map(m) if m.is_empty() => Ok({name}),\n\
             other => Err(::serde::DeError::new(format!(\n\
             \"expected unit struct {name}, got {{other:?}}\"))),\n\
             }}",
            name = item.name
        ),
        Data::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                if v.fields.is_empty() {
                    unit_arms.push_str(&format!(
                        "\"{var}\" => Ok({ty}::{var}),\n",
                        ty = item.name,
                        var = v.name
                    ));
                } else {
                    let mut fields_src = String::new();
                    for f in &v.fields {
                        fields_src.push_str(&field_init(f, &format!("{}::{}", item.name, v.name)));
                    }
                    data_arms.push_str(&format!(
                        "\"{var}\" => {{\n\
                         let map = match inner {{\n\
                         ::serde::Value::Map(m) => m,\n\
                         other => return Err(::serde::DeError::new(format!(\n\
                         \"expected object for variant {ty}::{var}, got {{other:?}}\"))),\n\
                         }};\n\
                         Ok({ty}::{var} {{\n{fields_src}}})\n\
                         }},\n",
                        ty = item.name,
                        var = v.name,
                        fields_src = fields_src
                    ));
                }
            }
            format!(
                "match value {{\n\
                 ::serde::Value::Str(s) => match s.as_str() {{\n\
                 {unit_arms}\
                 other => Err(::serde::DeError::new(format!(\n\
                 \"unknown unit variant {{other}} for {ty}\"))),\n\
                 }},\n\
                 ::serde::Value::Map(m) if m.len() == 1 => {{\n\
                 let (tag, inner) = &m[0];\n\
                 match tag.as_str() {{\n\
                 {data_arms}\
                 other => Err(::serde::DeError::new(format!(\n\
                 \"unknown variant {{other}} for {ty}\"))),\n\
                 }}\n\
                 }},\n\
                 other => Err(::serde::DeError::new(format!(\n\
                 \"expected string or single-key object for {ty}, got {{other:?}}\"))),\n\
                 }}",
                ty = item.name,
            )
        }
    };
    let out = format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn serde_from_value(value: &::serde::Value) \
         -> ::core::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n}}\n",
        name = item.name,
    );
    out.parse()
        .expect("serde_derive: generated Deserialize impl must parse")
}

/// `field: <extract from map>,` source for a struct/variant initializer.
fn field_init(f: &Field, owner: &str) -> String {
    let missing = match &f.default {
        FieldDefault::None => format!(
            "return Err(::serde::DeError::new(\
             \"missing field {name} for {owner}\".to_string()))",
            name = f.name,
            owner = owner.replace("::", " :: "),
        ),
        FieldDefault::DefaultTrait => "::core::default::Default::default()".to_string(),
        FieldDefault::Path(p) => format!("{p}()"),
    };
    format!(
        "{name}: match map.iter().find(|(k, _)| k == \"{name}\") {{\n\
         Some((_, field_value)) => \
         <{ty} as ::serde::Deserialize>::serde_from_value(field_value)?,\n\
         None => {missing},\n\
         }},\n",
        name = f.name,
        ty = f.ty,
    )
}

/// How a missing field is filled during deserialization.
enum FieldDefault {
    /// No default: missing field is an error.
    None,
    /// `#[serde(default)]`: `Default::default()`.
    DefaultTrait,
    /// `#[serde(default = "path")]`: call `path()`.
    Path(String),
}

struct Field {
    name: String,
    ty: String,
    default: FieldDefault,
}

struct Variant {
    name: String,
    fields: Vec<Field>,
}

enum Data {
    Struct(Vec<Field>),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    data: Data,
}

/// Parses the derive input: attributes, visibility, `struct`/`enum`,
/// name, body. Panics with a clear message on unsupported shapes
/// (generics, tuple structs/variants) — compile-time feedback is the
/// right failure mode for a derive.
fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    skip_attrs_and_vis(&tokens, &mut pos);

    let kind = match &tokens[pos] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected struct/enum, got {other}"),
    };
    pos += 1;
    let name = match &tokens[pos] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected type name, got {other}"),
    };
    pos += 1;
    if matches!(&tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive (offline stand-in): generic type {name} is not supported");
    }

    let data = match kind.as_str() {
        "struct" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::Struct(parse_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Data::UnitStruct,
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                panic!("serde_derive (offline stand-in): tuple struct {name} is not supported")
            }
            other => panic!("serde_derive: unexpected struct body {other:?}"),
        },
        "enum" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::Enum(parse_variants(g.stream(), &name))
            }
            other => panic!("serde_derive: unexpected enum body {other:?}"),
        },
        other => panic!("serde_derive: cannot derive for {other} items"),
    };
    Item { name, data }
}

/// Advances `pos` past outer attributes (`#[...]`) and visibility
/// (`pub`, `pub(...)`), returning any `#[serde(...)]` attribute contents
/// seen along the way.
fn skip_attrs_and_vis(tokens: &[TokenTree], pos: &mut usize) -> Vec<TokenStream> {
    let mut serde_attrs = Vec::new();
    loop {
        match tokens.get(*pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(*pos + 1) {
                    if let Some(ts) = serde_attr_contents(g.stream()) {
                        serde_attrs.push(ts);
                    }
                }
                *pos += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *pos += 1;
                if matches!(tokens.get(*pos), Some(TokenTree::Group(g))
                    if g.delimiter() == Delimiter::Parenthesis)
                {
                    *pos += 1;
                }
            }
            _ => return serde_attrs,
        }
    }
}

/// If an attribute body (the tokens inside `#[...]`) is `serde(...)`,
/// returns the parenthesized contents.
fn serde_attr_contents(attr: TokenStream) -> Option<TokenStream> {
    let tokens: Vec<TokenTree> = attr.into_iter().collect();
    match (tokens.first(), tokens.get(1)) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(g)))
            if id.to_string() == "serde" && g.delimiter() == Delimiter::Parenthesis =>
        {
            Some(g.stream())
        }
        _ => None,
    }
}

/// Parses `default` / `default = "path"` from `#[serde(...)]` contents.
fn parse_default(attrs: &[TokenStream]) -> FieldDefault {
    for attr in attrs {
        let tokens: Vec<TokenTree> = attr.clone().into_iter().collect();
        let mut i = 0;
        while i < tokens.len() {
            if let TokenTree::Ident(id) = &tokens[i] {
                if id.to_string() == "default" {
                    // `default = "path"`?
                    if let (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit))) =
                        (tokens.get(i + 1), tokens.get(i + 2))
                    {
                        if eq.as_char() == '=' {
                            let raw = lit.to_string();
                            let path = raw.trim_matches('"').to_string();
                            return FieldDefault::Path(path);
                        }
                    }
                    return FieldDefault::DefaultTrait;
                }
            }
            i += 1;
        }
    }
    FieldDefault::None
}

/// Parses named fields: `attrs vis name: Type, ...`.
fn parse_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        let serde_attrs = skip_attrs_and_vis(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        let name = match &tokens[pos] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: expected field name, got {other}"),
        };
        pos += 1;
        match &tokens[pos] {
            TokenTree::Punct(p) if p.as_char() == ':' => pos += 1,
            other => panic!(
                "serde_derive: expected `:` after field {name}, got {other} \
                 (tuple fields are not supported)"
            ),
        }
        // Collect type tokens up to the next top-level comma, tracking
        // angle-bracket depth so `HashMap<String, f64>` stays whole.
        // Delimited groups are single trees, so parens/brackets nest free.
        let mut depth = 0i32;
        let mut ty = String::new();
        let mut glue_next = false;
        while pos < tokens.len() {
            match &tokens[pos] {
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    pos += 1;
                    break;
                }
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                _ => {}
            }
            if !ty.is_empty() && !glue_next {
                ty.push(' ');
            }
            ty.push_str(&tokens[pos].to_string());
            // A lifetime arrives as a joint `'` punct followed by its
            // ident; a space between them would not re-parse.
            glue_next = matches!(&tokens[pos], TokenTree::Punct(p) if p.as_char() == '\'');
            pos += 1;
        }
        fields.push(Field {
            name,
            ty,
            default: parse_default(&serde_attrs),
        });
    }
    fields
}

/// Parses enum variants: `attrs Name { fields }?, ...`.
fn parse_variants(stream: TokenStream, enum_name: &str) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        let name = match &tokens[pos] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: expected variant name in {enum_name}, got {other}"),
        };
        pos += 1;
        let fields = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                pos += 1;
                parse_fields(g.stream())
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                panic!(
                    "serde_derive (offline stand-in): tuple variant \
                     {enum_name}::{name} is not supported"
                )
            }
            _ => Vec::new(),
        };
        // Skip to the next top-level comma (covers discriminants, which
        // derived enums here do not use anyway).
        while pos < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[pos] {
                if p.as_char() == ',' {
                    pos += 1;
                    break;
                }
            }
            pos += 1;
        }
        variants.push(Variant { name, fields });
    }
    variants
}
