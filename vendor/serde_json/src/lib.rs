//! Offline stand-in for `serde_json`, working over the vendored serde
//! stand-in's [`Value`] data model.
//!
//! Provides the three entry points the workspace uses — [`to_string`],
//! [`to_string_pretty`], and [`from_str`] — with upstream-compatible JSON
//! text: strings are escaped per RFC 8259, objects keep field order, and
//! parsing rejects trailing garbage and malformed documents.

use std::fmt;

pub use serde::Value;
use serde::{Deserialize, Serialize};

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    detail: String,
}

impl Error {
    fn new(detail: impl Into<String>) -> Self {
        Error {
            detail: detail.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.detail)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes a value to compact JSON.
///
/// # Errors
///
/// Returns an error if the value contains a non-finite float (upstream
/// serde_json refuses those too).
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.serde_to_value(), None, 0, &mut out)?;
    Ok(out)
}

/// Serializes a value to pretty-printed JSON (two-space indent).
///
/// # Errors
///
/// Returns an error if the value contains a non-finite float.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.serde_to_value(), Some(2), 0, &mut out)?;
    Ok(out)
}

/// Parses a JSON document into a deserializable type.
///
/// # Errors
///
/// Returns an error on malformed JSON, trailing garbage, or a document
/// whose shape does not match `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = parse_value_complete(s)?;
    Ok(T::serde_from_value(&value)?)
}

fn write_value(v: &Value, indent: Option<usize>, level: usize, out: &mut String) -> Result<()> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if !f.is_finite() {
                return Err(Error::new(format!("non-finite float {f} in JSON")));
            }
            // Keep a fraction marker so the value reads back as a float.
            if f.fract() == 0.0 && f.abs() < 1e16 {
                out.push_str(&format!("{f:.1}"));
            } else {
                out.push_str(&f.to_string());
            }
        }
        Value::Str(s) => write_escaped(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, level + 1, out);
                write_value(item, indent, level + 1, out)?;
            }
            if !items.is_empty() {
                newline_indent(indent, level, out);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, level + 1, out);
                write_escaped(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, indent, level + 1, out)?;
            }
            if !entries.is_empty() {
                newline_indent(indent, level, out);
            }
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(indent: Option<usize>, level: usize, out: &mut String) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..level * width {
            out.push(' ');
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a complete document, rejecting trailing non-whitespace.
fn parse_value_complete(s: &str) -> Result<Value> {
    let bytes = s.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {pos}")));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(Error::new("unexpected end of document")),
        Some(b'n') => parse_keyword(bytes, pos, "null", Value::Null),
        Some(b't') => parse_keyword(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Value::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Value::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Seq(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Seq(items));
                    }
                    _ => return Err(Error::new(format!("expected , or ] at byte {pos}"))),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut entries = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Map(entries));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(Error::new(format!("expected : at byte {pos}")));
                }
                *pos += 1;
                let value = parse_value(bytes, pos)?;
                entries.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Map(entries));
                    }
                    _ => return Err(Error::new(format!("expected , or }} at byte {pos}"))),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_keyword(bytes: &[u8], pos: &mut usize, word: &str, value: Value) -> Result<Value> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(Error::new(format!("invalid token at byte {pos}")))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(Error::new(format!("expected string at byte {pos}")));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(Error::new("unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| Error::new("truncated \\u escape"))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| Error::new("invalid \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| Error::new("invalid \\u escape"))?;
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    _ => return Err(Error::new(format!("invalid escape at byte {pos}"))),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character.
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("digits are ASCII");
    if text.is_empty() || text == "-" {
        return Err(Error::new(format!("invalid number at byte {start}")));
    }
    if !is_float {
        if let Ok(u) = text.parse::<u64>() {
            return Ok(Value::UInt(u));
        }
        if let Ok(i) = text.parse::<i64>() {
            return Ok(Value::Int(i));
        }
    }
    text.parse::<f64>()
        .map(Value::Float)
        .map_err(|_| Error::new(format!("invalid number {text:?} at byte {start}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty_roundtrip() {
        let v = Value::Map(vec![
            ("name".to_string(), Value::Str("q\"k\\v".to_string())),
            ("n".to_string(), Value::UInt(3)),
            (
                "xs".to_string(),
                Value::Seq(vec![Value::Float(1.5), Value::Int(-2)]),
            ),
            ("flag".to_string(), Value::Bool(true)),
            ("none".to_string(), Value::Null),
        ]);
        let compact = to_string(&v).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(from_str::<Value>(&compact).unwrap(), v);
        // Pretty output parses to the same tree modulo number width.
        assert_eq!(from_str::<Value>(&pretty).unwrap(), v);
        assert!(pretty.contains('\n'));
    }

    #[test]
    fn floats_keep_float_shape() {
        let s = to_string(&Value::Float(2.0)).unwrap();
        assert_eq!(s, "2.0");
        assert!(matches!(from_str::<Value>(&s).unwrap(), Value::Float(_)));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(from_str::<Value>("{\"a\": 1").is_err());
        assert!(from_str::<Value>("[1, 2,,]").is_err());
        assert!(from_str::<Value>("true false").is_err());
        assert!(from_str::<Value>("\"unterminated").is_err());
        assert!(from_str::<Value>("nul").is_err());
    }

    #[test]
    fn non_finite_floats_error() {
        assert!(to_string(&Value::Float(f64::NAN)).is_err());
        assert!(to_string(&Value::Float(f64::INFINITY)).is_err());
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(
            from_str::<Value>("\"\\u0041\\n\"").unwrap(),
            Value::Str("A\n".to_string())
        );
    }
}
