//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! The workspace declares `parking_lot` but the build environment cannot
//! reach the registry (see the workspace README, "Offline builds"). This
//! stub provides `Mutex`/`RwLock` wrappers with the panic-free
//! `parking_lot` locking API on top of `std::sync`, poisoning ignored.

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock that does not expose poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock that does not expose poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock, ignoring poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write lock, ignoring poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(3);
        assert_eq!(*l.read(), 3);
        *l.write() = 4;
        assert_eq!(*l.read(), 4);
    }
}
