//! Offline stand-in for `rand` 0.8.
//!
//! Implements the exact API surface the workspace uses — `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::{gen, gen_range, gen_bool}`, and
//! `distributions::Distribution` — on top of the xoshiro256++ generator
//! seeded through SplitMix64. Streams differ from upstream `rand`'s
//! `StdRng` (ChaCha12), but every consumer in this workspace only relies
//! on determinism-per-seed and uniformity, not on a specific stream.

/// Core pseudo-random number generation: a source of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (the subset of `rand::SeedableRng` the workspace
/// uses).
pub trait SeedableRng: Sized {
    /// Creates a generator from a `u64` seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value whose type implements uniform full-range generation.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// Samples uniformly from a range (`lo..hi` or `lo..=hi`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p = {p} out of [0, 1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// `u64` in `[0, 1)` as an `f64` with 53 random bits.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// `u64` in `[0, 1)` as an `f32` with 24 random bits.
fn unit_f32(bits: u64) -> f32 {
    (bits >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
}

/// Types samplable uniformly over their full domain (stand-in for rand's
/// `Standard` distribution used via `rng.gen()`).
pub trait Standard {
    /// Draws one value from `rng`.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f32(rng.next_u64())
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, span)` by rejection from the top of the modulus
/// (avoids modulo bias).
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let zone = u64::MAX - u64::MAX % span;
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(bounded_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as u64).wrapping_sub(lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(bounded_u64(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($t:ty, $unit:ident) => {
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let x = self.start + $unit(rng.next_u64()) * (self.end - self.start);
                // Guard against rounding up to the exclusive bound.
                if x < self.end {
                    x
                } else {
                    self.end.next_down().max(self.start)
                }
            }
        }
    };
}
impl_sample_range_float!(f32, unit_f32);
impl_sample_range_float!(f64, unit_f64);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via
    /// SplitMix64. Deterministic per seed; not the upstream ChaCha12
    /// stream, which no consumer here depends on.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, the canonical xoshiro seeding recipe.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ step.
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Distributions, mirroring `rand::distributions`.
pub mod distributions {
    use super::RngCore;

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Draws one sample.
        fn sample<R: super::Rng + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Uniform distribution over a half-open `f64` range.
    #[derive(Debug, Clone, Copy)]
    pub struct Uniform {
        lo: f64,
        hi: f64,
    }

    impl Uniform {
        /// Creates the uniform distribution over `[lo, hi)`.
        pub fn new(lo: f64, hi: f64) -> Self {
            assert!(lo < hi, "Uniform::new: empty range");
            Uniform { lo, hi }
        }
    }

    impl Distribution<f64> for Uniform {
        fn sample<R: super::Rng + ?Sized>(&self, rng: &mut R) -> f64 {
            let u = (RngCore::next_u64(rng) >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            self.lo + u * (self.hi - self.lo)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let f = rng.gen_range(-2.0f32..3.0);
            assert!((-2.0..3.0).contains(&f), "{f}");
            let i = rng.gen_range(0usize..7);
            assert!(i < 7);
            let j = rng.gen_range(0usize..=3);
            assert!(j <= 3);
        }
    }

    #[test]
    fn gen_bool_probability_is_roughly_right() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let frac = hits as f64 / 20_000.0;
        assert!((0.22..0.28).contains(&frac), "{frac}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn uniform_distribution_samples_in_range() {
        use super::distributions::{Distribution, Uniform};
        let mut rng = StdRng::seed_from_u64(3);
        let d = Uniform::new(5.0, 6.0);
        for _ in 0..1000 {
            let x = d.sample(&mut rng);
            assert!((5.0..6.0).contains(&x));
        }
    }
}
