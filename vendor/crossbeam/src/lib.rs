//! Offline stand-in for `crossbeam`, backed by `std::thread::scope`.
//!
//! The workspace only uses `crossbeam::scope` for fork-join parallelism
//! over disjoint output bands; since Rust 1.63 the standard library's
//! scoped threads cover that use exactly. This stub keeps the crossbeam
//! call-site shape (`crossbeam::scope(|scope| { scope.spawn(|_| ...) })`)
//! so the kernels compile unchanged in the offline build environment.

use std::thread;

/// A scope handle mirroring `crossbeam::thread::Scope`.
///
/// Spawn closures receive a `&Scope` argument (crossbeam's signature) so
/// nested spawns remain possible.
#[derive(Debug)]
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread, passing the scope back into the closure.
    pub fn spawn<F, T>(&self, f: F) -> thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || f(&Scope { inner }))
    }
}

/// Creates a scope in which spawned threads are joined before returning,
/// mirroring `crossbeam::scope`.
///
/// # Errors
///
/// Never returns `Err`: child panics propagate out of the enclosing
/// `std::thread::scope` instead (crossbeam would collect them). Call sites
/// written for crossbeam `.expect(..)` the result either way.
#[allow(clippy::missing_panics_doc)]
pub fn scope<'env, F, R>(f: F) -> thread::Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(thread::scope(|s| f(&Scope { inner: s })))
}

/// Alias module so `crossbeam::thread::scope` also resolves.
pub mod thread_mod {
    pub use super::{scope, Scope};
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_join_and_borrow() {
        let mut data = vec![0u32; 4];
        {
            let chunks: Vec<&mut [u32]> = data.chunks_mut(2).collect();
            super::scope(|scope| {
                for (i, chunk) in chunks.into_iter().enumerate() {
                    scope.spawn(move |_| {
                        for (j, slot) in chunk.iter_mut().enumerate() {
                            *slot = (i * 2 + j) as u32;
                        }
                    });
                }
            })
            .expect("threads");
        }
        assert_eq!(data, vec![0, 1, 2, 3]);
    }

    #[test]
    fn scope_returns_closure_value() {
        let v = super::scope(|scope| {
            let h = scope.spawn(|_| 21);
            h.join().expect("join") * 2
        })
        .expect("scope");
        assert_eq!(v, 42);
    }
}
