//! Offline stand-in for `proptest`.
//!
//! Implements the subset this workspace's property tests use: the
//! [`proptest!`] macro with `#![proptest_config(...)]`, integer/float
//! range strategies, [`any`], [`sample::select`], tuple strategies,
//! [`Strategy::prop_map`], and the `prop_assert!` family.
//!
//! Unlike upstream proptest there is no shrinking and no persisted
//! regression corpus (`.proptest-regressions` files are ignored): each
//! test runs `cases` random cases from a seed derived deterministically
//! from the test's name, so failures reproduce across runs.

use std::ops::{Range, RangeInclusive};

/// Deterministic per-test random source (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator seeded from a test name, deterministically.
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the name gives a stable, well-mixed seed.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `u64` in `[0, span)`.
    pub fn below(&mut self, span: u64) -> u64 {
        assert!(span > 0, "empty strategy range");
        let zone = u64::MAX - u64::MAX % span;
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % span;
            }
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through a function.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter created by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as u64).wrapping_sub(lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span + 1) as $t)
            }
        }
    )*};
}
impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_float_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let x = self.start
                    + (rng.unit_f64() as $t) * (self.end - self.start);
                if x < self.end { x } else { self.end.next_down().max(self.start) }
            }
        }
    )*};
}
impl_strategy_float_range!(f32, f64);

/// Full-domain generation, mirroring proptest's `Arbitrary`.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy for any value of `T`, created by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// The `any::<T>()` strategy over `T`'s full domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy yielding a constant value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_strategy_tuple {
    ($(($($s:ident . $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
impl_strategy_tuple! {
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
}

/// Sampling strategies over collections, mirroring `proptest::sample`.
pub mod sample {
    use super::{Strategy, TestRng};

    /// Strategy choosing uniformly among the given values.
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone> {
        choices: Vec<T>,
    }

    /// Chooses uniformly from a vector of options.
    ///
    /// # Panics
    ///
    /// Panics at sample time if `choices` is empty.
    pub fn select<T: Clone>(choices: Vec<T>) -> Select<T> {
        Select { choices }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            assert!(!self.choices.is_empty(), "select over empty choices");
            let i = rng.below(self.choices.len() as u64) as usize;
            self.choices[i].clone()
        }
    }
}

/// Per-block configuration, mirroring `ProptestConfig`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// Why a test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case's assumptions were not met; it is skipped.
    Reject(String),
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// Constructs a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Constructs a rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Runs the body of one generated test (used by the [`proptest!`]
/// expansion; not public API upstream, but harmless to expose here).
pub fn run_cases(
    name: &str,
    cfg: &ProptestConfig,
    mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
) {
    let mut rng = TestRng::deterministic(name);
    let mut executed = 0u32;
    let mut attempts = 0u32;
    // Cap total attempts so heavy rejection cannot loop forever.
    let max_attempts = cfg.cases.saturating_mul(16).max(64);
    while executed < cfg.cases && attempts < max_attempts {
        attempts += 1;
        match case(&mut rng) {
            Ok(()) => executed += 1,
            Err(TestCaseError::Reject(_)) => continue,
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest {name}: case {executed} (attempt {attempts}) failed: {msg}")
            }
        }
    }
}

/// The everything-you-need import, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Any, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Defines property tests over sampled inputs. Mirrors proptest's macro
/// for the `fn name(arg in strategy, ...) { body }` form.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                $crate::run_cases(stringify!($name), &cfg, |__pt_rng| {
                    $( let $arg = $crate::Strategy::sample(&($strat), __pt_rng); )+
                    $body
                    ::core::result::Result::Ok(())
                });
            }
        )*
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the case
/// (not panicking directly) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            left == right,
            "assertion failed: {:?} != {:?}",
            left,
            right
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(left == right, $($fmt)*);
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            left != right,
            "assertion failed: both sides equal {:?}",
            left
        );
    }};
}

/// Skips the current case when its assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_sampling() {
        let mut a = crate::TestRng::deterministic("t");
        let mut b = crate::TestRng::deterministic("t");
        let s = 3usize..17;
        for _ in 0..100 {
            assert_eq!(Strategy::sample(&s, &mut a), Strategy::sample(&s, &mut b));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_in_bounds(x in 2usize..9, f in -1.0f32..1.0, y in 1u64..=4) {
            prop_assert!((2..9).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
            prop_assert!((1..=4).contains(&y));
        }

        #[test]
        fn combinators_work(
            v in prop::sample::select(vec![2usize, 4, 8]),
            p in (0u32..=3).prop_map(|p| 1usize << p),
            flag in any::<bool>(),
            pair in (1usize..4, 0.0f64..1.0),
        ) {
            prop_assert!([2, 4, 8].contains(&v));
            prop_assert!([1, 2, 4, 8].contains(&p));
            prop_assert!(flag || !flag);
            prop_assert!(pair.0 < 4 && pair.1 < 1.0);
        }

        #[test]
        fn assume_rejects(n in 0u32..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
            prop_assert_ne!(n % 2, 1);
        }
    }
}
