//! Offline stand-in for `serde`.
//!
//! Upstream serde is a zero-copy visitor framework; this workspace only
//! ever derives `Serialize`/`Deserialize` on plain data structs and enums
//! and round-trips them through `serde_json` strings. The stand-in
//! therefore uses a much simpler data model: every serializable value
//! converts to/from the JSON-shaped [`Value`] tree, and the derive macros
//! (`serde_derive`, re-exported under the `derive` feature) generate those
//! conversions field by field, honoring `#[serde(default)]` and
//! `#[serde(default = "path")]`.
//!
//! The encoding conventions match what upstream serde_json produces for
//! derived types: structs are JSON objects, unit enum variants are
//! strings, and data-carrying variants are externally tagged
//! single-entry objects (`{"Variant": {...}}`), so documents written by a
//! networked build remain readable here and vice versa.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// JSON-shaped value tree — the serialization data model of this stand-in.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (JSON number without fraction/exponent, negative).
    Int(i64),
    /// Unsigned integer (JSON number without fraction/exponent).
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Seq(Vec<Value>),
    /// JSON object; insertion-ordered so output is stable.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in a `Map` value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Deserialization error: what was expected and what was found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    detail: String,
}

impl DeError {
    /// Creates an error with the given explanation.
    pub fn new(detail: impl Into<String>) -> Self {
        DeError {
            detail: detail.into(),
        }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization failed: {}", self.detail)
    }
}

impl std::error::Error for DeError {}

/// Conversion into the [`Value`] data model (stand-in for
/// `serde::Serialize`).
pub trait Serialize {
    /// Converts `self` into a [`Value`] tree.
    fn serde_to_value(&self) -> Value;
}

/// Conversion from the [`Value`] data model (stand-in for
/// `serde::Deserialize`).
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a [`Value`] tree.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] when the value's shape does not match `Self`.
    fn serde_from_value(v: &Value) -> Result<Self, DeError>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serde_to_value(&self) -> Value {
        (**self).serde_to_value()
    }
}

impl Serialize for bool {
    fn serde_to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn serde_from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::new(format!("expected bool, got {other:?}"))),
        }
    }
}

/// The numeric content of a value, if any, widened to `f64` alongside
/// exact integer forms.
fn as_i128(v: &Value) -> Option<i128> {
    match v {
        Value::Int(i) => Some(i128::from(*i)),
        Value::UInt(u) => Some(i128::from(*u)),
        Value::Float(f) if f.fract() == 0.0 && f.abs() < 9.0e18 => Some(*f as i128),
        _ => None,
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serde_to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn serde_from_value(v: &Value) -> Result<Self, DeError> {
                let i = as_i128(v)
                    .ok_or_else(|| DeError::new(format!(
                        concat!("expected ", stringify!($t), ", got {:?}"), v)))?;
                <$t>::try_from(i).map_err(|_| DeError::new(format!(
                    concat!("value {} out of range for ", stringify!($t)), i)))
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serde_to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn serde_from_value(v: &Value) -> Result<Self, DeError> {
                let i = as_i128(v)
                    .ok_or_else(|| DeError::new(format!(
                        concat!("expected ", stringify!($t), ", got {:?}"), v)))?;
                <$t>::try_from(i).map_err(|_| DeError::new(format!(
                    concat!("value {} out of range for ", stringify!($t)), i)))
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64, isize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serde_to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn serde_from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(i) => Ok(*i as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    other => Err(DeError::new(format!(
                        concat!("expected ", stringify!($t), ", got {:?}"), other))),
                }
            }
        }
    )*};
}
impl_serde_float!(f32, f64);

impl Serialize for String {
    fn serde_to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn serde_from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::new(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn serde_to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for &'static str {
    /// Deserializes into a leaked `'static` string.
    ///
    /// Upstream serde cannot deserialize `&'static str` from transient
    /// input at all; several workspace types carry `&'static str` name
    /// fields (normally built from literals) and still derive
    /// `Deserialize` for JSON round-trips in tests and the CLI. Leaking
    /// is acceptable there: the strings are tiny and bounded by the
    /// number of documents parsed.
    fn serde_from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            other => Err(DeError::new(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for char {
    fn serde_to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn serde_from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().expect("one char")),
            other => Err(DeError::new(format!(
                "expected single-char string, got {other:?}"
            ))),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serde_to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serde_to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn serde_from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(T::serde_from_value).collect(),
            other => Err(DeError::new(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serde_to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serde_to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serde_to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serde_to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serde_to_value(&self) -> Value {
        match self {
            Some(x) => x.serde_to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn serde_from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::serde_from_value(other).map(Some),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serde_to_value(&self) -> Value {
        Value::Seq(vec![self.0.serde_to_value(), self.1.serde_to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn serde_from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) if items.len() == 2 => Ok((
                A::serde_from_value(&items[0])?,
                B::serde_from_value(&items[1])?,
            )),
            other => Err(DeError::new(format!("expected 2-tuple, got {other:?}"))),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn serde_to_value(&self) -> Value {
        Value::Seq(vec![
            self.0.serde_to_value(),
            self.1.serde_to_value(),
            self.2.serde_to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn serde_from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) if items.len() == 3 => Ok((
                A::serde_from_value(&items[0])?,
                B::serde_from_value(&items[1])?,
                C::serde_from_value(&items[2])?,
            )),
            other => Err(DeError::new(format!("expected 3-tuple, got {other:?}"))),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn serde_to_value(&self) -> Value {
        // Sort for stable output: HashMap iteration order is arbitrary.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.serde_to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn serde_from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::serde_from_value(v)?)))
                .collect(),
            other => Err(DeError::new(format!("expected object, got {other:?}"))),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serde_to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serde_to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn serde_from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::serde_from_value(v)?)))
                .collect(),
            other => Err(DeError::new(format!("expected object, got {other:?}"))),
        }
    }
}

impl Serialize for Value {
    fn serde_to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn serde_from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u32::serde_from_value(&42u32.serde_to_value()), Ok(42));
        assert_eq!(i64::serde_from_value(&Value::UInt(7)), Ok(7));
        assert_eq!(f64::serde_from_value(&Value::Int(-3)), Ok(-3.0));
        assert!(u8::serde_from_value(&Value::Int(300)).is_err());
        assert!(bool::serde_from_value(&Value::Str("no".into())).is_err());
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::serde_from_value(&v.serde_to_value()), Ok(v));
        let o: Option<f32> = None;
        assert_eq!(o.serde_to_value(), Value::Null);
        assert_eq!(Option::<f32>::serde_from_value(&Value::Null), Ok(None));
    }

    #[test]
    fn map_lookup() {
        let m = Value::Map(vec![("a".into(), Value::Bool(true))]);
        assert_eq!(m.get("a"), Some(&Value::Bool(true)));
        assert_eq!(m.get("b"), None);
    }
}
