//! Offline stand-in for `criterion`.
//!
//! Keeps the workspace's `cargo bench` targets compiling and running in
//! the offline environment. Instead of criterion's statistical pipeline,
//! each benchmark is timed over a fixed warm-up plus measurement loop and
//! the mean/min wall-clock per iteration is printed. Good enough to spot
//! order-of-magnitude regressions; not a replacement for real criterion
//! runs on a networked machine.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== group {name} ==");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
        }
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&name.to_string(), self.sample_size, &mut f);
        self
    }

    /// Sets the default sample count per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }
}

/// A named set of benchmarks, mirroring `criterion::BenchmarkGroup`.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count for subsequent benchmarks in the group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{id}", self.name), self.sample_size, &mut f);
        self
    }

    /// Runs a benchmark parameterized by an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{id}", self.name);
        run_one(&label, self.sample_size, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Finishes the group (upstream flushes reports here; a no-op).
    pub fn finish(self) {}
}

/// Benchmark identifier, mirroring `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            text: format!("{function}/{parameter}"),
        }
    }

    /// An id made of a parameter value only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Timing harness handed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times the closure over warm-up plus `sample_size` measured runs.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warm-up iteration (fills caches, triggers lazy init).
        black_box(f());
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed());
        }
    }
}

fn run_one(label: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{label:<40} (no samples)");
        return;
    }
    let total: Duration = b.samples.iter().sum();
    let mean = total / b.samples.len() as u32;
    let min = b.samples.iter().min().expect("non-empty");
    println!(
        "{label:<40} mean {mean:>12.3?}  min {min:>12.3?}  ({} samples)",
        b.samples.len()
    );
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("sq", 4), &4u64, |b, &x| b.iter(|| x * x));
        group.finish();
    }

    criterion_group!(benches, trivial);

    #[test]
    fn harness_runs() {
        benches();
    }
}
