//! Property-based tests for the simulator's cost model and mapping rules.

use proptest::prelude::*;

use pimdl_sim::config::TransferPattern;
use pimdl_sim::cost::{cost_with_repeat, estimate_cost};
use pimdl_sim::interp::{interpret, PeOperands};
use pimdl_sim::isa::compile;
use pimdl_sim::mapping::MicroKernel;
use pimdl_sim::{LoadScheme, LutWorkload, Mapping, PlatformConfig, TraversalOrder};
use pimdl_tensor::rng::DataRng;

fn any_traversal() -> impl Strategy<Value = TraversalOrder> {
    prop::sample::select(TraversalOrder::all().to_vec())
}

fn pow2(max_pow: u32) -> impl Strategy<Value = usize> {
    (0..=max_pow).prop_map(|p| 1usize << p)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every legal mapping yields strictly positive latency components, and
    /// the breakdown sums to the total.
    #[test]
    fn cost_components_consistent(
        traversal in any_traversal(),
        n_m in pow2(3), f_m in pow2(3), cb_m in pow2(2),
        scheme_id in 0usize..3,
    ) {
        let w = LutWorkload::new(64, 8, 16, 32).unwrap();
        let (n_s, f_s) = (16usize, 8usize);
        let scheme = match scheme_id {
            0 => LoadScheme::Static,
            1 => LoadScheme::CoarseGrain { cb_load: 1, f_load: 1 },
            _ => LoadScheme::FineGrain { f_load: 1, threads: 8 },
        };
        let mapping = Mapping {
            n_stile: n_s,
            f_stile: f_s,
            kernel: MicroKernel {
                n_mtile: n_m.min(n_s),
                f_mtile: f_m.min(f_s),
                cb_mtile: cb_m.min(w.cb),
                traversal,
                load_scheme: scheme,
            },
        };
        let mut platform = PlatformConfig::upmem();
        platform.num_pes = 16;
        if mapping.validate(&w, &platform).is_err() {
            return Ok(()); // skip illegal combos
        }
        let report = estimate_cost(&platform, &w, &mapping).unwrap();
        let t = report.time;
        prop_assert!(t.total_s() > 0.0);
        prop_assert!((t.total_s() - (t.sub_lut_total_s() + t.micro_kernel_total_s())).abs() < 1e-15);
        prop_assert!(t.kernel_reduce_s > 0.0);
        prop_assert!(report.accesses.reduce_ops == (n_s * w.cb * f_s) as u64);
    }

    /// Fine-grain cost is monotone non-increasing in the repeat fraction.
    #[test]
    fn repeat_fraction_monotone(r1 in 0.0f64..1.0, r2 in 0.0f64..1.0) {
        let (lo, hi) = if r1 <= r2 { (r1, r2) } else { (r2, r1) };
        let w = LutWorkload::new(64, 8, 16, 32).unwrap();
        let mapping = Mapping {
            n_stile: 16,
            f_stile: 8,
            kernel: MicroKernel {
                n_mtile: 4,
                f_mtile: 4,
                cb_mtile: 4,
                traversal: TraversalOrder::Nfc,
                load_scheme: LoadScheme::FineGrain { f_load: 4, threads: 8 },
            },
        };
        let mut platform = PlatformConfig::upmem();
        platform.num_pes = 16;
        let c_lo = cost_with_repeat(&platform, &w, &mapping, lo).unwrap();
        let c_hi = cost_with_repeat(&platform, &w, &mapping, hi).unwrap();
        prop_assert!(c_hi.time.kernel_lut_s <= c_lo.time.kernel_lut_s + 1e-15);
    }

    /// Transfer time is monotone in bytes and bandwidth never exceeds peak.
    #[test]
    fn transfer_model_sane(bytes1 in 1.0f64..1e9, bytes2 in 1.0f64..1e9, buf in 1.0f64..1e7) {
        let t = PlatformConfig::upmem().host_transfer;
        for pattern in [
            TransferPattern::ToPimDistinct,
            TransferPattern::ToPimBroadcast,
            TransferPattern::FromPim,
        ] {
            let bw = t.effective_gbps(pattern, buf);
            prop_assert!(bw > 0.0);
            prop_assert!(bw <= t.broadcast_peak_gbps.max(t.to_pim_peak_gbps).max(t.from_pim_peak_gbps));
            let (lo, hi) = if bytes1 <= bytes2 { (bytes1, bytes2) } else { (bytes2, bytes1) };
            prop_assert!(t.transfer_time_s(pattern, lo, buf) <= t.transfer_time_s(pattern, hi, buf) + 1e-15);
        }
    }

    /// WRAM usage is exactly what the scheme formulas say, for any legal
    /// load factors.
    #[test]
    fn wram_formulas(cb_load in pow2(2), f_load in pow2(2), threads in 1usize..17) {
        let w = LutWorkload::new(64, 8, 16, 32).unwrap();
        let base = Mapping {
            n_stile: 16,
            f_stile: 8,
            kernel: MicroKernel {
                n_mtile: 4,
                f_mtile: 4,
                cb_mtile: 4,
                traversal: TraversalOrder::Nfc,
                load_scheme: LoadScheme::Static,
            },
        };
        let idx_out = 4 * 4 + 4 * 4 * 4; // index + output MTile bytes
        prop_assert_eq!(base.wram_usage(&w), idx_out + 8 * 16 * 8);
        let mut coarse = base;
        coarse.kernel.load_scheme = LoadScheme::CoarseGrain { cb_load, f_load };
        prop_assert_eq!(coarse.wram_usage(&w), idx_out + cb_load * 16 * f_load);
        let mut fine = base;
        fine.kernel.load_scheme = LoadScheme::FineGrain { f_load, threads };
        prop_assert_eq!(fine.wram_usage(&w), idx_out + f_load * threads);
    }

    /// load_count semantics: the count is between 1 and the full trip
    /// product, and a tile used by all three dims always reloads fully.
    #[test]
    fn load_count_bounds(
        traversal in any_traversal(),
        t_n in 1u64..6, t_f in 1u64..6, t_cb in 1u64..6,
        u_n in any::<bool>(), u_f in any::<bool>(), u_cb in any::<bool>(),
    ) {
        let trips = (t_n, t_f, t_cb);
        let count = traversal.load_count(trips, (u_n, u_f, u_cb));
        prop_assert!(count >= 1);
        prop_assert!(count <= t_n * t_f * t_cb);
        let full = traversal.load_count(trips, (true, true, true));
        prop_assert_eq!(full, t_n * t_f * t_cb);
        prop_assert!(count <= full);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For any structurally legal mapping and random operands, the compiled
    /// PIM binary computes the exact gather-accumulate reference and its
    /// executed access counts match the closed-form cost model (static and
    /// coarse schemes are deterministic; fine-grain counts depend on the
    /// index stream and are covered by unit tests).
    #[test]
    fn compiled_program_is_correct_and_accounted(
        seed in any::<u64>(),
        traversal in prop::sample::select(TraversalOrder::all().to_vec()),
        n_m in prop::sample::select(vec![2usize, 4, 8]),
        f_m in prop::sample::select(vec![2usize, 4, 8]),
        cb_m in prop::sample::select(vec![2usize, 4]),
        static_scheme in any::<bool>(),
    ) {
        let w = LutWorkload::new(32, 4, 8, 16).unwrap();
        let scheme = if static_scheme {
            LoadScheme::Static
        } else {
            LoadScheme::CoarseGrain { cb_load: 2, f_load: 2 }
        };
        let mapping = Mapping {
            n_stile: 8,
            f_stile: 8,
            kernel: MicroKernel {
                n_mtile: n_m.min(8),
                f_mtile: f_m.min(8),
                cb_mtile: cb_m.min(4),
                traversal,
                load_scheme: scheme,
            },
        };
        let mut platform = PlatformConfig::upmem();
        platform.num_pes = 8;
        if mapping.validate(&w, &platform).is_err() {
            return Ok(());
        }
        let program = compile(&w, &mapping).unwrap();

        let mut rng = DataRng::new(seed);
        let indices: Vec<u16> = (0..mapping.n_stile * w.cb)
            .map(|_| rng.index(w.ct) as u16)
            .collect();
        let lut: Vec<i8> = (0..w.cb * w.ct * mapping.f_stile)
            .map(|_| (rng.index(255) as i32 - 127) as i8)
            .collect();
        let (out, stats) = interpret(&program, &platform, PeOperands {
            indices: &indices,
            lut: &lut,
            scale: 0.01,
        }).unwrap();

        // Scalar reference over the PE tile.
        for r in 0..mapping.n_stile {
            for f in 0..mapping.f_stile {
                let mut acc = 0i32;
                for c in 0..w.cb {
                    let sel = indices[r * w.cb + c] as usize;
                    acc += lut[(c * w.ct + sel) * mapping.f_stile + f] as i32;
                }
                prop_assert!((out.get(r, f) - acc as f32 * 0.01).abs() < 1e-4);
            }
        }

        let cost = estimate_cost(&platform, &w, &mapping).unwrap();
        prop_assert_eq!(stats.index_loads, cost.accesses.index_loads);
        prop_assert_eq!(stats.output_loads, cost.accesses.output_loads);
        prop_assert_eq!(stats.output_stores, cost.accesses.output_stores);
        prop_assert_eq!(stats.lut_accesses, cost.accesses.lut_accesses);
        prop_assert_eq!(stats.lut_bytes, cost.accesses.lut_bytes);
        prop_assert_eq!(stats.reduce_ops, cost.accesses.reduce_ops);
    }
}
