//! Functional execution of the LUT micro-kernel on the simulated PEs.
//!
//! Every PE really performs its gather-accumulate over the INT8 tables, so
//! simulated results are bit-checkable against the host reference
//! (`pimdl_lutnn::lut::QuantLutTable::lookup`). The cost attached to a run
//! comes from [`crate::cost`] evaluated with the *measured* index-repeat
//! fraction, so functional execution and cost estimation share one model.

use pimdl_tensor::Matrix;

use crate::config::PlatformConfig;
use crate::cost::{cost_with_repeat, CostReport};
use crate::mapping::{LutWorkload, Mapping};
use crate::{Result, SimError};

/// Borrowed kernel operands in the simulator's wire format: one byte (or
/// two) per index, one INT8 code per table entry, a single dequantization
/// scale.
#[derive(Debug, Clone, Copy)]
pub struct LutKernelData<'a> {
    /// Index matrix, row-major `N x CB`.
    pub indices: &'a [u16],
    /// LUT codes, row-major `(CB*CT) x F`.
    pub table: &'a [i8],
    /// Dequantization scale applied once per output element.
    pub scale: f32,
}

/// Measures the fraction of `(row, codebook)` gathers whose index equals the
/// previous row's index in the same codebook column (the fine-grain
/// row-hit opportunity).
pub fn measure_repeat_fraction(indices: &[u16], n: usize, cb: usize) -> f64 {
    if n < 2 || cb == 0 {
        return 0.0;
    }
    let mut repeats = 0u64;
    for r in 1..n {
        for c in 0..cb {
            if indices[r * cb + c] == indices[(r - 1) * cb + c] {
                repeats += 1;
            }
        }
    }
    repeats as f64 / ((n - 1) as u64 * cb as u64) as f64
}

/// Runs the LUT kernel functionally on every simulated PE and returns the
/// assembled `N x F` output together with the measured-cost report.
///
/// PE `(group i, member j)` computes output rows
/// `[i·N_s, (i+1)·N_s) x [j·F_s, (j+1)·F_s)` — the sub-LUT partition of
/// Fig. 8-(a). No inter-PE communication occurs (limitation **L2** is
/// respected by construction: neither `CT` nor `CB` is split across PEs).
///
/// # Errors
///
/// Returns [`SimError::WorkloadMismatch`] if the operand slices disagree
/// with the workload shape, or an illegal-mapping error from validation.
pub fn run_lut_kernel(
    platform: &PlatformConfig,
    workload: &LutWorkload,
    mapping: &Mapping,
    data: LutKernelData<'_>,
) -> Result<(Matrix, CostReport)> {
    let w = workload;
    if data.indices.len() != w.n * w.cb {
        return Err(SimError::WorkloadMismatch {
            detail: format!(
                "index slice has {} entries, workload needs {}",
                data.indices.len(),
                w.n * w.cb
            ),
        });
    }
    if data.table.len() != w.cb * w.ct * w.f {
        return Err(SimError::WorkloadMismatch {
            detail: format!(
                "table slice has {} entries, workload needs {}",
                data.table.len(),
                w.cb * w.ct * w.f
            ),
        });
    }
    if let Some(&bad) = data.indices.iter().find(|&&i| (i as usize) >= w.ct) {
        return Err(SimError::WorkloadMismatch {
            detail: format!("index {bad} >= CT = {}", w.ct),
        });
    }
    let repeat = measure_repeat_fraction(data.indices, w.n, w.cb);
    let report = cost_with_repeat(platform, w, mapping, repeat)?;

    let groups = mapping.groups(w);
    let per_group = mapping.pes_per_group(w);
    let (n_s, f_s) = (mapping.n_stile, mapping.f_stile);

    let mut output = Matrix::zeros(w.n, w.f);
    {
        // Parallel functional execution: bands of output rows are disjoint,
        // one band per PE group; PEs within a group write disjoint column
        // ranges of the band.
        let cols = w.f;
        let bands: Vec<&mut [f32]> = output.as_mut_slice().chunks_mut(n_s * cols).collect();
        crossbeam::scope(|scope| {
            for (g, band) in bands.into_iter().enumerate() {
                let indices = data.indices;
                let table = data.table;
                let scale = data.scale;
                scope.spawn(move |_| {
                    // Each group's band is computed by `per_group` logical
                    // PEs; we execute them in sequence inside the band's
                    // thread (their regions are disjoint columns).
                    for j in 0..per_group {
                        let col0 = j * f_s;
                        for local_r in 0..n_s {
                            let r = g * n_s + local_r;
                            let idx_row = &indices[r * w.cb..(r + 1) * w.cb];
                            let out_row =
                                &mut band[local_r * cols + col0..local_r * cols + col0 + f_s];
                            let mut acc = vec![0i32; f_s];
                            for (cb, &k) in idx_row.iter().enumerate() {
                                let trow = (cb * w.ct + k as usize) * w.f + col0;
                                let entries = &table[trow..trow + f_s];
                                for (a, &e) in acc.iter_mut().zip(entries) {
                                    *a += e as i32;
                                }
                            }
                            for (o, &a) in out_row.iter_mut().zip(&acc) {
                                *o = a as f32 * scale;
                            }
                        }
                    }
                });
            }
        })
        .expect("simulated PE panicked");
        let _ = groups;
    }

    Ok((output, report))
}

/// Extracts PE `(group, member)`'s operands from the global workload data,
/// in the layout [`crate::interp::interpret`] expects: the group's index
/// tile (`N_s × CB`) and the member's LUT feature slice (`CB × CT × F_s`).
pub fn pe_operand_tiles(
    workload: &LutWorkload,
    mapping: &Mapping,
    data: LutKernelData<'_>,
    group: usize,
    member: usize,
) -> (Vec<u16>, Vec<i8>) {
    let w = workload;
    let m = mapping;
    let mut idx_tile = Vec::with_capacity(m.n_stile * w.cb);
    for r in 0..m.n_stile {
        let global_r = group * m.n_stile + r;
        idx_tile.extend_from_slice(&data.indices[global_r * w.cb..(global_r + 1) * w.cb]);
    }
    let col0 = member * m.f_stile;
    let mut lut_tile = Vec::with_capacity(w.cb * w.ct * m.f_stile);
    for cb in 0..w.cb {
        for ct in 0..w.ct {
            let base = (cb * w.ct + ct) * w.f + col0;
            lut_tile.extend_from_slice(&data.table[base..base + m.f_stile]);
        }
    }
    (idx_tile, lut_tile)
}

/// Runs the LUT kernel by compiling the mapping to a PIM binary
/// ([`crate::isa::compile`]) and interpreting it on every PE
/// ([`crate::interp::interpret`]).
///
/// Slower than [`run_lut_kernel`] (it executes the explicit instruction
/// stream) but exercises exactly the loop nest the auto-tuned mapping
/// describes; the returned per-PE stats carry the executed access counts.
///
/// # Errors
///
/// Propagates operand-shape and compilation errors.
pub fn run_lut_kernel_compiled(
    platform: &PlatformConfig,
    workload: &LutWorkload,
    mapping: &Mapping,
    data: LutKernelData<'_>,
) -> Result<(Matrix, Vec<crate::interp::InterpStats>)> {
    let w = workload;
    if data.indices.len() != w.n * w.cb {
        return Err(SimError::WorkloadMismatch {
            detail: format!(
                "index slice has {} entries, workload needs {}",
                data.indices.len(),
                w.n * w.cb
            ),
        });
    }
    if data.table.len() != w.cb * w.ct * w.f {
        return Err(SimError::WorkloadMismatch {
            detail: format!(
                "table slice has {} entries, workload needs {}",
                data.table.len(),
                w.cb * w.ct * w.f
            ),
        });
    }
    mapping.validate(workload, platform)?;
    let program = crate::isa::compile(workload, mapping)?;
    let mut out = Matrix::zeros(w.n, w.f);
    let mut stats = Vec::with_capacity(platform.num_pes);
    for group in 0..mapping.groups(w) {
        for member in 0..mapping.pes_per_group(w) {
            let (idx_tile, lut_tile) = pe_operand_tiles(workload, mapping, data, group, member);
            let (pe_out, pe_stats) = crate::interp::interpret(
                &program,
                platform,
                crate::interp::PeOperands {
                    indices: &idx_tile,
                    lut: &lut_tile,
                    scale: data.scale,
                },
            )?;
            out.set_submatrix(group * mapping.n_stile, member * mapping.f_stile, &pe_out)
                .map_err(|e| SimError::Execution {
                    detail: format!("tile assembly failed: {e}"),
                })?;
            stats.push(pe_stats);
        }
    }
    Ok((out, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::{LoadScheme, MicroKernel, TraversalOrder};
    use pimdl_tensor::rng::DataRng;

    fn platform(pes: usize) -> PlatformConfig {
        let mut p = PlatformConfig::upmem();
        p.num_pes = pes;
        p
    }

    fn mapping() -> Mapping {
        Mapping {
            n_stile: 8,
            f_stile: 8,
            kernel: MicroKernel {
                n_mtile: 4,
                f_mtile: 4,
                cb_mtile: 2,
                traversal: TraversalOrder::Nfc,
                load_scheme: LoadScheme::FineGrain {
                    f_load: 4,
                    threads: 8,
                },
            },
        }
    }

    fn random_operands(w: &LutWorkload, seed: u64) -> (Vec<u16>, Vec<i8>) {
        let mut rng = DataRng::new(seed);
        let indices: Vec<u16> = (0..w.n * w.cb).map(|_| rng.index(w.ct) as u16).collect();
        let table: Vec<i8> = (0..w.cb * w.ct * w.f)
            .map(|_| (rng.index(255) as i32 - 127) as i8)
            .collect();
        (indices, table)
    }

    /// Host reference: plain gather-accumulate.
    fn reference(w: &LutWorkload, indices: &[u16], table: &[i8], scale: f32) -> Matrix {
        let mut out = Matrix::zeros(w.n, w.f);
        for r in 0..w.n {
            for cb in 0..w.cb {
                let k = indices[r * w.cb + cb] as usize;
                for f in 0..w.f {
                    let e = table[(cb * w.ct + k) * w.f + f] as f32;
                    let cur = out.get(r, f);
                    out.set(r, f, cur + e);
                }
            }
        }
        out.scale(scale)
    }

    #[test]
    fn functional_output_matches_reference() {
        let w = LutWorkload::new(32, 4, 8, 16).unwrap();
        let (indices, table) = random_operands(&w, 0);
        let data = LutKernelData {
            indices: &indices,
            table: &table,
            scale: 0.05,
        };
        // 4 groups × 2 PEs = 8 PEs.
        let (out, report) = run_lut_kernel(&platform(8), &w, &mapping(), data).unwrap();
        let expected = reference(&w, &indices, &table, 0.05);
        assert!(out.approx_eq(&expected, 1e-5));
        assert!(report.time.total_s() > 0.0);
    }

    #[test]
    fn cost_uses_measured_repeat_fraction() {
        let w = LutWorkload::new(32, 4, 8, 16).unwrap();
        // All-identical indices → repeat fraction 1.0.
        let indices = vec![3u16; w.n * w.cb];
        let (_, table) = random_operands(&w, 1);
        let data = LutKernelData {
            indices: &indices,
            table: &table,
            scale: 1.0,
        };
        let (_, report) = run_lut_kernel(&platform(8), &w, &mapping(), data).unwrap();
        assert!((report.repeat_fraction - 1.0).abs() < 1e-9);

        // Alternating indices → repeat fraction 0.0.
        let indices: Vec<u16> = (0..w.n * w.cb).map(|i| ((i / w.cb) % 2) as u16).collect();
        let data = LutKernelData {
            indices: &indices,
            table: &table,
            scale: 1.0,
        };
        let (_, report0) = run_lut_kernel(&platform(8), &w, &mapping(), data).unwrap();
        assert_eq!(report0.repeat_fraction, 0.0);
        // Full repeats must be cheaper on the fine-grain LUT path.
        assert!(report.time.kernel_lut_s < report0.time.kernel_lut_s);
    }

    #[test]
    fn run_report_equals_estimate_with_same_repeat() {
        let w = LutWorkload::new(32, 4, 8, 16).unwrap();
        let (indices, table) = random_operands(&w, 2);
        let data = LutKernelData {
            indices: &indices,
            table: &table,
            scale: 1.0,
        };
        let p = platform(8);
        let m = mapping();
        let (_, run_report) = run_lut_kernel(&p, &w, &m, data).unwrap();
        let repeat = measure_repeat_fraction(&indices, w.n, w.cb);
        let est = cost_with_repeat(&p, &w, &m, repeat).unwrap();
        assert_eq!(run_report, est);
    }

    #[test]
    fn operand_shape_validation() {
        let w = LutWorkload::new(32, 4, 8, 16).unwrap();
        let (indices, table) = random_operands(&w, 3);
        let p = platform(8);
        let m = mapping();

        let bad_idx = LutKernelData {
            indices: &indices[..10],
            table: &table,
            scale: 1.0,
        };
        assert!(run_lut_kernel(&p, &w, &m, bad_idx).is_err());

        let bad_table = LutKernelData {
            indices: &indices,
            table: &table[..10],
            scale: 1.0,
        };
        assert!(run_lut_kernel(&p, &w, &m, bad_table).is_err());

        let mut big = indices.clone();
        big[0] = 99;
        let bad_value = LutKernelData {
            indices: &big,
            table: &table,
            scale: 1.0,
        };
        assert!(run_lut_kernel(&p, &w, &m, bad_value).is_err());
    }

    #[test]
    fn compiled_runner_matches_direct_executor() {
        let w = LutWorkload::new(32, 4, 8, 16).unwrap();
        let (indices, table) = random_operands(&w, 21);
        let data = LutKernelData {
            indices: &indices,
            table: &table,
            scale: 0.04,
        };
        let p = platform(8);
        let m = mapping();
        let (direct, _) = run_lut_kernel(&p, &w, &m, data).unwrap();
        let (compiled, stats) = run_lut_kernel_compiled(&p, &w, &m, data).unwrap();
        assert!(compiled.approx_eq(&direct, 1e-5));
        assert_eq!(stats.len(), 8);
        // Deterministic reduce work is identical across PEs.
        for s in &stats {
            assert_eq!(s.reduce_ops, stats[0].reduce_ops);
            assert!(s.time_s > 0.0);
        }
    }

    #[test]
    fn repeat_fraction_edge_cases() {
        assert_eq!(measure_repeat_fraction(&[], 0, 0), 0.0);
        assert_eq!(measure_repeat_fraction(&[1, 2], 1, 2), 0.0);
        assert_eq!(measure_repeat_fraction(&[1, 1], 2, 1), 1.0);
        assert_eq!(measure_repeat_fraction(&[1, 2], 2, 1), 0.0);
    }

    #[test]
    fn partition_covers_output_exactly_once() {
        // Different n_stile/f_stile splits produce identical outputs — each
        // output element is owned by exactly one PE.
        let w = LutWorkload::new(16, 4, 8, 16).unwrap();
        let (indices, table) = random_operands(&w, 4);
        let data = LutKernelData {
            indices: &indices,
            table: &table,
            scale: 1.0,
        };
        let base = reference(&w, &indices, &table, 1.0);
        for (n_s, f_s, pes) in [(16, 16, 1), (8, 16, 2), (16, 4, 4), (4, 4, 16)] {
            let m = Mapping {
                n_stile: n_s,
                f_stile: f_s,
                kernel: MicroKernel {
                    n_mtile: n_s.min(4),
                    f_mtile: f_s.min(4),
                    cb_mtile: 2,
                    traversal: TraversalOrder::Ncf,
                    load_scheme: LoadScheme::Static,
                },
            };
            let (out, _) = run_lut_kernel(&platform(pes), &w, &m, data).unwrap();
            assert!(out.approx_eq(&base, 1e-5), "n_s={n_s} f_s={f_s}");
        }
    }
}
