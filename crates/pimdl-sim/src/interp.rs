//! Interpreter for the PE instruction set of [`crate::isa`].
//!
//! Executes a compiled [`PimProgram`] against one PE's operands (its index
//! tile and LUT tile) exactly as the simulated hardware would: DMA
//! instructions move tiles between local memory and the on-chip buffer
//! (charged through the platform's [`LocalMemModel`]), gathers respect the
//! per-thread hold-last-entry reuse of the fine-grain scheme, and
//! accumulates run in i32 at `single_reduce_s` per operation.
//!
//! The interpreter produces the PE's output tile **and** the executed
//! access counts, so the closed-form model of [`crate::cost`] can be
//! validated against a real execution of the very loop nest it prices.

use pimdl_tensor::Matrix;

use crate::config::PlatformConfig;
use crate::isa::{Instr, PimProgram};
use crate::mapping::LoadScheme;
use crate::{Result, SimError};

/// Executed-access statistics of one program run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct InterpStats {
    /// Index MTile DMA count.
    pub index_loads: u64,
    /// Output MTile DMAs into the buffer (zero-init visits excluded).
    pub output_loads: u64,
    /// Output MTile DMAs back to local memory.
    pub output_stores: u64,
    /// LUT DMA/gather accesses that actually touched local memory.
    pub lut_accesses: u64,
    /// LUT bytes moved from local memory.
    pub lut_bytes: u64,
    /// Fine-grain gathers skipped by the hold-last-entry reuse.
    pub gathers_reused: u64,
    /// Accumulate operations executed.
    pub reduce_ops: u64,
    /// Modeled execution time (seconds).
    pub time_s: f64,
}

/// One PE's operands: its index tile (`N_s x CB`, row-major) and its LUT
/// tile (`CB x CT x F_s`, laid out `(cb * CT + ct) * F_s + f`).
#[derive(Debug, Clone, Copy)]
pub struct PeOperands<'a> {
    /// Index tile, `n_stile * cb` entries.
    pub indices: &'a [u16],
    /// LUT tile codes, `cb * ct * f_stile` entries.
    pub lut: &'a [i8],
    /// Dequantization scale.
    pub scale: f32,
}

/// Executes a program on one PE.
///
/// Returns the PE's `(N_s-tile x F_s-tile)` output and the executed
/// statistics.
///
/// # Errors
///
/// Returns [`SimError::WorkloadMismatch`] if the operand slices disagree
/// with the program's shapes, or [`SimError::Execution`] if an instruction
/// references out-of-range coordinates (a compiler bug, surfaced loudly).
pub fn interpret(
    program: &PimProgram,
    platform: &PlatformConfig,
    operands: PeOperands<'_>,
) -> Result<(Matrix, InterpStats)> {
    let w = &program.workload;
    let m = &program.mapping;
    let k = &m.kernel;
    let (n_s, f_s, cb, ct) = (m.n_stile, m.f_stile, w.cb, w.ct);
    if operands.indices.len() != n_s * cb {
        return Err(SimError::WorkloadMismatch {
            detail: format!(
                "index tile has {} entries, expected {}",
                operands.indices.len(),
                n_s * cb
            ),
        });
    }
    if operands.lut.len() != cb * ct * f_s {
        return Err(SimError::WorkloadMismatch {
            detail: format!(
                "LUT tile has {} entries, expected {}",
                operands.lut.len(),
                cb * ct * f_s
            ),
        });
    }

    let lm = &platform.local_mem;
    let idx_bytes = w.index_elem_bytes();
    let mut stats = InterpStats::default();
    let mut out = Matrix::zeros(n_s, f_s);
    // i32 accumulators for the whole PE tile (the interpreter models the
    // on-chip MTile accumulator; using the full tile keeps bookkeeping
    // simple while Store/Load instructions still pay their DMA costs).
    let mut acc = vec![0i32; n_s * f_s];
    let mut current_index: Option<(u32, u32)> = None;
    // Fine-grain per-thread hold-last: last gathered (index) per codebook
    // column of the current index MTile (reset when the MTile changes).
    let mut last_gathered: std::collections::HashMap<u32, u16> = std::collections::HashMap::new();

    let oob = |what: &str| SimError::Execution {
        detail: format!("instruction references out-of-range {what}"),
    };

    let (f_load, threads) = match k.load_scheme {
        LoadScheme::FineGrain { f_load, threads } => (f_load, threads),
        _ => (k.f_mtile, 1),
    };

    for instr in &program.instrs {
        match *instr {
            Instr::LoadLutAll => {
                let bytes = (cb * ct * f_s) as u64;
                stats.lut_accesses += 1;
                stats.lut_bytes += bytes;
                stats.time_s += lm.sim_time_s(bytes as f64, bytes as f64, 1);
            }
            Instr::LoadLutChunk { cb0, f0 } => {
                let LoadScheme::CoarseGrain { cb_load, f_load } = k.load_scheme else {
                    return Err(SimError::Execution {
                        detail: "LoadLutChunk outside coarse-grain scheme".to_string(),
                    });
                };
                if cb0 as usize + cb_load > cb || f0 as usize + f_load > f_s {
                    return Err(oob("LUT chunk"));
                }
                let bytes = (cb_load * ct * f_load) as u64;
                stats.lut_accesses += 1;
                stats.lut_bytes += bytes;
                stats.time_s += lm.sim_time_s(bytes as f64, bytes as f64, 1);
            }
            Instr::LoadIndex { n0, cb0 } => {
                if n0 as usize + k.n_mtile > n_s || cb0 as usize + k.cb_mtile > cb {
                    return Err(oob("index MTile"));
                }
                let bytes = (k.n_mtile * k.cb_mtile * idx_bytes) as f64;
                stats.index_loads += 1;
                stats.time_s += lm.sim_time_s(bytes, bytes, 1);
                current_index = Some((n0, cb0));
                last_gathered.clear();
            }
            Instr::ZeroOutput { n0, f0 } => {
                if n0 as usize + k.n_mtile > n_s || f0 as usize + k.f_mtile > f_s {
                    return Err(oob("output MTile"));
                }
                for r in n0 as usize..n0 as usize + k.n_mtile {
                    for c in f0 as usize..f0 as usize + k.f_mtile {
                        acc[r * f_s + c] = 0;
                    }
                }
                // First visit still allocates/initializes the buffer; we
                // charge it like a load (the cost model counts zero-init
                // visits in LCount_output as well).
                let bytes = (k.n_mtile * k.f_mtile * 4) as f64;
                stats.output_loads += 1;
                stats.time_s += lm.sim_time_s(bytes, bytes, 1);
            }
            Instr::LoadOutput { n0, f0 } => {
                if n0 as usize + k.n_mtile > n_s || f0 as usize + k.f_mtile > f_s {
                    return Err(oob("output MTile"));
                }
                let bytes = (k.n_mtile * k.f_mtile * 4) as f64;
                stats.output_loads += 1;
                stats.time_s += lm.sim_time_s(bytes, bytes, 1);
            }
            Instr::StoreOutput { n0, f0 } => {
                if n0 as usize + k.n_mtile > n_s || f0 as usize + k.f_mtile > f_s {
                    return Err(oob("output MTile"));
                }
                let bytes = (k.n_mtile * k.f_mtile * 4) as f64;
                stats.output_stores += 1;
                stats.time_s += lm.sim_time_s(bytes, bytes, 1);
            }
            Instr::AccumulateResident {
                cb0,
                count,
                f0,
                f_count,
            } => {
                let Some((n0, _)) = current_index else {
                    return Err(SimError::Execution {
                        detail: "accumulate before any index MTile load".to_string(),
                    });
                };
                if cb0 as usize + count as usize > cb || f0 as usize + f_count as usize > f_s {
                    return Err(oob("resident accumulate"));
                }
                for r in n0 as usize..n0 as usize + k.n_mtile {
                    for c in cb0 as usize..(cb0 + count) as usize {
                        let sel = operands.indices[r * cb + c] as usize;
                        if sel >= ct {
                            return Err(SimError::Execution {
                                detail: format!("index {sel} >= CT = {ct}"),
                            });
                        }
                        let base = (c * ct + sel) * f_s;
                        for fcol in f0 as usize..(f0 + f_count) as usize {
                            acc[r * f_s + fcol] += operands.lut[base + fcol] as i32;
                            stats.reduce_ops += 1;
                        }
                    }
                }
            }
            Instr::GatherAccumulate { cb: col, f0 } => {
                let Some((n0, _)) = current_index else {
                    return Err(SimError::Execution {
                        detail: "gather before any index MTile load".to_string(),
                    });
                };
                if col as usize >= cb || f0 as usize + f_load > f_s {
                    return Err(oob("gather"));
                }
                for r in n0 as usize..n0 as usize + k.n_mtile {
                    let sel = operands.indices[r * cb + col as usize];
                    if sel as usize >= ct {
                        return Err(SimError::Execution {
                            detail: format!("index {sel} >= CT = {ct}"),
                        });
                    }
                    // Hold-last-entry reuse: a repeat of the previous row's
                    // index in this codebook hits the thread buffer.
                    if last_gathered.get(&col) == Some(&sel) {
                        stats.gathers_reused += 1;
                    } else {
                        stats.lut_accesses += 1;
                        stats.lut_bytes += f_load as u64;
                        stats.time_s += lm.ideal_time_s(f_load as f64, f_load as f64)
                            + lm.access_overhead_s / threads.max(1) as f64;
                        last_gathered.insert(col, sel);
                    }
                    let base = (col as usize * ct + sel as usize) * f_s;
                    for fcol in f0 as usize..f0 as usize + f_load {
                        acc[r * f_s + fcol] += operands.lut[base + fcol] as i32;
                        stats.reduce_ops += 1;
                    }
                }
            }
        }
    }

    // Reduce time: per-op rate with the short-loop stall of the cost model.
    let stall = 1.0 + crate::cost::REDUCE_LOOP_OVERHEAD / k.f_mtile as f64;
    stats.time_s += stats.reduce_ops as f64 * platform.single_reduce_s * stall;

    for r in 0..n_s {
        for c in 0..f_s {
            out.set(r, c, acc[r * f_s + c] as f32 * operands.scale);
        }
    }
    Ok((out, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::estimate_cost;
    use crate::isa::compile;
    use crate::mapping::{LutWorkload, Mapping, MicroKernel, TraversalOrder};
    use pimdl_tensor::rng::DataRng;

    fn platform() -> PlatformConfig {
        let mut p = PlatformConfig::upmem();
        p.num_pes = 8; // groups 4 × per-group 2 for the test mapping
        p
    }

    fn workload() -> LutWorkload {
        LutWorkload::new(64, 8, 16, 32).unwrap()
    }

    fn mapping(scheme: LoadScheme, traversal: TraversalOrder) -> Mapping {
        Mapping {
            n_stile: 16,
            f_stile: 16,
            kernel: MicroKernel {
                n_mtile: 4,
                f_mtile: 4,
                cb_mtile: 4,
                traversal,
                load_scheme: scheme,
            },
        }
    }

    fn operands(w: &LutWorkload, m: &Mapping, seed: u64) -> (Vec<u16>, Vec<i8>) {
        let mut rng = DataRng::new(seed);
        let indices: Vec<u16> = (0..m.n_stile * w.cb)
            .map(|_| rng.index(w.ct) as u16)
            .collect();
        let lut: Vec<i8> = (0..w.cb * w.ct * m.f_stile)
            .map(|_| (rng.index(255) as i32 - 127) as i8)
            .collect();
        (indices, lut)
    }

    fn reference(w: &LutWorkload, m: &Mapping, indices: &[u16], lut: &[i8], scale: f32) -> Matrix {
        let mut out = Matrix::zeros(m.n_stile, m.f_stile);
        for r in 0..m.n_stile {
            for c in 0..w.cb {
                let sel = indices[r * w.cb + c] as usize;
                for f in 0..m.f_stile {
                    let e = lut[(c * w.ct + sel) * m.f_stile + f] as f32;
                    let cur = out.get(r, f);
                    out.set(r, f, cur + e);
                }
            }
        }
        out.scale(scale)
    }

    #[test]
    fn interpreter_matches_reference_all_schemes_and_orders() {
        let w = workload();
        let p = platform();
        for scheme in [
            LoadScheme::Static,
            LoadScheme::CoarseGrain {
                cb_load: 2,
                f_load: 2,
            },
            LoadScheme::FineGrain {
                f_load: 4,
                threads: 8,
            },
        ] {
            for traversal in TraversalOrder::all() {
                let m = mapping(scheme, traversal);
                let (indices, lut) = operands(&w, &m, 7);
                let program = compile(&w, &m).unwrap();
                let (out, stats) = interpret(
                    &program,
                    &p,
                    PeOperands {
                        indices: &indices,
                        lut: &lut,
                        scale: 0.03,
                    },
                )
                .unwrap();
                let expected = reference(&w, &m, &indices, &lut, 0.03);
                assert!(
                    out.approx_eq(&expected, 1e-4),
                    "{:?} {traversal}: max diff {}",
                    scheme.name(),
                    out.sub(&expected).unwrap().max_abs()
                );
                assert!(stats.time_s > 0.0);
                assert_eq!(stats.reduce_ops, (m.n_stile * w.cb * m.f_stile) as u64);
            }
        }
    }

    #[test]
    fn executed_counts_match_cost_model_static() {
        let w = workload();
        let p = platform();
        for traversal in TraversalOrder::all() {
            let m = mapping(LoadScheme::Static, traversal);
            let (indices, lut) = operands(&w, &m, 8);
            let program = compile(&w, &m).unwrap();
            let (_, stats) = interpret(
                &program,
                &p,
                PeOperands {
                    indices: &indices,
                    lut: &lut,
                    scale: 1.0,
                },
            )
            .unwrap();
            let cost = estimate_cost(&p, &w, &m).unwrap();
            assert_eq!(stats.index_loads, cost.accesses.index_loads, "{traversal}");
            assert_eq!(
                stats.output_loads, cost.accesses.output_loads,
                "{traversal}"
            );
            assert_eq!(
                stats.output_stores, cost.accesses.output_stores,
                "{traversal}"
            );
            assert_eq!(
                stats.lut_accesses, cost.accesses.lut_accesses,
                "{traversal}"
            );
            assert_eq!(stats.lut_bytes, cost.accesses.lut_bytes, "{traversal}");
            assert_eq!(stats.reduce_ops, cost.accesses.reduce_ops, "{traversal}");
        }
    }

    #[test]
    fn executed_fine_grain_reuse_tracks_repeat_fraction() {
        let w = workload();
        let p = platform();
        let m = mapping(
            LoadScheme::FineGrain {
                f_load: 4,
                threads: 8,
            },
            TraversalOrder::Ncf,
        );
        // All-identical indices: within every index MTile all rows after
        // the first hit the hold-last buffer.
        let indices = vec![3u16; m.n_stile * w.cb];
        let (_, lut) = operands(&w, &m, 9);
        let program = compile(&w, &m).unwrap();
        let (_, stats) = interpret(
            &program,
            &p,
            PeOperands {
                indices: &indices,
                lut: &lut,
                scale: 1.0,
            },
        )
        .unwrap();
        assert!(
            stats.gathers_reused > stats.lut_accesses,
            "reused {} vs accessed {}",
            stats.gathers_reused,
            stats.lut_accesses
        );

        // Alternating indices defeat the reuse entirely.
        let alt: Vec<u16> = (0..m.n_stile * w.cb)
            .map(|i| ((i / w.cb) % 2) as u16)
            .collect();
        let (_, stats_alt) = interpret(
            &program,
            &p,
            PeOperands {
                indices: &alt,
                lut: &lut,
                scale: 1.0,
            },
        )
        .unwrap();
        assert_eq!(stats_alt.gathers_reused, 0);
    }

    #[test]
    fn interpreter_rejects_malformed_operands() {
        let w = workload();
        let p = platform();
        let m = mapping(LoadScheme::Static, TraversalOrder::Nfc);
        let (indices, lut) = operands(&w, &m, 10);
        let program = compile(&w, &m).unwrap();
        assert!(interpret(
            &program,
            &p,
            PeOperands {
                indices: &indices[..10],
                lut: &lut,
                scale: 1.0
            }
        )
        .is_err());
        assert!(interpret(
            &program,
            &p,
            PeOperands {
                indices: &indices,
                lut: &lut[..10],
                scale: 1.0
            }
        )
        .is_err());
        let mut bad = indices.clone();
        bad[0] = 999;
        assert!(interpret(
            &program,
            &p,
            PeOperands {
                indices: &bad,
                lut: &lut,
                scale: 1.0
            }
        )
        .is_err());
    }

    #[test]
    fn interpreter_time_close_to_cost_model() {
        // The interpreter charges the same primitives as the cost model;
        // totals should agree tightly for static (deterministic traffic).
        let w = workload();
        let p = platform();
        let m = mapping(LoadScheme::Static, TraversalOrder::Nfc);
        let (indices, lut) = operands(&w, &m, 11);
        let program = compile(&w, &m).unwrap();
        let (_, stats) = interpret(
            &program,
            &p,
            PeOperands {
                indices: &indices,
                lut: &lut,
                scale: 1.0,
            },
        )
        .unwrap();
        let cost = estimate_cost(&p, &w, &m).unwrap();
        let model = cost.time.micro_kernel_total_s();
        let rel = (stats.time_s - model).abs() / model;
        assert!(
            rel < 0.05,
            "interp {} vs model {} ({rel})",
            stats.time_s,
            model
        );
    }
}
