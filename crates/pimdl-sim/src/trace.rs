//! Per-PE execution tracing and load-balance analysis (limitation **L3** of
//! §5.1: "the slowest PE determines the finish time").
//!
//! The sub-LUT partition gives every PE an identical work shape, so with
//! ideal hardware the kernel is perfectly balanced. Real PEs are not ideal:
//! refresh collisions, bank conflicts, and voltage/frequency margins skew
//! per-PE completion times. [`PeVariation`] models that skew as a
//! deterministic per-PE speed factor; [`trace_kernel`] produces a per-PE
//! timeline whose maximum is the kernel's true finish time and whose spread
//! quantifies the imbalance penalty.

use serde::{Deserialize, Serialize};

use crate::config::PlatformConfig;
use crate::cost::{cost_with_repeat, CostReport};
use crate::mapping::{LutWorkload, Mapping};
use crate::Result;

/// Deterministic per-PE speed variation model.
///
/// PE `i`'s execution time is scaled by `1 + amplitude * u(i)` where
/// `u(i) ∈ [0, 1)` is a hash of `(seed, i)` — reproducible without any RNG
/// state.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PeVariation {
    /// Maximum fractional slowdown of the slowest PE (0 = ideal hardware).
    pub amplitude: f64,
    /// Hash seed.
    pub seed: u64,
}

impl PeVariation {
    /// Ideal hardware: every PE identical.
    pub const IDEAL: PeVariation = PeVariation {
        amplitude: 0.0,
        seed: 0,
    };

    /// Speed factor (≥ 1.0) of PE `i`.
    pub fn factor(&self, pe: usize) -> f64 {
        if self.amplitude <= 0.0 {
            return 1.0;
        }
        // SplitMix64-style hash for a uniform, stateless per-PE value.
        let mut z = self.seed ^ (pe as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let u = (z >> 11) as f64 / (1u64 << 53) as f64;
        1.0 + self.amplitude * u
    }
}

/// One PE's entry in a kernel trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PeTraceEntry {
    /// PE index (group-major: `group * pes_per_group + member`).
    pub pe: usize,
    /// PE group (owns one index row tile).
    pub group: usize,
    /// Member within the group (owns one LUT feature tile).
    pub member: usize,
    /// Micro-kernel time on this PE including its speed factor (s).
    pub kernel_s: f64,
    /// The speed factor applied.
    pub speed_factor: f64,
}

/// A full kernel trace: per-PE timings plus the balance statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelTrace {
    /// Per-PE entries, in PE order.
    pub entries: Vec<PeTraceEntry>,
    /// Host↔PIM (sub-LUT partition) time, shared by all PEs (s).
    pub sub_lut_s: f64,
    /// Kernel time of the fastest PE (s).
    pub min_kernel_s: f64,
    /// Kernel time of the slowest PE — the finish time (s).
    pub max_kernel_s: f64,
    /// Mean per-PE kernel time (s).
    pub mean_kernel_s: f64,
    /// End-to-end latency: transfers + slowest PE (s).
    pub total_s: f64,
    /// Idle fraction: average PE idle time waiting for the straggler.
    pub imbalance: f64,
}

impl KernelTrace {
    /// The latency penalty of PE variation relative to ideal hardware
    /// (`max / mean` of the kernel phase).
    pub fn straggler_penalty(&self) -> f64 {
        if self.mean_kernel_s <= 0.0 {
            1.0
        } else {
            self.max_kernel_s / self.mean_kernel_s
        }
    }
}

/// Produces the per-PE timeline of one kernel launch under a PE-variation
/// model. The underlying per-PE work is identical by construction (the
/// even sub-LUT partition), so all divergence comes from `variation`.
///
/// # Errors
///
/// Returns an illegal-mapping error from cost evaluation.
pub fn trace_kernel(
    platform: &PlatformConfig,
    workload: &LutWorkload,
    mapping: &Mapping,
    repeat_fraction: f64,
    variation: PeVariation,
) -> Result<KernelTrace> {
    let report: CostReport = cost_with_repeat(platform, workload, mapping, repeat_fraction)?;
    let base_kernel_s = report.time.micro_kernel_total_s();
    let sub_lut_s = report.time.sub_lut_total_s();
    let groups = mapping.groups(workload);
    let per_group = mapping.pes_per_group(workload);

    let mut entries = Vec::with_capacity(groups * per_group);
    let mut min = f64::INFINITY;
    let mut max: f64 = 0.0;
    let mut sum = 0.0;
    for g in 0..groups {
        for m in 0..per_group {
            let pe = g * per_group + m;
            let factor = variation.factor(pe);
            let kernel_s = base_kernel_s * factor;
            min = min.min(kernel_s);
            max = max.max(kernel_s);
            sum += kernel_s;
            entries.push(PeTraceEntry {
                pe,
                group: g,
                member: m,
                kernel_s,
                speed_factor: factor,
            });
        }
    }
    let n = entries.len().max(1) as f64;
    let mean = sum / n;
    Ok(KernelTrace {
        sub_lut_s,
        min_kernel_s: min,
        max_kernel_s: max,
        mean_kernel_s: mean,
        total_s: sub_lut_s + max,
        imbalance: if max > 0.0 { 1.0 - mean / max } else { 0.0 },
        entries,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::{LoadScheme, MicroKernel, TraversalOrder};

    fn setup() -> (PlatformConfig, LutWorkload, Mapping) {
        let mut p = PlatformConfig::upmem();
        p.num_pes = 16;
        let w = LutWorkload::new(64, 8, 16, 32).unwrap();
        let m = Mapping {
            n_stile: 16,
            f_stile: 8,
            kernel: MicroKernel {
                n_mtile: 4,
                f_mtile: 4,
                cb_mtile: 4,
                traversal: TraversalOrder::Nfc,
                load_scheme: LoadScheme::Static,
            },
        };
        (p, w, m)
    }

    #[test]
    fn ideal_hardware_is_perfectly_balanced() {
        let (p, w, m) = setup();
        let trace = trace_kernel(&p, &w, &m, 0.0, PeVariation::IDEAL).unwrap();
        assert_eq!(trace.entries.len(), 16);
        assert!((trace.min_kernel_s - trace.max_kernel_s).abs() < 1e-18);
        assert_eq!(trace.imbalance, 0.0);
        assert!((trace.straggler_penalty() - 1.0).abs() < 1e-12);
        // Group/member layout covers the partition exactly.
        assert_eq!(trace.entries[5].group, 5 / m.pes_per_group(&w));
        assert_eq!(trace.entries[5].member, 5 % m.pes_per_group(&w));
    }

    #[test]
    fn variation_creates_stragglers() {
        let (p, w, m) = setup();
        let trace = trace_kernel(
            &p,
            &w,
            &m,
            0.0,
            PeVariation {
                amplitude: 0.2,
                seed: 7,
            },
        )
        .unwrap();
        assert!(trace.max_kernel_s > trace.min_kernel_s);
        assert!(trace.imbalance > 0.0 && trace.imbalance < 0.2);
        assert!(trace.straggler_penalty() > 1.0);
        // Finish time is the slowest PE plus transfers.
        assert!((trace.total_s - (trace.sub_lut_s + trace.max_kernel_s)).abs() < 1e-15);
    }

    #[test]
    fn variation_is_deterministic() {
        let v = PeVariation {
            amplitude: 0.3,
            seed: 42,
        };
        for pe in 0..100 {
            assert_eq!(v.factor(pe), v.factor(pe));
            assert!((1.0..1.3).contains(&v.factor(pe)));
        }
        let other = PeVariation {
            amplitude: 0.3,
            seed: 43,
        };
        assert_ne!(v.factor(0), other.factor(0));
    }

    #[test]
    fn penalty_grows_with_amplitude_and_pe_count() {
        let (mut p, w, m) = setup();
        let small = trace_kernel(
            &p,
            &w,
            &m,
            0.0,
            PeVariation {
                amplitude: 0.05,
                seed: 1,
            },
        )
        .unwrap();
        let large = trace_kernel(
            &p,
            &w,
            &m,
            0.0,
            PeVariation {
                amplitude: 0.5,
                seed: 1,
            },
        )
        .unwrap();
        assert!(large.straggler_penalty() > small.straggler_penalty());

        // With more PEs the expected max of the uniform factors rises.
        p.num_pes = 64;
        let m64 = Mapping {
            n_stile: 8,
            f_stile: 4,
            ..m
        };
        let many = trace_kernel(
            &p,
            &w,
            &m64,
            0.0,
            PeVariation {
                amplitude: 0.5,
                seed: 1,
            },
        )
        .unwrap();
        assert!(
            many.max_kernel_s / many.mean_kernel_s
                >= large.max_kernel_s / large.mean_kernel_s * 0.95
        );
    }
}
