//! Energy accounting (paper §6.3).
//!
//! Mirrors the paper's measurement methodology: PIM-DIMM energy is static
//! power × time (UPMEM has no DVFS, so static ≈ dynamic), host energy is
//! RAPL-style power × time, and host↔PIM link energy is charged per byte.

use serde::{Deserialize, Serialize};

use crate::config::PlatformConfig;
use crate::cost::CostReport;

/// Energy consumed by one kernel (or an aggregate of kernels), in joules.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyReport {
    /// PIM-module energy (static power × elapsed time).
    pub pim_j: f64,
    /// Host-processor energy over the same window.
    pub host_j: f64,
    /// Host↔PIM link energy (per-byte).
    pub transfer_j: f64,
}

impl EnergyReport {
    /// Total energy.
    pub fn total_j(&self) -> f64 {
        self.pim_j + self.host_j + self.transfer_j
    }

    /// Sums two reports.
    pub fn add(&self, other: &EnergyReport) -> EnergyReport {
        EnergyReport {
            pim_j: self.pim_j + other.pim_j,
            host_j: self.host_j + other.host_j,
            transfer_j: self.transfer_j + other.transfer_j,
        }
    }

    /// Energy of a time window with explicit powers and bytes.
    pub fn from_window(
        elapsed_s: f64,
        pim_power_w: f64,
        host_power_w: f64,
        link_bytes: f64,
        pj_per_byte: f64,
    ) -> EnergyReport {
        EnergyReport {
            pim_j: pim_power_w * elapsed_s,
            host_j: host_power_w * elapsed_s,
            transfer_j: link_bytes * pj_per_byte * 1e-12,
        }
    }
}

/// Energy of one simulated kernel launch on a platform.
pub fn kernel_energy(platform: &PlatformConfig, report: &CostReport) -> EnergyReport {
    EnergyReport::from_window(
        report.time.total_s(),
        platform.pim_power_w,
        platform.host_power_w,
        report.host_pim_bytes as f64,
        platform.transfer_energy_pj_per_byte,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::estimate_cost;
    use crate::mapping::{LoadScheme, LutWorkload, Mapping, MicroKernel, TraversalOrder};

    fn sample_report() -> (PlatformConfig, CostReport) {
        let mut p = PlatformConfig::upmem();
        p.num_pes = 16;
        let w = LutWorkload::new(64, 8, 16, 32).unwrap();
        let m = Mapping {
            n_stile: 16,
            f_stile: 8,
            kernel: MicroKernel {
                n_mtile: 4,
                f_mtile: 4,
                cb_mtile: 4,
                traversal: TraversalOrder::Nfc,
                load_scheme: LoadScheme::Static,
            },
        };
        let r = estimate_cost(&p, &w, &m).unwrap();
        (p, r)
    }

    #[test]
    fn kernel_energy_positive_components() {
        let (p, r) = sample_report();
        let e = kernel_energy(&p, &r);
        assert!(e.pim_j > 0.0);
        assert!(e.host_j > 0.0);
        assert!(e.transfer_j > 0.0);
        assert!((e.total_j() - (e.pim_j + e.host_j + e.transfer_j)).abs() < 1e-15);
    }

    #[test]
    fn energy_scales_linearly_with_time() {
        let e1 = EnergyReport::from_window(1.0, 100.0, 50.0, 0.0, 0.0);
        let e2 = EnergyReport::from_window(2.0, 100.0, 50.0, 0.0, 0.0);
        assert!((e2.pim_j - 2.0 * e1.pim_j).abs() < 1e-12);
        assert!((e2.host_j - 2.0 * e1.host_j).abs() < 1e-12);
    }

    #[test]
    fn transfer_energy_per_byte() {
        let e = EnergyReport::from_window(0.0, 0.0, 0.0, 1e12, 20.0);
        assert!((e.transfer_j - 20.0).abs() < 1e-9); // 1e12 B × 20 pJ/B = 20 J
    }

    #[test]
    fn add_sums_componentwise() {
        let a = EnergyReport {
            pim_j: 1.0,
            host_j: 2.0,
            transfer_j: 3.0,
        };
        let b = EnergyReport {
            pim_j: 0.5,
            host_j: 0.25,
            transfer_j: 0.125,
        };
        let c = a.add(&b);
        assert_eq!(c.pim_j, 1.5);
        assert_eq!(c.host_j, 2.25);
        assert_eq!(c.transfer_j, 3.125);
        assert_eq!(EnergyReport::default().total_j(), 0.0);
    }
}
