use std::fmt;

/// Error type for the DRAM-PIM simulator.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// The mapping is illegal for the workload/platform (tiling does not
    /// divide, PE count mismatch, WRAM overflow, ...).
    IllegalMapping {
        /// Explanation of the violated constraint.
        detail: String,
    },
    /// The workload description is inconsistent with the supplied data.
    WorkloadMismatch {
        /// Explanation of the inconsistency.
        detail: String,
    },
    /// An underlying tensor/LUT operation failed during functional
    /// execution.
    Execution {
        /// Explanation of the failure.
        detail: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::IllegalMapping { detail } => write!(f, "illegal mapping: {detail}"),
            SimError::WorkloadMismatch { detail } => write!(f, "workload mismatch: {detail}"),
            SimError::Execution { detail } => write!(f, "execution failed: {detail}"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(SimError::IllegalMapping { detail: "x".into() }
            .to_string()
            .contains("illegal mapping"));
        assert!(SimError::WorkloadMismatch { detail: "y".into() }
            .to_string()
            .contains("workload"));
        assert!(SimError::Execution { detail: "z".into() }
            .to_string()
            .contains("execution"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }
}
