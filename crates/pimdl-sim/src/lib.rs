//! Commodity DRAM-PIM simulator for the PIM-DL reproduction.
//!
//! Implements the architecture abstraction of the paper's §5.1 / Fig. 7: a
//! host processor drives PIM modules over a constrained memory bus; each
//! module contains distributed compute nodes (PE + local memory banks); PEs
//! have no direct inter-PE datapath.
//!
//! Three platform models ([`config`]):
//!
//! * **UPMEM PIM-DIMM** — 8 DIMMs, 1024 DPU-style PEs @ 350 MHz, 64 KB WRAM.
//! * **Samsung HBM-PIM** — 4 cubes, 512 FP16 MAC PEs, 2 TB/s per cube.
//! * **SK-Hynix AiM** — 16 GDDR6 chips, 512 BF16 MAC PEs, 1 TB/s per chip.
//!
//! The simulator executes the LUT micro-kernel **functionally** (every PE
//! really gathers and accumulates its tile — [`exec::run_lut_kernel`]) and
//! layers a cycle-cost model on the same code path ([`cost`]). The cost
//! model intentionally includes second-order effects the auto-tuner's
//! analytical model omits (per-access instruction overhead, index-stream
//! row-hit correlation, short-inner-loop stalls), which is what produces the
//! small model-vs-measured gap the paper reports in §6.6.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod error;

pub mod config;
pub mod cost;
pub mod energy;
pub mod exec;
pub mod interp;
pub mod isa;
pub mod mapping;
pub mod net;
pub mod trace;

pub use config::{LocalMemModel, PlatformConfig, PlatformKind, TransferModel};
pub use cost::{CostReport, TimeBreakdown};
pub use error::SimError;
pub use mapping::{LoadScheme, LutWorkload, Mapping, MicroKernel, TraversalOrder};
pub use net::NetworkModel;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, SimError>;
