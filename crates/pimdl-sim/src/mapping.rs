//! The LUT-kernel mapping vocabulary: workload shapes, sub-LUT partition,
//! micro-kernel tiling, traversal orders, and LUT load schemes
//! (paper §5.2–§5.3, Table 2).

use serde::{Deserialize, Serialize};

use crate::config::PlatformConfig;
use crate::{Result, SimError};

/// Shape of one LUT operator workload (Table 2: `N`, `CB`, `CT`, `F`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LutWorkload {
    /// Input index row count `N` (activation rows).
    pub n: usize,
    /// Codebook count `CB = H / V`.
    pub cb: usize,
    /// Centroids per codebook `CT`.
    pub ct: usize,
    /// Output feature length `F`.
    pub f: usize,
}

impl LutWorkload {
    /// Creates a workload shape.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::WorkloadMismatch`] if any dimension is zero.
    pub fn new(n: usize, cb: usize, ct: usize, f: usize) -> Result<Self> {
        if n == 0 || cb == 0 || ct == 0 || f == 0 {
            return Err(SimError::WorkloadMismatch {
                detail: format!("zero dimension in workload ({n}, {cb}, {ct}, {f})"),
            });
        }
        Ok(LutWorkload { n, cb, ct, f })
    }

    /// Bytes of one index element (1 for `CT ≤ 256`, else 2).
    pub fn index_elem_bytes(&self) -> usize {
        if self.ct <= 256 {
            1
        } else {
            2
        }
    }

    /// Total index-matrix bytes (`N × CB`).
    pub fn index_bytes(&self) -> u64 {
        (self.n * self.cb * self.index_elem_bytes()) as u64
    }

    /// Total LUT bytes at INT8 (`CB × CT × F`).
    pub fn lut_bytes(&self) -> u64 {
        (self.cb * self.ct * self.f) as u64
    }

    /// Total output bytes at f32 (`N × F × 4`).
    pub fn output_bytes(&self) -> u64 {
        (self.n * self.f * 4) as u64
    }

    /// Reduce (accumulate) operation count: `N × CB × F`.
    pub fn reduce_ops(&self) -> u64 {
        self.n as u64 * self.cb as u64 * self.f as u64
    }
}

/// Traversal order of the three micro-kernel tile loops (search-space
/// parameter **P3**). Letters are outer→inner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TraversalOrder {
    /// N outer, F middle, CB inner.
    Nfc,
    /// N outer, CB middle, F inner.
    Ncf,
    /// F outer, N middle, CB inner.
    Fnc,
    /// F outer, CB middle, N inner.
    Fcn,
    /// CB outer, N middle, F inner.
    Cnf,
    /// CB outer, F middle, N inner.
    Cfn,
}

/// The three loop dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoopDim {
    /// Activation-row tiles.
    N,
    /// Feature tiles.
    F,
    /// Codebook tiles.
    Cb,
}

impl TraversalOrder {
    /// All six permutations.
    pub fn all() -> [TraversalOrder; 6] {
        [
            TraversalOrder::Nfc,
            TraversalOrder::Ncf,
            TraversalOrder::Fnc,
            TraversalOrder::Fcn,
            TraversalOrder::Cnf,
            TraversalOrder::Cfn,
        ]
    }

    /// The loop nest outer→inner.
    pub fn dims(self) -> [LoopDim; 3] {
        match self {
            TraversalOrder::Nfc => [LoopDim::N, LoopDim::F, LoopDim::Cb],
            TraversalOrder::Ncf => [LoopDim::N, LoopDim::Cb, LoopDim::F],
            TraversalOrder::Fnc => [LoopDim::F, LoopDim::N, LoopDim::Cb],
            TraversalOrder::Fcn => [LoopDim::F, LoopDim::Cb, LoopDim::N],
            TraversalOrder::Cnf => [LoopDim::Cb, LoopDim::N, LoopDim::F],
            TraversalOrder::Cfn => [LoopDim::Cb, LoopDim::F, LoopDim::N],
        }
    }

    /// Number of times a tile indexed by the dims for which `uses` is true
    /// must be (re)loaded, given per-dim trip counts `(t_n, t_f, t_cb)`.
    ///
    /// A tile stays resident while only loops it does not depend on
    /// iterate inside it; it reloads whenever a loop it depends on — or any
    /// loop *outside* such a loop — advances. Loops with a single
    /// iteration never change the tile and are ignored.
    pub fn load_count(self, trips: (u64, u64, u64), uses: (bool, bool, bool)) -> u64 {
        let trip = |d: LoopDim| match d {
            LoopDim::N => trips.0,
            LoopDim::F => trips.1,
            LoopDim::Cb => trips.2,
        };
        let used = |d: LoopDim| match d {
            LoopDim::N => uses.0,
            LoopDim::F => uses.1,
            LoopDim::Cb => uses.2,
        };
        // Walk outer→inner; once we pass the innermost used loop that
        // actually iterates, the remaining inner loops give free reuse.
        let dims = self.dims();
        let innermost_used = dims.iter().rposition(|&d| used(d) && trip(d) > 1);
        match innermost_used {
            None => 1, // invariant tile: loaded once
            Some(pos) => dims[..=pos].iter().map(|&d| trip(d)).product(),
        }
    }
}

impl std::fmt::Display for TraversalOrder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            TraversalOrder::Nfc => "N-F-CB",
            TraversalOrder::Ncf => "N-CB-F",
            TraversalOrder::Fnc => "F-N-CB",
            TraversalOrder::Fcn => "F-CB-N",
            TraversalOrder::Cnf => "CB-N-F",
            TraversalOrder::Cfn => "CB-F-N",
        };
        f.write_str(s)
    }
}

/// LUT load scheme (search-space parameter **P4**, Fig. 9).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LoadScheme {
    /// ❶ Static: the whole per-PE LUT tile resides on-chip for the entire
    /// kernel (requires `CB × CT × F_s-tile` bytes of buffer).
    Static,
    /// ❷ Coarse-grain: load all `CT` candidates for a
    /// `CB_load × F_load` chunk and reuse them across the current index
    /// MTile's rows.
    CoarseGrain {
        /// Codebook-chunk load factor.
        cb_load: usize,
        /// Feature-chunk load factor.
        f_load: usize,
    },
    /// ❸ Fine-grain: load only the indexed entries on demand, `F_load`
    /// feature values per access, one buffer per hardware thread.
    FineGrain {
        /// Feature-chunk load factor.
        f_load: usize,
        /// Concurrent hardware threads issuing independent loads (UPMEM
        /// tasklets).
        threads: usize,
    },
}

impl LoadScheme {
    /// Short label for reports (Fig. 13 panel names).
    pub fn name(&self) -> &'static str {
        match self {
            LoadScheme::Static => "static",
            LoadScheme::CoarseGrain { .. } => "coarse-grain",
            LoadScheme::FineGrain { .. } => "fine-grain",
        }
    }
}

/// Micro-kernel mapping parameters (**P2** + **P3** + **P4**).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MicroKernel {
    /// Index/output row tile `N_m-tile`.
    pub n_mtile: usize,
    /// Output feature tile `F_m-tile`.
    pub f_mtile: usize,
    /// Codebook tile `CB_m-tile`.
    pub cb_mtile: usize,
    /// Loop traversal order.
    pub traversal: TraversalOrder,
    /// LUT load scheme.
    pub load_scheme: LoadScheme,
}

/// A complete mapping: sub-LUT partition (**P1**) + micro-kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Mapping {
    /// Index-row tile per PE group, `N_s-tile`.
    pub n_stile: usize,
    /// Feature tile per PE, `F_s-tile`.
    pub f_stile: usize,
    /// Micro-kernel parameters.
    pub kernel: MicroKernel,
}

impl Mapping {
    /// Number of PE groups (`N / N_s-tile`).
    pub fn groups(&self, w: &LutWorkload) -> usize {
        w.n / self.n_stile
    }

    /// PEs per group (`F / F_s-tile`).
    pub fn pes_per_group(&self, w: &LutWorkload) -> usize {
        w.f / self.f_stile
    }

    /// Validates the mapping against a workload and platform (Eq. 5 and the
    /// on-chip buffer capacity).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::IllegalMapping`] describing the first violated
    /// constraint.
    pub fn validate(&self, w: &LutWorkload, platform: &PlatformConfig) -> Result<()> {
        let fail = |detail: String| Err(SimError::IllegalMapping { detail });
        if self.n_stile == 0 || self.f_stile == 0 {
            return fail("zero sub-LUT tile".to_string());
        }
        if !w.n.is_multiple_of(self.n_stile) {
            return fail(format!(
                "N_s-tile {} does not divide N {}",
                self.n_stile, w.n
            ));
        }
        if !w.f.is_multiple_of(self.f_stile) {
            return fail(format!(
                "F_s-tile {} does not divide F {}",
                self.f_stile, w.f
            ));
        }
        let pes = self.groups(w) * self.pes_per_group(w);
        if pes != platform.num_pes {
            return fail(format!(
                "partition uses {pes} PEs but the platform has {} (Eq. 5)",
                platform.num_pes
            ));
        }
        let k = &self.kernel;
        if k.n_mtile == 0 || k.f_mtile == 0 || k.cb_mtile == 0 {
            return fail("zero micro-kernel tile".to_string());
        }
        if !self.n_stile.is_multiple_of(k.n_mtile) {
            return fail(format!(
                "N_m-tile {} does not divide N_s-tile {}",
                k.n_mtile, self.n_stile
            ));
        }
        if !self.f_stile.is_multiple_of(k.f_mtile) {
            return fail(format!(
                "F_m-tile {} does not divide F_s-tile {}",
                k.f_mtile, self.f_stile
            ));
        }
        if !w.cb.is_multiple_of(k.cb_mtile) {
            return fail(format!(
                "CB_m-tile {} does not divide CB {}",
                k.cb_mtile, w.cb
            ));
        }
        match k.load_scheme {
            LoadScheme::Static => {}
            LoadScheme::CoarseGrain { cb_load, f_load } => {
                if cb_load == 0 || f_load == 0 {
                    return fail("zero coarse-grain load factor".to_string());
                }
                if !k.cb_mtile.is_multiple_of(cb_load) {
                    return fail(format!(
                        "coarse cb_load {cb_load} does not divide CB_m-tile {}",
                        k.cb_mtile
                    ));
                }
                if !k.f_mtile.is_multiple_of(f_load) {
                    return fail(format!(
                        "coarse f_load {f_load} does not divide F_m-tile {}",
                        k.f_mtile
                    ));
                }
            }
            LoadScheme::FineGrain { f_load, threads } => {
                if f_load == 0 || threads == 0 {
                    return fail("zero fine-grain load factor".to_string());
                }
                if !k.f_mtile.is_multiple_of(f_load) {
                    return fail(format!(
                        "fine f_load {f_load} does not divide F_m-tile {}",
                        k.f_mtile
                    ));
                }
            }
        }
        let wram = self.wram_usage(w);
        if wram > platform.wram_bytes {
            return fail(format!(
                "on-chip buffer needs {wram} B but the PE has {} B",
                platform.wram_bytes
            ));
        }
        Ok(())
    }

    /// On-chip buffer bytes required by this mapping: index MTile + output
    /// MTile + the LUT buffer of the chosen load scheme.
    pub fn wram_usage(&self, w: &LutWorkload) -> usize {
        let k = &self.kernel;
        let idx = k.n_mtile * k.cb_mtile * w.index_elem_bytes();
        let out = k.n_mtile * k.f_mtile * 4;
        let lut = match k.load_scheme {
            LoadScheme::Static => w.cb * w.ct * self.f_stile,
            LoadScheme::CoarseGrain { cb_load, f_load } => cb_load * w.ct * f_load,
            LoadScheme::FineGrain { f_load, threads } => f_load * threads,
        };
        idx + out + lut
    }

    /// Sub-LUT tile sizes in bytes: `(index, lut, output)` per PE
    /// (Table 2 `STileSize_x`).
    pub fn stile_sizes(&self, w: &LutWorkload) -> (u64, u64, u64) {
        let idx = (self.n_stile * w.cb * w.index_elem_bytes()) as u64;
        let lut = (w.cb * w.ct * self.f_stile) as u64;
        let out = (self.n_stile * self.f_stile * 4) as u64;
        (idx, lut, out)
    }

    /// Micro-kernel trip counts `(T_n, T_f, T_cb)`.
    pub fn trip_counts(&self, w: &LutWorkload) -> (u64, u64, u64) {
        (
            (self.n_stile / self.kernel.n_mtile) as u64,
            (self.f_stile / self.kernel.f_mtile) as u64,
            (w.cb / self.kernel.cb_mtile) as u64,
        )
    }
}

/// A convenient default micro-kernel for a workload: fine-grain loads,
/// modest tiles, output-stationary traversal.
pub fn default_kernel(w: &LutWorkload, n_stile: usize, f_stile: usize) -> MicroKernel {
    MicroKernel {
        n_mtile: n_stile.min(8),
        f_mtile: f_stile.min(8),
        cb_mtile: w.cb.min(8),
        traversal: TraversalOrder::Nfc,
        load_scheme: LoadScheme::FineGrain {
            f_load: f_stile.min(8),
            threads: 16,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workload() -> LutWorkload {
        LutWorkload::new(64, 8, 16, 32).unwrap()
    }

    fn platform_with_pes(pes: usize) -> PlatformConfig {
        let mut p = PlatformConfig::upmem();
        p.num_pes = pes;
        p
    }

    fn legal_mapping() -> Mapping {
        Mapping {
            n_stile: 16,
            f_stile: 8,
            kernel: MicroKernel {
                n_mtile: 4,
                f_mtile: 4,
                cb_mtile: 4,
                traversal: TraversalOrder::Nfc,
                load_scheme: LoadScheme::FineGrain {
                    f_load: 4,
                    threads: 8,
                },
            },
        }
    }

    #[test]
    fn workload_basics() {
        let w = workload();
        assert_eq!(w.index_elem_bytes(), 1);
        assert_eq!(w.index_bytes(), 64 * 8);
        assert_eq!(w.lut_bytes(), 8 * 16 * 32);
        assert_eq!(w.output_bytes(), 64 * 32 * 4);
        assert_eq!(w.reduce_ops(), 64 * 8 * 32);
        assert!(LutWorkload::new(0, 8, 16, 32).is_err());
    }

    #[test]
    fn wide_ct_uses_two_byte_indices() {
        let w = LutWorkload::new(4, 4, 512, 4).unwrap();
        assert_eq!(w.index_elem_bytes(), 2);
        assert_eq!(w.index_bytes(), 4 * 4 * 2);
    }

    #[test]
    fn legal_mapping_validates() {
        let w = workload();
        // groups = 64/16 = 4, pes/group = 32/8 = 4 → 16 PEs.
        let m = legal_mapping();
        assert_eq!(m.groups(&w), 4);
        assert_eq!(m.pes_per_group(&w), 4);
        m.validate(&w, &platform_with_pes(16)).unwrap();
    }

    #[test]
    fn eq5_pe_count_enforced() {
        let w = workload();
        let m = legal_mapping();
        let err = m.validate(&w, &platform_with_pes(32)).unwrap_err();
        assert!(err.to_string().contains("Eq. 5"));
    }

    #[test]
    fn indivisible_tiles_rejected() {
        let w = workload();
        let mut m = legal_mapping();
        m.n_stile = 20;
        assert!(m.validate(&w, &platform_with_pes(16)).is_err());

        let mut m = legal_mapping();
        m.kernel.n_mtile = 3;
        assert!(m.validate(&w, &platform_with_pes(16)).is_err());

        let mut m = legal_mapping();
        m.kernel.cb_mtile = 3;
        assert!(m.validate(&w, &platform_with_pes(16)).is_err());
    }

    #[test]
    fn load_factor_divisibility() {
        let w = workload();
        let mut m = legal_mapping();
        m.kernel.load_scheme = LoadScheme::FineGrain {
            f_load: 3,
            threads: 8,
        };
        assert!(m.validate(&w, &platform_with_pes(16)).is_err());

        let mut m = legal_mapping();
        m.kernel.load_scheme = LoadScheme::CoarseGrain {
            cb_load: 3,
            f_load: 2,
        };
        assert!(m.validate(&w, &platform_with_pes(16)).is_err());

        let mut m = legal_mapping();
        m.kernel.load_scheme = LoadScheme::CoarseGrain {
            cb_load: 2,
            f_load: 2,
        };
        m.validate(&w, &platform_with_pes(16)).unwrap();
    }

    #[test]
    fn wram_capacity_enforced() {
        let w = workload();
        let mut platform = platform_with_pes(16);
        platform.wram_bytes = 16; // absurdly small
        assert!(legal_mapping().validate(&w, &platform).is_err());
    }

    #[test]
    fn wram_usage_by_scheme() {
        let w = workload();
        let mut m = legal_mapping();
        // index 4*4*1 = 16; output 4*4*4 = 64.
        m.kernel.load_scheme = LoadScheme::Static;
        assert_eq!(m.wram_usage(&w), 16 + 64 + 8 * 16 * 8); // CB*CT*F_s
        m.kernel.load_scheme = LoadScheme::CoarseGrain {
            cb_load: 2,
            f_load: 2,
        };
        assert_eq!(m.wram_usage(&w), 16 + 64 + 2 * 16 * 2);
        m.kernel.load_scheme = LoadScheme::FineGrain {
            f_load: 4,
            threads: 8,
        };
        assert_eq!(m.wram_usage(&w), 16 + 64 + 32);
    }

    #[test]
    fn stile_sizes_match_table2() {
        let w = workload();
        let m = legal_mapping();
        let (idx, lut, out) = m.stile_sizes(&w);
        assert_eq!(idx, 16 * 8); // N_s × CB × 1B
        assert_eq!(lut, 8 * 16 * 8); // CB × CT × F_s
        assert_eq!(out, 16 * 8 * 4); // N_s × F_s × 4B
    }

    #[test]
    fn trip_counts() {
        let w = workload();
        let m = legal_mapping();
        assert_eq!(m.trip_counts(&w), (4, 2, 2));
    }

    #[test]
    fn load_count_reuse_semantics() {
        let trips = (4u64, 3u64, 2u64);
        // Index tile uses (n, cb). With F innermost (Ncf: N,CB,F), it is
        // invariant over F → loads = T_n × T_cb.
        assert_eq!(
            TraversalOrder::Ncf.load_count(trips, (true, false, true)),
            4 * 2
        );
        // With CB innermost (Nfc: N,F,CB), the index tile varies in the
        // innermost loop → full product.
        assert_eq!(
            TraversalOrder::Nfc.load_count(trips, (true, false, true)),
            4 * 3 * 2
        );
        // Output uses (n, f). With CB innermost it accumulates in place →
        // T_n × T_f.
        assert_eq!(
            TraversalOrder::Nfc.load_count(trips, (true, true, false)),
            4 * 3
        );
        // With CB outermost (Cnf), the output reloads every CB pass.
        assert_eq!(
            TraversalOrder::Cnf.load_count(trips, (true, true, false)),
            2 * 4 * 3
        );
        // A tile used by nothing loads once.
        assert_eq!(
            TraversalOrder::Nfc.load_count(trips, (false, false, false)),
            1
        );
        // Used loops with a single iteration never change the tile.
        assert_eq!(
            TraversalOrder::Fnc.load_count((1, 4, 1), (true, false, true)),
            1
        );
        assert_eq!(
            TraversalOrder::Fnc.load_count((2, 4, 1), (true, false, true)),
            8 // tile changes with N, revisited across F
        );
    }

    #[test]
    fn traversal_enumeration() {
        assert_eq!(TraversalOrder::all().len(), 6);
        let mut names: Vec<String> = TraversalOrder::all()
            .iter()
            .map(|t| t.to_string())
            .collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 6);
    }

    #[test]
    fn default_kernel_is_legal_for_its_partition() {
        let w = LutWorkload::new(1024, 16, 16, 256).unwrap();
        let m = Mapping {
            n_stile: 64,
            f_stile: 16,
            kernel: default_kernel(&w, 64, 16),
        };
        // 16 groups × 16 per group = 256 PEs.
        m.validate(&w, &platform_with_pes(256)).unwrap();
    }

    #[test]
    fn scheme_names() {
        assert_eq!(LoadScheme::Static.name(), "static");
        assert_eq!(
            LoadScheme::CoarseGrain {
                cb_load: 1,
                f_load: 1
            }
            .name(),
            "coarse-grain"
        );
        assert_eq!(
            LoadScheme::FineGrain {
                f_load: 1,
                threads: 1
            }
            .name(),
            "fine-grain"
        );
    }
}
