//! Platform configurations for the three commodity DRAM-PIM products
//! (paper Table 1 and Table 3).
//!
//! Bandwidth and throughput figures come from the paper and its cited
//! characterization studies: UPMEM's host↔PIM transfer bandwidth is
//! size-dependent and strongly favours broadcast (PrIM, \[33\] in the paper);
//! HBM-PIM and AiM expose far wider internal bandwidth but are driven by a
//! GPU host over PCIe-class links.

use pimdl_tensor::quant::DType;
use serde::{Deserialize, Serialize};

/// Which commodity product a configuration models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PlatformKind {
    /// UPMEM DDR4 PIM-DIMM (general RISC cores near banks).
    Upmem,
    /// Samsung HBM-PIM (FP16 MAC units).
    HbmPim,
    /// SK-Hynix AiM on GDDR6 (BF16 MAC units).
    Aim,
}

impl PlatformKind {
    /// Display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            PlatformKind::Upmem => "PIM-DIMM",
            PlatformKind::HbmPim => "HBM-PIM",
            PlatformKind::Aim => "AiM",
        }
    }
}

/// Host ↔ PIM transfer model (limitation **L1** of §5.1).
///
/// Bandwidth saturates with transfer size:
/// `bw(bytes) = peak * bytes / (bytes + half_saturation)`, and each launch
/// pays a fixed latency. Broadcasting the same buffer to many PEs achieves
/// higher bandwidth than scattering distinct data (no host-side cache
/// misses, per the PrIM characterization).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransferModel {
    /// Peak host→PIM bandwidth for distinct per-PE data (GB/s, aggregate).
    pub to_pim_peak_gbps: f64,
    /// Peak host→PIM bandwidth when broadcasting shared data (GB/s).
    pub broadcast_peak_gbps: f64,
    /// Peak PIM→host bandwidth (GB/s, aggregate).
    pub from_pim_peak_gbps: f64,
    /// Transfer size at which bandwidth reaches half of peak (bytes).
    pub half_saturation_bytes: f64,
    /// Fixed per-launch latency (seconds).
    pub fixed_latency_s: f64,
}

/// Direction/pattern of a host↔PIM transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TransferPattern {
    /// Host → PIM, distinct data per PE.
    ToPimDistinct,
    /// Host → PIM, same data shared by a set of PEs.
    ToPimBroadcast,
    /// PIM → host (result fetch).
    FromPim,
}

impl TransferModel {
    fn peak(&self, pattern: TransferPattern) -> f64 {
        match pattern {
            TransferPattern::ToPimDistinct => self.to_pim_peak_gbps,
            TransferPattern::ToPimBroadcast => self.broadcast_peak_gbps,
            TransferPattern::FromPim => self.from_pim_peak_gbps,
        }
    }

    /// Effective bandwidth (GB/s) for a transfer whose *per-buffer* size is
    /// `buffer_bytes`.
    pub fn effective_gbps(&self, pattern: TransferPattern, buffer_bytes: f64) -> f64 {
        let peak = self.peak(pattern);
        if buffer_bytes <= 0.0 {
            return peak;
        }
        peak * buffer_bytes / (buffer_bytes + self.half_saturation_bytes)
    }

    /// Transfer time in seconds for `total_bytes` moved in buffers of
    /// `buffer_bytes` each (Eq. 4: `STileSize × #PE / BW`).
    pub fn transfer_time_s(
        &self,
        pattern: TransferPattern,
        total_bytes: f64,
        buffer_bytes: f64,
    ) -> f64 {
        if total_bytes <= 0.0 {
            return 0.0;
        }
        let bw = self.effective_gbps(pattern, buffer_bytes).max(1e-9);
        self.fixed_latency_s + total_bytes / (bw * 1e9)
    }
}

/// Per-PE local memory model (MRAM/bank ↔ on-chip buffer).
///
/// Small accesses pay per-instruction overhead, so effective bandwidth
/// depends on access granularity (the effect behind Fig. 13-(a)/(b)).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LocalMemModel {
    /// Peak per-PE local bandwidth (GB/s).
    pub peak_gbps: f64,
    /// Access size at which bandwidth reaches half of peak (bytes).
    pub half_saturation_bytes: f64,
    /// Fixed per-access overhead (seconds) — DMA/instruction issue cost.
    /// The auto-tuner's analytical model ignores this term (it only knows
    /// profiled bandwidths), which is one source of its §6.6 error.
    pub access_overhead_s: f64,
}

impl LocalMemModel {
    /// Effective bandwidth (GB/s) at the given access granularity.
    pub fn effective_gbps(&self, access_bytes: f64) -> f64 {
        if access_bytes <= 0.0 {
            return self.peak_gbps;
        }
        self.peak_gbps * access_bytes / (access_bytes + self.half_saturation_bytes)
    }

    /// Idealized (tuner-visible) time for moving `total_bytes` in accesses
    /// of `access_bytes` each: pure bytes / profiled-bandwidth (Eq. 8).
    pub fn ideal_time_s(&self, total_bytes: f64, access_bytes: f64) -> f64 {
        if total_bytes <= 0.0 {
            return 0.0;
        }
        total_bytes / (self.effective_gbps(access_bytes).max(1e-9) * 1e9)
    }

    /// Simulator time: idealized time plus per-access overhead.
    pub fn sim_time_s(&self, total_bytes: f64, access_bytes: f64, accesses: u64) -> f64 {
        self.ideal_time_s(total_bytes, access_bytes) + accesses as f64 * self.access_overhead_s
    }
}

fn default_mram_bytes() -> usize {
    64 * 1024 * 1024
}

/// Full configuration of one DRAM-PIM platform.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlatformConfig {
    /// Product kind.
    pub kind: PlatformKind,
    /// Total usable PE count across all modules.
    pub num_pes: usize,
    /// PE clock (MHz).
    pub pe_freq_mhz: f64,
    /// Per-PE on-chip buffer capacity in bytes (UPMEM WRAM: 64 KiB).
    pub wram_bytes: usize,
    /// Per-PE local main-memory capacity in bytes (UPMEM MRAM: 64 MiB per
    /// DPU). Bounds how many layers' LUT tiles can stay resident.
    #[serde(default = "default_mram_bytes")]
    pub mram_bytes: usize,
    /// Host ↔ PIM transfer model.
    pub host_transfer: TransferModel,
    /// Per-PE local memory model.
    pub local_mem: LocalMemModel,
    /// Seconds per single reduce (add/accumulate) operation on one PE
    /// (`t_single-reduce` of Eq. 10).
    pub single_reduce_s: f64,
    /// Aggregate peak internal bandwidth (GB/s) — the Table-1 headline.
    pub peak_internal_bw_gbps: f64,
    /// Aggregate peak arithmetic throughput (GOP/s) — for the GEMM-on-PIM
    /// baseline.
    pub peak_gops: f64,
    /// Static power of all PIM modules (W) — UPMEM: ~13.92 W/DIMM × 8.
    pub pim_power_w: f64,
    /// Host-side power while driving PIM kernels (W), for energy accounting.
    pub host_power_w: f64,
    /// Energy per byte moved over the host↔PIM link (pJ/byte).
    pub transfer_energy_pj_per_byte: f64,
    /// Native MAC datatype of the PIM units (Table 1).
    pub pim_dtype: DType,
    /// Whether the host delivers LUT indices inside PIM *instructions*
    /// (one command stream per PE group) rather than as per-PE data copies.
    /// True for the MAC-based products — §6.7: "We assume PIM instructions
    /// carry the LUT indices and drive the execution of PEs". UPMEM DPUs
    /// execute from private MRAM, so every DPU needs its own copy.
    #[serde(default)]
    pub command_driven_indices: bool,
}

impl PlatformConfig {
    /// The paper's real UPMEM platform (Table 3): 8 PIM-DIMMs, 1024 DPUs at
    /// 350 MHz, 64 KB WRAM each.
    ///
    /// Per-PE arithmetic: the rated 43.8 GOP/s per DIMM counts
    /// register-file adds; a LUT accumulate also pays WRAM access and
    /// address generation, sustaining ≈ 2.6 cycles per accumulate at
    /// 350 MHz (7.5 ns). Anchor: with this rate the end-to-end BERT-base
    /// PIM-DL latency lands at the paper's implied ~20 s (Fig. 10's
    /// 38.47 s/layer GEMM-on-PIM line divided by the 18.91× V=4 speedup).
    /// Host transfer peaks follow the PrIM characterization (broadcast ≈
    /// 22 GB/s, scatter ≈ 7 GB/s, gather ≈ 4.7 GB/s).
    pub fn upmem() -> Self {
        PlatformConfig {
            kind: PlatformKind::Upmem,
            num_pes: 1024,
            pe_freq_mhz: 350.0,
            wram_bytes: 64 * 1024,
            mram_bytes: 64 * 1024 * 1024,
            host_transfer: TransferModel {
                to_pim_peak_gbps: 7.0,
                broadcast_peak_gbps: 22.0,
                from_pim_peak_gbps: 4.7,
                half_saturation_bytes: 64.0 * 1024.0,
                fixed_latency_s: 20e-6,
            },
            local_mem: LocalMemModel {
                peak_gbps: 0.45,
                half_saturation_bytes: 256.0,
                access_overhead_s: 200e-9,
            },
            single_reduce_s: 7.5e-9,
            peak_internal_bw_gbps: 8.0 * 80.4,
            peak_gops: 8.0 * 43.8,
            pim_power_w: 8.0 * 13.92,
            host_power_w: 130.0,
            transfer_energy_pj_per_byte: 20.0,
            pim_dtype: DType::I8,
            command_driven_indices: false,
        }
    }

    /// Simulated Samsung HBM-PIM platform (Table 3): 4 cubes, 512 PEs,
    /// 2 TB/s and 1.2 TFLOPS per cube, driven by an NVIDIA A2 host.
    pub fn hbm_pim() -> Self {
        PlatformConfig {
            kind: PlatformKind::HbmPim,
            num_pes: 512,
            pe_freq_mhz: 1200.0,
            wram_bytes: 16 * 1024,
            mram_bytes: 16 * 1024 * 1024, // 8 GB HBM2 / 512 PEs
            host_transfer: TransferModel {
                to_pim_peak_gbps: 48.0,
                broadcast_peak_gbps: 96.0,
                from_pim_peak_gbps: 48.0,
                half_saturation_bytes: 16.0 * 1024.0,
                fixed_latency_s: 8e-6,
            },
            local_mem: LocalMemModel {
                // 2 TB/s per cube / 128 PEs per cube; the in-bank SIMD
                // units read wide rows, so even short gathers sustain a
                // large fraction of peak (half-saturation at 16 B).
                peak_gbps: 15.6,
                half_saturation_bytes: 16.0,
                access_overhead_s: 8e-9,
            },
            single_reduce_s: 1.0 / (4.8e12 / 512.0), // from 4.8 TFLOPS total
            peak_internal_bw_gbps: 4.0 * 2000.0,
            peak_gops: 4.0 * 1200.0,
            pim_power_w: 4.0 * 15.0,
            host_power_w: 60.0, // NVIDIA A2 TDP
            transfer_energy_pj_per_byte: 10.0,
            pim_dtype: DType::F16,
            command_driven_indices: true,
        }
    }

    /// Simulated SK-Hynix AiM platform (Table 3): 16 GDDR6 chips, 512 PEs,
    /// 1 TB/s and 1 TFLOPS per chip, driven by an NVIDIA A2 host.
    pub fn aim() -> Self {
        PlatformConfig {
            kind: PlatformKind::Aim,
            num_pes: 512,
            pe_freq_mhz: 1000.0,
            wram_bytes: 16 * 1024,
            mram_bytes: 32 * 1024 * 1024, // 16 GB GDDR6 / 512 PEs
            host_transfer: TransferModel {
                to_pim_peak_gbps: 48.0,
                broadcast_peak_gbps: 96.0,
                from_pim_peak_gbps: 48.0,
                half_saturation_bytes: 16.0 * 1024.0,
                fixed_latency_s: 8e-6,
            },
            local_mem: LocalMemModel {
                // 1 TB/s per chip / 32 PEs; bank-adjacent MACs stream wide
                // rows (half-saturation at 16 B).
                peak_gbps: 31.2,
                half_saturation_bytes: 16.0,
                access_overhead_s: 6e-9,
            },
            single_reduce_s: 1.0 / (16.0e12 / 512.0), // 16 TFLOPS total
            peak_internal_bw_gbps: 16.0 * 1000.0,
            peak_gops: 16.0 * 1000.0,
            pim_power_w: 16.0 * 5.0,
            host_power_w: 60.0,
            transfer_energy_pj_per_byte: 8.0,
            pim_dtype: DType::Bf16,
            command_driven_indices: true,
        }
    }

    /// Hypothetical **adder-only** UPMEM variant (paper §7, "Adder-only PIM
    /// Design"): LUT-NN needs no PIM-side multiplies, and adders cost a
    /// small fraction of a multiplier's area, so an adder-only PE array
    /// fits ~4× the accumulate throughput in the same area/power envelope.
    /// Everything else (memory system, transfers, power) is unchanged.
    pub fn upmem_adder_only() -> Self {
        let mut p = Self::upmem();
        p.single_reduce_s /= 4.0;
        p.peak_gops *= 4.0;
        p
    }

    /// All three platforms in Table-1 order.
    pub fn all() -> [PlatformConfig; 3] {
        [Self::upmem(), Self::hbm_pim(), Self::aim()]
    }

    /// Per-PE arithmetic throughput in GOP/s.
    pub fn per_pe_gops(&self) -> f64 {
        self.peak_gops / self.num_pes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_headline_numbers() {
        let upmem = PlatformConfig::upmem();
        assert_eq!(upmem.num_pes, 1024);
        assert!((upmem.peak_internal_bw_gbps - 643.2).abs() < 0.1); // 8 × 80.4
        assert!((upmem.peak_gops - 350.4).abs() < 0.1); // 8 × 43.8

        let hbm = PlatformConfig::hbm_pim();
        assert!((hbm.peak_gops - 4800.0).abs() < 1.0); // 4 × 1.2 TFLOPS
        assert!((hbm.peak_internal_bw_gbps - 8000.0).abs() < 1.0);

        let aim = PlatformConfig::aim();
        assert!((aim.peak_gops - 16000.0).abs() < 1.0);
        assert_eq!(aim.pim_dtype, DType::Bf16);
    }

    #[test]
    fn platform_names() {
        assert_eq!(PlatformKind::Upmem.name(), "PIM-DIMM");
        assert_eq!(PlatformKind::HbmPim.name(), "HBM-PIM");
        assert_eq!(PlatformKind::Aim.name(), "AiM");
    }

    #[test]
    fn transfer_bandwidth_saturates_with_size() {
        let t = PlatformConfig::upmem().host_transfer;
        let small = t.effective_gbps(TransferPattern::ToPimBroadcast, 1024.0);
        let large = t.effective_gbps(TransferPattern::ToPimBroadcast, 16.0 * 1024.0 * 1024.0);
        assert!(small < large);
        assert!(large <= t.broadcast_peak_gbps);
        assert!(large > 0.95 * t.broadcast_peak_gbps);
    }

    #[test]
    fn broadcast_faster_than_scatter() {
        let t = PlatformConfig::upmem().host_transfer;
        let size = 1e6;
        assert!(
            t.effective_gbps(TransferPattern::ToPimBroadcast, size)
                > t.effective_gbps(TransferPattern::ToPimDistinct, size)
        );
    }

    #[test]
    fn transfer_time_monotone_in_bytes() {
        let t = PlatformConfig::upmem().host_transfer;
        let t1 = t.transfer_time_s(TransferPattern::FromPim, 1e6, 1e4);
        let t2 = t.transfer_time_s(TransferPattern::FromPim, 2e6, 1e4);
        assert!(t2 > t1);
        assert_eq!(t.transfer_time_s(TransferPattern::FromPim, 0.0, 1e4), 0.0);
    }

    #[test]
    fn local_mem_overhead_penalizes_small_accesses() {
        let m = PlatformConfig::upmem().local_mem;
        let total = 1e6;
        let few_big = m.sim_time_s(total, 65536.0, (total / 65536.0) as u64);
        let many_small = m.sim_time_s(total, 64.0, (total / 64.0) as u64);
        assert!(many_small > few_big);
        // The tuner-visible time ignores access count, so it is cheaper.
        assert!(m.ideal_time_s(total, 64.0) < many_small);
    }

    #[test]
    fn per_pe_gops_consistent() {
        let upmem = PlatformConfig::upmem();
        let per_pe = upmem.per_pe_gops();
        assert!((per_pe - 0.342).abs() < 0.01, "per_pe={per_pe}");
        // single_reduce_s is slower than the rated 1/per-PE-throughput
        // (WRAM access + address generation per accumulate) but within the
        // same order of magnitude.
        let rated = 1.0 / (per_pe * 1e9);
        assert!(upmem.single_reduce_s >= rated);
        assert!(upmem.single_reduce_s < 4.0 * rated);
    }

    #[test]
    fn adder_only_variant_is_faster_per_reduce() {
        let base = PlatformConfig::upmem();
        let adder = PlatformConfig::upmem_adder_only();
        assert!(adder.single_reduce_s < base.single_reduce_s);
        assert!((adder.single_reduce_s * 4.0 - base.single_reduce_s).abs() < 1e-15);
        assert_eq!(adder.wram_bytes, base.wram_bytes);
        assert_eq!(adder.pim_power_w, base.pim_power_w);
    }

    #[test]
    fn all_platforms_enumerated() {
        let all = PlatformConfig::all();
        assert_eq!(all.len(), 3);
        assert_eq!(all[0].kind, PlatformKind::Upmem);
        assert_eq!(all[1].kind, PlatformKind::HbmPim);
        assert_eq!(all[2].kind, PlatformKind::Aim);
    }

    #[test]
    fn zero_size_edge_cases() {
        let t = PlatformConfig::upmem().host_transfer;
        assert_eq!(
            t.effective_gbps(TransferPattern::ToPimDistinct, 0.0),
            t.to_pim_peak_gbps
        );
        let m = PlatformConfig::upmem().local_mem;
        assert_eq!(m.effective_gbps(0.0), m.peak_gbps);
        assert_eq!(m.ideal_time_s(0.0, 64.0), 0.0);
    }
}
