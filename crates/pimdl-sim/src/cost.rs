//! The simulator's latency model for one LUT kernel launch.
//!
//! Follows the two-step dataflow of §5.2: **sub-LUT partition** (host↔PIM
//! transfers, Eqs. 3–5) then **micro-kernel execution** on every PE
//! (Eqs. 6–10). On top of the analytical formulas the simulator models three
//! second-order effects the auto-tuner's model does not see:
//!
//! 1. per-access instruction/DMA overhead on local-memory transfers,
//! 2. index-stream row-hit reuse on fine-grain gathers (data-dependent),
//! 3. loop-overhead stalls when the innermost reduce loop is short.
//!
//! These produce the small, systematic model-vs-measured error reported in
//! §6.6 (avg 3.44 %, max 13.73 % on real hardware).

use serde::{Deserialize, Serialize};

use crate::config::{PlatformConfig, TransferPattern};
use crate::mapping::{LoadScheme, LutWorkload, Mapping};
use crate::Result;

/// Loop-overhead cycles charged per innermost reduce-loop execution,
/// expressed in units of `single_reduce` time. Short `F_m-tile` loops
/// amortize this badly (the static-scheme effect in Fig. 13-(c)).
pub const REDUCE_LOOP_OVERHEAD: f64 = 2.0;

/// Latency breakdown of one kernel launch (all seconds).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct TimeBreakdown {
    /// Index tile send time (`t_sub_index`).
    pub sub_index_s: f64,
    /// LUT tile send time (`t_sub_lut`).
    pub sub_lut_s: f64,
    /// Output fetch time (`t_sub_output`).
    pub sub_output_s: f64,
    /// Per-PE index MTile load time (`t_ld_index`).
    pub kernel_index_s: f64,
    /// Per-PE LUT load time (`t_ld_lut`).
    pub kernel_lut_s: f64,
    /// Per-PE output MTile load+store time.
    pub kernel_output_s: f64,
    /// Per-PE reduce time (`t_reduce`).
    pub kernel_reduce_s: f64,
}

impl TimeBreakdown {
    /// Sub-LUT partition (host↔PIM) time, Eq. 3.
    pub fn sub_lut_total_s(&self) -> f64 {
        self.sub_index_s + self.sub_lut_s + self.sub_output_s
    }

    /// Per-inference kernel latency with the LUTs already resident in PIM
    /// memory: everything except the one-time LUT staging transfer.
    pub fn total_resident_s(&self) -> f64 {
        self.total_s() - self.sub_lut_s
    }

    /// Micro-kernel time, Eq. 6 (`t_transfer + t_reduce`).
    pub fn micro_kernel_total_s(&self) -> f64 {
        self.kernel_index_s + self.kernel_lut_s + self.kernel_output_s + self.kernel_reduce_s
    }

    /// End-to-end kernel latency.
    pub fn total_s(&self) -> f64 {
        self.sub_lut_total_s() + self.micro_kernel_total_s()
    }
}

/// Per-PE access counts underlying the latency model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct AccessCounts {
    /// Index MTile loads (`LCount_index`).
    pub index_loads: u64,
    /// LUT load accesses (granularity depends on the load scheme).
    pub lut_accesses: u64,
    /// LUT bytes actually moved from local memory.
    pub lut_bytes: u64,
    /// Output MTile loads (`LCount_output`).
    pub output_loads: u64,
    /// Output MTile stores (`SCount_output`).
    pub output_stores: u64,
    /// Reduce operations (`RCount`).
    pub reduce_ops: u64,
}

/// Full cost report for one kernel launch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostReport {
    /// Latency breakdown.
    pub time: TimeBreakdown,
    /// Per-PE access counts.
    pub accesses: AccessCounts,
    /// On-chip buffer bytes used per PE.
    pub wram_bytes: usize,
    /// Host↔PIM bytes moved (index + LUT + output, totals over all PEs).
    pub host_pim_bytes: u64,
    /// The LUT-staging portion of `host_pim_bytes`. In steady-state serving
    /// the LUTs are resident in PIM memory (distributed once at model load,
    /// like the GEMM baseline's weights), so per-inference traffic excludes
    /// this portion and per-inference latency excludes `time.sub_lut_s`.
    pub lut_stage_bytes: u64,
    /// Fraction of fine-grain gathers that hit the row buffer (repeated
    /// index); `0.0` for other schemes.
    pub repeat_fraction: f64,
}

/// Estimates the cost of a kernel launch without data, using the *expected*
/// index-repeat fraction `1 / CT` for fine-grain gathers.
///
/// # Errors
///
/// Returns [`crate::SimError::IllegalMapping`] if the mapping is invalid.
pub fn estimate_cost(
    platform: &PlatformConfig,
    workload: &LutWorkload,
    mapping: &Mapping,
) -> Result<CostReport> {
    cost_with_repeat(platform, workload, mapping, 1.0 / workload.ct as f64)
}

/// Computes the cost with a known index-repeat fraction (the functional
/// executor measures the true one from the index stream).
///
/// # Errors
///
/// Returns [`crate::SimError::IllegalMapping`] if the mapping is invalid.
pub fn cost_with_repeat(
    platform: &PlatformConfig,
    workload: &LutWorkload,
    mapping: &Mapping,
    repeat_fraction: f64,
) -> Result<CostReport> {
    mapping.validate(workload, platform)?;
    let w = workload;
    let m = mapping;
    let k = &m.kernel;
    let num_pes = platform.num_pes as u64;

    // ---- Step 1: sub-LUT partition (Eqs. 3–5) ----
    let (stile_idx, stile_lut, stile_out) = m.stile_sizes(w);
    let ht = &platform.host_transfer;

    // Index tiles are shared by all PEs in a group (F/F_s of them); LUT
    // tiles are shared by all groups (N/N_s of them). Reuse > 1 lets the
    // host broadcast.
    let idx_pattern = if m.pes_per_group(w) > 1 {
        TransferPattern::ToPimBroadcast
    } else {
        TransferPattern::ToPimDistinct
    };
    let lut_pattern = if m.groups(w) > 1 {
        TransferPattern::ToPimBroadcast
    } else {
        TransferPattern::ToPimDistinct
    };
    // Command-driven products receive indices inside the instruction
    // stream: one copy per PE group instead of one per PE (§6.7).
    let index_total_bytes = if platform.command_driven_indices {
        stile_idx * m.groups(w) as u64
    } else {
        stile_idx * num_pes
    };
    let sub_index_s = ht.transfer_time_s(idx_pattern, index_total_bytes as f64, stile_idx as f64);
    let sub_lut_s = ht.transfer_time_s(lut_pattern, (stile_lut * num_pes) as f64, stile_lut as f64);
    let sub_output_s = ht.transfer_time_s(
        TransferPattern::FromPim,
        (stile_out * num_pes) as f64,
        stile_out as f64,
    );

    // ---- Step 2: micro-kernel execution (Eqs. 6–10) ----
    let trips = m.trip_counts(w);
    let lm = &platform.local_mem;

    // Index MTiles: used by (n, cb).
    let index_loads = k.traversal.load_count(trips, (true, false, true));
    let index_mtile = (k.n_mtile * k.cb_mtile * w.index_elem_bytes()) as f64;
    let kernel_index_s = lm.sim_time_s(index_loads as f64 * index_mtile, index_mtile, index_loads);

    // Output MTiles: used by (n, f); loaded and stored per eviction.
    let output_loads = k.traversal.load_count(trips, (true, true, false));
    let output_mtile = (k.n_mtile * k.f_mtile * 4) as f64;
    let kernel_output_s = lm.sim_time_s(
        2.0 * output_loads as f64 * output_mtile,
        output_mtile,
        2 * output_loads,
    );

    // LUT loads by scheme.
    let repeat = repeat_fraction.clamp(0.0, 1.0);
    let (lut_accesses, lut_bytes, lut_access_bytes, effective_overhead_s, effective_repeat);
    match k.load_scheme {
        LoadScheme::Static => {
            let bytes = (w.cb * w.ct * m.f_stile) as u64;
            lut_accesses = 1;
            lut_bytes = bytes;
            lut_access_bytes = bytes as f64;
            effective_overhead_s = lm.access_overhead_s;
            effective_repeat = 0.0;
        }
        LoadScheme::CoarseGrain { cb_load, f_load } => {
            let chunk = (cb_load * w.ct * f_load) as u64;
            let chunks_per_mtile = ((k.cb_mtile / cb_load) * (k.f_mtile / f_load)) as u64;
            // The buffer holds one chunk. With a single chunk per MTile the
            // chunk survives iterations that keep (f, cb) fixed; multiple
            // chunks thrash the buffer and reload every iteration.
            lut_accesses = if chunks_per_mtile == 1 {
                k.traversal.load_count(trips, (false, true, true))
            } else {
                trips.0 * trips.1 * trips.2 * chunks_per_mtile
            };
            lut_bytes = lut_accesses * chunk;
            lut_access_bytes = chunk as f64;
            effective_overhead_s = lm.access_overhead_s;
            effective_repeat = 0.0;
        }
        LoadScheme::FineGrain { f_load, threads } => {
            // One access of f_load bytes per (row, codebook, f-chunk);
            // repeated indices across consecutive rows hit the thread's
            // buffer and cost nothing.
            let raw = (m.n_stile * w.cb * (m.f_stile / f_load)) as u64;
            let kept = (raw as f64 * (1.0 - repeat)).ceil() as u64;
            lut_accesses = kept.max(1);
            lut_bytes = lut_accesses * f_load as u64;
            lut_access_bytes = f_load as f64;
            // Hardware threads overlap access issue; overhead amortizes.
            effective_overhead_s = lm.access_overhead_s / threads.max(1) as f64;
            effective_repeat = repeat;
        }
    }
    let kernel_lut_s = lm.ideal_time_s(lut_bytes as f64, lut_access_bytes)
        + lut_accesses as f64 * effective_overhead_s;

    // Reduce: N_s × CB × F_s accumulations with short-loop stalls.
    let reduce_ops = (m.n_stile * w.cb * m.f_stile) as u64;
    let stall_factor = 1.0 + REDUCE_LOOP_OVERHEAD / k.f_mtile as f64;
    let kernel_reduce_s = reduce_ops as f64 * platform.single_reduce_s * stall_factor;

    let time = TimeBreakdown {
        sub_index_s,
        sub_lut_s,
        sub_output_s,
        kernel_index_s,
        kernel_lut_s,
        kernel_output_s,
        kernel_reduce_s,
    };
    Ok(CostReport {
        time,
        accesses: AccessCounts {
            index_loads,
            lut_accesses,
            lut_bytes,
            output_loads,
            output_stores: output_loads,
            reduce_ops,
        },
        wram_bytes: m.wram_usage(w),
        host_pim_bytes: index_total_bytes + (stile_lut + stile_out) * num_pes,
        lut_stage_bytes: stile_lut * num_pes,
        repeat_fraction: effective_repeat,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::{MicroKernel, TraversalOrder};

    fn platform(pes: usize) -> PlatformConfig {
        let mut p = PlatformConfig::upmem();
        p.num_pes = pes;
        p
    }

    fn workload() -> LutWorkload {
        LutWorkload::new(64, 8, 16, 32).unwrap()
    }

    fn mapping(scheme: LoadScheme) -> Mapping {
        Mapping {
            n_stile: 16,
            f_stile: 8,
            kernel: MicroKernel {
                n_mtile: 4,
                f_mtile: 4,
                cb_mtile: 4,
                traversal: TraversalOrder::Nfc,
                load_scheme: scheme,
            },
        }
    }

    #[test]
    fn estimate_rejects_illegal_mapping() {
        let w = workload();
        let m = mapping(LoadScheme::Static);
        assert!(estimate_cost(&platform(7), &w, &m).is_err());
    }

    #[test]
    fn breakdown_components_positive_and_total_consistent() {
        let w = workload();
        let m = mapping(LoadScheme::FineGrain {
            f_load: 4,
            threads: 8,
        });
        let report = estimate_cost(&platform(16), &w, &m).unwrap();
        let t = report.time;
        for (name, v) in [
            ("sub_index", t.sub_index_s),
            ("sub_lut", t.sub_lut_s),
            ("sub_output", t.sub_output_s),
            ("kernel_index", t.kernel_index_s),
            ("kernel_lut", t.kernel_lut_s),
            ("kernel_output", t.kernel_output_s),
            ("kernel_reduce", t.kernel_reduce_s),
        ] {
            assert!(v > 0.0, "{name} = {v}");
        }
        let sum = t.sub_lut_total_s() + t.micro_kernel_total_s();
        assert!((sum - t.total_s()).abs() < 1e-15);
    }

    #[test]
    fn static_scheme_loads_lut_once() {
        let w = workload();
        let report = estimate_cost(&platform(16), &w, &mapping(LoadScheme::Static)).unwrap();
        assert_eq!(report.accesses.lut_accesses, 1);
        assert_eq!(report.accesses.lut_bytes, (8 * 16 * 8) as u64); // CB·CT·F_s
    }

    #[test]
    fn coarse_scheme_bytes_scale_with_ct() {
        let w = workload();
        let m = mapping(LoadScheme::CoarseGrain {
            cb_load: 2,
            f_load: 2,
        });
        let report = estimate_cost(&platform(16), &w, &m).unwrap();
        // Every loaded chunk carries all CT candidates.
        assert!(report.accesses.lut_bytes >= w.ct as u64);
        assert_eq!(report.accesses.lut_bytes % (w.ct as u64 * 4), 0); // chunk = 2·CT·2
    }

    #[test]
    fn fine_scheme_bytes_skip_ct() {
        let w = workload();
        let m = mapping(LoadScheme::FineGrain {
            f_load: 4,
            threads: 8,
        });
        let report = cost_with_repeat(&platform(16), &w, &m, 0.0).unwrap();
        // Only selected entries: N_s × CB × F_s bytes.
        assert_eq!(report.accesses.lut_bytes, (16 * 8 * 8) as u64);
    }

    #[test]
    fn repeat_fraction_reduces_fine_grain_cost() {
        let w = workload();
        let m = mapping(LoadScheme::FineGrain {
            f_load: 4,
            threads: 8,
        });
        let p = platform(16);
        let none = cost_with_repeat(&p, &w, &m, 0.0).unwrap();
        let half = cost_with_repeat(&p, &w, &m, 0.5).unwrap();
        assert!(half.time.kernel_lut_s < none.time.kernel_lut_s);
        assert!(half.accesses.lut_accesses < none.accesses.lut_accesses);
        assert_eq!(half.repeat_fraction, 0.5);
    }

    #[test]
    fn repeat_fraction_ignored_for_static() {
        let w = workload();
        let p = platform(16);
        let a = cost_with_repeat(&p, &w, &mapping(LoadScheme::Static), 0.0).unwrap();
        let b = cost_with_repeat(&p, &w, &mapping(LoadScheme::Static), 0.9).unwrap();
        assert_eq!(a.time.kernel_lut_s, b.time.kernel_lut_s);
        assert_eq!(b.repeat_fraction, 0.0);
    }

    #[test]
    fn reduce_time_scales_with_workload() {
        let w_small = workload();
        let w_big = LutWorkload::new(128, 8, 16, 32).unwrap();
        let p = platform(16);
        let m_small = mapping(LoadScheme::Static);
        let m_big = Mapping {
            n_stile: 32,
            ..m_small
        };
        let small = estimate_cost(&p, &w_small, &m_small).unwrap();
        let big = estimate_cost(&p, &w_big, &m_big).unwrap();
        assert!(big.time.kernel_reduce_s > small.time.kernel_reduce_s);
        assert_eq!(big.accesses.reduce_ops, 2 * small.accesses.reduce_ops);
    }

    #[test]
    fn short_inner_loop_pays_stalls() {
        // Same reduce op count, shorter F_m-tile → more loop overhead.
        let w = workload();
        let p = platform(16);
        let long = mapping(LoadScheme::Static);
        let mut short = long;
        short.kernel.f_mtile = 1;
        short.kernel.load_scheme = LoadScheme::Static;
        let t_long = estimate_cost(&p, &w, &long).unwrap().time.kernel_reduce_s;
        let t_short = estimate_cost(&p, &w, &short).unwrap().time.kernel_reduce_s;
        assert!(t_short > t_long);
    }

    #[test]
    fn traversal_changes_output_reload_cost() {
        let w = workload();
        let p = platform(16);
        let mut inner_cb = mapping(LoadScheme::Static); // Nfc: CB innermost
        inner_cb.kernel.traversal = TraversalOrder::Nfc;
        let mut outer_cb = mapping(LoadScheme::Static);
        outer_cb.kernel.traversal = TraversalOrder::Cnf;
        let a = estimate_cost(&p, &w, &inner_cb).unwrap();
        let b = estimate_cost(&p, &w, &outer_cb).unwrap();
        assert!(b.accesses.output_loads > a.accesses.output_loads);
        assert!(b.time.kernel_output_s > a.time.kernel_output_s);
    }

    #[test]
    fn host_pim_bytes_accounts_all_tiles() {
        let w = workload();
        let m = mapping(LoadScheme::Static);
        let report = estimate_cost(&platform(16), &w, &m).unwrap();
        let (i, l, o) = m.stile_sizes(&w);
        assert_eq!(report.host_pim_bytes, (i + l + o) * 16);
    }
}
