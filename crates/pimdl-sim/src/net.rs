//! Network cost model for the distributed shard fabric.
//!
//! When shard workers become separate OS processes (DESIGN.md §13), every
//! dispatched batch crosses a socket twice: an `Execute` frame out and an
//! `ExecDone` frame back. The serving DES prices that crossing with an
//! affine model,
//!
//! ```text
//! frame_cost(bytes) = link_latency_s + per_byte_s * bytes
//! ```
//!
//! calibrated from *measured* loopback round-trips at two frame sizes —
//! the same philosophy as the dispatch-overhead calibration
//! (`pimdl_engine::scheduler::HOST_DISPATCH_OVERHEAD_S`): the model's
//! constants come from the real runtime, and a test pins the RT/DES gap
//! across the process boundary.

use serde::{Deserialize, Serialize};

use crate::error::SimError;
use crate::Result;

/// Affine per-frame network cost: a fixed link latency plus a
/// serialization/copy term proportional to the frame size.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkModel {
    /// Fixed one-way cost of moving one frame across the link (seconds):
    /// syscall entry, loopback queueing, wakeup of the peer.
    pub link_latency_s: f64,
    /// Marginal cost per payload byte (seconds/byte): serialization,
    /// copies, and checksumming on both ends.
    pub per_byte_s: f64,
}

impl NetworkModel {
    /// The free network: both terms zero. With this model the fabric DES
    /// degenerates to the in-process DES.
    pub fn zero() -> Self {
        NetworkModel {
            link_latency_s: 0.0,
            per_byte_s: 0.0,
        }
    }

    /// Checks the model for degenerate values.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::WorkloadMismatch`] if either term is negative
    /// or non-finite (a negative cost would let large batches finish
    /// before they dispatch).
    pub fn validate(&self) -> Result<()> {
        if !self.link_latency_s.is_finite() || self.link_latency_s < 0.0 {
            return Err(SimError::WorkloadMismatch {
                detail: format!(
                    "network link_latency_s must be finite and >= 0, got {}",
                    self.link_latency_s
                ),
            });
        }
        if !self.per_byte_s.is_finite() || self.per_byte_s < 0.0 {
            return Err(SimError::WorkloadMismatch {
                detail: format!(
                    "network per_byte_s must be finite and >= 0, got {}",
                    self.per_byte_s
                ),
            });
        }
        Ok(())
    }

    /// One-way cost of a frame carrying `bytes` payload bytes.
    pub fn frame_cost_s(&self, bytes: usize) -> f64 {
        self.link_latency_s + self.per_byte_s * bytes as f64
    }

    /// Fits the affine model to two measured loopback round trips
    /// `(frame_bytes, rtt_s)`. Each round trip crosses the link twice, so
    /// the fitted one-way latency is half the extrapolated zero-byte RTT
    /// and the per-byte slope is half the RTT slope. Both terms are
    /// clamped to zero: on a noisy host the small-frame RTT can exceed
    /// the large-frame RTT, and a negative cost must never enter the DES.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::WorkloadMismatch`] for non-finite/negative
    /// measurements or two samples at the same frame size (the slope
    /// would be undefined).
    pub fn calibrate(small: (usize, f64), large: (usize, f64)) -> Result<Self> {
        let (b0, t0) = small;
        let (b1, t1) = large;
        if !t0.is_finite() || !t1.is_finite() || t0 < 0.0 || t1 < 0.0 {
            return Err(SimError::WorkloadMismatch {
                detail: format!(
                    "network calibration needs finite non-negative RTTs, got {t0}/{t1}"
                ),
            });
        }
        if b0 == b1 {
            return Err(SimError::WorkloadMismatch {
                detail: format!("network calibration needs two distinct frame sizes, got {b0}"),
            });
        }
        let slope = ((t1 - t0) / (b1 as f64 - b0 as f64)).max(0.0);
        let intercept = (t0 - slope * b0 as f64).max(0.0);
        Ok(NetworkModel {
            link_latency_s: intercept / 2.0,
            per_byte_s: slope / 2.0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_model_is_free_and_valid() {
        let m = NetworkModel::zero();
        m.validate().unwrap();
        assert_eq!(m.frame_cost_s(0), 0.0);
        assert_eq!(m.frame_cost_s(1 << 20), 0.0);
    }

    #[test]
    fn frame_cost_is_affine_in_bytes() {
        let m = NetworkModel {
            link_latency_s: 10e-6,
            per_byte_s: 1e-9,
        };
        m.validate().unwrap();
        assert!((m.frame_cost_s(0) - 10e-6).abs() < 1e-15);
        let d = m.frame_cost_s(2000) - m.frame_cost_s(1000);
        assert!((d - 1e-6).abs() < 1e-12);
    }

    #[test]
    fn degenerate_models_are_rejected() {
        for (lat, per) in [
            (-1e-6, 0.0),
            (f64::NAN, 0.0),
            (f64::INFINITY, 0.0),
            (0.0, -1e-12),
            (0.0, f64::NAN),
        ] {
            let m = NetworkModel {
                link_latency_s: lat,
                per_byte_s: per,
            };
            assert!(m.validate().is_err(), "accepted {m:?}");
        }
    }

    #[test]
    fn calibration_recovers_a_synthetic_link() {
        // RTT = 2 * (20us + 2ns/B * bytes), sampled at two sizes.
        let rtt = |b: usize| 2.0 * (20e-6 + 2e-9 * b as f64);
        let m = NetworkModel::calibrate((64, rtt(64)), (65536, rtt(65536))).unwrap();
        assert!((m.link_latency_s - 20e-6).abs() < 1e-12, "{m:?}");
        assert!((m.per_byte_s - 2e-9).abs() < 1e-15, "{m:?}");
        m.validate().unwrap();
    }

    #[test]
    fn calibration_clamps_noise_to_zero() {
        // Noisy host: the small frame measured *slower* than the large
        // one — the slope clamps to 0 and the intercept stays the small
        // RTT, never a negative cost.
        let m = NetworkModel::calibrate((64, 100e-6), (65536, 80e-6)).unwrap();
        assert_eq!(m.per_byte_s, 0.0);
        assert!((m.link_latency_s - 50e-6).abs() < 1e-12);
        m.validate().unwrap();

        assert!(NetworkModel::calibrate((64, f64::NAN), (128, 1.0)).is_err());
        assert!(NetworkModel::calibrate((64, 1.0), (64, 2.0)).is_err());
        assert!(NetworkModel::calibrate((64, -1.0), (128, 1.0)).is_err());
    }
}
