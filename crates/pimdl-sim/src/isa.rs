//! The **PIM binary**: a tile-level instruction set for the simulated PEs
//! and a compiler from tuned mappings to instruction programs.
//!
//! The paper's engine lowers every offloaded operator to a "PIM binary"
//! that the host launches on the PEs (Fig. 6-(a): PIM kernel → PIM binary →
//! PIM driver). This module is that layer for the simulator: given a
//! [`LutWorkload`] and a tuned [`Mapping`], [`compile`] emits the loop nest
//! the micro-kernel parameters describe — MTile loads/stores, LUT loads in
//! the chosen scheme, and accumulate steps — as an explicit [`PimProgram`].
//!
//! The program is executed by [`crate::interp`], which both computes the
//! PE's output tile and counts every access, giving an independent check of
//! the closed-form cost model in [`crate::cost`]: the compiler and the cost
//! formulas must agree on `LCount`/`SCount`/`RCount`, and the tests assert
//! that they do.

use serde::{Deserialize, Serialize};

use crate::mapping::{LoadScheme, LoopDim, LutWorkload, Mapping};
use crate::{Result, SimError};

/// One tile-level PE instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Instr {
    /// DMA the index MTile with origin `(n0, cb0)` (within the PE's
    /// sub-LUT tile) from local memory into the on-chip buffer.
    LoadIndex {
        /// Row origin within the PE's index tile.
        n0: u32,
        /// Codebook origin.
        cb0: u32,
    },
    /// Zero the on-chip output accumulator for the MTile at `(n0, f0)`
    /// (first visit: nothing to re-load).
    ZeroOutput {
        /// Row origin.
        n0: u32,
        /// Feature origin within the PE's feature tile.
        f0: u32,
    },
    /// DMA a previously stored output MTile back for further accumulation.
    LoadOutput {
        /// Row origin.
        n0: u32,
        /// Feature origin.
        f0: u32,
    },
    /// DMA the output MTile at `(n0, f0)` back to local memory.
    StoreOutput {
        /// Row origin.
        n0: u32,
        /// Feature origin.
        f0: u32,
    },
    /// DMA the PE's entire LUT tile into the on-chip buffer (static
    /// scheme; executed once).
    LoadLutAll,
    /// DMA all `CT` candidates for the codebook×feature chunk at
    /// `(cb0, f0)` (coarse-grain scheme).
    LoadLutChunk {
        /// Codebook origin of the chunk.
        cb0: u32,
        /// Feature origin of the chunk.
        f0: u32,
    },
    /// For every row of the current index MTile: read the index for
    /// codebook `cb`, gather the selected entry's `[f0, f0 + f_load)`
    /// feature slice from local memory (unless it repeats the previous
    /// row's index, which hits the per-thread buffer) and accumulate
    /// (fine-grain scheme).
    GatherAccumulate {
        /// Codebook within the current index MTile.
        cb: u32,
        /// Feature origin of the slice.
        f0: u32,
    },
    /// Accumulate from on-chip LUT data for the current index MTile over
    /// codebooks `[cb0, cb0 + count)` and features `[f0, f0 + f_count)`
    /// (static/coarse schemes; data already resident).
    AccumulateResident {
        /// First codebook to reduce.
        cb0: u32,
        /// Number of codebooks to reduce.
        count: u32,
        /// Feature origin.
        f0: u32,
        /// Number of features to reduce.
        f_count: u32,
    },
}

impl std::fmt::Display for Instr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Instr::LoadIndex { n0, cb0 } => write!(f, "ld.idx    n={n0} cb={cb0}"),
            Instr::ZeroOutput { n0, f0 } => write!(f, "zero.out  n={n0} f={f0}"),
            Instr::LoadOutput { n0, f0 } => write!(f, "ld.out    n={n0} f={f0}"),
            Instr::StoreOutput { n0, f0 } => write!(f, "st.out    n={n0} f={f0}"),
            Instr::LoadLutAll => write!(f, "ld.lut.all"),
            Instr::LoadLutChunk { cb0, f0 } => write!(f, "ld.lut    cb={cb0} f={f0}"),
            Instr::GatherAccumulate { cb, f0 } => write!(f, "gather.acc cb={cb} f={f0}"),
            Instr::AccumulateResident {
                cb0,
                count,
                f0,
                f_count,
            } => write!(f, "acc       cb={cb0}+{count} f={f0}+{f_count}"),
        }
    }
}

/// A compiled PE program plus the shape metadata needed to execute it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PimProgram {
    /// The instruction stream.
    pub instrs: Vec<Instr>,
    /// Workload the program was compiled for.
    pub workload: LutWorkload,
    /// Mapping the program was compiled from.
    pub mapping: Mapping,
}

impl PimProgram {
    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the program is empty.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Disassembles the program (first `limit` instructions; 0 = all).
    pub fn disassemble(&self, limit: usize) -> String {
        let mut out = String::new();
        let take = if limit == 0 { self.instrs.len() } else { limit };
        for (pc, instr) in self.instrs.iter().take(take).enumerate() {
            out.push_str(&format!("{pc:6}: {instr}\n"));
        }
        if take < self.instrs.len() {
            out.push_str(&format!("  ... ({} more)\n", self.instrs.len() - take));
        }
        out
    }

    /// Counts instructions of each load/store/compute class:
    /// `(index_loads, output_zero_or_loads, output_stores, lut_loads,
    /// accumulate_instrs)`.
    pub fn instruction_mix(&self) -> (u64, u64, u64, u64, u64) {
        let mut idx = 0;
        let mut out_in = 0;
        let mut out_st = 0;
        let mut lut = 0;
        let mut acc = 0;
        for i in &self.instrs {
            match i {
                Instr::LoadIndex { .. } => idx += 1,
                Instr::ZeroOutput { .. } | Instr::LoadOutput { .. } => out_in += 1,
                Instr::StoreOutput { .. } => out_st += 1,
                Instr::LoadLutAll | Instr::LoadLutChunk { .. } => lut += 1,
                Instr::GatherAccumulate { .. } | Instr::AccumulateResident { .. } => acc += 1,
            }
        }
        (idx, out_in, out_st, lut, acc)
    }
}

/// Compiles the micro-kernel loop nest of `mapping` into a PE program.
///
/// The loop order follows the mapping's traversal order; tile loads are
/// emitted only when the tile changes (the reuse semantics of
/// `TraversalOrder::load_count`); LUT data movement follows the load
/// scheme. The program computes the PE's whole `(N_s-tile, F_s-tile)`
/// output.
///
/// # Errors
///
/// Returns [`SimError::IllegalMapping`] if the mapping does not validate
/// against the workload (platform-independent checks only: divisibility and
/// load-factor legality).
pub fn compile(workload: &LutWorkload, mapping: &Mapping) -> Result<PimProgram> {
    let w = workload;
    let m = mapping;
    let k = &m.kernel;
    // Structural validation (platform-independent subset of
    // `Mapping::validate`).
    if k.n_mtile == 0
        || k.f_mtile == 0
        || k.cb_mtile == 0
        || !m.n_stile.is_multiple_of(k.n_mtile)
        || !m.f_stile.is_multiple_of(k.f_mtile)
        || !w.cb.is_multiple_of(k.cb_mtile)
    {
        return Err(SimError::IllegalMapping {
            detail: format!("micro-kernel tiles do not divide the sub-LUT tile: {m:?}"),
        });
    }
    match k.load_scheme {
        LoadScheme::CoarseGrain { cb_load, f_load } => {
            if cb_load == 0
                || f_load == 0
                || !k.cb_mtile.is_multiple_of(cb_load)
                || !k.f_mtile.is_multiple_of(f_load)
            {
                return Err(SimError::IllegalMapping {
                    detail: "coarse load factors do not divide the micro tiles".to_string(),
                });
            }
        }
        LoadScheme::FineGrain { f_load, threads } => {
            if f_load == 0 || threads == 0 || !k.f_mtile.is_multiple_of(f_load) {
                return Err(SimError::IllegalMapping {
                    detail: "fine load factor does not divide the micro tile".to_string(),
                });
            }
        }
        LoadScheme::Static => {}
    }

    let t_n = m.n_stile / k.n_mtile;
    let t_f = m.f_stile / k.f_mtile;
    let t_cb = w.cb / k.cb_mtile;

    let mut instrs = Vec::new();
    if matches!(k.load_scheme, LoadScheme::Static) {
        instrs.push(Instr::LoadLutAll);
    }

    // Loop trip counts in traversal order.
    let dims = k.traversal.dims();
    let trip = |d: LoopDim| match d {
        LoopDim::N => t_n,
        LoopDim::F => t_f,
        LoopDim::Cb => t_cb,
    };
    let (o0, o1, o2) = (dims[0], dims[1], dims[2]);

    // Track resident tiles so loads are emitted only on change — exactly
    // the reuse model of `TraversalOrder::load_count`.
    let mut cur_index: Option<(u32, u32)> = None;
    let mut cur_output: Option<(u32, u32)> = None;
    // The single coarse-chunk buffer: holds the most recently loaded
    // (cb0, f0) chunk, enabling reuse across iterations only when the MTile
    // needs exactly that chunk again.
    let mut cur_chunk: Option<(u32, u32)> = None;
    // Which output MTiles have been visited at least once (first visit
    // zeroes instead of loading) and which codebooks they have consumed.
    let mut visited: std::collections::HashMap<(u32, u32), u32> = std::collections::HashMap::new();

    for i0 in 0..trip(o0) {
        for i1 in 0..trip(o1) {
            for i2 in 0..trip(o2) {
                let mut n_i = 0usize;
                let mut f_i = 0usize;
                let mut cb_i = 0usize;
                for (dim, idx) in [(o0, i0), (o1, i1), (o2, i2)] {
                    match dim {
                        LoopDim::N => n_i = idx,
                        LoopDim::F => f_i = idx,
                        LoopDim::Cb => cb_i = idx,
                    }
                }
                let n0 = (n_i * k.n_mtile) as u32;
                let f0 = (f_i * k.f_mtile) as u32;
                let cb0 = (cb_i * k.cb_mtile) as u32;

                // Index MTile depends on (n, cb).
                if cur_index != Some((n0, cb0)) {
                    instrs.push(Instr::LoadIndex { n0, cb0 });
                    cur_index = Some((n0, cb0));
                }
                // Output MTile depends on (n, f).
                if cur_output != Some((n0, f0)) {
                    if let Some(prev) = cur_output {
                        instrs.push(Instr::StoreOutput {
                            n0: prev.0,
                            f0: prev.1,
                        });
                    }
                    if visited.contains_key(&(n0, f0)) {
                        instrs.push(Instr::LoadOutput { n0, f0 });
                    } else {
                        instrs.push(Instr::ZeroOutput { n0, f0 });
                    }
                    cur_output = Some((n0, f0));
                }
                *visited.entry((n0, f0)).or_insert(0) += 1;

                // LUT movement + accumulation for this (n, f, cb) MTile.
                match k.load_scheme {
                    LoadScheme::Static => {
                        instrs.push(Instr::AccumulateResident {
                            cb0,
                            count: k.cb_mtile as u32,
                            f0,
                            f_count: k.f_mtile as u32,
                        });
                    }
                    LoadScheme::CoarseGrain { cb_load, f_load } => {
                        for c in 0..(k.cb_mtile / cb_load) {
                            for fc in 0..(k.f_mtile / f_load) {
                                let chunk_cb0 = cb0 + (c * cb_load) as u32;
                                let chunk_f0 = f0 + (fc * f_load) as u32;
                                if cur_chunk != Some((chunk_cb0, chunk_f0)) {
                                    instrs.push(Instr::LoadLutChunk {
                                        cb0: chunk_cb0,
                                        f0: chunk_f0,
                                    });
                                    cur_chunk = Some((chunk_cb0, chunk_f0));
                                }
                                instrs.push(Instr::AccumulateResident {
                                    cb0: chunk_cb0,
                                    count: cb_load as u32,
                                    f0: chunk_f0,
                                    f_count: f_load as u32,
                                });
                            }
                        }
                    }
                    LoadScheme::FineGrain { f_load, .. } => {
                        for cb in 0..k.cb_mtile {
                            for fc in 0..(k.f_mtile / f_load) {
                                instrs.push(Instr::GatherAccumulate {
                                    cb: cb0 + cb as u32,
                                    f0: f0 + (fc * f_load) as u32,
                                });
                            }
                        }
                    }
                }
            }
        }
    }
    if let Some(prev) = cur_output {
        instrs.push(Instr::StoreOutput {
            n0: prev.0,
            f0: prev.1,
        });
    }

    Ok(PimProgram {
        instrs,
        workload: *w,
        mapping: *m,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::{MicroKernel, TraversalOrder};

    fn workload() -> LutWorkload {
        LutWorkload::new(64, 8, 16, 32).unwrap()
    }

    fn mapping(scheme: LoadScheme, traversal: TraversalOrder) -> Mapping {
        Mapping {
            n_stile: 16,
            f_stile: 8,
            kernel: MicroKernel {
                n_mtile: 4,
                f_mtile: 4,
                cb_mtile: 4,
                traversal,
                load_scheme: scheme,
            },
        }
    }

    #[test]
    fn static_program_loads_lut_once() {
        let w = workload();
        let p = compile(&w, &mapping(LoadScheme::Static, TraversalOrder::Nfc)).unwrap();
        let (_, _, _, lut, _) = p.instruction_mix();
        assert_eq!(lut, 1);
        assert_eq!(p.instrs[0], Instr::LoadLutAll);
        assert!(!p.is_empty());
    }

    #[test]
    fn index_loads_match_cost_model_reuse() {
        let w = workload();
        for traversal in TraversalOrder::all() {
            let m = mapping(LoadScheme::Static, traversal);
            let p = compile(&w, &m).unwrap();
            let (idx, _, _, _, _) = p.instruction_mix();
            let expected = traversal.load_count(m.trip_counts(&w), (true, false, true));
            assert_eq!(idx, expected, "{traversal}");
        }
    }

    #[test]
    fn output_traffic_matches_cost_model_reuse() {
        let w = workload();
        for traversal in TraversalOrder::all() {
            let m = mapping(LoadScheme::Static, traversal);
            let p = compile(&w, &m).unwrap();
            let (_, out_in, out_st, _, _) = p.instruction_mix();
            let expected = traversal.load_count(m.trip_counts(&w), (true, true, false));
            assert_eq!(out_in, expected, "{traversal} loads");
            assert_eq!(out_st, expected, "{traversal} stores");
        }
    }

    #[test]
    fn coarse_chunk_count_matches_cost_model() {
        let w = workload();
        // Multi-chunk MTiles: the single chunk buffer thrashes, so every
        // MTile iteration reloads all its chunks.
        let scheme = LoadScheme::CoarseGrain {
            cb_load: 2,
            f_load: 2,
        };
        for traversal in TraversalOrder::all() {
            let m = mapping(scheme, traversal);
            let p = compile(&w, &m).unwrap();
            let (_, _, _, lut, _) = p.instruction_mix();
            let trips = m.trip_counts(&w);
            let chunks_per_mtile = ((m.kernel.cb_mtile / 2) * (m.kernel.f_mtile / 2)) as u64;
            assert_eq!(
                lut,
                trips.0 * trips.1 * trips.2 * chunks_per_mtile,
                "{traversal}"
            );
        }

        // Single-chunk MTiles (chunk == MTile): the chunk survives across
        // iterations that do not change (f, cb) — the cost model's reuse.
        let scheme = LoadScheme::CoarseGrain {
            cb_load: 4,
            f_load: 4,
        };
        for traversal in TraversalOrder::all() {
            let m = mapping(scheme, traversal);
            let p = compile(&w, &m).unwrap();
            let (_, _, _, lut, _) = p.instruction_mix();
            let expected = traversal.load_count(m.trip_counts(&w), (false, true, true));
            assert_eq!(lut, expected, "{traversal}");
        }
    }

    #[test]
    fn fine_gather_instruction_count() {
        let w = workload();
        let m = mapping(
            LoadScheme::FineGrain {
                f_load: 4,
                threads: 8,
            },
            TraversalOrder::Nfc,
        );
        let p = compile(&w, &m).unwrap();
        let (_, _, _, lut, acc) = p.instruction_mix();
        assert_eq!(lut, 0); // fine-grain gathers live inside the accumulate
                            // Gather instrs: per (n,f,cb) mtile: cb_m × (f_m / f_load).
        let trips = m.trip_counts(&w);
        let per_mtile = (m.kernel.cb_mtile * (m.kernel.f_mtile / 4)) as u64;
        assert_eq!(acc, trips.0 * trips.1 * trips.2 * per_mtile);
    }

    #[test]
    fn compile_rejects_bad_tiles() {
        let w = workload();
        let mut m = mapping(LoadScheme::Static, TraversalOrder::Nfc);
        m.kernel.n_mtile = 3; // 3 ∤ 16
        assert!(compile(&w, &m).is_err());

        let mut m = mapping(
            LoadScheme::CoarseGrain {
                cb_load: 3,
                f_load: 2,
            },
            TraversalOrder::Nfc,
        );
        m.kernel.cb_mtile = 4;
        assert!(compile(&w, &m).is_err());
    }

    #[test]
    fn disassembly_is_readable() {
        let w = workload();
        let p = compile(&w, &mapping(LoadScheme::Static, TraversalOrder::Nfc)).unwrap();
        let text = p.disassemble(5);
        assert!(text.contains("ld.lut.all"));
        assert!(text.contains("more"));
        let full = p.disassemble(0);
        assert!(!full.contains("more"));
        assert_eq!(full.lines().count(), p.len());
    }

    #[test]
    fn program_roundtrips_through_serde() {
        let w = workload();
        let p = compile(&w, &mapping(LoadScheme::Static, TraversalOrder::Ncf)).unwrap();
        let json = serde_json::to_string(&p).unwrap();
        let back: PimProgram = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
