use pimdl_sim::cost::estimate_cost;
use pimdl_sim::{LutWorkload, PlatformConfig};
use pimdl_tuner::model::analytical_cost;
use pimdl_tuner::space::{kernel_candidates, mapping_of, sub_lut_candidates};
use pimdl_tuner::tune;
fn main() {
    let p = PlatformConfig::upmem();
    let w = LutWorkload::new(32768, 192, 16, 2304).unwrap(); // Bert-Base QKV
    let t = tune(&p, &w).unwrap();
    let tm = t.mapping;
    let sim_t = estimate_cost(&p, &w, &tm).unwrap();
    println!(
        "tuner pick: N_s={} F_s={} n_m={} f_m={} cb_m={} {} {:?} | model {:.4}s sim {:.4}s",
        tm.n_stile,
        tm.f_stile,
        tm.kernel.n_mtile,
        tm.kernel.f_mtile,
        tm.kernel.cb_mtile,
        tm.kernel.traversal,
        tm.kernel.load_scheme,
        t.predicted_total_s,
        sim_t.time.total_s()
    );
    let tb = sim_t.time;
    println!("  sim breakdown: sub_idx {:.4} sub_lut {:.4} sub_out {:.4} k_idx {:.4} k_lut {:.4} k_out {:.4} k_red {:.4}",
        tb.sub_index_s, tb.sub_lut_s, tb.sub_output_s, tb.kernel_index_s, tb.kernel_lut_s, tb.kernel_output_s, tb.kernel_reduce_s);
    let mut best = (f64::INFINITY, None);
    for (n_s, f_s) in sub_lut_candidates(&w, &p) {
        let mut kernels = kernel_candidates(&w, &p, n_s, f_s);
        kernels.retain(|k| k.n_mtile >= 4 && k.f_mtile >= 4 && k.cb_mtile >= 2);
        if kernels.len() > 1500 {
            let st = kernels.len().div_ceil(1500);
            kernels = kernels.into_iter().step_by(st).collect();
        }
        for k in kernels {
            let m = mapping_of(n_s, f_s, k);
            if let Ok(c) = estimate_cost(&p, &w, &m) {
                if c.time.total_s() < best.0 {
                    best = (c.time.total_s(), Some(m));
                }
            }
        }
    }
    let bm = best.1.unwrap();
    let bmod = analytical_cost(&p, &w, &bm).unwrap();
    let bsim = estimate_cost(&p, &w, &bm).unwrap().time;
    println!(
        "sim best:   N_s={} F_s={} n_m={} f_m={} cb_m={} {} {:?} | model {:.4}s sim {:.4}s",
        bm.n_stile,
        bm.f_stile,
        bm.kernel.n_mtile,
        bm.kernel.f_mtile,
        bm.kernel.cb_mtile,
        bm.kernel.traversal,
        bm.kernel.load_scheme,
        bmod.total_s(),
        best.0
    );
    println!("  sim breakdown: sub_idx {:.4} sub_lut {:.4} sub_out {:.4} k_idx {:.4} k_lut {:.4} k_out {:.4} k_red {:.4}",
        bsim.sub_index_s, bsim.sub_lut_s, bsim.sub_output_s, bsim.kernel_index_s, bsim.kernel_lut_s, bsim.kernel_output_s, bsim.kernel_reduce_s);
}
