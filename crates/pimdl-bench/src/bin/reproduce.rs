//! `reproduce` — regenerates every table and figure of the PIM-DL paper.
//!
//! ```text
//! reproduce <experiment> [--json DIR] [--quick] [--smoke] [--pool-threads N]
//!
//! experiments:
//!   table1  fig3  fig4  table4  table5  fig10  fig11  fig12  fig13
//!   fig14  fig15  tuner-error  data-efficiency  discussion  scaling  serving
//!   elutnn-ablation  bench_kernels  all
//! ```
//!
//! `--quick` shrinks the workload sizes (useful for smoke runs); the
//! paper-scale defaults are used otherwise. `--json DIR` additionally
//! writes each result as JSON for EXPERIMENTS.md bookkeeping.
//!
//! `bench_kernels` times the host CCS+LUT kernel trajectory (scalar →
//! blocked → fused → fused+pool) and writes `BENCH_kernels.json` to the
//! current directory. `--smoke` shrinks it to a CI-friendly shape and
//! asserts the fused kernel is not slower than the scalar baseline.
//! `--pool-threads N` pins the `fused+pool` variant's worker-pool width
//! (default: the machine's available parallelism), so the recorded
//! multi-threaded point states exactly how many cores produced it.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use pimdl_bench::experiments::{
    accuracy, bench_kernels, data_efficiency, discussion, elutnn_ablation, fig10, fig11, fig12,
    fig13, fig14, fig15, fig3, fig4, scaling, serving, table1, tuner_error,
};
use pimdl_bench::report::write_json;

struct Options {
    json_dir: Option<PathBuf>,
    quick: bool,
    smoke: bool,
    pool_threads: usize,
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(which) = args.next() else {
        eprintln!("usage: reproduce <experiment|all> [--json DIR] [--quick]");
        return ExitCode::FAILURE;
    };
    let mut options = Options {
        json_dir: None,
        quick: false,
        smoke: false,
        pool_threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => match args.next() {
                Some(dir) => options.json_dir = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--json requires a directory");
                    return ExitCode::FAILURE;
                }
            },
            "--quick" => options.quick = true,
            "--smoke" => options.smoke = true,
            "--pool-threads" => match args.next().and_then(|n| n.parse().ok()) {
                Some(n) if n >= 1 => options.pool_threads = n,
                _ => {
                    eprintln!("--pool-threads requires a count >= 1");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("unknown flag: {other}");
                return ExitCode::FAILURE;
            }
        }
    }

    let experiments: Vec<&str> = if which == "all" {
        vec![
            "table1",
            "fig3",
            "fig4",
            "table4",
            "table5",
            "fig10",
            "fig11",
            "fig12",
            "fig13",
            "fig14",
            "fig15",
            "tuner-error",
            "data-efficiency",
            "discussion",
            "scaling",
            "serving",
            "elutnn-ablation",
        ]
    } else {
        vec![which.as_str()]
    };

    for exp in experiments {
        let started = Instant::now();
        match dispatch(exp, &options) {
            Ok(output) => {
                println!("{output}");
                println!(
                    "[{exp} completed in {:.1} s]\n",
                    started.elapsed().as_secs_f64()
                );
            }
            Err(e) => {
                eprintln!("{exp} failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn dispatch(which: &str, options: &Options) -> Result<String, Box<dyn std::error::Error>> {
    let json = |name: &str, value: &dyn erased::Json| -> std::io::Result<()> {
        if let Some(dir) = &options.json_dir {
            value.write(dir, name)?;
        }
        Ok(())
    };
    match which {
        "table1" => {
            let r = table1::run();
            json("table1", &r)?;
            Ok(table1::render(&r))
        }
        "fig3" => {
            let r = fig3::run(1024);
            json("fig3", &r)?;
            Ok(fig3::render(&r))
        }
        "fig4" => {
            let r = fig4::run();
            json("fig4", &r)?;
            Ok(fig4::render(&r))
        }
        "table4" => {
            let cfg = if options.quick {
                accuracy::AccuracyConfig::quick()
            } else {
                accuracy::AccuracyConfig::default()
            };
            let r = accuracy::run_nlp(&cfg)?;
            json("table4", &r)?;
            Ok(accuracy::render(&r))
        }
        "table5" => {
            let cfg = if options.quick {
                accuracy::AccuracyConfig::quick()
            } else {
                accuracy::AccuracyConfig::default()
            };
            let r = accuracy::run_vision(&cfg)?;
            json("table5", &r)?;
            Ok(accuracy::render(&r))
        }
        "fig10" => {
            let r = fig10::run()?;
            json("fig10", &r)?;
            Ok(fig10::render(&r))
        }
        "fig11" => {
            let (batch, seq) = if options.quick { (8, 64) } else { (64, 512) };
            let r = fig11::run(batch, seq)?;
            json("fig11", &r)?;
            Ok(fig11::render(&r))
        }
        "fig12" => {
            let cfg = if options.quick {
                fig12::Fig12Config {
                    batch: 8,
                    seq_len: 64,
                }
            } else {
                fig12::Fig12Config::default()
            };
            let r = fig12::run(&cfg)?;
            json("fig12", &r)?;
            Ok(fig12::render(&r))
        }
        "fig13" => {
            let r = if options.quick {
                let mut p = pimdl_sim::PlatformConfig::upmem();
                p.num_pes = 64;
                let w = pimdl_sim::LutWorkload::new(1024, 64, 16, 256)?;
                fig13::run_with(&p, &w, (128, 16), (256, 16), 1000)
            } else {
                fig13::run()
            };
            json("fig13", &r)?;
            Ok(fig13::render(&r))
        }
        "fig14" => {
            let r = if options.quick {
                fig14::run_with(&[1024], &[1, 8], 128, 4)?
            } else {
                fig14::run()?
            };
            json("fig14", &r)?;
            Ok(fig14::render(&r))
        }
        "fig15" => {
            let r = if options.quick {
                fig15::run_with(&[1024], &[1, 8], 128, 4)?
            } else {
                fig15::run()?
            };
            json("fig15", &r)?;
            Ok(fig15::render(&r))
        }
        "data-efficiency" => {
            let (budgets, train): (&[usize], usize) = if options.quick {
                (&[16, 48], 200)
            } else {
                (&[8, 16, 32, 48, 96, 192], 460)
            };
            let r = data_efficiency::run(budgets, train, 7)?;
            json("data_efficiency", &r)?;
            Ok(data_efficiency::render(&r))
        }
        "scaling" => {
            let (batch, seq) = if options.quick { (8, 64) } else { (64, 512) };
            let r = scaling::run(batch, seq)?;
            json("scaling", &r)?;
            Ok(scaling::render(&r))
        }
        "elutnn-ablation" => {
            let r = if options.quick {
                elutnn_ablation::run_with(24, 21, 2, 8, 240)?
            } else {
                elutnn_ablation::run(48, 21)?
            };
            json("elutnn_ablation", &r)?;
            Ok(elutnn_ablation::render(&r))
        }
        "serving" => {
            let shape = pimdl_engine::shapes::TransformerShape::bert_base();
            let (seq, horizon) = if options.quick {
                (64, 120.0)
            } else {
                (128, 400.0)
            };
            let r = serving::run(&shape, seq, &[0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0], horizon)?;
            json("serving", &r)?;
            // The same load sweep through the real pimdl-serve runtime
            // (threaded, 2 DIMM shards) next to the discrete-event model.
            let n = if options.quick { 150 } else { 300 };
            let c = serving::run_vs_runtime(
                &shape,
                seq,
                &[0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0],
                n,
                2,
                true,
            )?;
            json("serving_runtime", &c)?;
            Ok(format!(
                "{}\n\n{}",
                serving::render(&r),
                serving::render_vs_runtime(&c)
            ))
        }
        "discussion" => {
            let (batch, seq) = if options.quick { (4, 32) } else { (64, 512) };
            let r = discussion::run(batch, seq)?;
            json("discussion", &r)?;
            Ok(discussion::render(&r))
        }
        "tuner-error" => {
            let cap = if options.quick { 200 } else { 1500 };
            let r = tuner_error::run(cap)?;
            json("tuner_error", &r)?;
            Ok(tuner_error::render(&r))
        }
        "bench_kernels" | "bench-kernels" => {
            let (shape, reps) = if options.smoke {
                (bench_kernels::KernelShape::smoke(), 3)
            } else {
                (bench_kernels::KernelShape::serving(), 15)
            };
            let r = bench_kernels::run_with_pool(&shape, reps, options.pool_threads)?;
            if options.smoke {
                // CI guard: fusion must never regress below the scalar
                // two-pass. Best-of-reps timing keeps this non-flaky.
                let fused = r.rows_per_s("fused");
                let scalar = r.rows_per_s("scalar");
                if fused < scalar {
                    return Err(format!(
                        "fused kernel slower than scalar: {fused:.0} vs {scalar:.0} rows/s"
                    )
                    .into());
                }
            } else {
                write_json(std::path::Path::new("."), "BENCH_kernels", &r)?;
            }
            json("bench_kernels", &r)?;
            Ok(bench_kernels::render(&r))
        }
        other => Err(format!("unknown experiment: {other}").into()),
    }
}

/// Minimal type-erased JSON writing so `dispatch` can treat heterogeneous
/// result types uniformly.
mod erased {
    use std::io;
    use std::path::Path;

    pub trait Json {
        fn write(&self, dir: &Path, name: &str) -> io::Result<()>;
    }

    impl<T: serde::Serialize> Json for T {
        fn write(&self, dir: &Path, name: &str) -> io::Result<()> {
            super::write_json(dir, name, self)
        }
    }
}
