//! Experiment harness for the PIM-DL reproduction.
//!
//! Every table and figure of the paper's evaluation section has a module
//! under [`experiments`]; the `reproduce` binary dispatches to them and
//! renders text tables (optionally writing JSON artifacts for
//! EXPERIMENTS.md). The Criterion benches under `benches/` measure this
//! repository's *real* host kernels (GEMM vs LUT, CCS, k-means, the
//! auto-tuner itself) to confirm the analytical shapes with wall-clock data.

#![warn(missing_docs)]

pub mod experiments;
pub mod report;
