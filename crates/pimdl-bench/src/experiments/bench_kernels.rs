//! Host-kernel benchmark trajectory: the CCS+LUT kernels from scalar
//! two-pass, through the interleaved-layout two-pass, to the fused tiled
//! kernel and the fused kernel over the persistent worker pool — measured
//! as end-to-end rows/s at a serving-realistic shape.
//!
//! Every variant computes the identical result (`lookup(encode(x))`,
//! bit-for-bit); only the layouts, fusion, and parallelism differ. The
//! output checksum is cross-checked here so the reported numbers cannot
//! silently drift onto different math.

use std::time::Instant;

use serde::Serialize;

use pimdl_lutnn::kernels::{lut_linear_fused, lut_linear_fused_parallel};
use pimdl_lutnn::lut::LutTable;
use pimdl_lutnn::pq::ProductQuantizer;
use pimdl_lutnn::LutError;
use pimdl_tensor::pool::WorkerPool;
use pimdl_tensor::rng::DataRng;
use pimdl_tensor::Matrix;

use crate::report::TextTable;

/// The AMM shape a variant is measured at.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct KernelShape {
    /// Input rows (tokens) per call.
    pub n: usize,
    /// Hidden (input feature) dimension.
    pub h: usize,
    /// Sub-vector length.
    pub v: usize,
    /// Centroids per codebook.
    pub ct: usize,
    /// Output features.
    pub f: usize,
}

impl KernelShape {
    /// Serving-realistic default: a BERT-base-like projection
    /// (N=256, H=768, V=4, CT=16, F=768).
    pub fn serving() -> Self {
        KernelShape {
            n: 256,
            h: 768,
            v: 4,
            ct: 16,
            f: 768,
        }
    }

    /// Cut-down shape for smoke runs in CI.
    pub fn smoke() -> Self {
        KernelShape {
            n: 64,
            h: 256,
            v: 4,
            ct: 16,
            f: 256,
        }
    }
}

/// One measured kernel variant.
#[derive(Debug, Clone, Serialize)]
pub struct KernelVariant {
    /// Variant name.
    pub name: String,
    /// Best-of-reps wall time for one full call, seconds.
    pub best_s: f64,
    /// Input rows processed per second at the best time.
    pub rows_per_s: f64,
    /// Speedup over the scalar two-pass baseline.
    pub speedup_vs_scalar: f64,
}

/// Full benchmark result.
#[derive(Debug, Clone, Serialize)]
pub struct KernelBenchResult {
    /// Shape measured.
    pub shape: KernelShape,
    /// Timed repetitions per variant (best is kept).
    pub reps: usize,
    /// Worker-pool width used by the `fused+pool` variant.
    pub pool_threads: usize,
    /// Output checksum (identical across variants by construction).
    pub checksum: f64,
    /// Measured variants, in trajectory order.
    pub variants: Vec<KernelVariant>,
}

impl KernelBenchResult {
    /// Rows/s of a named variant (panics if absent — variants are fixed).
    pub fn rows_per_s(&self, name: &str) -> f64 {
        self.variants
            .iter()
            .find(|v| v.name == name)
            .map(|v| v.rows_per_s)
            .expect("known variant name")
    }
}

fn time_best<F: FnMut() -> Matrix>(reps: usize, mut f: F) -> (f64, Matrix) {
    let mut out = f(); // warm-up (also the checksum witness)
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        out = f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    (best, out)
}

fn checksum(m: &Matrix) -> f64 {
    m.as_slice().iter().map(|&v| f64::from(v)).sum()
}

/// Runs the four-variant trajectory at `shape`, `reps` timed repetitions
/// each (best kept), with the `fused+pool` variant spanning the global
/// worker pool (sized to the machine's available parallelism).
///
/// # Errors
///
/// Propagates LUT-NN configuration errors (impossible for the built-in
/// shapes) and panics if any variant's output diverges bit-wise from the
/// scalar reference.
pub fn run(shape: &KernelShape, reps: usize) -> Result<KernelBenchResult, LutError> {
    run_with_pool(shape, reps, WorkerPool::global().threads())
}

/// [`run`] with an explicit worker-pool width for the `fused+pool`
/// variant, so the multi-threaded point can be pinned to a known number
/// of physical cores instead of whatever the global pool auto-sized to.
///
/// # Errors
///
/// Rejects `pool_threads == 0`; otherwise as [`run`].
pub fn run_with_pool(
    shape: &KernelShape,
    reps: usize,
    pool_threads: usize,
) -> Result<KernelBenchResult, LutError> {
    if pool_threads == 0 {
        return Err(LutError::Config {
            op: "bench_kernels::run_with_pool",
            detail: "pool_threads must be >= 1".to_string(),
        });
    }
    let KernelShape { n, h, v, ct, f } = *shape;
    let cb = h / v;
    let mut rng = DataRng::new(42);
    let x = rng.normal_matrix(n, h, 0.0, 1.0);
    let centroids = rng.normal_matrix(cb * ct, v, 0.0, 1.0);
    let weight = rng.normal_matrix(h, f, 0.0, 0.05);
    let pq = ProductQuantizer::from_centroids(centroids, v, ct)?;
    let lut = LutTable::build(&pq, &weight)?;
    let cbs = pq.interleaved();

    let (scalar_s, reference) = time_best(reps, || {
        lut.lookup(&pq.encode(&x).expect("shape checked"))
            .expect("indices in range")
    });
    // "blocked" = the layout stage alone: interleaved CCS feeding the
    // row-major gather, still two passes with a materialized IndexMatrix.
    // (The transposed table layout is the PIM PE view — pimdl-serve's
    // integrity check streams it — not a host gather optimization.)
    let (blocked_s, blocked_out) = time_best(reps, || {
        lut.lookup(&cbs.encode(&x).expect("shape checked"))
            .expect("indices in range")
    });
    let (fused_s, fused_out) = time_best(reps, || {
        lut_linear_fused(&x, &cbs, &lut).expect("shape checked")
    });
    let (pool_s, pool_out) = time_best(reps, || {
        lut_linear_fused_parallel(&x, &cbs, &lut, pool_threads).expect("shape checked")
    });

    for (name, out) in [
        ("blocked", &blocked_out),
        ("fused", &fused_out),
        ("fused+pool", &pool_out),
    ] {
        assert_eq!(
            reference.as_slice(),
            out.as_slice(),
            "{name} output diverged bit-wise from the scalar reference"
        );
    }

    let rows = n as f64;
    let mk = |name: &str, best_s: f64| KernelVariant {
        name: name.to_string(),
        best_s,
        rows_per_s: rows / best_s.max(f64::MIN_POSITIVE),
        speedup_vs_scalar: scalar_s / best_s.max(f64::MIN_POSITIVE),
    };
    Ok(KernelBenchResult {
        shape: *shape,
        reps,
        pool_threads,
        checksum: checksum(&reference),
        variants: vec![
            mk("scalar", scalar_s),
            mk("blocked", blocked_s),
            mk("fused", fused_s),
            mk("fused+pool", pool_s),
        ],
    })
}

/// Renders the trajectory table.
pub fn render(result: &KernelBenchResult) -> String {
    let mut t = TextTable::new(vec!["Variant", "Best (ms)", "Rows/s", "vs scalar"]);
    for v in &result.variants {
        t.row(vec![
            v.name.clone(),
            format!("{:.3}", v.best_s * 1e3),
            format!("{:.0}", v.rows_per_s),
            format!("{:.2}x", v.speedup_vs_scalar),
        ]);
    }
    let s = result.shape;
    format!(
        "Host CCS+LUT kernel trajectory — N={} H={} V={} CT={} F={} \
         ({} reps, pool width {})\n\n{}",
        s.n,
        s.h,
        s.v,
        s.ct,
        s.f,
        result.reps,
        result.pool_threads,
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_pool_width_is_recorded_and_zero_is_rejected() {
        let r = run_with_pool(&KernelShape::smoke(), 1, 2).unwrap();
        assert_eq!(r.pool_threads, 2);
        assert!(run_with_pool(&KernelShape::smoke(), 1, 0).is_err());
    }

    #[test]
    fn smoke_shape_runs_and_reports_all_variants() {
        let r = run(&KernelShape::smoke(), 1).unwrap();
        assert_eq!(r.variants.len(), 4);
        assert!(r.variants.iter().all(|v| v.rows_per_s > 0.0));
        assert!(r.checksum.is_finite());
        let s = render(&r);
        assert!(s.contains("scalar"));
        assert!(s.contains("fused+pool"));
    }
}
