//! Auto-tuner v2 evaluation: branch-and-bound search effort versus the
//! exhaustive oracle, and per-layer codebook capacity allocation versus the
//! best global `(V, CT)` at equal capacity budgets (DESIGN.md §12).
//!
//! Two sweeps:
//!
//! 1. **Search** — every linear operator of the model is tuned twice, by
//!    branch-and-bound and by the exhaustive enumerator, recording wall
//!    time, candidates evaluated, and whether the optima agree (they must:
//!    the bound is admissible).
//! 2. **Budgets** — for each per-PE capacity budget, the allocator picks
//!    per-operator `(V, CT, mapping)` and the best *uniform* `(V, CT)` at
//!    the same accuracy floor, then both plans serve through the
//!    dynamic-batching DES on a platform whose local memory is clamped to
//!    the budget. The recorded throughput pair is the tentpole headline:
//!    heterogeneous allocation must never lose at equal budget.
//!
//! `reproduce tuner` writes the result as `BENCH_tuner.json`.

use std::time::Instant;

use serde::Serialize;

use pimdl_engine::perlayer::PerLayerServingConfig;
use pimdl_engine::scheduler::{BatchScheduler, BatchingPolicy, Workload};
use pimdl_engine::shapes::TransformerShape;
use pimdl_engine::PimDlEngine;
use pimdl_sim::{LutWorkload, PlatformConfig};
use pimdl_tuner::alloc::{
    allocate_global, allocate_per_layer, reference_code_bits, AllocOptions, OpShape,
};
use pimdl_tuner::{tune_with_options, TuneOptions};

use crate::report::TextTable;

/// One workload tuned by both search strategies.
#[derive(Debug, Clone, Serialize)]
pub struct SearchRow {
    /// Operator label.
    pub label: String,
    /// Workload shape.
    pub workload: LutWorkload,
    /// Branch-and-bound wall time (s).
    pub bnb_wall_s: f64,
    /// Exhaustive wall time (s).
    pub exhaustive_wall_s: f64,
    /// Candidates the pruned search scored.
    pub bnb_evaluated: usize,
    /// Candidates the exhaustive enumerator scored.
    pub exhaustive_evaluated: usize,
    /// Whether both searches returned the same optimal predicted cost
    /// (bit-identical f64) — must always be `true`.
    pub same_optimum: bool,
}

/// One operator's allocated setting inside a budget row.
#[derive(Debug, Clone, Serialize)]
pub struct AllocatedOp {
    /// Operator name.
    pub op: String,
    /// Chosen sub-vector length.
    pub v: usize,
    /// Chosen centroid count.
    pub ct: usize,
    /// Per-PE LUT bytes of the choice (one layer).
    pub per_pe_bytes: usize,
}

/// Per-layer vs global allocation at one capacity budget.
#[derive(Debug, Clone, Serialize)]
pub struct BudgetRow {
    /// Per-PE LUT capacity budget (bytes, across all layers).
    pub budget_bytes: usize,
    /// The heterogeneous plan's operator settings.
    pub per_layer_ops: Vec<AllocatedOp>,
    /// The best uniform `(V, CT)` at the same budget and accuracy floor.
    pub global_v: usize,
    /// Uniform centroid count.
    pub global_ct: usize,
    /// Allocator-predicted PIM LUT latency of the per-layer plan (s).
    pub per_layer_predicted_s: f64,
    /// Allocator-predicted PIM LUT latency of the global plan (s).
    pub global_predicted_s: f64,
    /// DES throughput of the per-layer plan (requests/s).
    pub per_layer_throughput_rps: f64,
    /// DES throughput of the global plan (requests/s).
    pub global_throughput_rps: f64,
}

/// Full tuner-evaluation result (`BENCH_tuner.json`).
#[derive(Debug, Clone, Serialize)]
pub struct TunerSweepResult {
    /// Model evaluated.
    pub model: String,
    /// Batch and sequence length of the serving point.
    pub batch: usize,
    /// Sequence length.
    pub seq_len: usize,
    /// Search-effort comparison rows.
    pub search: Vec<SearchRow>,
    /// Total branch-and-bound wall time (s).
    pub bnb_total_wall_s: f64,
    /// Total exhaustive wall time (s).
    pub exhaustive_total_wall_s: f64,
    /// Capacity-budget sweep rows.
    pub budgets: Vec<BudgetRow>,
}

/// Runs both sweeps for a model shape on a platform.
///
/// `budgets_bytes` are per-PE LUT capacities; budgets too tight for any
/// uniform plan are skipped (the heterogeneous plan may still fit, but the
/// comparison needs both sides).
///
/// # Errors
///
/// Propagates tuner and engine errors.
pub fn run_with(
    platform: &PlatformConfig,
    shape: &TransformerShape,
    batch: usize,
    seq_len: usize,
    budgets_bytes: &[usize],
) -> Result<TunerSweepResult, Box<dyn std::error::Error>> {
    let n = batch * seq_len;
    let (v, ct) = (4usize, 16usize);

    // Sweep 1: search effort, B&B vs exhaustive, same workloads.
    let mut search = Vec::new();
    let mut bnb_total_wall_s = 0.0;
    let mut exhaustive_total_wall_s = 0.0;
    for op in shape.linear_ops() {
        let workload = LutWorkload::new(n, op.in_dim / v, ct, op.out_dim)?;
        let t0 = Instant::now();
        let bnb = tune_with_options(platform, &workload, TuneOptions::default())?;
        let bnb_wall_s = t0.elapsed().as_secs_f64();
        let t1 = Instant::now();
        let oracle = tune_with_options(platform, &workload, TuneOptions::exhaustive_oracle())?;
        let exhaustive_wall_s = t1.elapsed().as_secs_f64();
        bnb_total_wall_s += bnb_wall_s;
        exhaustive_total_wall_s += exhaustive_wall_s;
        search.push(SearchRow {
            label: format!("{} {}", shape.name, op.name),
            workload,
            bnb_wall_s,
            exhaustive_wall_s,
            bnb_evaluated: bnb.evaluated,
            exhaustive_evaluated: oracle.evaluated,
            same_optimum: bnb.predicted_total_s.to_bits() == oracle.predicted_total_s.to_bits(),
        });
    }

    // Sweep 2: per-layer vs global allocation at equal budgets. CT is held
    // to the paper's 16 so both plans run the identical host CCS; the
    // allocator then spends the budget purely on per-operator V (and its
    // mapping choice), which is the capacity/latency trade the DES prices.
    let ops: Vec<OpShape> = shape
        .linear_ops()
        .iter()
        .map(|op| OpShape {
            name: op.name.to_string(),
            in_dim: op.in_dim,
            out_dim: op.out_dim,
            count: shape.layers,
        })
        .collect();
    let mut budgets = Vec::new();
    for &budget in budgets_bytes {
        let mut opts = AllocOptions::with_budget(budget);
        opts.ct_choices = vec![ct];
        opts.min_code_bits = reference_code_bits(&ops, v, ct);
        let mut budget_platform = platform.clone();
        budget_platform.mram_bytes = budget;
        let global = match allocate_global(&budget_platform, &ops, n, &opts) {
            Ok(plan) => plan,
            Err(_) => continue, // no uniform plan fits: nothing to compare
        };
        let per_layer = allocate_per_layer(&budget_platform, &ops, n, &opts)?;

        let engine = PimDlEngine::new(budget_platform);
        let policy = BatchingPolicy {
            max_batch: batch,
            max_wait_s: 0.001,
        };
        let throughput =
            |plan: &pimdl_tuner::alloc::AllocPlan| -> Result<f64, Box<dyn std::error::Error>> {
                let cfg = PerLayerServingConfig::from_alloc_plan(batch, seq_len, budget, plan);
                let mut sched = BatchScheduler::new_per_layer(&engine, shape, cfg, policy);
                // Saturate the scheduler so throughput measures serving
                // capacity, not the offered load.
                let full_batch_s = sched.batch_latency_s(batch)?;
                let stats = sched.simulate(&Workload {
                    rate_rps: 4.0 * batch as f64 / full_batch_s,
                    duration_s: 40.0 * full_batch_s,
                    seed: 17,
                })?;
                Ok(stats.throughput_rps)
            };
        let per_layer_throughput_rps = throughput(&per_layer)?;
        let global_throughput_rps = throughput(&global)?;

        budgets.push(BudgetRow {
            budget_bytes: budget,
            per_layer_ops: per_layer
                .choices
                .iter()
                .map(|c| AllocatedOp {
                    op: c.name.clone(),
                    v: c.v,
                    ct: c.ct,
                    per_pe_bytes: c.per_pe_bytes,
                })
                .collect(),
            global_v: global.choices.first().map_or(0, |c| c.v),
            global_ct: global.choices.first().map_or(0, |c| c.ct),
            per_layer_predicted_s: per_layer.total_latency_s,
            global_predicted_s: global.total_latency_s,
            per_layer_throughput_rps,
            global_throughput_rps,
        });
    }

    Ok(TunerSweepResult {
        model: shape.name.clone(),
        batch,
        seq_len,
        search,
        bnb_total_wall_s,
        exhaustive_total_wall_s,
        budgets,
    })
}

/// Paper-scale run: BERT-base at batch 64 × seq 512 on UPMEM, budgets from
/// 16 KiB to 1 MiB per PE.
///
/// # Errors
///
/// Propagates tuner and engine errors.
pub fn run() -> Result<TunerSweepResult, Box<dyn std::error::Error>> {
    run_with(
        &PlatformConfig::upmem(),
        &TransformerShape::bert_base(),
        64,
        512,
        &[1 << 20, 3 << 19, 2 << 20, 3 << 20, 4 << 20],
    )
}

/// Quick run for smoke tests: the tiny shape on a 64-PE UPMEM.
///
/// # Errors
///
/// Propagates tuner and engine errors.
pub fn run_quick() -> Result<TunerSweepResult, Box<dyn std::error::Error>> {
    let mut p = PlatformConfig::upmem();
    p.num_pes = 64;
    run_with(
        &p,
        &TransformerShape::tiny(),
        4,
        32,
        &[4 << 10, 16 << 10, 64 << 10],
    )
}

/// Renders both sweeps as text tables.
pub fn render(result: &TunerSweepResult) -> String {
    let mut search = TextTable::new(vec![
        "Workload",
        "B&B wall",
        "Exh wall",
        "B&B eval",
        "Exh eval",
        "Pruned to",
        "Same opt",
    ]);
    for r in &result.search {
        search.row(vec![
            r.label.clone(),
            format!("{:.3} s", r.bnb_wall_s),
            format!("{:.3} s", r.exhaustive_wall_s),
            r.bnb_evaluated.to_string(),
            r.exhaustive_evaluated.to_string(),
            format!(
                "{:.1}%",
                100.0 * r.bnb_evaluated as f64 / r.exhaustive_evaluated.max(1) as f64
            ),
            if r.same_optimum { "yes" } else { "NO" }.to_string(),
        ]);
    }
    let mut alloc = TextTable::new(vec![
        "Budget/PE",
        "Global (V,CT)",
        "Per-layer V",
        "Pred global",
        "Pred per-layer",
        "DES global",
        "DES per-layer",
    ]);
    for b in &result.budgets {
        alloc.row(vec![
            format!("{} KiB", b.budget_bytes >> 10),
            format!("({}, {})", b.global_v, b.global_ct),
            b.per_layer_ops
                .iter()
                .map(|o| format!("{}={}", o.op, o.v))
                .collect::<Vec<_>>()
                .join(" "),
            format!("{:.4} s", b.global_predicted_s),
            format!("{:.4} s", b.per_layer_predicted_s),
            format!("{:.2} rps", b.global_throughput_rps),
            format!("{:.2} rps", b.per_layer_throughput_rps),
        ]);
    }
    format!(
        "§12 — Auto-tuner v2 ({}, batch {} × seq {})\n\
         Search: B&B total {:.2} s vs exhaustive {:.2} s\n\n{}\n\n\
         Capacity allocation (CT = 16 held fixed; accuracy floor = global V=4 bits):\n\n{}",
        result.model,
        result.batch,
        result.seq_len,
        result.bnb_total_wall_s,
        result.exhaustive_total_wall_s,
        search.render(),
        alloc.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_bnb_matches_oracle_and_per_layer_never_loses() {
        let result = run_quick().unwrap();
        assert!(!result.search.is_empty());
        for r in &result.search {
            assert!(r.same_optimum, "{}: optima diverge", r.label);
            assert!(
                r.bnb_evaluated * 10 <= r.exhaustive_evaluated,
                "{}: pruned {} of {}",
                r.label,
                r.bnb_evaluated,
                r.exhaustive_evaluated
            );
        }
        assert!(!result.budgets.is_empty(), "no feasible budgets");
        for b in &result.budgets {
            assert!(
                b.per_layer_predicted_s <= b.global_predicted_s + 1e-15,
                "budget {}: predicted per-layer {} > global {}",
                b.budget_bytes,
                b.per_layer_predicted_s,
                b.global_predicted_s
            );
            assert!(
                b.per_layer_throughput_rps >= 0.999 * b.global_throughput_rps,
                "budget {}: DES per-layer {} < global {}",
                b.budget_bytes,
                b.per_layer_throughput_rps,
                b.global_throughput_rps
            );
        }
        // The headline: somewhere in the sweep heterogeneity strictly wins.
        assert!(
            result.budgets.iter().any(|b| {
                b.per_layer_throughput_rps > b.global_throughput_rps
                    || b.per_layer_predicted_s < b.global_predicted_s
            }),
            "per-layer allocation never beat global anywhere in the sweep"
        );
    }

    #[test]
    fn render_structure() {
        let result = run_quick().unwrap();
        let s = render(&result);
        assert!(s.contains("Auto-tuner v2"));
        assert!(s.contains("Capacity allocation"));
    }
}
