//! Fig. 12 — sensitivity analysis on the UPMEM platform: sub-vector length,
//! centroid number, batch size, and hidden dim. All speedups are normalized
//! to the CPU server's INT8 inference (the paper's normalization).

use serde::Serialize;

use pimdl_engine::baseline::{host_inference, HostModel};
use pimdl_engine::pipeline::{PimDlEngine, ServingConfig};
use pimdl_engine::shapes::TransformerShape;
use pimdl_sim::PlatformConfig;

use crate::report::TextTable;

/// One sweep point.
#[derive(Debug, Clone, Serialize)]
pub struct SweepPoint {
    /// Model name.
    pub model: String,
    /// Swept parameter value.
    pub value: usize,
    /// Speedup of PIM-DL over CPU INT8.
    pub speedup: f64,
}

/// One Fig. 12 panel.
#[derive(Debug, Clone, Serialize)]
pub struct Panel {
    /// Panel name ("sub-vector length", ...).
    pub parameter: String,
    /// Sweep points.
    pub points: Vec<SweepPoint>,
}

/// Full Fig. 12 result.
#[derive(Debug, Clone, Serialize)]
pub struct Fig12Result {
    /// Panels (a)–(d).
    pub panels: Vec<Panel>,
}

/// Default serving parameters of §6.5 (scaled by the caller if desired):
/// V = 4, CT = 16, batch from `batch`, sequence length from `seq_len`.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct Fig12Config {
    /// Baseline batch size (paper: 64).
    pub batch: usize,
    /// Sequence length (paper: 512).
    pub seq_len: usize,
}

impl Default for Fig12Config {
    fn default() -> Self {
        Fig12Config {
            batch: 64,
            seq_len: 512,
        }
    }
}

fn speedup_for(
    engine: &PimDlEngine,
    cpu: &HostModel,
    shape: &TransformerShape,
    cfg: &ServingConfig,
) -> Result<f64, pimdl_engine::EngineError> {
    let pimdl = engine.serve(shape, cfg)?.total_s;
    let host = host_inference(cpu, shape, cfg.batch, cfg.seq_len, 1).total_s();
    Ok(host / pimdl)
}

/// Runs all four panels.
///
/// # Errors
///
/// Propagates engine errors.
pub fn run(c: &Fig12Config) -> Result<Fig12Result, pimdl_engine::EngineError> {
    let engine = PimDlEngine::new(PlatformConfig::upmem());
    let cpu = HostModel::cpu_int8();
    let models = TransformerShape::evaluation_models();
    let base = ServingConfig {
        batch: c.batch,
        seq_len: c.seq_len,
        v: 4,
        ct: 16,
    };

    // (a) Sub-vector length.
    let mut a = Vec::new();
    for v in [2usize, 4, 8, 16, 32] {
        for shape in &models {
            if shape.hidden % v != 0 {
                continue;
            }
            let cfg = ServingConfig { v, ..base };
            a.push(SweepPoint {
                model: shape.name.clone(),
                value: v,
                speedup: speedup_for(&engine, &cpu, shape, &cfg)?,
            });
        }
    }

    // (b) Centroid number.
    let mut b = Vec::new();
    for ct in [128usize, 64, 32, 16, 8] {
        for shape in &models {
            let cfg = ServingConfig { ct, ..base };
            b.push(SweepPoint {
                model: shape.name.clone(),
                value: ct,
                speedup: speedup_for(&engine, &cpu, shape, &cfg)?,
            });
        }
    }

    // (c) Batch size.
    let mut cc = Vec::new();
    for batch in [8usize, 16, 32, 64, 128] {
        for shape in &models {
            let cfg = ServingConfig { batch, ..base };
            let pimdl = engine.serve(shape, &cfg)?.total_s;
            let host = host_inference(&cpu, shape, batch, c.seq_len, 1).total_s();
            cc.push(SweepPoint {
                model: shape.name.clone(),
                value: batch,
                speedup: host / pimdl,
            });
        }
    }

    // (d) Hidden dim (OPT-family sizes, 24-layer shell).
    let mut d = Vec::new();
    for hidden in [1024usize, 2048, 2560, 4096, 5120] {
        let shape = TransformerShape::with_hidden(hidden, 24);
        let cfg = base;
        let pimdl = engine.serve(&shape, &cfg)?.total_s;
        let host = host_inference(&cpu, &shape, cfg.batch, cfg.seq_len, 1).total_s();
        d.push(SweepPoint {
            model: shape.name.clone(),
            value: hidden,
            speedup: host / pimdl,
        });
    }

    Ok(Fig12Result {
        panels: vec![
            Panel {
                parameter: "sub-vector length (V)".to_string(),
                points: a,
            },
            Panel {
                parameter: "centroid number (CT)".to_string(),
                points: b,
            },
            Panel {
                parameter: "batch size".to_string(),
                points: cc,
            },
            Panel {
                parameter: "hidden dim".to_string(),
                points: d,
            },
        ],
    })
}

/// Renders the four panels.
pub fn render(result: &Fig12Result) -> String {
    let mut out =
        String::from("Fig. 12 — Sensitivity analysis (UPMEM; speedup normalized to CPU INT8)\n\n");
    for panel in &result.panels {
        let mut t = TextTable::new(vec!["Model", panel.parameter.as_str(), "Speedup"]);
        for p in &panel.points {
            t.row(vec![
                p.model.clone(),
                p.value.to_string(),
                format!("{:.2}x", p.speedup),
            ]);
        }
        out.push_str(&format!("Panel: {}\n{}\n", panel.parameter, t.render()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Fig12Config {
        Fig12Config {
            batch: 8,
            seq_len: 64,
        }
    }

    #[test]
    fn speedup_improves_with_v_and_batch() {
        // Reduced sweep exercising two panels' monotonicity claims.
        let engine = PimDlEngine::new(PlatformConfig::upmem());
        let cpu = HostModel::cpu_int8();
        let shape = TransformerShape::bert_base();
        let c = quick();
        let sp = |v: usize, batch: usize| {
            let cfg = ServingConfig {
                batch,
                seq_len: c.seq_len,
                v,
                ct: 16,
            };
            speedup_for(&engine, &cpu, &shape, &cfg).unwrap()
        };
        // (a): larger V → faster PIM-DL → higher speedup.
        assert!(sp(8, 8) > sp(2, 8), "V=8 {} vs V=2 {}", sp(8, 8), sp(2, 8));
        // (c): larger batch → better PIM utilization → higher speedup.
        assert!(
            sp(4, 32) > sp(4, 8),
            "batch 32 {} vs batch 8 {}",
            sp(4, 32),
            sp(4, 8)
        );
    }

    #[test]
    fn render_has_four_panels() {
        // Tiny run for rendering structure only.
        let result = Fig12Result {
            panels: vec![
                Panel {
                    parameter: "sub-vector length (V)".to_string(),
                    points: vec![SweepPoint {
                        model: "m".to_string(),
                        value: 2,
                        speedup: 1.0,
                    }],
                },
                Panel {
                    parameter: "centroid number (CT)".to_string(),
                    points: vec![],
                },
                Panel {
                    parameter: "batch size".to_string(),
                    points: vec![],
                },
                Panel {
                    parameter: "hidden dim".to_string(),
                    points: vec![],
                },
            ],
        };
        let s = render(&result);
        assert_eq!(s.matches("Panel:").count(), 4);
    }
}
