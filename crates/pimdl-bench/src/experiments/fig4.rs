//! Fig. 4 — roofline analysis of the INT8 LUT kernels on the dual-socket
//! Xeon 4210.

use serde::Serialize;

use pimdl_lutnn::roofline::{fig4_points, Fig4Point, RooflineMachine};

use crate::report::TextTable;

/// Result of the Fig. 4 analysis.
#[derive(Debug, Clone, Serialize)]
pub struct Fig4Result {
    /// CPU peak throughput (GOPS).
    pub cpu_peak_gops: f64,
    /// CPU ridge point (ops/byte).
    pub ridge_point: f64,
    /// Per-operator intensity points.
    pub points: Vec<Fig4Point>,
}

/// Runs the Fig. 4 analysis.
pub fn run() -> Fig4Result {
    let machine = RooflineMachine::XEON_4210_DUAL;
    Fig4Result {
        cpu_peak_gops: machine.peak_gops,
        ridge_point: machine.ridge_point(),
        points: fig4_points(),
    }
}

/// Renders the Fig. 4 points.
pub fn render(result: &Fig4Result) -> String {
    let mut t = TextTable::new(vec![
        "Model",
        "Operator",
        "AI (ops/B)",
        "Attainable (GOPS)",
        "Bound",
    ]);
    for p in &result.points {
        t.row(vec![
            p.model.to_string(),
            p.operator.to_string(),
            format!("{:.3}", p.ai),
            format!("{:.2}", p.attainable_gops),
            if p.ai < result.ridge_point {
                "memory".to_string()
            } else {
                "compute".to_string()
            },
        ]);
    }
    format!(
        "Fig. 4 — Roofline Analysis of LUT Kernels (batch 64, seq 512, INT8 LUTs)\n\
         CPU peak = {:.2} GOPS, ridge point = {:.2} ops/byte\n\
         Paper: AI of all operators in 0.204-0.288, all memory-bound\n\n{}",
        result.cpu_peak_gops,
        result.ridge_point,
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_points_memory_bound() {
        let r = run();
        assert_eq!(r.points.len(), 12);
        assert!((r.cpu_peak_gops - 795.11).abs() < 0.01);
        for p in &r.points {
            assert!(p.ai < r.ridge_point);
        }
    }

    #[test]
    fn render_has_all_models() {
        let s = render(&run());
        for m in ["Bert-Base", "Bert-Large", "ViT-Huge"] {
            assert!(s.contains(m));
        }
        assert!(s.contains("memory"));
    }
}
