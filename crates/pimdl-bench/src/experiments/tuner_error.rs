//! §6.6 auto-tuner quality analysis: for every linear operator of the
//! evaluation models, compare the auto-tuner's pick (ranked by the
//! analytical model) against the simulated optimum, and report the model's
//! prediction error (paper: ≤ 6 % degradation; avg error 3.44 %, max
//! 13.73 %).

use serde::Serialize;

use pimdl_engine::shapes::TransformerShape;
use pimdl_sim::cost::estimate_cost;
use pimdl_sim::{LoadScheme, LutWorkload, PlatformConfig};
use pimdl_tuner::model::{analytical_cost, relative_error};
use pimdl_tuner::space::{kernel_candidates, mapping_of, sub_lut_candidates};
use pimdl_tuner::tune;

use crate::report::TextTable;

/// Tuner-quality statistics for one workload.
#[derive(Debug, Clone, Serialize)]
pub struct TunerErrorRow {
    /// Workload label.
    pub label: String,
    /// Workload shape.
    pub workload: LutWorkload,
    /// Simulated latency of the tuner's pick (s).
    pub tuned_sim_s: f64,
    /// Best simulated latency over the sampled space (s).
    pub best_sim_s: f64,
    /// Degradation of the pick vs the simulated optimum.
    pub degradation: f64,
    /// Mean relative model error over the sampled space.
    pub avg_error: f64,
    /// Max relative model error over the sampled space.
    pub max_error: f64,
    /// Sampled candidate count.
    pub sampled: usize,
}

/// Full tuner-error result.
#[derive(Debug, Clone, Serialize)]
pub struct TunerErrorResult {
    /// Per-workload rows.
    pub rows: Vec<TunerErrorRow>,
    /// Mean of per-workload average errors.
    pub overall_avg_error: f64,
    /// Max of per-workload max errors.
    pub overall_max_error: f64,
    /// Max degradation across workloads.
    pub max_degradation: f64,
}

/// Analyzes one workload.
///
/// # Errors
///
/// Propagates tuner errors.
pub fn analyze_workload(
    platform: &PlatformConfig,
    workload: &LutWorkload,
    label: &str,
    max_candidates_per_pair: usize,
) -> Result<TunerErrorRow, pimdl_tuner::TuneError> {
    let tuned = tune(platform, workload)?;
    let tuned_sim_s = estimate_cost(platform, workload, &tuned.mapping)
        .map_err(pimdl_tuner::TuneError::from)?
        .time
        .total_s();

    let mut best_sim_s = tuned_sim_s;
    let mut errors = Vec::new();
    for (n_s, f_s) in sub_lut_candidates(workload, platform) {
        let mut kernels = kernel_candidates(workload, platform, n_s, f_s);
        // Evaluate the model over the sensible neighborhood the paper
        // plots (degenerate 1-element tiles are overhead-dominated and not
        // part of its error statistics).
        kernels.retain(|k| {
            k.n_mtile >= 4
                && k.f_mtile >= 4
                && k.cb_mtile >= 2
                && match k.load_scheme {
                    LoadScheme::Static => true,
                    LoadScheme::CoarseGrain { cb_load, f_load } => cb_load * f_load >= 4,
                    LoadScheme::FineGrain { f_load, .. } => f_load >= 4,
                }
        });
        if max_candidates_per_pair > 0 && kernels.len() > max_candidates_per_pair {
            let stride = kernels.len().div_ceil(max_candidates_per_pair);
            kernels = kernels.into_iter().step_by(stride).collect();
        }
        for kernel in kernels {
            let mapping = mapping_of(n_s, f_s, kernel);
            let (Ok(model), Ok(sim)) = (
                analytical_cost(platform, workload, &mapping),
                estimate_cost(platform, workload, &mapping),
            ) else {
                continue;
            };
            let sim_s = sim.time.total_s();
            best_sim_s = best_sim_s.min(sim_s);
            errors.push(relative_error(model.total_s(), sim_s));
        }
    }
    let sampled = errors.len();
    let avg_error = if sampled == 0 {
        0.0
    } else {
        errors.iter().sum::<f64>() / sampled as f64
    };
    let max_error = errors.iter().copied().fold(0.0, f64::max);
    Ok(TunerErrorRow {
        label: label.to_string(),
        workload: *workload,
        tuned_sim_s,
        best_sim_s,
        degradation: tuned_sim_s / best_sim_s,
        avg_error,
        max_error,
        sampled,
    })
}

/// Runs the analysis over every linear operator of the evaluation models at
/// batch 64 × seq 512, V = 4, CT = 16, on UPMEM.
///
/// # Errors
///
/// Propagates tuner errors.
pub fn run(max_candidates_per_pair: usize) -> Result<TunerErrorResult, pimdl_tuner::TuneError> {
    let platform = PlatformConfig::upmem();
    let n = 64 * 512;
    let (v, ct) = (4usize, 16usize);
    let mut rows = Vec::new();
    for shape in TransformerShape::evaluation_models() {
        for op in shape.linear_ops() {
            let workload = LutWorkload::new(n, op.in_dim / v, ct, op.out_dim)
                .map_err(pimdl_tuner::TuneError::from)?;
            let label = format!("{} {}", shape.name, op.name);
            rows.push(analyze_workload(
                &platform,
                &workload,
                &label,
                max_candidates_per_pair,
            )?);
        }
    }
    let overall_avg_error = rows.iter().map(|r| r.avg_error).sum::<f64>() / rows.len() as f64;
    let overall_max_error = rows.iter().map(|r| r.max_error).fold(0.0, f64::max);
    let max_degradation = rows.iter().map(|r| r.degradation).fold(0.0, f64::max);
    Ok(TunerErrorResult {
        rows,
        overall_avg_error,
        overall_max_error,
        max_degradation,
    })
}

/// Renders the tuner-error table.
pub fn render(result: &TunerErrorResult) -> String {
    let mut t = TextTable::new(vec![
        "Workload",
        "Tuned (sim)",
        "Best (sim)",
        "Degradation",
        "Avg err",
        "Max err",
        "#sampled",
    ]);
    for r in &result.rows {
        t.row(vec![
            r.label.clone(),
            format!("{:.4} s", r.tuned_sim_s),
            format!("{:.4} s", r.best_sim_s),
            format!("{:.1}%", 100.0 * (r.degradation - 1.0)),
            format!("{:.2}%", 100.0 * r.avg_error),
            format!("{:.2}%", 100.0 * r.max_error),
            r.sampled.to_string(),
        ]);
    }
    format!(
        "§6.6 — Auto-tuner quality (UPMEM, batch 64 × seq 512, V=4/CT=16)\n\
         Paper: degradation ≤ 6%, model error avg 3.44% / max 13.73%\n\
         Measured: degradation ≤ {:.1}%, model error avg {:.2}% / max {:.2}%\n\n{}",
        100.0 * (result.max_degradation - 1.0),
        100.0 * result.overall_avg_error,
        100.0 * result.overall_max_error,
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_workload_analysis() {
        let mut p = PlatformConfig::upmem();
        p.num_pes = 16;
        let w = LutWorkload::new(256, 16, 16, 64).unwrap();
        let row = analyze_workload(&p, &w, "toy", 400).unwrap();
        assert!(row.degradation >= 1.0);
        assert!(row.degradation < 1.15, "degradation {}", row.degradation);
        assert!(row.avg_error < 0.35, "avg error {}", row.avg_error);
        assert!(row.sampled > 0);
    }

    #[test]
    fn render_structure() {
        let result = TunerErrorResult {
            rows: vec![TunerErrorRow {
                label: "x".to_string(),
                workload: LutWorkload::new(4, 2, 2, 4).unwrap(),
                tuned_sim_s: 1.0,
                best_sim_s: 1.0,
                degradation: 1.0,
                avg_error: 0.03,
                max_error: 0.1,
                sampled: 10,
            }],
            overall_avg_error: 0.03,
            overall_max_error: 0.1,
            max_degradation: 1.0,
        };
        let s = render(&result);
        assert!(s.contains("Auto-tuner quality"));
        assert!(s.contains("3.00%"));
    }
}
