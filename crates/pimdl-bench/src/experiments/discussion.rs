//! §7 Discussion ablations — the paper's two architecture implications,
//! quantified on the simulator:
//!
//! 1. **Adder-only PIM design**: LUT-NN removes all PIM-side multiplies, so
//!    a PE array built from adders alone packs ~4× the accumulate
//!    throughput into the same area/power. How much end-to-end speedup does
//!    that buy?
//! 2. **On-chip buffer management**: LUT accesses follow the centroid-index
//!    distribution, which can skew toward "hot" entries. With hot-entry
//!    caching (our fine-grain row-hit reuse generalized), how does the LUT
//!    kernel latency respond to index skew?
//!
//! Plus one design-choice ablation from §5.2: what if the **CCS operator
//! were offloaded to the PIM** instead of the host? CCS is a GEMM-shaped
//! distance kernel, and DPUs execute GEMM at a few percent of their rated
//! add throughput — quantifying why the paper keeps CCS host-side.

use serde::Serialize;

use pimdl_engine::baseline::{HostModel, CCS_EFFICIENCY, UPMEM_GEMM_EFFICIENCY};
use pimdl_engine::pipeline::{PimDlEngine, ServingConfig};
use pimdl_engine::shapes::TransformerShape;
use pimdl_sim::cost::cost_with_repeat;
use pimdl_sim::mapping::MicroKernel;
use pimdl_sim::{LoadScheme, LutWorkload, Mapping, PlatformConfig, TraversalOrder};
use pimdl_tensor::rng::DataRng;

use crate::report::TextTable;

/// Result of the adder-only ablation.
#[derive(Debug, Clone, Serialize)]
pub struct AdderOnlyResult {
    /// Model name.
    pub model: String,
    /// PIM-DL latency on stock UPMEM (s).
    pub stock_s: f64,
    /// PIM-DL latency on the adder-only variant (s).
    pub adder_only_s: f64,
    /// End-to-end speedup from the adder-only PEs.
    pub speedup: f64,
}

/// One skew point of the buffer-management analysis.
#[derive(Debug, Clone, Serialize)]
pub struct SkewPoint {
    /// Zipf exponent of the index distribution (0 = uniform).
    pub zipf_s: f64,
    /// Measured consecutive-repeat fraction of the generated index stream.
    pub repeat_fraction: f64,
    /// LUT kernel latency with hot-entry reuse (s).
    pub kernel_s: f64,
    /// Speedup vs the uniform-index stream.
    pub speedup_vs_uniform: f64,
}

/// One row of the CCS-placement ablation.
#[derive(Debug, Clone, Serialize)]
pub struct CcsPlacementRow {
    /// Model name.
    pub model: String,
    /// CCS time on the host (the paper's placement), s.
    pub host_ccs_s: f64,
    /// CCS time if executed as GEMM on the UPMEM PEs, s.
    pub pim_ccs_s: f64,
    /// Slowdown of the PIM placement.
    pub pim_slowdown: f64,
}

/// Full §7 result.
#[derive(Debug, Clone, Serialize)]
pub struct DiscussionResult {
    /// Adder-only rows (one per model).
    pub adder_only: Vec<AdderOnlyResult>,
    /// Buffer-management skew sweep.
    pub skew: Vec<SkewPoint>,
    /// CCS-placement ablation (§5.2 design choice).
    pub ccs_placement: Vec<CcsPlacementRow>,
}

/// Draws one sample from a Zipf-like distribution over `[0, n)` with
/// exponent `s` via inverse-CDF on precomputed weights.
fn zipf_sample(cdf: &[f64], rng: &mut DataRng) -> usize {
    let u = rng.uniform(0.0, 1.0) as f64;
    match cdf.binary_search_by(|p| p.partial_cmp(&u).expect("finite")) {
        Ok(i) | Err(i) => i.min(cdf.len() - 1),
    }
}

fn zipf_cdf(n: usize, s: f64) -> Vec<f64> {
    let weights: Vec<f64> = (1..=n).map(|k| 1.0 / (k as f64).powf(s)).collect();
    let total: f64 = weights.iter().sum();
    let mut acc = 0.0;
    weights
        .iter()
        .map(|w| {
            acc += w / total;
            acc
        })
        .collect()
}

/// Measures the consecutive-repeat fraction of a Zipf-distributed index
/// stream of shape `n x cb` over `ct` centroids.
pub fn skewed_repeat_fraction(n: usize, cb: usize, ct: usize, zipf_s: f64, seed: u64) -> f64 {
    let cdf = zipf_cdf(ct, zipf_s);
    let mut rng = DataRng::new(seed);
    let indices: Vec<u16> = (0..n * cb)
        .map(|_| zipf_sample(&cdf, &mut rng) as u16)
        .collect();
    pimdl_sim::exec::measure_repeat_fraction(&indices, n, cb)
}

/// Runs both §7 ablations.
///
/// # Errors
///
/// Propagates engine errors.
pub fn run(batch: usize, seq_len: usize) -> Result<DiscussionResult, pimdl_engine::EngineError> {
    // --- Adder-only ---
    let stock_engine = PimDlEngine::new(PlatformConfig::upmem());
    let adder_engine = PimDlEngine::new(PlatformConfig::upmem_adder_only());
    let cfg = ServingConfig {
        batch,
        seq_len,
        v: 4,
        ct: 16,
    };
    let mut adder_only = Vec::new();
    for shape in TransformerShape::evaluation_models() {
        let stock = stock_engine.serve(&shape, &cfg)?.total_s;
        let adder = adder_engine.serve(&shape, &cfg)?.total_s;
        adder_only.push(AdderOnlyResult {
            model: shape.name.clone(),
            stock_s: stock,
            adder_only_s: adder,
            speedup: stock / adder,
        });
    }

    // --- Buffer management under index skew ---
    let platform = PlatformConfig::upmem();
    let w = LutWorkload::new(4096, 64, 16, 256)?;
    let mapping = Mapping {
        n_stile: w.n / 64,
        f_stile: w.f / 16,
        kernel: MicroKernel {
            n_mtile: 8,
            f_mtile: 8,
            cb_mtile: 8,
            traversal: TraversalOrder::Nfc,
            load_scheme: LoadScheme::FineGrain {
                f_load: 8,
                threads: 16,
            },
        },
    };
    let mut skew = Vec::new();
    let mut uniform_s = 0.0;
    for (i, zipf_s) in [0.0f64, 0.5, 1.0, 1.5, 2.0].into_iter().enumerate() {
        let repeat = skewed_repeat_fraction(w.n, w.cb, w.ct, zipf_s, 42);
        let report = cost_with_repeat(&platform, &w, &mapping, repeat)?;
        let kernel_s = report.time.micro_kernel_total_s();
        if i == 0 {
            uniform_s = kernel_s;
        }
        skew.push(SkewPoint {
            zipf_s,
            repeat_fraction: repeat,
            kernel_s,
            speedup_vs_uniform: uniform_s / kernel_s,
        });
    }

    // --- CCS placement (§5.2): host vs PIM ---
    let host = HostModel::cpu_xeon_4210();
    let mut ccs_placement = Vec::new();
    let n = batch * seq_len;
    let (v, ct) = (4usize, 16usize);
    for shape in TransformerShape::evaluation_models() {
        let mut host_s = 0.0;
        let mut pim_s = 0.0;
        for op in shape.linear_ops() {
            let flops = 3 * n as u64 * op.in_dim as u64 * ct as u64;
            let bytes = (n * op.in_dim * 4 + n * op.in_dim / v) as u64;
            // Host: argmin kernel at CCS_EFFICIENCY of dense-GEMM rate.
            host_s += host.gemm_time_s((flops as f64 / CCS_EFFICIENCY) as u64, bytes);
            // PIM: the same distance GEMM on DPUs, which multiply in
            // software; plus activations crossing the host↔PIM link.
            let eff_gops = platform.peak_gops * UPMEM_GEMM_EFFICIENCY;
            pim_s += flops as f64 / (eff_gops * 1e9)
                + (n * op.in_dim * 4) as f64 / (platform.host_transfer.to_pim_peak_gbps * 1e9);
        }
        host_s *= shape.layers as f64;
        pim_s *= shape.layers as f64;
        ccs_placement.push(CcsPlacementRow {
            model: shape.name.clone(),
            host_ccs_s: host_s,
            pim_ccs_s: pim_s,
            pim_slowdown: pim_s / host_s,
        });
    }

    Ok(DiscussionResult {
        adder_only,
        skew,
        ccs_placement,
    })
}

/// Renders both ablations.
pub fn render(result: &DiscussionResult) -> String {
    let mut a = TextTable::new(vec!["Model", "Stock UPMEM", "Adder-only", "Speedup"]);
    for r in &result.adder_only {
        a.row(vec![
            r.model.clone(),
            format!("{:.2} s", r.stock_s),
            format!("{:.2} s", r.adder_only_s),
            format!("{:.2}x", r.speedup),
        ]);
    }
    let mut b = TextTable::new(vec!["Zipf s", "Repeat frac", "Kernel latency", "Speedup"]);
    for p in &result.skew {
        b.row(vec![
            format!("{:.1}", p.zipf_s),
            format!("{:.3}", p.repeat_fraction),
            format!("{:.3} ms", p.kernel_s * 1e3),
            format!("{:.2}x", p.speedup_vs_uniform),
        ]);
    }
    let mut c = TextTable::new(vec!["Model", "CCS on host", "CCS on PIM", "PIM slowdown"]);
    for r in &result.ccs_placement {
        c.row(vec![
            r.model.clone(),
            format!("{:.2} s", r.host_ccs_s),
            format!("{:.2} s", r.pim_ccs_s),
            format!("{:.2}x", r.pim_slowdown),
        ]);
    }
    format!(
        "§7-(1) — Adder-only PIM design (4x accumulate throughput, same area/power)\n\n{}\n\
         §7-(2) — On-chip buffer management under index skew (hot-entry reuse)\n\n{}\n\
         §5.2 ablation — CCS placement (why the paper keeps CCS on the host)\n\n{}",
        a.render(),
        b.render(),
        c.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_skew_increases_repeat_fraction() {
        let uniform = skewed_repeat_fraction(512, 16, 16, 0.0, 1);
        let skewed = skewed_repeat_fraction(512, 16, 16, 2.0, 1);
        assert!(
            skewed > uniform + 0.1,
            "uniform {uniform} vs skewed {skewed}"
        );
        // Uniform stream repeats ~1/CT of the time.
        assert!((uniform - 1.0 / 16.0).abs() < 0.05, "uniform={uniform}");
    }

    #[test]
    fn reduced_run_shows_both_effects() {
        let r = run(4, 32).unwrap();
        assert_eq!(r.adder_only.len(), 3);
        for row in &r.adder_only {
            assert!(
                row.speedup > 1.0,
                "{}: adder-only should help ({})",
                row.model,
                row.speedup
            );
            assert!(row.speedup < 4.0, "bounded by Amdahl: {}", row.speedup);
        }
        assert_eq!(r.skew.len(), 5);
        // More skew → more reuse → faster kernels.
        assert!(r.skew.last().unwrap().speedup_vs_uniform > 1.0);
        for w in r.skew.windows(2) {
            assert!(w[1].repeat_fraction >= w[0].repeat_fraction - 0.02);
        }
        // CCS on the PIM must be slower than on the host — the §5.2 choice.
        assert_eq!(r.ccs_placement.len(), 3);
        for row in &r.ccs_placement {
            assert!(
                row.pim_slowdown > 1.0,
                "{}: PIM CCS should lose ({})",
                row.model,
                row.pim_slowdown
            );
        }
    }

    #[test]
    fn render_has_both_sections() {
        let r = run(2, 16).unwrap();
        let s = render(&r);
        assert!(s.contains("Adder-only"));
        assert!(s.contains("buffer management"));
    }
}
