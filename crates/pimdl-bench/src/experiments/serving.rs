//! Extension experiment — serving under load: the latency/throughput curve
//! of a dynamically batched PIM-DL serving system (the paper's §2.2 cloud
//! motivation made concrete).
//!
//! Sweeps the offered Poisson arrival rate and reports achieved throughput,
//! latency percentiles, and the batch sizes the scheduler forms. The
//! expected shape: throughput tracks the offered rate until saturation;
//! batches grow with load (riding the Fig. 12-(c) efficiency curve); tail
//! latency explodes past the knee.

use std::time::Duration;

use serde::Serialize;

use pimdl_engine::pipeline::{PimDlEngine, ServingConfig};
use pimdl_engine::scheduler::{
    BatchScheduler, BatchingPolicy, ServingStats, Workload, HOST_DISPATCH_OVERHEAD_S,
};
use pimdl_engine::shapes::TransformerShape;
use pimdl_serve::{MetricsSnapshot, OpenLoop, Runtime, ServeConfig, ServeError};
use pimdl_sim::{LutWorkload, PlatformConfig};

use crate::report::TextTable;

/// One load point.
#[derive(Debug, Clone, Serialize)]
pub struct LoadPoint {
    /// Offered arrival rate (requests/s).
    pub offered_rps: f64,
    /// Serving statistics at this rate.
    pub stats: ServingStats,
}

/// Full serving-curve result.
#[derive(Debug, Clone, Serialize)]
pub struct ServingResult {
    /// Model served.
    pub model: String,
    /// Batching policy used.
    pub policy: BatchingPolicy,
    /// Single-request execution latency (the no-batching floor), seconds.
    pub single_request_s: f64,
    /// Per-rate points.
    pub points: Vec<LoadPoint>,
}

/// Runs the load sweep.
///
/// `rates_x` are offered rates expressed as multiples of the single-request
/// service rate (`1 / single_request_latency`).
///
/// # Errors
///
/// Propagates engine errors.
pub fn run(
    shape: &TransformerShape,
    seq_len: usize,
    rates_x: &[f64],
    horizon_requests: f64,
) -> Result<ServingResult, pimdl_engine::EngineError> {
    let engine = PimDlEngine::new(PlatformConfig::upmem());
    let base = ServingConfig {
        batch: 1,
        seq_len,
        v: 4,
        ct: 16,
    };
    let policy = BatchingPolicy::default();
    let mut sched = BatchScheduler::new(&engine, shape, base, policy);
    let single = sched.batch_latency_s(1)?;

    let mut points = Vec::new();
    for &x in rates_x {
        let rate = x / single;
        let stats = sched.simulate(&Workload {
            rate_rps: rate,
            duration_s: horizon_requests / rate,
            seed: 99,
        })?;
        points.push(LoadPoint {
            offered_rps: rate,
            stats,
        });
    }
    Ok(ServingResult {
        model: shape.name.clone(),
        policy,
        single_request_s: single,
        points,
    })
}

/// Renders the serving curve.
pub fn render(result: &ServingResult) -> String {
    let mut t = TextTable::new(vec![
        "Offered (rps)",
        "Achieved (rps)",
        "Mean batch",
        "p50 latency",
        "p95 latency",
    ]);
    for p in &result.points {
        t.row(vec![
            format!("{:.2}", p.offered_rps),
            format!("{:.2}", p.stats.throughput_rps),
            format!("{:.1}", p.stats.mean_batch),
            format!("{:.2} s", p.stats.p50_latency_s),
            format!("{:.2} s", p.stats.p95_latency_s),
        ]);
    }
    format!(
        "Extension — serving {} under Poisson load (dynamic batching, max_batch {}, window {:.0} ms)\n\
         single-request execution = {:.2} s\n\n{}",
        result.model,
        result.policy.max_batch,
        result.policy.max_wait_s * 1e3,
        result.single_request_s,
        t.render()
    )
}

/// One load point of the runtime-vs-simulation comparison.
#[derive(Debug, Clone, Serialize)]
pub struct RuntimeLoadPoint {
    /// Offered arrival rate (requests/s).
    pub offered_rps: f64,
    /// Discrete-event `BatchScheduler` statistics at this rate.
    pub sim: ServingStats,
    /// `pimdl-serve` runtime metrics at this rate.
    pub runtime: MetricsSnapshot,
    /// Runtime achieved throughput: completed requests / makespan.
    pub runtime_throughput_rps: f64,
    /// Remaining runtime-vs-DES throughput gap: runtime achieved rate over
    /// the DES achieved rate. Both sides divide by their drained makespan,
    /// so a value near 1.0 means the two accounting models agree.
    pub throughput_gap: f64,
}

/// Arrival-rate sweep through the `pimdl-serve` runtime next to the
/// discrete-event simulation, same model / policy / load on both sides.
#[derive(Debug, Clone, Serialize)]
pub struct RuntimeComparison {
    /// Model served.
    pub model: String,
    /// Batching policy used by both systems.
    pub policy: BatchingPolicy,
    /// Single-request execution latency (the no-batching floor), seconds.
    pub single_request_s: f64,
    /// DIMM shards the runtime spreads replicas across (the DES models a
    /// single engine, so >1 shard shifts the runtime's saturation knee).
    pub num_shards: usize,
    /// Requests injected per load point.
    pub num_requests: usize,
    /// Whether the runtime side ran on real threads (`run_threaded`) or the
    /// deterministic virtual-clock driver (`run_virtual`).
    pub threaded: bool,
    /// Per-batch host dispatch overhead the DES was calibrated with
    /// (simulated seconds). In threaded mode this is the mean shard-wakeup
    /// latency a short calibration run measured through the reactor
    /// ([`HOST_DISPATCH_OVERHEAD_S`] if the measurement came back empty);
    /// zero in virtual mode, where the runtime pays no wake latency either.
    pub dispatch_overhead_s: f64,
    /// Reactor wakeups per second observed while parked with zero load —
    /// the "idle shards burn no wakeups" measurement (a correct reactor
    /// measures exactly 0; the old condvar front end polled at 20 Hz).
    pub idle_wakeup_rate_hz: f64,
    /// Per-rate points.
    pub points: Vec<RuntimeLoadPoint>,
}

/// Sweeps the offered arrival rate through the real `pimdl-serve` runtime
/// and the discrete-event `BatchScheduler`, pairing the two systems' stats
/// at every load point.
///
/// `rates_x` are offered rates as multiples of the single-request service
/// rate. The runtime gets a queue deeper than the run and unbounded
/// deadlines so every request completes — the comparison isolates the
/// latency/throughput/batch-size behavior of the two schedulers. With
/// `threaded` the runtime side uses real threads on an accelerated clock;
/// otherwise the deterministic virtual-clock driver (same state machines).
///
/// # Errors
///
/// Propagates engine and runtime errors.
pub fn run_vs_runtime(
    shape: &TransformerShape,
    seq_len: usize,
    rates_x: &[f64],
    num_requests: usize,
    num_shards: usize,
    threaded: bool,
) -> Result<RuntimeComparison, ServeError> {
    let engine = PimDlEngine::new(PlatformConfig::upmem());
    let base = ServingConfig {
        batch: 1,
        seq_len,
        v: 4,
        ct: 16,
    };
    // Smaller than the DES-only default (64): the runtime prewarms its cost
    // model for every batch size up to max_batch, and both sides must share
    // the policy for the comparison to mean anything.
    let policy = BatchingPolicy {
        max_batch: 8,
        max_wait_s: 0.050,
    };
    let mut sched = BatchScheduler::new(&engine, shape, base, policy);
    let single = sched.batch_latency_s(1)?;

    let mut cfg = ServeConfig::example();
    cfg.policy = policy;
    cfg.base = base;
    cfg.num_shards = num_shards;
    cfg.queue_capacity = num_requests.max(1);
    cfg.deadline_s = f64::INFINITY;
    // The example payload is sized for a cut-down platform; the full UPMEM
    // config needs n*f >= num_pes for Eq. 5 to partition the LUT kernel.
    cfg.lut = LutWorkload::new(32, 8, 16, 64).map_err(pimdl_serve::ServeError::from)?;
    let rt = Runtime::new(PlatformConfig::upmem(), shape.clone(), cfg)?;
    // Clock compression: ~2 ms of wall time per single service, backed off
    // when the host-side functional verification (which overlaps the
    // service sleep in the worker) is slower than that — otherwise the
    // verification cost would leak into the accelerated clock as whole
    // simulated seconds per batch.
    let execute_real_s = {
        let mut rng = pimdl_tensor::rng::DataRng::new(1);
        let batch: Vec<_> = (0..policy.max_batch)
            .map(|i| {
                rt.replica()
                    .make_request(i as u64, 0.0, f64::INFINITY, &mut rng)
            })
            .collect::<Result<_, _>>()?;
        let t0 = std::time::Instant::now();
        rt.replica().execute_batch(&batch)?;
        t0.elapsed().as_secs_f64()
    };
    let floor_real_s = (3.0 * execute_real_s).max(2e-3);
    let speedup = (single / floor_real_s).max(1.0);

    // Calibrate the DES with the host dispatch overhead the runtime
    // actually pays: in threaded mode a short run measures the mean
    // shard-wakeup latency through the reactor (already in simulated
    // seconds — the poller scales by the clock speedup); the virtual
    // driver pays no wake latency, so the DES stays ideal there.
    let dispatch_overhead_s = if threaded {
        let calib = rt.run_threaded(
            &OpenLoop {
                rate_rps: 2.0 / single,
                num_requests: 40,
                seed: 7,
            },
            speedup,
        )?;
        let measured = calib.metrics.reactor.mean_wake_latency_s;
        if measured > 0.0 {
            measured
        } else {
            HOST_DISPATCH_OVERHEAD_S
        }
    } else {
        0.0
    };
    sched.set_dispatch_overhead(dispatch_overhead_s)?;
    let idle_wakeup_rate_hz = pimdl_serve::reactor::idle_wakeup_rate(Duration::from_millis(50))?;

    let mut points = Vec::new();
    for &x in rates_x {
        let rate = x / single;
        let stats = sched.simulate(&Workload {
            rate_rps: rate,
            duration_s: num_requests as f64 / rate,
            seed: 99,
        })?;
        let load = OpenLoop {
            rate_rps: rate,
            num_requests,
            seed: 99,
        };
        let report = if threaded {
            rt.run_threaded(&load, speedup)?
        } else {
            rt.run_virtual(&load)?
        };
        let runtime_throughput_rps =
            report.completed() as f64 / report.makespan_s.max(f64::MIN_POSITIVE);
        let throughput_gap = runtime_throughput_rps / stats.throughput_rps.max(f64::MIN_POSITIVE);
        points.push(RuntimeLoadPoint {
            offered_rps: rate,
            sim: stats,
            runtime: report.metrics,
            runtime_throughput_rps,
            throughput_gap,
        });
    }
    Ok(RuntimeComparison {
        model: shape.name.clone(),
        policy,
        single_request_s: single,
        num_shards,
        num_requests,
        threaded,
        dispatch_overhead_s,
        idle_wakeup_rate_hz,
        points,
    })
}

/// Renders the runtime-vs-simulation comparison.
pub fn render_vs_runtime(result: &RuntimeComparison) -> String {
    let mut t = TextTable::new(vec![
        "Offered (rps)",
        "DES rps",
        "DES batch",
        "DES p95",
        "Runtime rps",
        "RT batch",
        "RT p95",
        "RT wakes",
        "RT/DES",
    ]);
    for p in &result.points {
        t.row(vec![
            format!("{:.2}", p.offered_rps),
            format!("{:.2}", p.sim.throughput_rps),
            format!("{:.1}", p.sim.mean_batch),
            format!("{:.2} s", p.sim.p95_latency_s),
            format!("{:.2}", p.runtime_throughput_rps),
            format!("{:.1}", p.runtime.mean_batch),
            format!("{:.2} s", p.runtime.p95_latency_s),
            format!("{}", p.runtime.shard_wakeups),
            format!("{:.2}x", p.throughput_gap),
        ]);
    }
    format!(
        "Extension — serving {}: pimdl-serve runtime ({} shard(s), {}) vs discrete-event simulation\n\
         policy: max_batch {}, window {:.0} ms; {} requests per point; \
         single-request execution = {:.2} s\n\
         reactor: idle wakeups/sec = {:.2} (parked poller, zero load); \
         DES dispatch overhead = {:.1} us/batch ({})\n\n{}",
        result.model,
        result.num_shards,
        if result.threaded {
            "real threads"
        } else {
            "virtual clock"
        },
        result.policy.max_batch,
        result.policy.max_wait_s * 1e3,
        result.num_requests,
        result.single_request_s,
        result.idle_wakeup_rate_hz,
        result.dispatch_overhead_s * 1e6,
        if result.threaded {
            "calibrated from measured shard-wakeup latency"
        } else {
            "virtual clock pays no wake latency"
        },
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_scales_with_batching_beyond_single_rate() {
        let shape = TransformerShape::tiny();
        let r = run(&shape, 16, &[0.5, 4.0, 16.0], 150.0).unwrap();
        assert_eq!(r.points.len(), 3);
        let light = &r.points[0];
        let heavy = &r.points[2];
        // Batching lets achieved throughput exceed 1/single by a wide
        // margin under heavy load.
        assert!(
            heavy.stats.throughput_rps > 2.0 / r.single_request_s,
            "heavy throughput {}",
            heavy.stats.throughput_rps
        );
        assert!(heavy.stats.mean_batch > light.stats.mean_batch);
        // Light load is served at near the offered rate.
        assert!(light.stats.throughput_rps > 0.35 / r.single_request_s);
    }

    #[test]
    fn runtime_comparison_tracks_simulation() {
        let shape = TransformerShape::tiny();
        // Deterministic virtual-clock runtime, one shard: apples-to-apples
        // with the single-engine discrete-event model.
        let r = run_vs_runtime(&shape, 16, &[0.5, 8.0], 150, 1, false).unwrap();
        assert_eq!(r.points.len(), 2);
        let light = &r.points[0];
        let heavy = &r.points[1];
        // Deep queue + unbounded deadlines: the runtime completes the run.
        assert_eq!(light.runtime.completed, 150);
        assert_eq!(heavy.runtime.completed, 150);
        // Both systems batch their way past the single-request rate under
        // heavy load, and agree on saturation throughput within 2x.
        assert!(heavy.runtime_throughput_rps > 1.5 / r.single_request_s);
        let ratio = heavy.runtime_throughput_rps / heavy.sim.throughput_rps;
        assert!((0.5..2.0).contains(&ratio), "saturation ratio {ratio}");
        assert!(heavy.runtime.mean_batch > light.runtime.mean_batch);
        // Light load is served near the offered rate by both.
        assert!(light.runtime_throughput_rps > 0.3 / r.single_request_s);
        let s = render_vs_runtime(&r);
        assert!(s.contains("discrete-event"));
        assert!(s.contains("virtual clock"));
    }

    #[test]
    fn calibrated_threaded_gap_is_pinned() {
        // The reactor-backed threaded runtime vs the DES calibrated with
        // the measured shard-wakeup latency: the residual throughput gap
        // at saturation stays pinned near 1.0. Generous tolerance — the
        // runtime side runs on real threads under an accelerated clock, so
        // scheduling noise moves the ratio, but a regression that loses the
        // calibration (or reintroduces polling wakeups) lands far outside.
        let shape = TransformerShape::tiny();
        let r = run_vs_runtime(&shape, 16, &[6.0], 120, 1, true).unwrap();
        assert!(r.threaded);
        assert!(
            r.dispatch_overhead_s > 0.0 && r.dispatch_overhead_s.is_finite(),
            "threaded comparison must calibrate a positive dispatch overhead, got {}",
            r.dispatch_overhead_s
        );
        // A parked reactor burns no wakeups (the condvar front end it
        // replaced woke at 20 Hz to poll).
        assert_eq!(r.idle_wakeup_rate_hz, 0.0);
        let p = &r.points[0];
        assert_eq!(p.runtime.completed, 120);
        assert!(
            (0.5..2.0).contains(&p.throughput_gap),
            "calibrated RT/DES ratio {} out of band",
            p.throughput_gap
        );
        // The runtime side actually went through the reactor.
        assert_eq!(p.runtime.shard_wakeups, p.runtime.batches);
        let s = render_vs_runtime(&r);
        assert!(s.contains("idle wakeups/sec = 0.00"));
        assert!(s.contains("calibrated from measured shard-wakeup latency"));
    }

    #[test]
    fn render_shows_curve() {
        let shape = TransformerShape::tiny();
        let r = run(&shape, 16, &[1.0], 60.0).unwrap();
        let s = render(&r);
        assert!(s.contains("Poisson load"));
        assert!(s.contains("p95"));
    }
}
