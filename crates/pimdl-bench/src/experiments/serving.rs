//! Extension experiment — serving under load: the latency/throughput curve
//! of a dynamically batched PIM-DL serving system (the paper's §2.2 cloud
//! motivation made concrete).
//!
//! Sweeps the offered Poisson arrival rate and reports achieved throughput,
//! latency percentiles, and the batch sizes the scheduler forms. The
//! expected shape: throughput tracks the offered rate until saturation;
//! batches grow with load (riding the Fig. 12-(c) efficiency curve); tail
//! latency explodes past the knee.

use serde::Serialize;

use pimdl_engine::pipeline::{PimDlEngine, ServingConfig};
use pimdl_engine::scheduler::{BatchScheduler, BatchingPolicy, ServingStats, Workload};
use pimdl_engine::shapes::TransformerShape;
use pimdl_sim::PlatformConfig;

use crate::report::TextTable;

/// One load point.
#[derive(Debug, Clone, Serialize)]
pub struct LoadPoint {
    /// Offered arrival rate (requests/s).
    pub offered_rps: f64,
    /// Serving statistics at this rate.
    pub stats: ServingStats,
}

/// Full serving-curve result.
#[derive(Debug, Clone, Serialize)]
pub struct ServingResult {
    /// Model served.
    pub model: String,
    /// Batching policy used.
    pub policy: BatchingPolicy,
    /// Single-request execution latency (the no-batching floor), seconds.
    pub single_request_s: f64,
    /// Per-rate points.
    pub points: Vec<LoadPoint>,
}

/// Runs the load sweep.
///
/// `rates_x` are offered rates expressed as multiples of the single-request
/// service rate (`1 / single_request_latency`).
///
/// # Errors
///
/// Propagates engine errors.
pub fn run(
    shape: &TransformerShape,
    seq_len: usize,
    rates_x: &[f64],
    horizon_requests: f64,
) -> Result<ServingResult, pimdl_engine::EngineError> {
    let engine = PimDlEngine::new(PlatformConfig::upmem());
    let base = ServingConfig {
        batch: 1,
        seq_len,
        v: 4,
        ct: 16,
    };
    let policy = BatchingPolicy::default();
    let mut sched = BatchScheduler::new(&engine, shape, base, policy);
    let single = sched.batch_latency_s(1)?;

    let mut points = Vec::new();
    for &x in rates_x {
        let rate = x / single;
        let stats = sched.simulate(&Workload {
            rate_rps: rate,
            duration_s: horizon_requests / rate,
            seed: 99,
        })?;
        points.push(LoadPoint {
            offered_rps: rate,
            stats,
        });
    }
    Ok(ServingResult {
        model: shape.name.clone(),
        policy,
        single_request_s: single,
        points,
    })
}

/// Renders the serving curve.
pub fn render(result: &ServingResult) -> String {
    let mut t = TextTable::new(vec![
        "Offered (rps)",
        "Achieved (rps)",
        "Mean batch",
        "p50 latency",
        "p95 latency",
    ]);
    for p in &result.points {
        t.row(vec![
            format!("{:.2}", p.offered_rps),
            format!("{:.2}", p.stats.throughput_rps),
            format!("{:.1}", p.stats.mean_batch),
            format!("{:.2} s", p.stats.p50_latency_s),
            format!("{:.2} s", p.stats.p95_latency_s),
        ]);
    }
    format!(
        "Extension — serving {} under Poisson load (dynamic batching, max_batch {}, window {:.0} ms)\n\
         single-request execution = {:.2} s\n\n{}",
        result.model,
        result.policy.max_batch,
        result.policy.max_wait_s * 1e3,
        result.single_request_s,
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_scales_with_batching_beyond_single_rate() {
        let shape = TransformerShape::tiny();
        let r = run(&shape, 16, &[0.5, 4.0, 16.0], 150.0).unwrap();
        assert_eq!(r.points.len(), 3);
        let light = &r.points[0];
        let heavy = &r.points[2];
        // Batching lets achieved throughput exceed 1/single by a wide
        // margin under heavy load.
        assert!(
            heavy.stats.throughput_rps > 2.0 / r.single_request_s,
            "heavy throughput {}",
            heavy.stats.throughput_rps
        );
        assert!(heavy.stats.mean_batch > light.stats.mean_batch);
        // Light load is served at near the offered rate.
        assert!(light.stats.throughput_rps > 0.35 / r.single_request_s);
    }

    #[test]
    fn render_shows_curve() {
        let shape = TransformerShape::tiny();
        let r = run(&shape, 16, &[1.0], 60.0).unwrap();
        let s = render(&r);
        assert!(s.contains("Poisson load"));
        assert!(s.contains("p95"));
    }
}
