//! Fig. 13 — visualization of the LUT-NN mapping space on UPMEM, using
//! BERT-large's FFN1 layer: workload `(N, CB, CT, F) = (32768, 256, 16,
//! 4096)` at V = 4. Panels (a)–(c) sweep micro-kernel parameters per LUT
//! load scheme at the paper's fixed sub-LUT tilings; panel (d) sweeps the
//! sub-LUT tiling factors.
//!
//! For every candidate mapping we record the analytical-model prediction
//! (the auto-tuner's view) and the simulated "measured" latency, so the
//! §6.6 statistics (best-in-model vs best-in-real gap, model error) fall
//! out of the same sweep.

use serde::Serialize;

use pimdl_sim::cost::estimate_cost;
use pimdl_sim::mapping::MicroKernel;
use pimdl_sim::{LoadScheme, LutWorkload, Mapping, PlatformConfig};
use pimdl_tuner::model::{analytical_cost, relative_error};
use pimdl_tuner::space::{kernel_candidates, mapping_of, sub_lut_candidates};

use crate::report::TextTable;

/// A scored mapping.
#[derive(Debug, Clone, Serialize)]
pub struct ScoredMapping {
    /// The mapping.
    pub mapping: Mapping,
    /// Analytical-model latency (s).
    pub model_s: f64,
    /// Simulated latency (s).
    pub sim_s: f64,
}

/// One Fig. 13 panel.
#[derive(Debug, Clone, Serialize)]
pub struct Fig13Panel {
    /// Panel name.
    pub name: String,
    /// Candidate count scored.
    pub candidates: usize,
    /// Best simulated latency in the panel.
    pub best_sim_s: f64,
    /// Worst simulated latency in the panel.
    pub worst_sim_s: f64,
    /// Performance gap (worst / best) — the paper's annotated spans.
    pub perf_gap: f64,
    /// Simulated latency of the mapping the *model* ranks best.
    pub model_pick_sim_s: f64,
    /// Degradation of the model's pick vs the simulated optimum.
    pub tuner_degradation: f64,
    /// Mean relative model error over the panel.
    pub avg_model_error: f64,
    /// Max relative model error over the panel.
    pub max_model_error: f64,
}

/// Full Fig. 13 result.
#[derive(Debug, Clone, Serialize)]
pub struct Fig13Result {
    /// Workload swept.
    pub workload: LutWorkload,
    /// Panels (a) coarse, (b) fine, (c) static, (d) global.
    pub panels: Vec<Fig13Panel>,
}

/// The paper's case-study workload: BERT-large FFN1 at batch 64 × seq 512,
/// V = 4 → `(32768, 256, 16, 4096)`.
pub fn paper_workload() -> LutWorkload {
    LutWorkload::new(32768, 256, 16, 4096).expect("static shape")
}

/// The paper's Fig. 13 plots the *neighborhood* of sensible mappings, not
/// pathological corner tilings (1-element micro-tiles whose per-access
/// overheads dwarf useful work). This predicate reproduces that framing.
fn is_sane(kernel: &MicroKernel) -> bool {
    let tiles_ok = kernel.n_mtile >= 4 && kernel.f_mtile >= 4 && kernel.cb_mtile >= 2;
    let loads_ok = match kernel.load_scheme {
        LoadScheme::Static => true,
        LoadScheme::CoarseGrain { cb_load, f_load } => cb_load * f_load >= 4,
        LoadScheme::FineGrain { f_load, .. } => f_load >= 4,
    };
    tiles_ok && loads_ok
}

fn scheme_matches(scheme: LoadScheme, filter: &str) -> bool {
    matches!(
        (scheme, filter),
        (LoadScheme::Static, "static")
            | (LoadScheme::CoarseGrain { .. }, "coarse-grain")
            | (LoadScheme::FineGrain { .. }, "fine-grain")
    )
}

fn sweep_panel(
    name: &str,
    platform: &PlatformConfig,
    workload: &LutWorkload,
    pairs: &[(usize, usize)],
    scheme_filter: Option<&str>,
    max_candidates: usize,
) -> Option<Fig13Panel> {
    let mut scored: Vec<ScoredMapping> = Vec::new();
    for &(n_s, f_s) in pairs {
        let mut kernels = kernel_candidates(workload, platform, n_s, f_s);
        kernels.retain(is_sane);
        if let Some(filter) = scheme_filter {
            kernels.retain(|k| scheme_matches(k.load_scheme, filter));
        }
        if max_candidates > 0 && kernels.len() > max_candidates {
            // Deterministic thinning: keep a uniform stride.
            let stride = kernels.len().div_ceil(max_candidates);
            kernels = kernels.into_iter().step_by(stride).collect();
        }
        for kernel in kernels {
            let mapping = mapping_of(n_s, f_s, kernel);
            let Ok(model) = analytical_cost(platform, workload, &mapping) else {
                continue;
            };
            let Ok(sim) = estimate_cost(platform, workload, &mapping) else {
                continue;
            };
            scored.push(ScoredMapping {
                mapping,
                model_s: model.total_s(),
                sim_s: sim.time.total_s(),
            });
        }
    }
    if scored.is_empty() {
        return None;
    }
    let best_sim = scored.iter().map(|s| s.sim_s).fold(f64::INFINITY, f64::min);
    let worst_sim = scored.iter().map(|s| s.sim_s).fold(0.0, f64::max);
    let model_pick = scored
        .iter()
        .min_by(|a, b| a.model_s.partial_cmp(&b.model_s).expect("finite"))
        .expect("non-empty");
    let errors: Vec<f64> = scored
        .iter()
        .map(|s| relative_error(s.model_s, s.sim_s))
        .collect();
    Some(Fig13Panel {
        name: name.to_string(),
        candidates: scored.len(),
        best_sim_s: best_sim,
        worst_sim_s: worst_sim,
        perf_gap: worst_sim / best_sim,
        model_pick_sim_s: model_pick.sim_s,
        tuner_degradation: model_pick.sim_s / best_sim,
        avg_model_error: errors.iter().sum::<f64>() / errors.len() as f64,
        max_model_error: errors.iter().copied().fold(0.0, f64::max),
    })
}

/// Runs the Fig. 13 sweep for an arbitrary workload/platform.
///
/// `(coarse_pair, static_pair)` are the fixed sub-LUT tilings of panels
/// (a)/(b) and (c); the paper uses `(512, 256)` and `(16384, 8)`.
pub fn run_with(
    platform: &PlatformConfig,
    workload: &LutWorkload,
    coarse_pair: (usize, usize),
    static_pair: (usize, usize),
    max_candidates: usize,
) -> Fig13Result {
    let mut panels = Vec::new();
    if let Some(p) = sweep_panel(
        "(a) coarse-grain LUT load",
        platform,
        workload,
        &[coarse_pair],
        Some("coarse-grain"),
        max_candidates,
    ) {
        panels.push(p);
    }
    if let Some(p) = sweep_panel(
        "(b) fine-grain LUT load",
        platform,
        workload,
        &[coarse_pair],
        Some("fine-grain"),
        max_candidates,
    ) {
        panels.push(p);
    }
    if let Some(p) = sweep_panel(
        "(c) static LUT load",
        platform,
        workload,
        &[static_pair],
        Some("static"),
        max_candidates,
    ) {
        panels.push(p);
    }
    let pairs = sub_lut_candidates(workload, platform);
    if let Some(p) = sweep_panel(
        "(d) global (all sub-LUT tilings)",
        platform,
        workload,
        &pairs,
        None,
        max_candidates,
    ) {
        panels.push(p);
    }
    Fig13Result {
        workload: *workload,
        panels,
    }
}

/// Runs the paper-scale Fig. 13 case study on UPMEM.
pub fn run() -> Fig13Result {
    run_with(
        &PlatformConfig::upmem(),
        &paper_workload(),
        (512, 256),
        (16384, 8),
        4000,
    )
}

/// Renders the Fig. 13 panels.
pub fn render(result: &Fig13Result) -> String {
    let mut t = TextTable::new(vec![
        "Panel",
        "#cand",
        "Best (sim)",
        "Worst (sim)",
        "Gap",
        "Tuner degr.",
        "Avg err",
        "Max err",
    ]);
    for p in &result.panels {
        t.row(vec![
            p.name.clone(),
            p.candidates.to_string(),
            format!("{:.4} s", p.best_sim_s),
            format!("{:.4} s", p.worst_sim_s),
            format!("{:.2}x", p.perf_gap),
            format!("{:.1}%", 100.0 * (p.tuner_degradation - 1.0)),
            format!("{:.2}%", 100.0 * p.avg_model_error),
            format!("{:.2}%", 100.0 * p.max_model_error),
        ]);
    }
    format!(
        "Fig. 13 — Mapping space of BERT-large FFN1 ({}, {}, {}, {}) on UPMEM\n\
         Paper: up to 1.91x gap over sub-LUT tilings, 1.74x under static loads;\n\
         tuner degradation ≤ 6%, model error avg 3.44% / max 13.73%\n\n{}",
        result.workload.n,
        result.workload.cb,
        result.workload.ct,
        result.workload.f,
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_setup() -> (PlatformConfig, LutWorkload) {
        let mut p = PlatformConfig::upmem();
        p.num_pes = 16;
        (p, LutWorkload::new(256, 16, 16, 64).unwrap())
    }

    #[test]
    fn small_sweep_produces_all_panels() {
        let (p, w) = small_setup();
        let r = run_with(&p, &w, (64, 16), (64, 16), 500);
        assert_eq!(r.panels.len(), 4);
        for panel in &r.panels {
            assert!(panel.candidates > 0, "{}", panel.name);
            assert!(panel.perf_gap >= 1.0);
            assert!(panel.tuner_degradation >= 1.0);
            assert!(panel.best_sim_s > 0.0);
        }
    }

    #[test]
    fn tuner_degradation_is_small() {
        // The §6.6 claim at small scale: the model's pick is within a few
        // percent of the simulated optimum.
        let (p, w) = small_setup();
        let r = run_with(&p, &w, (64, 16), (64, 16), 0);
        let global = r.panels.last().unwrap();
        assert!(
            global.tuner_degradation < 1.10,
            "degradation {}",
            global.tuner_degradation
        );
    }

    #[test]
    fn model_error_within_reasonable_band() {
        let (p, w) = small_setup();
        let r = run_with(&p, &w, (64, 16), (64, 16), 0);
        for panel in &r.panels {
            assert!(
                panel.avg_model_error < 0.35,
                "{}: avg error {}",
                panel.name,
                panel.avg_model_error
            );
        }
    }

    #[test]
    fn scheme_filter_matching() {
        assert!(scheme_matches(LoadScheme::Static, "static"));
        assert!(!scheme_matches(LoadScheme::Static, "fine-grain"));
        assert!(scheme_matches(
            LoadScheme::FineGrain {
                f_load: 1,
                threads: 1
            },
            "fine-grain"
        ));
    }

    #[test]
    fn render_reports_gaps() {
        let (p, w) = small_setup();
        let r = run_with(&p, &w, (64, 16), (64, 16), 200);
        let s = render(&r);
        assert!(s.contains("Fig. 13"));
        assert!(s.contains("Gap"));
    }
}
