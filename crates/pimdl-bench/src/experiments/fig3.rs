//! Fig. 3 — computation-reduction analysis of LUT-NN vs GEMM
//! (N = H = F = 1024).

use serde::Serialize;

use pimdl_lutnn::flops::{fig3_sweep, ReductionPoint};

use crate::report::{fmt_f, TextTable};

/// Result of the Fig. 3 sweep.
#[derive(Debug, Clone, Serialize)]
pub struct Fig3Result {
    /// Square-workload dimension (the paper uses 1024).
    pub dim: usize,
    /// Sweep points: four `V` values at CT = 16, then four `CT` values at
    /// V = 4.
    pub points: Vec<ReductionPoint>,
}

/// Runs the Fig. 3 sweep.
pub fn run(dim: usize) -> Fig3Result {
    Fig3Result {
        dim,
        points: fig3_sweep(dim),
    }
}

/// Renders the Fig. 3 series.
pub fn render(result: &Fig3Result) -> String {
    let mut t = TextTable::new(vec![
        "V",
        "CT",
        "LUT GFLOPs",
        "mult %",
        "GEMM GFLOPs",
        "Reduction",
    ]);
    for p in &result.points {
        t.row(vec![
            p.v.to_string(),
            p.ct.to_string(),
            fmt_f(p.lut_ops.total() as f64 / 1e9),
            format!("{:.1}%", 100.0 * p.lut_ops.multiply_fraction()),
            fmt_f(p.gemm_ops.total() as f64 / 1e9),
            format!("{:.2}x", p.reduction),
        ]);
    }
    format!(
        "Fig. 3 — Computation Reduction Analysis (N=H=F={})\n\
         Paper: 3.66x-18.29x reduction; multiplies 2.9%-14.3% of LUT-NN ops\n\n{}",
        result.dim,
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_sweep() {
        let r = run(1024);
        assert_eq!(r.points.len(), 8);
        let reductions: Vec<f64> = r.points.iter().map(|p| p.reduction).collect();
        let min = reductions.iter().copied().fold(f64::INFINITY, f64::min);
        let max = reductions.iter().copied().fold(0.0, f64::max);
        assert!(min > 3.0 && max < 22.0, "range {min}..{max}");
    }

    #[test]
    fn render_mentions_reduction() {
        let s = render(&run(256));
        assert!(s.contains("Reduction"));
        assert!(s.contains("Fig. 3"));
    }
}
