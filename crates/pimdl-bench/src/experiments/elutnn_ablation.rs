//! Ablation of eLUT-NN's two techniques (§4.2): the **reconstruction loss**
//! (Eq. 1) and the **straight-through estimator** (Eq. 2).
//!
//! Four calibration variants, all from random centroid init on the same
//! small calibration set:
//!
//! * `STE + recon` — full eLUT-NN;
//! * `STE only` — β = 0 (model loss through STE, no direct centroid
//!   supervision);
//! * `soft only` — the baseline estimator (Gumbel-softmax assignment,
//!   centroid-only training);
//! * `none` — random centroids, no fine-tuning at all (the floor).
//!
//! The paper's claim: both techniques contribute; the reconstruction loss
//! provides direct, well-scaled centroid gradients and is the main driver
//! at small calibration budgets.

use serde::Serialize;

use pimdl_lutnn::calibrate::{
    convert_elutnn, convert_lutnn_baseline, init_quantizers, BaselineLutNnConfig,
    CalibrationConfig, CentroidInit,
};
use pimdl_lutnn::convert::{lut_accuracy, LutClassifier};
use pimdl_nn::data::{nlp_dataset, NlpTask};
use pimdl_nn::train::{evaluate, train, TrainConfig};
use pimdl_nn::transformer::{InputKind, ModelConfig, TransformerClassifier};
use pimdl_tensor::rng::DataRng;

use crate::report::TextTable;

/// One ablation variant's accuracy.
#[derive(Debug, Clone, Serialize)]
pub struct VariantAccuracy {
    /// Variant name.
    pub variant: String,
    /// Test accuracy after conversion (INT8 LUT inference).
    pub accuracy: f32,
}

/// Full ablation result.
#[derive(Debug, Clone, Serialize)]
pub struct AblationResult {
    /// Task used.
    pub task: String,
    /// Dense-model reference accuracy.
    pub original: f32,
    /// Calibration sequences used.
    pub calib_sequences: usize,
    /// Per-variant accuracies.
    pub variants: Vec<VariantAccuracy>,
}

/// Runs the four-variant ablation at paper-experiment scale.
///
/// # Errors
///
/// Propagates model/conversion errors.
pub fn run(
    calib_sequences: usize,
    seed: u64,
) -> Result<AblationResult, Box<dyn std::error::Error>> {
    run_with(calib_sequences, seed, 4, 20, 560)
}

/// Runs the ablation with explicit model depth / training budget (smaller
/// settings for smoke tests).
///
/// # Errors
///
/// Propagates model/conversion errors.
pub fn run_with(
    calib_sequences: usize,
    seed: u64,
    layers: usize,
    train_epochs: usize,
    examples: usize,
) -> Result<AblationResult, Box<dyn std::error::Error>> {
    let task = NlpTask::ContainsAnswer;
    let mut rng = DataRng::new(seed);
    let mut ds = nlp_dataset(task, examples, 16, 8, &mut rng);
    let test = ds.split_off(100.min(examples / 3));

    let model_cfg = ModelConfig {
        input: InputKind::Tokens { vocab: 16 },
        hidden: 32,
        heads: 4,
        layers,
        ffn_dim: 64,
        max_seq: 8,
        classes: task.classes(),
    };
    let mut model = TransformerClassifier::new(&model_cfg, &mut rng);
    train(
        &mut model,
        &ds,
        &TrainConfig {
            epochs: train_epochs,
            batch_size: 16,
            lr: 1.5e-3,
            schedule: Default::default(),
            seed: seed ^ 1,
        },
    )?;
    let original = evaluate(&model, &test)?;
    let calib = ds.take(calib_sequences);

    let (v, ct) = (4usize, 8usize);
    let base_cfg = CalibrationConfig {
        v,
        ct,
        init: CentroidInit::Random,
        kmeans_iters: 0,
        beta: 1e-3,
        lr: 2e-3,
        epochs: 6,
        batch_size: 8,
        seed: seed ^ 2,
        max_activation_rows: 4096,
    };

    let mut variants = Vec::new();
    let mut measure =
        |name: &str, model_conv: &LutClassifier| -> Result<(), Box<dyn std::error::Error>> {
            variants.push(VariantAccuracy {
                variant: name.to_string(),
                accuracy: lut_accuracy(model_conv, &test, true)?,
            });
            Ok(())
        };

    // Full eLUT-NN.
    let (full, _) = convert_elutnn(&model, &calib, &base_cfg)?;
    measure("STE + recon (eLUT-NN)", &full)?;

    // STE only (β = 0).
    let (ste_only, _) = convert_elutnn(
        &model,
        &calib,
        &CalibrationConfig {
            beta: 0.0,
            ..base_cfg.clone()
        },
    )?;
    measure("STE only (beta = 0)", &ste_only)?;

    // Soft estimator only (the [84] baseline at the same budget).
    let (soft, _) = convert_lutnn_baseline(
        &model,
        &calib,
        &BaselineLutNnConfig {
            v,
            ct,
            init: CentroidInit::Random,
            kmeans_iters: 0,
            tau: 1.0,
            gumbel_noise: true,
            lr: 2e-3,
            epochs: 6,
            batch_size: 8,
            seed: seed ^ 2,
            max_activation_rows: 4096,
        },
    )?;
    measure("soft assignment only", &soft)?;

    // No fine-tuning: random centroids straight into LUTs.
    let mut init_rng = DataRng::new(seed ^ 3);
    let random_qs = init_quantizers(
        &model,
        &calib.inputs,
        v,
        ct,
        CentroidInit::Random,
        0,
        4096,
        &mut init_rng,
    )?;
    let none = LutClassifier::convert(&model, random_qs)?;
    measure("no fine-tuning (floor)", &none)?;

    Ok(AblationResult {
        task: task.glue_name().to_string(),
        original,
        calib_sequences: calib.len(),
        variants,
    })
}

/// Renders the ablation table.
pub fn render(result: &AblationResult) -> String {
    let mut t = TextTable::new(vec!["Variant", "Accuracy (%)"]);
    t.row(vec![
        "original (dense)".to_string(),
        format!("{:.1}", 100.0 * result.original),
    ]);
    for v in &result.variants {
        t.row(vec![
            v.variant.clone(),
            format!("{:.1}", 100.0 * v.accuracy),
        ]);
    }
    format!(
        "eLUT-NN technique ablation (synthetic {}, {} calibration sequences, random init)\n\n{}",
        result.task,
        result.calib_sequences,
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_elutnn_beats_floor() {
        let r = run_with(40, 21, 2, 8, 240).unwrap();
        assert_eq!(r.variants.len(), 4);
        let acc = |name: &str| {
            r.variants
                .iter()
                .find(|v| v.variant.starts_with(name))
                .unwrap()
                .accuracy
        };
        let full = acc("STE + recon");
        let floor = acc("no fine-tuning");
        assert!(
            full >= floor,
            "full {full} should be at least the floor {floor}"
        );
        assert!(
            full >= r.original - 0.3,
            "full {full} too far below original {}",
            r.original
        );
    }

    #[test]
    fn render_lists_variants() {
        let r = AblationResult {
            task: "QNLI".to_string(),
            original: 1.0,
            calib_sequences: 48,
            variants: vec![VariantAccuracy {
                variant: "STE + recon (eLUT-NN)".to_string(),
                accuracy: 0.95,
            }],
        };
        let s = render(&r);
        assert!(s.contains("eLUT-NN technique ablation"));
        assert!(s.contains("95.0"));
    }
}
