//! Table 1 — comparison of commodity DRAM-PIMs.

use serde::Serialize;

use pimdl_sim::PlatformConfig;

use crate::report::TextTable;

/// One row of Table 1.
#[derive(Debug, Clone, Serialize)]
pub struct Table1Row {
    /// Product name.
    pub product: String,
    /// Memory technology.
    pub technique: String,
    /// PIM unit kind.
    pub pim_units: String,
    /// Aggregate peak bandwidth (GB/s) in the modeled system.
    pub peak_bandwidth_gbps: f64,
    /// Aggregate peak throughput (GOP/s) in the modeled system.
    pub peak_throughput_gops: f64,
    /// PE count of the modeled system.
    pub num_pes: usize,
}

/// Builds Table 1 from the platform configurations.
pub fn run() -> Vec<Table1Row> {
    PlatformConfig::all()
        .iter()
        .map(|p| {
            let (technique, units) = match p.kind {
                pimdl_sim::PlatformKind::Upmem => ("DDR4", "RISC Cores"),
                pimdl_sim::PlatformKind::HbmPim => ("HBM2", "FP16 MAC"),
                pimdl_sim::PlatformKind::Aim => ("GDDR6", "BF16 MAC"),
            };
            Table1Row {
                product: p.kind.name().to_string(),
                technique: technique.to_string(),
                pim_units: units.to_string(),
                peak_bandwidth_gbps: p.peak_internal_bw_gbps,
                peak_throughput_gops: p.peak_gops,
                num_pes: p.num_pes,
            }
        })
        .collect()
}

/// Renders Table 1.
pub fn render(rows: &[Table1Row]) -> String {
    let mut t = TextTable::new(vec![
        "Product",
        "Technique",
        "PIM Units",
        "Peak BW (GB/s)",
        "Peak Thpt (GOP/s)",
        "#PEs",
    ]);
    for r in rows {
        t.row(vec![
            r.product.clone(),
            r.technique.clone(),
            r.pim_units.clone(),
            format!("{:.1}", r.peak_bandwidth_gbps),
            format!("{:.1}", r.peak_throughput_gops),
            r.num_pes.to_string(),
        ]);
    }
    format!(
        "Table 1 — Comparison of Commodity DRAM-PIMs (modeled systems)\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_products() {
        let rows = run();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].product, "PIM-DIMM");
        assert_eq!(rows[1].pim_units, "FP16 MAC");
        assert_eq!(rows[2].technique, "GDDR6");
    }

    #[test]
    fn render_contains_all_products() {
        let s = render(&run());
        for name in ["PIM-DIMM", "HBM-PIM", "AiM"] {
            assert!(s.contains(name), "missing {name}");
        }
    }
}
