//! §4.2 claim **A1** — data efficiency: eLUT-NN reaches near-original
//! accuracy from a small calibration subset, while the baseline LUT-NN
//! algorithm needs far more data (the paper: eLUT-NN uses <1 % of the
//! pre-training tokens; the baseline consumes the full training set and
//! still degrades).
//!
//! This experiment sweeps the calibration-set size for both algorithms on
//! one synthetic task and reports accuracy per budget.

use serde::Serialize;

use pimdl_lutnn::calibrate::{
    convert_elutnn, convert_lutnn_baseline, BaselineLutNnConfig, CalibrationConfig, CentroidInit,
};
use pimdl_lutnn::convert::lut_accuracy;
use pimdl_nn::data::{nlp_dataset, NlpTask};
use pimdl_nn::train::{evaluate, train, TrainConfig};
use pimdl_nn::transformer::{InputKind, ModelConfig, TransformerClassifier};
use pimdl_tensor::rng::DataRng;

use crate::report::TextTable;

/// One budget point.
#[derive(Debug, Clone, Serialize)]
pub struct BudgetPoint {
    /// Calibration sequences used.
    pub sequences: usize,
    /// Fraction of the training set.
    pub fraction: f32,
    /// eLUT-NN accuracy at this budget.
    pub elutnn: f32,
    /// Baseline LUT-NN accuracy at this budget.
    pub baseline: f32,
}

/// Full data-efficiency result.
#[derive(Debug, Clone, Serialize)]
pub struct DataEfficiencyResult {
    /// Task used.
    pub task: String,
    /// Dense-model reference accuracy.
    pub original: f32,
    /// Accuracy per calibration budget.
    pub points: Vec<BudgetPoint>,
}

/// Runs the sweep.
///
/// # Errors
///
/// Propagates model/conversion errors.
pub fn run(
    budgets: &[usize],
    train_examples: usize,
    seed: u64,
) -> Result<DataEfficiencyResult, Box<dyn std::error::Error>> {
    let task = NlpTask::ContainsAnswer;
    let mut rng = DataRng::new(seed);
    let mut ds = nlp_dataset(task, train_examples + 100, 16, 8, &mut rng);
    let test = ds.split_off(100);

    let model_cfg = ModelConfig {
        input: InputKind::Tokens { vocab: 16 },
        hidden: 32,
        heads: 4,
        layers: 4,
        ffn_dim: 64,
        max_seq: 8,
        classes: task.classes(),
    };
    let mut model = TransformerClassifier::new(&model_cfg, &mut rng);
    train(
        &mut model,
        &ds,
        &TrainConfig {
            epochs: 15,
            batch_size: 16,
            lr: 3e-3,
            schedule: Default::default(),
            seed: seed ^ 1,
        },
    )?;
    let original = evaluate(&model, &test)?;

    let mut points = Vec::new();
    for &budget in budgets {
        let calib = ds.take(budget.min(ds.len()));
        let ecfg = CalibrationConfig {
            v: 4,
            ct: 8,
            init: CentroidInit::Random,
            kmeans_iters: 0,
            beta: 1e-3,
            lr: 2e-3,
            epochs: 6,
            batch_size: 8,
            seed: seed ^ 2,
            max_activation_rows: 4096,
        };
        let (elut, _) = convert_elutnn(&model, &calib, &ecfg)?;
        let elut_acc = lut_accuracy(&elut, &test, true)?;

        let bcfg = BaselineLutNnConfig {
            v: 4,
            ct: 8,
            init: CentroidInit::Random,
            kmeans_iters: 0,
            tau: 1.0,
            gumbel_noise: true,
            lr: 2e-3,
            epochs: 6,
            batch_size: 8,
            seed: seed ^ 2,
            max_activation_rows: 4096,
        };
        let (base, _) = convert_lutnn_baseline(&model, &calib, &bcfg)?;
        let base_acc = lut_accuracy(&base, &test, true)?;

        points.push(BudgetPoint {
            sequences: calib.len(),
            fraction: calib.len() as f32 / ds.len() as f32,
            elutnn: elut_acc,
            baseline: base_acc,
        });
    }
    Ok(DataEfficiencyResult {
        task: task.glue_name().to_string(),
        original,
        points,
    })
}

/// Renders the sweep.
pub fn render(result: &DataEfficiencyResult) -> String {
    let mut t = TextTable::new(vec![
        "Calib seqs",
        "% of train",
        "eLUT-NN",
        "LUT-NN baseline",
    ]);
    for p in &result.points {
        t.row(vec![
            p.sequences.to_string(),
            format!("{:.0}%", 100.0 * p.fraction),
            format!("{:.1}", 100.0 * p.elutnn),
            format!("{:.1}", 100.0 * p.baseline),
        ]);
    }
    format!(
        "A1 — Data efficiency on synthetic {} (original = {:.1} %)\n\
         Paper: eLUT-NN needs <1 % of the data; the baseline needs the full set\n\n{}",
        result.task,
        100.0 * result.original,
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_budget_favors_elutnn() {
        let r = run(&[32], 360, 9).unwrap();
        assert!(r.original > 0.8, "dense model failed: {}", r.original);
        let p = &r.points[0];
        assert!(
            p.elutnn >= p.baseline - 0.05,
            "eLUT-NN {} should not trail baseline {} at small budget",
            p.elutnn,
            p.baseline
        );
        assert!(
            p.elutnn >= r.original - 0.25,
            "eLUT-NN {} too far below original {}",
            p.elutnn,
            r.original
        );
    }

    #[test]
    fn render_includes_budgets() {
        let r = run(&[16, 48], 200, 10).unwrap();
        let s = render(&r);
        assert!(s.contains("16"));
        assert!(s.contains("48"));
        assert!(s.contains("Data efficiency"));
    }
}
