//! Fig. 14 — normal (GEMM-based) PIM inference vs PIM-DL on the simulated
//! HBM-PIM and AiM platforms. Sequence length 128, batch 1–8, hidden dims
//! from the OPT family (§6.7).

use serde::Serialize;

use pimdl_engine::baseline::pim_gemm_inference;
use pimdl_engine::pipeline::{PimDlEngine, ServingConfig};
use pimdl_engine::shapes::TransformerShape;
use pimdl_sim::{PlatformConfig, PlatformKind};

use crate::experiments::geomean;
use crate::report::TextTable;

/// One sweep point.
#[derive(Debug, Clone, Serialize)]
pub struct Fig14Point {
    /// Platform name.
    pub platform: String,
    /// Hidden dim.
    pub hidden: usize,
    /// Batch size.
    pub batch: usize,
    /// GEMM-based PIM inference latency (s).
    pub pim_gemm_s: f64,
    /// PIM-DL latency (s).
    pub pimdl_s: f64,
    /// Speedup of PIM-DL over GEMM-based inference.
    pub speedup: f64,
}

/// Full Fig. 14 result.
#[derive(Debug, Clone, Serialize)]
pub struct Fig14Result {
    /// Sweep points.
    pub points: Vec<Fig14Point>,
    /// Geomean speedup on HBM-PIM (paper: 23.94×).
    pub geomean_hbm: f64,
    /// Geomean speedup on AiM (paper: 19.06×).
    pub geomean_aim: f64,
}

/// Runs the Fig. 14 sweep with explicit parameter lists.
///
/// # Errors
///
/// Propagates engine errors.
pub fn run_with(
    hiddens: &[usize],
    batches: &[usize],
    seq_len: usize,
    layers: usize,
) -> Result<Fig14Result, pimdl_engine::EngineError> {
    let mut points = Vec::new();
    let mut hbm = Vec::new();
    let mut aim = Vec::new();
    for platform in [PlatformConfig::hbm_pim(), PlatformConfig::aim()] {
        let engine = PimDlEngine::new(platform.clone());
        for &hidden in hiddens {
            let shape = TransformerShape::with_hidden(hidden, layers);
            for &batch in batches {
                let gemm = pim_gemm_inference(&platform, &shape, batch, seq_len).total_s();
                let pimdl = engine
                    .serve(
                        &shape,
                        &ServingConfig {
                            batch,
                            seq_len,
                            v: 4,
                            ct: 16,
                        },
                    )?
                    .total_s;
                let speedup = gemm / pimdl;
                match platform.kind {
                    PlatformKind::HbmPim => hbm.push(speedup),
                    PlatformKind::Aim => aim.push(speedup),
                    PlatformKind::Upmem => {}
                }
                points.push(Fig14Point {
                    platform: platform.kind.name().to_string(),
                    hidden,
                    batch,
                    pim_gemm_s: gemm,
                    pimdl_s: pimdl,
                    speedup,
                });
            }
        }
    }
    Ok(Fig14Result {
        geomean_hbm: geomean(&hbm),
        geomean_aim: geomean(&aim),
        points,
    })
}

/// Runs the paper-scale Fig. 14 sweep.
///
/// # Errors
///
/// Propagates engine errors.
pub fn run() -> Result<Fig14Result, pimdl_engine::EngineError> {
    run_with(&[1024, 2048, 2560, 4096], &[1, 2, 4, 8], 128, 24)
}

/// Renders the Fig. 14 table.
pub fn render(result: &Fig14Result) -> String {
    let mut t = TextTable::new(vec![
        "Platform", "Hidden", "Batch", "PIM-GEMM", "PIM-DL", "Speedup",
    ]);
    for p in &result.points {
        t.row(vec![
            p.platform.clone(),
            p.hidden.to_string(),
            p.batch.to_string(),
            format!("{:.4} s", p.pim_gemm_s),
            format!("{:.4} s", p.pimdl_s),
            format!("{:.2}x", p.speedup),
        ]);
    }
    format!(
        "Fig. 14 — Normal PIM-based DNN inference vs PIM-DL (seq 128)\n\
         Paper geomeans: 23.94x (HBM-PIM), 19.06x (AiM); gain grows with batch\n\
         Measured geomeans: {:.2}x (HBM-PIM), {:.2}x (AiM)\n\n{}",
        result.geomean_hbm,
        result.geomean_aim,
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduced_sweep_shows_large_speedups_growing_with_batch() {
        let r = run_with(&[1024], &[1, 8], 128, 4).unwrap();
        assert_eq!(r.points.len(), 4); // 2 platforms × 2 batches
        for p in &r.points {
            // At this reduced scale (4 layers, batch ≤ 8) fixed PIM-DL
            // launch overheads weigh in; paper-scale sweeps reach ~20×.
            assert!(
                p.speedup > 1.5,
                "{} b{}: {}",
                p.platform,
                p.batch,
                p.speedup
            );
        }
        // Gain grows with batch on both platforms.
        for platform in ["HBM-PIM", "AiM"] {
            let b1 = r
                .points
                .iter()
                .find(|p| p.platform == platform && p.batch == 1)
                .unwrap();
            let b8 = r
                .points
                .iter()
                .find(|p| p.platform == platform && p.batch == 8)
                .unwrap();
            assert!(
                b8.speedup > b1.speedup,
                "{platform}: b8 {} vs b1 {}",
                b8.speedup,
                b1.speedup
            );
        }
    }

    #[test]
    fn render_mentions_platforms() {
        let r = run_with(&[1024], &[1], 128, 2).unwrap();
        let s = render(&r);
        assert!(s.contains("HBM-PIM"));
        assert!(s.contains("AiM"));
    }
}
