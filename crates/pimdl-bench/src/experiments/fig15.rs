//! Fig. 15 — V100 GPU (PyTorch FP32) inference vs PIM-DL on the simulated
//! HBM-PIM and AiM platforms (same sweep as Fig. 14).

use serde::Serialize;

use pimdl_engine::baseline::{host_inference, HostModel};
use pimdl_engine::pipeline::{PimDlEngine, ServingConfig};
use pimdl_engine::shapes::TransformerShape;
use pimdl_sim::{PlatformConfig, PlatformKind};

use crate::experiments::geomean;
use crate::report::TextTable;

/// One sweep point.
#[derive(Debug, Clone, Serialize)]
pub struct Fig15Point {
    /// Platform name.
    pub platform: String,
    /// Hidden dim.
    pub hidden: usize,
    /// Batch size.
    pub batch: usize,
    /// V100 FP32 inference latency (s).
    pub gpu_s: f64,
    /// PIM-DL latency (s).
    pub pimdl_s: f64,
    /// Speedup of PIM-DL over the GPU (< 1 means the GPU wins).
    pub speedup: f64,
}

/// Full Fig. 15 result.
#[derive(Debug, Clone, Serialize)]
pub struct Fig15Result {
    /// Sweep points.
    pub points: Vec<Fig15Point>,
    /// Geomean PIM-DL/GPU ratio on HBM-PIM (paper: 0.39×).
    pub geomean_hbm: f64,
    /// Geomean PIM-DL/GPU ratio on AiM (paper: up to 1.20×).
    pub geomean_aim: f64,
    /// Best AiM point (the paper's "up to 1.20×").
    pub best_aim: f64,
}

/// Runs the Fig. 15 sweep with explicit parameter lists.
///
/// # Errors
///
/// Propagates engine errors.
pub fn run_with(
    hiddens: &[usize],
    batches: &[usize],
    seq_len: usize,
    layers: usize,
) -> Result<Fig15Result, pimdl_engine::EngineError> {
    let gpu = HostModel::gpu_v100_fp32();
    let mut points = Vec::new();
    let mut hbm = Vec::new();
    let mut aim = Vec::new();
    for platform in [PlatformConfig::hbm_pim(), PlatformConfig::aim()] {
        let engine = PimDlEngine::new(platform.clone());
        for &hidden in hiddens {
            let shape = TransformerShape::with_hidden(hidden, layers);
            for &batch in batches {
                let gpu_s = host_inference(&gpu, &shape, batch, seq_len, 4).total_s();
                let pimdl_s = engine
                    .serve(
                        &shape,
                        &ServingConfig {
                            batch,
                            seq_len,
                            v: 4,
                            ct: 16,
                        },
                    )?
                    .total_s;
                let speedup = gpu_s / pimdl_s;
                match platform.kind {
                    PlatformKind::HbmPim => hbm.push(speedup),
                    PlatformKind::Aim => aim.push(speedup),
                    PlatformKind::Upmem => {}
                }
                points.push(Fig15Point {
                    platform: platform.kind.name().to_string(),
                    hidden,
                    batch,
                    gpu_s,
                    pimdl_s,
                    speedup,
                });
            }
        }
    }
    let best_aim = aim.iter().copied().fold(0.0, f64::max);
    Ok(Fig15Result {
        geomean_hbm: geomean(&hbm),
        geomean_aim: geomean(&aim),
        best_aim,
        points,
    })
}

/// Runs the paper-scale Fig. 15 sweep.
///
/// # Errors
///
/// Propagates engine errors.
pub fn run() -> Result<Fig15Result, pimdl_engine::EngineError> {
    run_with(&[1024, 2048, 2560, 4096], &[1, 2, 4, 8], 128, 24)
}

/// Renders the Fig. 15 table.
pub fn render(result: &Fig15Result) -> String {
    let mut t = TextTable::new(vec![
        "Platform",
        "Hidden",
        "Batch",
        "V100 FP32",
        "PIM-DL",
        "Ratio",
    ]);
    for p in &result.points {
        t.row(vec![
            p.platform.clone(),
            p.hidden.to_string(),
            p.batch.to_string(),
            format!("{:.4} s", p.gpu_s),
            format!("{:.4} s", p.pimdl_s),
            format!("{:.2}x", p.speedup),
        ]);
    }
    format!(
        "Fig. 15 — GPU-based inference vs PIM-DL (seq 128)\n\
         Paper: AiM PIM-DL up to 1.20x of V100; HBM-PIM ~0.39x geomean\n\
         Measured: AiM geomean {:.2}x (best {:.2}x); HBM-PIM geomean {:.2}x\n\n{}",
        result.geomean_aim,
        result.best_aim,
        result.geomean_hbm,
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aim_beats_hbm_pim_against_gpu() {
        // AiM's 16 TFLOPS vs HBM-PIM's 4.8 TFLOPS: AiM's ratio must be
        // higher (paper: 1.20x vs 0.39x).
        let r = run_with(&[1024], &[1, 4], 128, 4).unwrap();
        assert!(
            r.geomean_aim > r.geomean_hbm,
            "AiM {} vs HBM {}",
            r.geomean_aim,
            r.geomean_hbm
        );
        assert!(r.best_aim >= r.geomean_aim);
    }

    #[test]
    fn render_mentions_v100() {
        let r = run_with(&[1024], &[1], 128, 2).unwrap();
        assert!(render(&r).contains("V100"));
    }
}
