//! One module per paper artifact (see DESIGN.md §4 for the experiment
//! index). Each module exposes a `run(...)` returning a serializable result
//! and a `render(&result)` producing the text report.

pub mod accuracy;
pub mod bench_kernels;
pub mod data_efficiency;
pub mod discussion;
pub mod elutnn_ablation;
pub mod fabric;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig3;
pub mod fig4;
pub mod scaling;
pub mod serving;
pub mod table1;
pub mod tuner;
pub mod tuner_error;

/// Geometric mean of a non-empty slice of positive values.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(1e-300).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert_eq!(geomean(&[]), 0.0);
        assert!((geomean(&[4.0]) - 4.0).abs() < 1e-12);
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }
}
