//! Tables 4 & 5 — model accuracy: Original vs baseline LUT-NN vs eLUT-NN
//! with *all* linear layers replaced.
//!
//! Substitution note (DESIGN.md §2): GLUE/CIFAR and pretrained BERT/ViT are
//! unavailable here, so each column is a synthetic task learned from
//! scratch by the `pimdl_nn` transformer substrate. Per §6.2, centroids are
//! **randomly initialized** for both algorithms; the baseline LUT-NN
//! (soft-assignment / Gumbel-softmax-style estimation, model loss only)
//! trains on the *full* training set, while eLUT-NN gets only the small
//! calibration subset — reproducing both the accuracy ordering and the
//! data-efficiency claim (A1/A2). The compression ratio is scaled to the
//! substrate (`V = 4, CT = 8` against hidden 32, matching the paper's
//! `V = 2, CT = 16` against hidden 768 in per-sub-vector coding rate).

use serde::Serialize;

use pimdl_lutnn::calibrate::{
    convert_elutnn, convert_lutnn_baseline, BaselineLutNnConfig, CalibrationConfig, CentroidInit,
};
use pimdl_lutnn::convert::lut_accuracy;
use pimdl_nn::data::{nlp_dataset, vision_dataset, Dataset, NlpTask};
use pimdl_nn::train::{evaluate, train, TrainConfig};
use pimdl_nn::transformer::{InputKind, ModelConfig, TransformerClassifier};
use pimdl_tensor::rng::DataRng;

use crate::report::TextTable;

/// Experiment error alias.
pub type ExpError = Box<dyn std::error::Error>;

/// Hyper-parameters of the accuracy experiment.
#[derive(Debug, Clone, Serialize)]
pub struct AccuracyConfig {
    /// Training examples per task.
    pub train_examples: usize,
    /// Held-out evaluation examples per task.
    pub eval_examples: usize,
    /// Calibration examples (the paper's "<1 % of the training set" point —
    /// here a small fraction of the training data).
    pub calib_examples: usize,
    /// Vocabulary size for NLP tasks.
    pub vocab: usize,
    /// Sequence length for NLP tasks.
    pub seq_len: usize,
    /// Model hidden dim.
    pub hidden: usize,
    /// Attention heads.
    pub heads: usize,
    /// Encoder layers.
    pub layers: usize,
    /// FFN inner dim.
    pub ffn_dim: usize,
    /// Training epochs.
    pub train_epochs: usize,
    /// Training learning rate.
    pub train_lr: f32,
    /// LUT sub-vector length `V`.
    pub v: usize,
    /// Centroids per codebook `CT`.
    pub ct: usize,
    /// Calibration/training epochs for both conversion algorithms.
    pub calib_epochs: usize,
    /// Calibration learning rate for both conversion algorithms.
    pub calib_lr: f32,
    /// Reconstruction-loss weight β (eLUT-NN only).
    pub beta: f32,
    /// Soft-assignment temperature τ (baseline LUT-NN only).
    pub tau: f32,
    /// Master seed.
    pub seed: u64,
}

impl Default for AccuracyConfig {
    fn default() -> Self {
        AccuracyConfig {
            train_examples: 460,
            eval_examples: 100,
            calib_examples: 48,
            vocab: 16,
            seq_len: 8,
            hidden: 32,
            heads: 4,
            layers: 4,
            ffn_dim: 64,
            train_epochs: 25,
            train_lr: 1.5e-3,
            v: 4,
            ct: 8,
            calib_epochs: 6,
            calib_lr: 2e-3,
            beta: 1e-3,
            tau: 1.0,
            seed: 7,
        }
    }
}

impl AccuracyConfig {
    /// A fast configuration for smoke tests.
    pub fn quick() -> Self {
        AccuracyConfig {
            train_examples: 100,
            eval_examples: 40,
            calib_examples: 24,
            train_epochs: 4,
            calib_epochs: 2,
            ..Self::default()
        }
    }

    fn elutnn_config(&self) -> CalibrationConfig {
        CalibrationConfig {
            v: self.v,
            ct: self.ct,
            init: CentroidInit::Random,
            kmeans_iters: 0,
            beta: self.beta,
            lr: self.calib_lr,
            epochs: self.calib_epochs,
            batch_size: 8,
            seed: self.seed ^ 0x5eed,
            max_activation_rows: 4096,
        }
    }

    fn baseline_config(&self) -> BaselineLutNnConfig {
        BaselineLutNnConfig {
            v: self.v,
            ct: self.ct,
            init: CentroidInit::Random,
            kmeans_iters: 0,
            tau: self.tau,
            gumbel_noise: true,
            lr: self.calib_lr,
            epochs: self.calib_epochs,
            batch_size: 8,
            seed: self.seed ^ 0x5eed,
            max_activation_rows: 4096,
        }
    }
}

/// One accuracy row: a task under the three settings.
#[derive(Debug, Clone, Serialize)]
pub struct TaskAccuracy {
    /// Task/column name.
    pub task: String,
    /// Original (dense) model accuracy.
    pub original: f32,
    /// Baseline LUT-NN (k-means only, full replacement) accuracy.
    pub baseline_lutnn: f32,
    /// eLUT-NN (reconstruction loss + STE fine-tuning) accuracy.
    pub elutnn: f32,
}

/// Full result of Table 4 or Table 5.
#[derive(Debug, Clone, Serialize)]
pub struct AccuracyResult {
    /// Which table this is ("Table 4 (NLP)" / "Table 5 (Vision)").
    pub table: String,
    /// Per-task rows.
    pub rows: Vec<TaskAccuracy>,
    /// Averages: (original, baseline, eLUT-NN).
    pub averages: (f32, f32, f32),
}

fn measure_task(
    name: &str,
    model_cfg: &ModelConfig,
    mut train_set: Dataset,
    cfg: &AccuracyConfig,
    rng: &mut DataRng,
) -> Result<TaskAccuracy, ExpError> {
    let _ = &rng;
    let test_set = train_set.split_off(cfg.eval_examples.min(train_set.len() / 3));
    let mut model = TransformerClassifier::new(model_cfg, rng);
    train(
        &mut model,
        &train_set,
        &TrainConfig {
            epochs: cfg.train_epochs,
            batch_size: 16,
            lr: cfg.train_lr,
            schedule: Default::default(),
            seed: cfg.seed ^ 0xabcd,
        },
    )?;
    let original = evaluate(&model, &test_set)?;

    // Baseline LUT-NN: random centroid init, soft-assignment estimation,
    // trained on the FULL training set (the paper's baseline consumes
    // 100 % of the data and still collapses under full replacement).
    let (baseline, _) = convert_lutnn_baseline(&model, &train_set, &cfg.baseline_config())?;
    let baseline_acc = lut_accuracy(&baseline, &test_set, true)?;

    // eLUT-NN: random centroid init, only the small calibration subset.
    let calib_set = train_set.take(cfg.calib_examples);
    let (elut, _stats) = convert_elutnn(&model, &calib_set, &cfg.elutnn_config())?;
    let elut_acc = lut_accuracy(&elut, &test_set, true)?;

    Ok(TaskAccuracy {
        task: name.to_string(),
        original,
        baseline_lutnn: baseline_acc,
        elutnn: elut_acc,
    })
}

fn averages(rows: &[TaskAccuracy]) -> (f32, f32, f32) {
    let n = rows.len().max(1) as f32;
    (
        rows.iter().map(|r| r.original).sum::<f32>() / n,
        rows.iter().map(|r| r.baseline_lutnn).sum::<f32>() / n,
        rows.iter().map(|r| r.elutnn).sum::<f32>() / n,
    )
}

/// Runs the Table-4 substitute: eight synthetic GLUE-like tasks.
///
/// # Errors
///
/// Propagates model/conversion errors.
pub fn run_nlp(cfg: &AccuracyConfig) -> Result<AccuracyResult, ExpError> {
    let mut rng = DataRng::new(cfg.seed);
    let mut rows = Vec::new();
    for task in NlpTask::all() {
        let ds = nlp_dataset(
            task,
            cfg.train_examples + cfg.eval_examples,
            cfg.vocab,
            cfg.seq_len,
            &mut rng,
        );
        let model_cfg = ModelConfig {
            input: InputKind::Tokens { vocab: cfg.vocab },
            hidden: cfg.hidden,
            heads: cfg.heads,
            layers: cfg.layers,
            ffn_dim: cfg.ffn_dim,
            max_seq: cfg.seq_len,
            classes: task.classes(),
        };
        rows.push(measure_task(
            task.glue_name(),
            &model_cfg,
            ds,
            cfg,
            &mut rng,
        )?);
    }
    let averages = averages(&rows);
    Ok(AccuracyResult {
        table: "Table 4 (NLP / synthetic GLUE)".to_string(),
        rows,
        averages,
    })
}

/// Runs the Table-5 substitute: two synthetic patch-image tasks
/// (CIFAR-10- and CIFAR-100-like class counts).
///
/// # Errors
///
/// Propagates model/conversion errors.
pub fn run_vision(cfg: &AccuracyConfig) -> Result<AccuracyResult, ExpError> {
    let mut rng = DataRng::new(cfg.seed ^ 0xc1fa);
    let patches = cfg.seq_len;
    let patch_dim = 12;
    let mut rows = Vec::new();
    for (name, classes) in [("CIFAR-10*", 10usize), ("CIFAR-100*", 25usize)] {
        let ds = vision_dataset(
            name,
            classes,
            cfg.train_examples + cfg.eval_examples,
            patches,
            patch_dim,
            0.35,
            &mut rng,
        );
        let model_cfg = ModelConfig {
            input: InputKind::Patches {
                input_dim: patch_dim,
            },
            hidden: cfg.hidden,
            heads: cfg.heads,
            layers: cfg.layers,
            ffn_dim: cfg.ffn_dim,
            max_seq: patches,
            classes,
        };
        rows.push(measure_task(name, &model_cfg, ds, cfg, &mut rng)?);
    }
    let averages = averages(&rows);
    Ok(AccuracyResult {
        table: "Table 5 (Vision / synthetic CIFAR)".to_string(),
        rows,
        averages,
    })
}

/// Renders an accuracy table.
pub fn render(result: &AccuracyResult) -> String {
    let mut t = TextTable::new(vec!["Task", "Original", "LUT-NN", "eLUT-NN"]);
    for r in &result.rows {
        t.row(vec![
            r.task.clone(),
            format!("{:.1}", 100.0 * r.original),
            format!("{:.1}", 100.0 * r.baseline_lutnn),
            format!("{:.1}", 100.0 * r.elutnn),
        ]);
    }
    let (o, b, e) = result.averages;
    t.row(vec![
        "Avg.".to_string(),
        format!("{:.1}", 100.0 * o),
        format!("{:.1}", 100.0 * b),
        format!("{:.1}", 100.0 * e),
    ]);
    format!(
        "{} — accuracy (%) with ALL linear layers replaced\n\
         Paper shape: eLUT-NN ≈ original >> baseline LUT-NN\n\n{}",
        result.table,
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_nlp_subset_preserves_ordering() {
        // One representative task end-to-end (the full table runs in the
        // reproduce binary): eLUT-NN must not trail the baseline.
        let cfg = AccuracyConfig::quick();
        let mut rng = DataRng::new(3);
        let task = NlpTask::ContainsAnswer;
        let ds = nlp_dataset(
            task,
            cfg.train_examples + cfg.eval_examples,
            cfg.vocab,
            cfg.seq_len,
            &mut rng,
        );
        let model_cfg = ModelConfig {
            input: InputKind::Tokens { vocab: cfg.vocab },
            hidden: cfg.hidden,
            heads: cfg.heads,
            layers: cfg.layers,
            ffn_dim: cfg.ffn_dim,
            max_seq: cfg.seq_len,
            classes: task.classes(),
        };
        let row = measure_task("QNLI", &model_cfg, ds, &cfg, &mut rng).unwrap();
        assert!(row.original > 0.4);
        assert!(
            row.elutnn >= row.baseline_lutnn - 0.1,
            "eLUT-NN {} vs baseline {}",
            row.elutnn,
            row.baseline_lutnn
        );
    }

    #[test]
    fn averages_computed() {
        let rows = vec![
            TaskAccuracy {
                task: "a".to_string(),
                original: 0.8,
                baseline_lutnn: 0.4,
                elutnn: 0.7,
            },
            TaskAccuracy {
                task: "b".to_string(),
                original: 0.6,
                baseline_lutnn: 0.2,
                elutnn: 0.5,
            },
        ];
        let (o, b, e) = averages(&rows);
        assert!((o - 0.7).abs() < 1e-6);
        assert!((b - 0.3).abs() < 1e-6);
        assert!((e - 0.6).abs() < 1e-6);
    }

    #[test]
    fn render_has_average_row() {
        let result = AccuracyResult {
            table: "Table 4".to_string(),
            rows: vec![TaskAccuracy {
                task: "MNLI".to_string(),
                original: 0.8,
                baseline_lutnn: 0.3,
                elutnn: 0.75,
            }],
            averages: (0.8, 0.3, 0.75),
        };
        let s = render(&result);
        assert!(s.contains("MNLI"));
        assert!(s.contains("Avg."));
        assert!(s.contains("80.0"));
    }
}
