//! Extension experiment — DIMM scalability: how PIM-DL's end-to-end latency
//! scales as PIM-DIMMs (and hence PEs) are added to the system.
//!
//! Not a paper figure; it answers the natural follow-up to Fig. 10 ("what
//! does a 16- or 32-DIMM system buy?") and exposes two scaling limits:
//! the host-side CCS/attention never shrinks (Amdahl), and on UPMEM every
//! DPU needs its own copy of its group's index tile, so past the host's
//! channel capacity added DIMMs *increase* host↔PIM traffic — small
//! workloads can get slower with more DIMMs.

use serde::Serialize;

use pimdl_engine::pipeline::{PimDlEngine, ServingConfig};
use pimdl_engine::shapes::TransformerShape;
use pimdl_sim::PlatformConfig;

use crate::report::TextTable;

/// One scaling point.
#[derive(Debug, Clone, Serialize)]
pub struct ScalingPoint {
    /// PIM-DIMM count (128 PEs each).
    pub dimms: usize,
    /// Total PE count.
    pub pes: usize,
    /// End-to-end latency (s).
    pub total_s: f64,
    /// PIM-side LUT latency (s).
    pub lut_s: f64,
    /// Speedup vs the 8-DIMM baseline system.
    pub speedup_vs_8: f64,
    /// Parallel efficiency vs the 8-DIMM system (`speedup / (dimms/8)`).
    pub efficiency: f64,
}

/// Full scaling result.
#[derive(Debug, Clone, Serialize)]
pub struct ScalingResult {
    /// Model swept.
    pub model: String,
    /// Per-DIMM-count points.
    pub points: Vec<ScalingPoint>,
}

/// Runs the scaling sweep for BERT-base at the given serving point.
///
/// # Errors
///
/// Propagates engine errors.
pub fn run(batch: usize, seq_len: usize) -> Result<ScalingResult, pimdl_engine::EngineError> {
    let shape = TransformerShape::bert_base();
    let cfg = ServingConfig {
        batch,
        seq_len,
        v: 4,
        ct: 16,
    };
    let mut points = Vec::new();
    let mut baseline_8 = None;
    for dimms in [2usize, 4, 8, 16, 32, 64] {
        let mut platform = PlatformConfig::upmem();
        platform.num_pes = dimms * 128;
        // Host↔PIM bandwidth grows with the channel count up to the host's
        // 4 PIM channels (8 DIMMs); beyond that DIMMs share channels.
        let channel_scale = (dimms as f64 / 8.0).min(1.0);
        platform.host_transfer.to_pim_peak_gbps *= channel_scale.max(0.25);
        platform.host_transfer.broadcast_peak_gbps *= channel_scale.max(0.25);
        platform.host_transfer.from_pim_peak_gbps *= channel_scale.max(0.25);
        platform.peak_gops = 43.8 * dimms as f64;
        platform.pim_power_w = 13.92 * dimms as f64;

        let engine = PimDlEngine::new(platform);
        let report = engine.serve(&shape, &cfg)?;
        if dimms == 8 {
            baseline_8 = Some(report.total_s);
        }
        points.push((dimms, report));
    }
    let base = baseline_8.expect("8-DIMM point present");
    let points = points
        .into_iter()
        .map(|(dimms, report)| {
            let speedup = base / report.total_s;
            ScalingPoint {
                dimms,
                pes: dimms * 128,
                total_s: report.total_s,
                lut_s: report.lut_s,
                speedup_vs_8: speedup,
                efficiency: speedup / (dimms as f64 / 8.0),
            }
        })
        .collect();
    Ok(ScalingResult {
        model: shape.name,
        points,
    })
}

/// Renders the scaling table.
pub fn render(result: &ScalingResult) -> String {
    let mut t = TextTable::new(vec![
        "DIMMs",
        "PEs",
        "Total (s)",
        "LUT (s)",
        "Speedup vs 8",
        "Efficiency",
    ]);
    for p in &result.points {
        t.row(vec![
            p.dimms.to_string(),
            p.pes.to_string(),
            format!("{:.2}", p.total_s),
            format!("{:.2}", p.lut_s),
            format!("{:.2}x", p.speedup_vs_8),
            format!("{:.0}%", 100.0 * p.efficiency),
        ]);
    }
    format!(
        "Extension — DIMM scalability of PIM-DL ({}): speedup saturates (Amdahl on\n\
         host-side CCS/attention) and can invert past the host's channel capacity\n\
         (per-DPU index duplication grows with the PE count)\n\n{}",
        result.model,
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_helps_then_saturates_or_inverts() {
        let r = run(8, 64).unwrap();
        assert_eq!(r.points.len(), 6);
        // Going from 2 to 8 DIMMs must help (the paper's system size).
        let d2 = r.points.iter().find(|p| p.dimms == 2).unwrap();
        let d8 = r.points.iter().find(|p| p.dimms == 8).unwrap();
        assert!(
            d8.total_s < d2.total_s,
            "8 DIMMs {} should beat 2 DIMMs {}",
            d8.total_s,
            d2.total_s
        );
        // Past the host's channel capacity, efficiency collapses — at this
        // small workload, 64 DIMMs are no faster than 8 (index duplication
        // over fixed channels can even make them slower).
        let d64 = r.points.iter().find(|p| p.dimms == 64).unwrap();
        assert!(d64.efficiency < 0.5, "efficiency {}", d64.efficiency);
        // The 8-DIMM point is the 1.0x reference.
        assert!((d8.speedup_vs_8 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn render_has_all_points() {
        let r = run(4, 32).unwrap();
        let s = render(&r);
        assert!(s.contains("DIMM scalability"));
        assert!(s.matches('%').count() >= 6);
    }
}
