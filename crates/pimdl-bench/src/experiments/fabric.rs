//! Extension experiment — the distributed shard fabric (DESIGN.md §13):
//! the same pipelined line-protocol load served by the in-process reactor
//! ([`Runtime::serve`]) and by real multi-process shard workers
//! ([`Runtime::serve_fabric`]), next to the fabric discrete-event
//! simulation whose network costs are calibrated from measured loopback
//! round trips ([`measure_loopback_rtt`] → [`NetworkModel::calibrate`]).
//!
//! Three numbers matter: the fabric/in-process throughput ratio (what the
//! process boundary costs at this service time), the calibrated link
//! model itself, and the residual RT/DES gap (how well the simulation,
//! fed that model, predicts the real multi-process fabric).

use std::net::{SocketAddr, TcpListener};
use std::sync::Arc;
use std::time::Instant;

use serde::Serialize;

use pimdl_engine::fabric::FabricConfig;
use pimdl_engine::shapes::TransformerShape;
use pimdl_serve::codec::{self, ServerMsg};
use pimdl_serve::fabric::{measure_loopback_rtt, shard_worker_main};
use pimdl_serve::{
    Clock, EventSource, FabricServerLoop, Frame, LineClient, Metrics, MetricsSnapshot, Runtime,
    ServeConfig, ServeError, SimPoller, SimShardEngine, VirtualClock,
};
use pimdl_sim::{LutWorkload, NetworkModel, PlatformConfig};
use pimdl_tensor::rng::DataRng;

use crate::report::TextTable;

/// Process shards on the real side and simulated shards on the DES side.
const NUM_SHARDS: usize = 2;

/// Hidden argv marker for the self-exec worker entry: the `reproduce`
/// binary re-invokes itself as `reproduce __fabric-shard ADDR SHARD_ID
/// SPEEDUP SPEC_JSON` so the fabric can spawn workers without depending
/// on a second installed binary.
pub const WORKER_SUBCOMMAND: &str = "__fabric-shard";

/// Worker-process entry behind [`WORKER_SUBCOMMAND`]: parses the four
/// operands `serve_fabric` appended to the argv and hands off to
/// [`shard_worker_main`] (mirroring the standalone `fabric_shard` binary).
///
/// # Errors
///
/// Malformed operands, or any worker-side fabric error.
pub fn worker_entry(args: &[String]) -> Result<(), ServeError> {
    let [addr, shard_id, speedup, spec_json] = args else {
        return Err(ServeError::Config {
            detail: format!(
                "{WORKER_SUBCOMMAND} needs <addr> <shard_id> <speedup> <spec-json>, got {} args",
                args.len()
            ),
        });
    };
    let shard_id: u32 = shard_id.parse().map_err(|e| ServeError::Config {
        detail: format!("bad shard id {shard_id:?}: {e}"),
    })?;
    let speedup: f64 = speedup.parse().map_err(|e| ServeError::Config {
        detail: format!("bad speedup {speedup:?}: {e}"),
    })?;
    shard_worker_main(addr, shard_id, speedup, spec_json)
}

/// The argv that re-invokes the current executable as a fabric worker.
///
/// # Errors
///
/// Fails if the current executable path cannot be resolved.
pub fn self_worker_argv() -> Result<Vec<String>, ServeError> {
    let exe = std::env::current_exe().map_err(ServeError::from_io("resolve current exe"))?;
    Ok(vec![
        exe.to_string_lossy().into_owned(),
        WORKER_SUBCOMMAND.to_string(),
    ])
}

/// One measured serving side (in-process or fabric).
#[derive(Debug, Clone, Serialize)]
pub struct ThroughputPoint {
    /// Wall-clock seconds from the first measured send to the last
    /// response (warmup excluded).
    pub wall_s: f64,
    /// Achieved rate in simulated time: requests / (wall × speedup).
    pub virtual_rps: f64,
    /// The side's final metrics snapshot.
    pub metrics: MetricsSnapshot,
}

/// Full result of the fabric experiment.
#[derive(Debug, Clone, Serialize)]
pub struct FabricBenchResult {
    /// Shard workers (processes on the real side, simulated on the DES side).
    pub num_shards: usize,
    /// Measured requests per side.
    pub num_requests: usize,
    /// Clock acceleration both real sides ran under.
    pub speedup: f64,
    /// Single-request service time (simulated seconds).
    pub single_request_s: f64,
    /// Measured loopback RTT at the small calibration frame (64 B).
    pub rtt_small_s: f64,
    /// Measured loopback RTT at the large calibration frame (64 KiB).
    pub rtt_large_s: f64,
    /// The affine network model fitted from the two RTTs.
    pub net: NetworkModel,
    /// The in-process reactor ([`Runtime::serve`]).
    pub in_process: ThroughputPoint,
    /// The multi-process fabric ([`Runtime::serve_fabric`]).
    pub fabric: ThroughputPoint,
    /// `fabric.virtual_rps / in_process.virtual_rps` — the throughput
    /// cost of the process boundary at this service time.
    pub fabric_vs_in_process: f64,
    /// Fabric DES achieved rate with the calibrated network model.
    pub des_rps: f64,
    /// Fabric DES achieved rate with a free network (degenerates to the
    /// in-process DES; the spread to `des_rps` is the modeled net share).
    pub des_free_rps: f64,
    /// `fabric.virtual_rps / des_rps` — the residual RT/DES gap across
    /// the process boundary.
    pub rt_des_gap: f64,
}

fn bench_runtime(queue_capacity: usize) -> Result<Arc<Runtime>, ServeError> {
    let mut platform = PlatformConfig::upmem();
    platform.num_pes = 64;
    let mut cfg = ServeConfig::example(); // max_batch 4, max_wait 4 ms
    cfg.num_shards = NUM_SHARDS;
    cfg.queue_capacity = queue_capacity;
    cfg.deadline_s = f64::INFINITY;
    Ok(Arc::new(Runtime::new(
        platform,
        TransformerShape::tiny(),
        cfg,
    )?))
}

fn bench_tables() -> Vec<(String, u64)> {
    (0..NUM_SHARDS)
        .map(|i| (format!("t-{i}"), 0xFA0 + i as u64))
        .collect()
}

/// The per-query route cycle: every `tables.len() + 1`-th query takes the
/// default route (first table), the rest name a table explicitly.
fn route(tables: &[(String, u64)], k: usize) -> Option<&str> {
    match k % (tables.len() + 1) {
        0 => None,
        i => Some(tables[i - 1].0.as_str()),
    }
}

fn indices(rng: &mut DataRng, w: LutWorkload) -> Vec<u16> {
    (0..w.n * w.cb).map(|_| rng.index(w.ct) as u16).collect()
}

/// Sends `warmup` unmeasured queries (waiting for each — on the fabric
/// side this forces every table replica to load before the clock starts),
/// then pipelines `n` measured queries and drains all responses. Every
/// response must be a correct `Result`.
fn drive(
    addr: SocketAddr,
    w: LutWorkload,
    tables: &[(String, u64)],
    warmup: &[Option<&str>],
    n: usize,
) -> Result<f64, ServeError> {
    let mut client = LineClient::connect(addr)?;
    let mut rng = DataRng::new(0xD21BE);
    for (k, table) in warmup.iter().enumerate() {
        client.send_to(&format!("warm-{k}"), &indices(&mut rng, w), *table)?;
        expect_correct(client.recv()?)?;
    }
    let started = Instant::now();
    for k in 0..n {
        client.send_to(&format!("q-{k}"), &indices(&mut rng, w), route(tables, k))?;
    }
    for _ in 0..n {
        expect_correct(client.recv()?)?;
    }
    Ok(started.elapsed().as_secs_f64())
}

fn expect_correct(msg: ServerMsg) -> Result<(), ServeError> {
    match msg {
        ServerMsg::Result { correct: true, .. } => Ok(()),
        ServerMsg::Result { tag, .. } => Err(ServeError::Io {
            detail: format!("{tag}: PIM execution mismatched the host"),
        }),
        ServerMsg::Error { tag, kind } => Err(ServeError::Io {
            detail: format!("{tag}: refused with {kind:?}"),
        }),
    }
}

/// Achieved rate of the fabric DES: the same burst of `n` queries through
/// [`FabricServerLoop`] under [`SimPoller`], with [`SimShardEngine`]
/// pricing both socket crossings of every round trip with `net`. Returns
/// requests per simulated second over the burst's makespan.
fn des_rate(
    rt: &Runtime,
    tables: &[(String, u64)],
    net: NetworkModel,
    n: usize,
) -> Result<f64, ServeError> {
    let arrive_s = 0.1;
    let clock = Arc::new(VirtualClock::new());
    let mut poller = SimPoller::new(Arc::clone(&clock));
    let metrics = Arc::new(Metrics::new(rt.config().policy.max_batch));
    for s in 0..NUM_SHARDS as u32 {
        let conn = poller.connect_at(0.0);
        poller.send_at(0.0, conn, Frame::Hello { shard_id: s }.encode()?);
    }
    let client = poller.connect_at(0.0);
    let w = rt.replica().workload();
    let mut rng = DataRng::new(0xD21BE);
    for k in 0..n {
        poller.send_at(
            arrive_s,
            client,
            codec::encode_query_for(&format!("q-{k}"), &indices(&mut rng, w), route(tables, k)),
        );
    }
    // Hang up just after the burst: the final-drain contract still
    // completes everything, and the virtual clock then stops at the last
    // completion instead of a scripted close far in the future.
    poller.close_at(arrive_s + 1e-4, client);

    let mut engine = SimShardEngine::new(rt, poller.handle(), 0.01).with_network(net);
    let mut fabric = FabricConfig::example();
    fabric.num_shards = NUM_SHARDS;
    let clock_dyn: Arc<dyn Clock> = Arc::clone(&clock) as Arc<dyn Clock>;
    let mut server = FabricServerLoop::new(rt, fabric, tables, clock_dyn, Arc::clone(&metrics))?;
    server.run(&mut poller, &mut engine)?;

    let snap = metrics.snapshot_with_reactor(poller.stats().snapshot());
    if snap.completed as usize != n {
        return Err(ServeError::Io {
            detail: format!("fabric DES completed {}/{n} requests", snap.completed),
        });
    }
    let makespan = (clock.now() - arrive_s).max(f64::MIN_POSITIVE);
    Ok(n as f64 / makespan)
}

/// Runs the experiment: calibrates the network model from `rtt_iters`
/// loopback round trips at two frame sizes, measures `num_requests`
/// pipelined queries through the in-process reactor and through
/// `num_shards` real worker processes (spawned with `worker_argv`), and
/// runs the calibrated fabric DES over the same burst.
///
/// # Errors
///
/// Propagates runtime, fabric, and calibration errors; any refused or
/// incorrect response is an error (this load must not shed).
pub fn run(
    num_requests: usize,
    rtt_iters: usize,
    worker_argv: Vec<String>,
) -> Result<FabricBenchResult, ServeError> {
    let rt = bench_runtime(num_requests + 16)?;
    let w = rt.replica().workload();
    let tables = bench_tables();
    let single = rt.service_model().batch_service_s(1)?;
    // ~0.5 ms of wall time per single-request service keeps both measured
    // sides well under a second without drowning in scheduler noise.
    let speedup = (single / 0.5e-3).max(1.0);

    let rtt_small = measure_loopback_rtt(64, rtt_iters)?;
    let rtt_large = measure_loopback_rtt(64 * 1024, rtt_iters)?;
    let net = NetworkModel::calibrate((64, rtt_small), (64 * 1024, rtt_large))
        .map_err(ServeError::from)?;
    // Measured RTTs are real time; the DES runs in simulated time, so the
    // model crosses the clock acceleration with the rest of the run.
    let net_virtual = NetworkModel {
        link_latency_s: net.link_latency_s * speedup,
        per_byte_s: net.per_byte_s * speedup,
    };

    // In-process side: the reactor executes batches on worker threads.
    let in_process = {
        let listener =
            TcpListener::bind("127.0.0.1:0").map_err(ServeError::from_io("bind in-process"))?;
        let handle = rt.serve(listener, speedup)?;
        let wall_s = drive(handle.addr(), w, &tables, &[None, None], num_requests)?;
        let metrics = handle.shutdown()?;
        ThroughputPoint {
            wall_s,
            virtual_rps: num_requests as f64 / (wall_s * speedup),
            metrics,
        }
    };

    // Fabric side: the same load over real worker processes. One warmup
    // query per table forces every replica to load before timing starts.
    let fabric = {
        let mut cfg = FabricConfig::example();
        cfg.num_shards = NUM_SHARDS;
        // Deaths are EOF-detected; the huge *virtual* timeout keeps the
        // accelerated clock from expiring slow-but-alive workers.
        cfg.hello_timeout_s = 1e6;
        let listener =
            TcpListener::bind("127.0.0.1:0").map_err(ServeError::from_io("bind fabric"))?;
        let handle = rt.serve_fabric(listener, speedup, cfg, tables.clone(), worker_argv)?;
        let warmup: Vec<Option<&str>> = tables.iter().map(|(n, _)| Some(n.as_str())).collect();
        let wall_s = drive(handle.addr(), w, &tables, &warmup, num_requests)?;
        let metrics = handle.shutdown()?;
        ThroughputPoint {
            wall_s,
            virtual_rps: num_requests as f64 / (wall_s * speedup),
            metrics,
        }
    };

    let des_rps = des_rate(&rt, &tables, net_virtual, num_requests)?;
    let des_free_rps = des_rate(&rt, &tables, NetworkModel::zero(), num_requests)?;

    Ok(FabricBenchResult {
        num_shards: NUM_SHARDS,
        num_requests,
        speedup,
        single_request_s: single,
        rtt_small_s: rtt_small,
        rtt_large_s: rtt_large,
        net,
        fabric_vs_in_process: fabric.virtual_rps / in_process.virtual_rps.max(f64::MIN_POSITIVE),
        rt_des_gap: fabric.virtual_rps / des_rps.max(f64::MIN_POSITIVE),
        in_process,
        fabric,
        des_rps,
        des_free_rps,
    })
}

/// Renders the comparison.
pub fn render(r: &FabricBenchResult) -> String {
    let mut t = TextTable::new(vec![
        "Side",
        "Wall (s)",
        "Virtual rps",
        "Mean batch",
        "Batches",
    ]);
    let mut row = |name: &str, p: &ThroughputPoint| {
        t.row(vec![
            name.to_string(),
            format!("{:.3}", p.wall_s),
            format!("{:.2}", p.virtual_rps),
            format!("{:.1}", p.metrics.mean_batch),
            format!("{}", p.metrics.batches),
        ]);
    };
    row("in-process", &r.in_process);
    row("fabric", &r.fabric);
    format!(
        "Extension — distributed shard fabric: {} worker processes vs the in-process reactor\n\
         {} pipelined requests; single-request execution = {:.2} s; clock speedup = {:.0}x\n\
         calibrated link: {:.1} us + {:.3} ns/B one-way (loopback RTT {:.1} us @ 64 B, {:.1} us @ 64 KiB)\n\n\
         {}\n\
         fabric / in-process = {:.2}x\n\
         fabric DES: {:.2} rps calibrated net, {:.2} rps free net; measured RT/DES = {:.2}x",
        r.num_shards,
        r.num_requests,
        r.single_request_s,
        r.speedup,
        r.net.link_latency_s * 1e6,
        r.net.per_byte_s * 1e9,
        r.rtt_small_s * 1e6,
        r.rtt_large_s * 1e6,
        t.render(),
        r.fabric_vs_in_process,
        r.des_rps,
        r.des_free_rps,
        r.rt_des_gap,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn des_side_completes_and_prices_the_network() {
        let rt = bench_runtime(64).unwrap();
        let tables = bench_tables();
        let free = des_rate(&rt, &tables, NetworkModel::zero(), 24).unwrap();
        let slow = NetworkModel {
            link_latency_s: 0.05,
            per_byte_s: 1e-6,
        };
        let priced = des_rate(&rt, &tables, slow, 24).unwrap();
        assert!(free > 0.0 && priced > 0.0);
        assert!(
            priced < free,
            "a costly network must lower DES throughput: {priced} vs {free}"
        );
        // Determinism carries over from the fabric loop.
        let again = des_rate(&rt, &tables, slow, 24).unwrap();
        assert_eq!(priced.to_bits(), again.to_bits());
    }

    #[test]
    fn worker_entry_rejects_malformed_argv() {
        assert!(worker_entry(&["only-three".into(), "args".into(), "here".into()]).is_err());
        let bad_id = [
            "127.0.0.1:1".to_string(),
            "not-a-number".to_string(),
            "1.0".to_string(),
            "{}".to_string(),
        ];
        assert!(worker_entry(&bad_id).is_err());
        let bad_speedup = [
            "127.0.0.1:1".to_string(),
            "0".to_string(),
            "fast".to_string(),
            "{}".to_string(),
        ];
        assert!(worker_entry(&bad_speedup).is_err());
    }

    #[test]
    fn render_shows_both_sides_and_the_gap() {
        let point = |wall_s: f64, rps: f64| ThroughputPoint {
            wall_s,
            virtual_rps: rps,
            metrics: Metrics::new(4).snapshot(),
        };
        let r = FabricBenchResult {
            num_shards: 2,
            num_requests: 240,
            speedup: 100.0,
            single_request_s: 0.05,
            rtt_small_s: 40e-6,
            rtt_large_s: 120e-6,
            net: NetworkModel {
                link_latency_s: 15e-6,
                per_byte_s: 0.6e-9,
            },
            in_process: point(0.4, 6.0),
            fabric: point(0.5, 4.8),
            fabric_vs_in_process: 0.8,
            des_rps: 5.0,
            des_free_rps: 5.5,
            rt_des_gap: 0.96,
        };
        let s = render(&r);
        assert!(s.contains("in-process"));
        assert!(s.contains("fabric"));
        assert!(s.contains("RT/DES"));
        assert!(s.contains("0.80x"));
    }
}
