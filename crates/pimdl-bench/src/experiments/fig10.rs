//! Fig. 10 — end-to-end throughput and energy efficiency of DDR4-PIM-based
//! PIM-DL vs the CPU server and GEMM-based inference on PIM.
//!
//! Workloads (§6.3): BERT-base/large at batch 64 × seq 512; ViT-huge at
//! batch 128 × seq 264 (257 padded to 264 in the paper; we use 264).

use serde::Serialize;

use pimdl_engine::baseline::{host_inference, pim_gemm_inference, HostModel};
use pimdl_engine::pipeline::{PimDlEngine, ServingConfig};
use pimdl_engine::shapes::TransformerShape;
use pimdl_sim::PlatformConfig;

use crate::experiments::geomean;
use crate::report::{fmt_secs, TextTable};

/// Latency and energy of one system on one model.
#[derive(Debug, Clone, Serialize)]
pub struct SystemPoint {
    /// System name.
    pub system: String,
    /// End-to-end latency (s).
    pub latency_s: f64,
    /// Energy (J).
    pub energy_j: f64,
    /// Speedup vs the CPU FP32 baseline.
    pub speedup_vs_fp32: f64,
    /// Energy efficiency vs the CPU FP32 baseline.
    pub energy_eff_vs_fp32: f64,
}

/// One model's Fig. 10 column group.
#[derive(Debug, Clone, Serialize)]
pub struct ModelPoints {
    /// Model name.
    pub model: String,
    /// Batch size used.
    pub batch: usize,
    /// Sequence length used.
    pub seq_len: usize,
    /// Per-system results.
    pub systems: Vec<SystemPoint>,
}

/// Full Fig. 10 result.
#[derive(Debug, Clone, Serialize)]
pub struct Fig10Result {
    /// Per-model column groups.
    pub models: Vec<ModelPoints>,
    /// Geomean PIM-DL (V=4/CT=16) speedup vs CPU FP32 (paper: 3.07×).
    pub geomean_v4_vs_fp32: f64,
    /// Geomean PIM-DL (V=4/CT=16) speedup vs CPU INT8 (paper: 1.71×).
    pub geomean_v4_vs_int8: f64,
    /// Geomean PIM-DL (V=4/CT=16) speedup vs GEMM-on-PIM (paper: 18.91×).
    pub geomean_v4_vs_pim_gemm: f64,
}

fn workloads() -> Vec<(TransformerShape, usize, usize)> {
    vec![
        (TransformerShape::bert_base(), 64, 512),
        (TransformerShape::bert_large(), 64, 512),
        (TransformerShape::vit_huge(), 128, 264),
    ]
}

/// Runs Fig. 10 on the UPMEM platform.
///
/// # Errors
///
/// Propagates engine errors.
pub fn run() -> Result<Fig10Result, pimdl_engine::EngineError> {
    let platform = PlatformConfig::upmem();
    let engine = PimDlEngine::new(platform.clone());
    let cpu_fp32 = HostModel::cpu_fp32();
    let cpu_int8 = HostModel::cpu_int8();

    let mut models = Vec::new();
    let mut v4_vs_fp32 = Vec::new();
    let mut v4_vs_int8 = Vec::new();
    let mut v4_vs_gemm = Vec::new();
    for (shape, batch, seq_len) in workloads() {
        let fp32 = host_inference(&cpu_fp32, &shape, batch, seq_len, 4);
        let fp32_s = fp32.total_s();
        let fp32_j = fp32_s * cpu_fp32.power_w;

        let int8 = host_inference(&cpu_int8, &shape, batch, seq_len, 1);
        let int8_s = int8.total_s();
        let int8_j = int8_s * cpu_int8.power_w;

        let gemm = pim_gemm_inference(&platform, &shape, batch, seq_len);
        let gemm_s = gemm.total_s();
        let gemm_j = gemm_s * (platform.pim_power_w + engine.host().power_w);

        let v2 = engine.serve(
            &shape,
            &ServingConfig {
                batch,
                seq_len,
                v: 2,
                ct: 16,
            },
        )?;
        let v4 = engine.serve(
            &shape,
            &ServingConfig {
                batch,
                seq_len,
                v: 4,
                ct: 16,
            },
        )?;

        let point = |system: &str, latency_s: f64, energy_j: f64| SystemPoint {
            system: system.to_string(),
            latency_s,
            energy_j,
            speedup_vs_fp32: fp32_s / latency_s,
            energy_eff_vs_fp32: fp32_j / energy_j,
        };
        let systems = vec![
            point("CPU FP32", fp32_s, fp32_j),
            point("CPU INT8", int8_s, int8_j),
            point("PIM (GEMM)", gemm_s, gemm_j),
            point("PIM-DL V=2/CT=16", v2.total_s, v2.energy.total_j()),
            point("PIM-DL V=4/CT=16", v4.total_s, v4.energy.total_j()),
        ];
        v4_vs_fp32.push(fp32_s / v4.total_s);
        v4_vs_int8.push(int8_s / v4.total_s);
        v4_vs_gemm.push(gemm_s / v4.total_s);
        models.push(ModelPoints {
            model: shape.name.clone(),
            batch,
            seq_len,
            systems,
        });
    }
    Ok(Fig10Result {
        models,
        geomean_v4_vs_fp32: geomean(&v4_vs_fp32),
        geomean_v4_vs_int8: geomean(&v4_vs_int8),
        geomean_v4_vs_pim_gemm: geomean(&v4_vs_gemm),
    })
}

/// Renders the Fig. 10 table.
pub fn render(result: &Fig10Result) -> String {
    let mut t = TextTable::new(vec![
        "Model",
        "System",
        "Latency",
        "Speedup vs FP32",
        "Energy (J)",
        "Energy eff vs FP32",
    ]);
    for m in &result.models {
        for s in &m.systems {
            t.row(vec![
                m.model.clone(),
                s.system.clone(),
                fmt_secs(s.latency_s),
                format!("{:.2}x", s.speedup_vs_fp32),
                format!("{:.1}", s.energy_j),
                format!("{:.2}x", s.energy_eff_vs_fp32),
            ]);
        }
    }
    format!(
        "Fig. 10 — End-to-end performance & energy (UPMEM DDR4-PIM)\n\
         Paper geomeans for PIM-DL V=4/CT=16: 3.07x vs CPU FP32, 1.71x vs CPU INT8, 18.91x vs PIM-GEMM\n\
         Measured geomeans: {:.2}x vs FP32, {:.2}x vs INT8, {:.2}x vs PIM-GEMM\n\n{}",
        result.geomean_v4_vs_fp32,
        result.geomean_v4_vs_int8,
        result.geomean_v4_vs_pim_gemm,
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_list_matches_paper() {
        let w = workloads();
        assert_eq!(w.len(), 3);
        assert_eq!(w[0].1, 64);
        assert_eq!(w[2].1, 128);
        assert_eq!(w[2].2, 264);
    }

    // The full run() is exercised by the reproduce binary and integration
    // tests (it auto-tunes twelve full-scale workloads); here we check a
    // reduced version end-to-end.
    #[test]
    fn reduced_fig10_shape_holds() {
        let platform = PlatformConfig::upmem();
        let engine = PimDlEngine::new(platform.clone());
        let shape = TransformerShape::bert_base();
        let (batch, seq) = (16, 128);
        let fp32 = host_inference(&HostModel::cpu_fp32(), &shape, batch, seq, 4).total_s();
        let int8 = host_inference(&HostModel::cpu_int8(), &shape, batch, seq, 1).total_s();
        let gemm = pim_gemm_inference(&platform, &shape, batch, seq).total_s();
        let v4 = engine
            .serve(
                &shape,
                &ServingConfig {
                    batch,
                    seq_len: seq,
                    v: 4,
                    ct: 16,
                },
            )
            .unwrap()
            .total_s;
        // Ordering: PIM-GEMM is by far the slowest; PIM-DL beats FP32.
        assert!(gemm > fp32, "gemm {gemm} fp32 {fp32}");
        assert!(v4 < fp32, "v4 {v4} fp32 {fp32}");
        assert!(int8 < fp32);
        assert!(gemm / v4 > 8.0, "gemm/v4 = {}", gemm / v4);
    }
}
