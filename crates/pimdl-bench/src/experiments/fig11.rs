//! Fig. 11 — performance analysis on UPMEM:
//! (a) inference latency breakdown (LUT / CCS / other),
//! (b) layer-wise speedup of each converted linear operator over CPU INT8
//! GEMM.

use serde::Serialize;

use pimdl_engine::baseline::HostModel;
use pimdl_engine::pipeline::{PimDlEngine, ServingConfig};
use pimdl_engine::shapes::TransformerShape;
use pimdl_sim::PlatformConfig;

use crate::experiments::geomean;
use crate::report::TextTable;

/// Latency-breakdown fractions for one model (panel a).
#[derive(Debug, Clone, Serialize)]
pub struct BreakdownRow {
    /// Model name.
    pub model: String,
    /// LUT operator fraction of total latency.
    pub lut_frac: f64,
    /// CCS operator fraction.
    pub ccs_frac: f64,
    /// Everything else (attention + element-wise).
    pub other_frac: f64,
}

/// Layer-wise comparison for one operator of one model (panel b).
#[derive(Debug, Clone, Serialize)]
pub struct LayerwiseRow {
    /// Model name.
    pub model: String,
    /// Operator name (QKV / O / FFN1 / FFN2).
    pub operator: String,
    /// PIM-DL time for this operator across all layers (CCS + LUT), s.
    pub pimdl_s: f64,
    /// CPU INT8 GEMM time for the same operator, s.
    pub cpu_int8_s: f64,
    /// Speedup.
    pub speedup: f64,
}

/// Full Fig. 11 result.
#[derive(Debug, Clone, Serialize)]
pub struct Fig11Result {
    /// Panel (a) rows.
    pub breakdown: Vec<BreakdownRow>,
    /// Panel (b) rows.
    pub layerwise: Vec<LayerwiseRow>,
    /// Geomean layer-wise speedup (paper: 1.81×).
    pub geomean_layerwise: f64,
}

/// Runs Fig. 11 with explicit workload sizes (the paper uses batch 64 ×
/// seq 512 / V = 4 / CT = 16; smaller sizes give the same shape faster).
///
/// # Errors
///
/// Propagates engine errors.
pub fn run(batch: usize, seq_len: usize) -> Result<Fig11Result, pimdl_engine::EngineError> {
    let engine = PimDlEngine::new(PlatformConfig::upmem());
    let cpu_int8 = HostModel::cpu_int8();
    let cfg = ServingConfig {
        batch,
        seq_len,
        v: 4,
        ct: 16,
    };
    let n = batch * seq_len;

    let mut breakdown = Vec::new();
    let mut layerwise = Vec::new();
    let mut speedups = Vec::new();
    for shape in TransformerShape::evaluation_models() {
        let report = engine.serve(&shape, &cfg)?;
        breakdown.push(BreakdownRow {
            model: shape.name.clone(),
            lut_frac: report.lut_s / report.total_s,
            ccs_frac: report.ccs_s / report.total_s,
            other_frac: (report.attention_s + report.other_s) / report.total_s,
        });
        for lc in &report.per_linear {
            let op = shape
                .linear_ops()
                .into_iter()
                .find(|o| o.name == lc.name)
                .expect("operator name");
            let flops = 2 * n as u64 * op.in_dim as u64 * op.out_dim as u64;
            let bytes = (op.in_dim * op.out_dim + n * (op.in_dim + op.out_dim)) as u64;
            let cpu_s = cpu_int8.gemm_time_s(flops, bytes) * shape.layers as f64;
            let pimdl_s = lc.lut_s + lc.ccs_s;
            let speedup = cpu_s / pimdl_s;
            speedups.push(speedup);
            layerwise.push(LayerwiseRow {
                model: shape.name.clone(),
                operator: lc.name.clone(),
                pimdl_s,
                cpu_int8_s: cpu_s,
                speedup,
            });
        }
    }
    Ok(Fig11Result {
        breakdown,
        layerwise,
        geomean_layerwise: geomean(&speedups),
    })
}

/// Renders Fig. 11.
pub fn render(result: &Fig11Result) -> String {
    let mut a = TextTable::new(vec!["Model", "LUT %", "CCS %", "Other %"]);
    for r in &result.breakdown {
        a.row(vec![
            r.model.clone(),
            format!("{:.1}", 100.0 * r.lut_frac),
            format!("{:.1}", 100.0 * r.ccs_frac),
            format!("{:.1}", 100.0 * r.other_frac),
        ]);
    }
    let mut b = TextTable::new(vec!["Model", "Op", "PIM-DL (s)", "CPU INT8 (s)", "Speedup"]);
    for r in &result.layerwise {
        b.row(vec![
            r.model.clone(),
            r.operator.clone(),
            format!("{:.3}", r.pimdl_s),
            format!("{:.3}", r.cpu_int8_s),
            format!("{:.2}x", r.speedup),
        ]);
    }
    format!(
        "Fig. 11-(a) — Inference latency breakdown (paper: LUT-NN inference 73.7-79.4% of total)\n\n{}\n\
         Fig. 11-(b) — Layer-wise comparison vs CPU INT8 (paper: 1.61x/0.99x/1.78x/2.38x for QKV/O/FFN1/FFN2, geomean 1.81x)\n\
         Measured geomean: {:.2}x\n\n{}",
        a.render(),
        result.geomean_layerwise,
        b.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduced_run_has_expected_structure() {
        let r = run(8, 64).unwrap();
        assert_eq!(r.breakdown.len(), 3);
        assert_eq!(r.layerwise.len(), 12);
        for b in &r.breakdown {
            let sum = b.lut_frac + b.ccs_frac + b.other_frac;
            assert!((sum - 1.0).abs() < 1e-9, "{}: {sum}", b.model);
            assert!(b.lut_frac > 0.0);
        }
        assert!(r.geomean_layerwise > 0.0);
    }

    #[test]
    fn ffn2_fastest_relative_to_cpu() {
        // Paper: FFN2 gains the most because it has the largest GEMM inner
        // dim (the LUT cost scales with CB = in/V while GEMM scales with
        // in).
        let r = run(16, 64).unwrap();
        let bert: Vec<&LayerwiseRow> = r
            .layerwise
            .iter()
            .filter(|x| x.model == "Bert-Base")
            .collect();
        let ffn2 = bert.iter().find(|x| x.operator == "FFN2").unwrap();
        let o = bert.iter().find(|x| x.operator == "O").unwrap();
        assert!(
            ffn2.speedup > o.speedup,
            "FFN2 {} should beat O {}",
            ffn2.speedup,
            o.speedup
        );
    }

    #[test]
    fn render_contains_panels() {
        let r = run(4, 32).unwrap();
        let s = render(&r);
        assert!(s.contains("Fig. 11-(a)"));
        assert!(s.contains("Fig. 11-(b)"));
        assert!(s.contains("FFN2"));
    }
}
