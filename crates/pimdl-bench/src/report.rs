//! Text-table rendering and JSON artifact output for experiment results.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

use serde::Serialize;

/// A simple column-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given header.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a data row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width {} != header width {}",
            cells.len(),
            self.header.len()
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (c, cell) in row.iter().enumerate().take(cols) {
                widths[c] = widths[c].max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |out: &mut String, cells: &[String]| {
            for (c, cell) in cells.iter().enumerate() {
                if c > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{:<width$}", cell, width = widths[c]);
            }
            out.push('\n');
        };
        render_row(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            render_row(&mut out, row);
        }
        out
    }
}

/// Formats a float with 2–3 significant decimals for table cells.
pub fn fmt_f(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 100.0 {
        format!("{v:.1}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

/// Formats seconds with an adaptive unit.
pub fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.2} s")
    } else if s >= 1e-3 {
        format!("{:.2} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.2} us", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// Writes a serializable result as pretty JSON under `dir/name.json`.
///
/// # Errors
///
/// Returns an I/O error if the directory cannot be created or the file
/// cannot be written.
pub fn write_json<T: Serialize>(dir: &Path, name: &str, value: &T) -> std::io::Result<()> {
    fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.json"));
    let body = serde_json::to_string_pretty(value)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    fs::write(path, body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let mut t = TextTable::new(vec!["a", "long-header"]);
        t.row(vec!["xxxxx", "1"]);
        t.row(vec!["y", "2"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a      "));
        assert!(lines[2].starts_with("xxxxx"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn ragged_row_panics() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["only-one"]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f(0.0), "0");
        assert_eq!(fmt_f(1234.5), "1234.5");
        assert_eq!(fmt_f(1.23456), "1.23");
        assert_eq!(fmt_f(0.001234), "0.0012");
    }

    #[test]
    fn seconds_formatting() {
        assert_eq!(fmt_secs(2.5), "2.50 s");
        assert_eq!(fmt_secs(0.0025), "2.50 ms");
        assert_eq!(fmt_secs(2.5e-6), "2.50 us");
        assert_eq!(fmt_secs(2.5e-9), "2.5 ns");
    }

    #[test]
    fn json_roundtrip() {
        let dir = std::env::temp_dir().join("pimdl_bench_test_json");
        write_json(&dir, "sample", &vec![1, 2, 3]).unwrap();
        let body = std::fs::read_to_string(dir.join("sample.json")).unwrap();
        assert!(body.contains('1'));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
