//! Measured companion to Fig. 3: wall-clock time of this repository's real
//! host kernels — dense GEMM vs the LUT-NN path (CCS + gather-accumulate) —
//! across the paper's `V` and `CT` sweeps.
//!
//! The analytical claim (3.66×–18.29× op reduction) should show up as a
//! wall-clock gap between the dense and LUT paths that widens with `V` and
//! narrows with `CT`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use pimdl_lutnn::kernels::lut_linear_fused;
use pimdl_lutnn::lut::{lut_linear, LutTable};
use pimdl_lutnn::pq::ProductQuantizer;
use pimdl_tensor::rng::DataRng;
use pimdl_tensor::{gemm, Matrix};

const DIM: usize = 256; // N = H = F (scaled-down Fig. 3 square workload)

fn setup(v: usize, ct: usize) -> (Matrix, Matrix, ProductQuantizer, LutTable) {
    let mut rng = DataRng::new(42);
    let calib = rng.normal_matrix(512, DIM, 0.0, 1.0);
    let weight = rng.normal_matrix(DIM, DIM, 0.0, 0.5);
    let pq = ProductQuantizer::fit(&calib, v, ct, 10, &mut rng).expect("fit");
    let lut = LutTable::build(&pq, &weight).expect("build");
    let x = rng.normal_matrix(DIM, DIM, 0.0, 1.0);
    (x, weight, pq, lut)
}

fn bench_gemm_vs_lut(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm_vs_lut");
    group.sample_size(10);

    let (x, weight, _, _) = setup(4, 16);
    group.bench_function("dense_gemm_f32", |b| {
        b.iter(|| gemm::matmul(black_box(&x), black_box(&weight)).expect("gemm"))
    });

    // INT8 GEMM (i32 accumulation) — the CPU INT8 baseline's arithmetic.
    let qx = pimdl_tensor::quant::QuantMatrix::quantize(&x);
    let qw = pimdl_tensor::quant::QuantMatrix::quantize(&weight);
    group.bench_function("dense_gemm_int8", |b| {
        b.iter(|| gemm::matmul_quant(black_box(&qx), black_box(&qw)).expect("gemm"))
    });

    // Fig. 3 left panel: V sweep at CT = 16.
    for v in [2usize, 4, 8, 16] {
        let (x, _, pq, lut) = setup(v, 16);
        group.bench_with_input(BenchmarkId::new("lut_v", v), &v, |b, _| {
            b.iter(|| lut_linear(black_box(&x), black_box(&pq), black_box(&lut)).expect("lut"))
        });
    }

    // Fig. 3 right panel: CT sweep at V = 4.
    for ct in [64usize, 32, 16, 8] {
        let (x, _, pq, lut) = setup(4, ct);
        group.bench_with_input(BenchmarkId::new("lut_ct", ct), &ct, |b, _| {
            b.iter(|| lut_linear(black_box(&x), black_box(&pq), black_box(&lut)).expect("lut"))
        });
    }

    // The fused production kernel on the same sweeps: single pass, no
    // materialized index matrix.
    for v in [2usize, 4, 8, 16] {
        let (x, _, pq, lut) = setup(v, 16);
        let cbs = pq.interleaved();
        group.bench_with_input(BenchmarkId::new("lut_fused_v", v), &v, |b, _| {
            b.iter(|| {
                lut_linear_fused(black_box(&x), black_box(&cbs), black_box(&lut)).expect("fused")
            })
        });
    }
    for ct in [64usize, 32, 16, 8] {
        let (x, _, pq, lut) = setup(4, ct);
        let cbs = pq.interleaved();
        group.bench_with_input(BenchmarkId::new("lut_fused_ct", ct), &ct, |b, _| {
            b.iter(|| {
                lut_linear_fused(black_box(&x), black_box(&cbs), black_box(&lut)).expect("fused")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_gemm_vs_lut);
criterion_main!(benches);
