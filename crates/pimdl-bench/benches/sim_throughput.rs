//! Measures the simulator itself: functional PE execution throughput and
//! pure cost-model evaluation rate (the quantity that bounds auto-tuner
//! search speed).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use pimdl_sim::cost::estimate_cost;
use pimdl_sim::exec::{run_lut_kernel, LutKernelData};
use pimdl_sim::interp::{interpret, PeOperands};
use pimdl_sim::isa::compile;
use pimdl_sim::mapping::{LoadScheme, MicroKernel};
use pimdl_sim::{LutWorkload, Mapping, PlatformConfig, TraversalOrder};
use pimdl_tensor::rng::DataRng;

fn operands(w: &LutWorkload, seed: u64) -> (Vec<u16>, Vec<i8>) {
    let mut rng = DataRng::new(seed);
    let indices: Vec<u16> = (0..w.n * w.cb).map(|_| rng.index(w.ct) as u16).collect();
    let table: Vec<i8> = (0..w.cb * w.ct * w.f)
        .map(|_| (rng.index(255) as i32 - 127) as i8)
        .collect();
    (indices, table)
}

fn bench_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_throughput");
    group.sample_size(10);

    let mut platform = PlatformConfig::upmem();
    platform.num_pes = 64;

    for n in [256usize, 1024] {
        let w = LutWorkload::new(n, 32, 16, 128).expect("shape");
        let mapping = Mapping {
            n_stile: n / 8,
            f_stile: 16,
            kernel: MicroKernel {
                n_mtile: 8,
                f_mtile: 8,
                cb_mtile: 8,
                traversal: TraversalOrder::Nfc,
                load_scheme: LoadScheme::FineGrain {
                    f_load: 8,
                    threads: 16,
                },
            },
        };
        let (indices, table) = operands(&w, 5);
        group.bench_with_input(BenchmarkId::new("functional_run", n), &n, |b, _| {
            b.iter(|| {
                run_lut_kernel(
                    black_box(&platform),
                    black_box(&w),
                    black_box(&mapping),
                    LutKernelData {
                        indices: &indices,
                        table: &table,
                        scale: 0.01,
                    },
                )
                .expect("run")
            })
        });
        group.bench_with_input(BenchmarkId::new("cost_estimate", n), &n, |b, _| {
            b.iter(|| estimate_cost(black_box(&platform), black_box(&w), black_box(&mapping)))
        });

        // One PE's compiled PIM binary, interpreted.
        let program = compile(&w, &mapping).expect("compile");
        let pe_indices: Vec<u16> = indices[..mapping.n_stile * w.cb].to_vec();
        let pe_lut: Vec<i8> = {
            let mut t = Vec::with_capacity(w.cb * w.ct * mapping.f_stile);
            for cb in 0..w.cb {
                for ct in 0..w.ct {
                    let base = (cb * w.ct + ct) * w.f;
                    t.extend_from_slice(&table[base..base + mapping.f_stile]);
                }
            }
            t
        };
        group.bench_with_input(BenchmarkId::new("interpret_pe", n), &n, |b, _| {
            b.iter(|| {
                interpret(
                    black_box(&program),
                    black_box(&platform),
                    PeOperands {
                        indices: &pe_indices,
                        lut: &pe_lut,
                        scale: 0.01,
                    },
                )
                .expect("interpret")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
