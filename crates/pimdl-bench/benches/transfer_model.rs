//! Ablation bench for limitation L1 (broadcast vs scatter host↔PIM
//! transfers): evaluates the transfer model across sizes and patterns, and
//! prints the modeled bandwidth table so the bench output documents the
//! broadcast advantage the sub-LUT partition exploits.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pimdl_sim::config::TransferPattern;
use pimdl_sim::PlatformConfig;

fn bench_transfer_model(c: &mut Criterion) {
    let platform = PlatformConfig::upmem();
    let t = platform.host_transfer;

    for size in [1024.0_f64, 64.0 * 1024.0, 4.0 * 1024.0 * 1024.0] {
        for (name, pattern) in [
            ("broadcast", TransferPattern::ToPimBroadcast),
            ("scatter", TransferPattern::ToPimDistinct),
            ("gather", TransferPattern::FromPim),
        ] {
            eprintln!(
                "transfer_model/{name} @ {:.0} KiB: {:.2} GB/s effective",
                size / 1024.0,
                t.effective_gbps(pattern, size)
            );
        }
    }

    let mut group = c.benchmark_group("transfer_model");
    group.bench_function("eval_rate", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 1..100u32 {
                let bytes = (i as f64) * 4096.0;
                acc += t.transfer_time_s(
                    black_box(TransferPattern::ToPimBroadcast),
                    bytes * 64.0,
                    bytes,
                );
            }
            acc
        })
    });
    group.finish();
}

criterion_group!(benches, bench_transfer_model);
criterion_main!(benches);
