//! Measures the offline conversion pipeline: k-means codebook fitting,
//! baseline soft-assignment calibration, and eLUT-NN calibration on a small
//! transformer (the paper's conversion front-end cost).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pimdl_lutnn::calibrate::{
    calibrate_elutnn, calibrate_lutnn_baseline, init_quantizers, BaselineLutNnConfig,
    CalibrationConfig, CentroidInit,
};
use pimdl_nn::data::{nlp_dataset, NlpTask};
use pimdl_nn::transformer::{InputKind, ModelConfig, TransformerClassifier};
use pimdl_tensor::rng::DataRng;

fn setup() -> (TransformerClassifier, pimdl_nn::data::Dataset) {
    let mut rng = DataRng::new(5);
    let ds = nlp_dataset(NlpTask::Majority, 48, 16, 8, &mut rng);
    let cfg = ModelConfig {
        input: InputKind::Tokens { vocab: 16 },
        hidden: 32,
        heads: 4,
        layers: 2,
        ffn_dim: 64,
        max_seq: 8,
        classes: 3,
    };
    (TransformerClassifier::new(&cfg, &mut rng), ds)
}

fn bench_calibration(c: &mut Criterion) {
    let mut group = c.benchmark_group("calibration");
    group.sample_size(10);
    let (model, ds) = setup();

    group.bench_function("kmeans_init", |b| {
        b.iter(|| {
            let mut rng = DataRng::new(6);
            init_quantizers(
                black_box(&model),
                &ds.inputs,
                4,
                8,
                CentroidInit::KMeans,
                10,
                2048,
                &mut rng,
            )
            .expect("init")
        })
    });

    let ecfg = CalibrationConfig {
        v: 4,
        ct: 8,
        init: CentroidInit::Random,
        kmeans_iters: 0,
        beta: 1e-3,
        lr: 2e-3,
        epochs: 1,
        batch_size: 8,
        seed: 7,
        max_activation_rows: 2048,
    };
    group.bench_function("elutnn_epoch", |b| {
        b.iter(|| calibrate_elutnn(black_box(&model), black_box(&ds), &ecfg).expect("calib"))
    });

    let bcfg = BaselineLutNnConfig {
        v: 4,
        ct: 8,
        init: CentroidInit::Random,
        kmeans_iters: 0,
        tau: 1.0,
        gumbel_noise: true,
        lr: 2e-3,
        epochs: 1,
        batch_size: 8,
        seed: 7,
        max_activation_rows: 2048,
    };
    group.bench_function("soft_baseline_epoch", |b| {
        b.iter(|| {
            calibrate_lutnn_baseline(black_box(&model), black_box(&ds), &bcfg).expect("calib")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_calibration);
criterion_main!(benches);
