//! Measures codebook fitting: raw k-means and full per-layer product
//! quantizer fits (the offline LUT-NN conversion cost, §3.1 step ❶).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use pimdl_lutnn::kmeans::kmeans;
use pimdl_lutnn::pq::ProductQuantizer;
use pimdl_tensor::rng::DataRng;

fn bench_kmeans(c: &mut Criterion) {
    let mut group = c.benchmark_group("kmeans");
    group.sample_size(10);

    for n in [256usize, 1024] {
        let mut rng = DataRng::new(1);
        let points = rng.normal_matrix(n, 4, 0.0, 1.0);
        group.bench_with_input(BenchmarkId::new("lloyd_k16", n), &n, |b, _| {
            b.iter(|| kmeans(black_box(&points), 16, 15, &mut DataRng::new(2)).expect("kmeans"))
        });
    }

    for ct in [8usize, 16, 64] {
        let mut rng = DataRng::new(3);
        let acts = rng.normal_matrix(1024, 128, 0.0, 1.0);
        group.bench_with_input(BenchmarkId::new("pq_fit_ct", ct), &ct, |b, _| {
            b.iter(|| {
                ProductQuantizer::fit(black_box(&acts), 4, ct, 10, &mut DataRng::new(4))
                    .expect("fit")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kmeans);
criterion_main!(benches);
