//! Measures Algorithm 1 itself: the paper reports ~1 s per model of offline
//! auto-tuning on the Xeon host (§5.3). Here we time a single full-scale
//! LUT workload search and a complete four-operator model tune.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pimdl_engine::shapes::TransformerShape;
use pimdl_sim::{LutWorkload, PlatformConfig};
use pimdl_tuner::{tune_with_options, SearchStrategy, TuneOptions};

fn bench_autotuner(c: &mut Criterion) {
    let mut group = c.benchmark_group("autotuner");
    group.sample_size(10);

    let platform = PlatformConfig::upmem();
    let options = TuneOptions::default();
    let exhaustive = TuneOptions {
        parallel: true,
        max_kernels_per_pair: 20_000,
        strategy: SearchStrategy::Exhaustive,
    };

    // One full-scale workload: BERT-large FFN1 (the Fig. 13 case study),
    // searched both ways — the branch-and-bound speedup headline.
    let ffn1 = LutWorkload::new(32768, 256, 16, 4096).expect("shape");
    group.bench_function("bert_large_ffn1_bnb", |b| {
        b.iter(|| tune_with_options(black_box(&platform), black_box(&ffn1), options).expect("tune"))
    });
    group.bench_function("bert_large_ffn1_exhaustive", |b| {
        b.iter(|| {
            tune_with_options(black_box(&platform), black_box(&ffn1), exhaustive).expect("tune")
        })
    });

    // A whole model's four operators (the "~1 s/model" claim).
    let shape = TransformerShape::bert_base();
    let n = 64 * 512;
    let workloads: Vec<LutWorkload> = shape
        .linear_ops()
        .iter()
        .map(|op| LutWorkload::new(n, op.in_dim / 4, 16, op.out_dim).expect("shape"))
        .collect();
    group.bench_function("bert_base_all_ops", |b| {
        b.iter(|| {
            for w in &workloads {
                tune_with_options(black_box(&platform), black_box(w), options).expect("tune");
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_autotuner);
criterion_main!(benches);
