//! Ablation bench for the three LUT load schemes (P4, Fig. 9 / Fig. 13
//! panels a–c): at a fixed sub-LUT partition and micro-kernel tiling, how
//! does each scheme's *simulated* latency compare, and how expensive is the
//! functional execution under each?

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pimdl_sim::cost::estimate_cost;
use pimdl_sim::exec::{run_lut_kernel, LutKernelData};
use pimdl_sim::mapping::MicroKernel;
use pimdl_sim::{LoadScheme, LutWorkload, Mapping, PlatformConfig, TraversalOrder};
use pimdl_tensor::rng::DataRng;

fn bench_load_schemes(c: &mut Criterion) {
    let mut group = c.benchmark_group("load_schemes");
    group.sample_size(10);

    let mut platform = PlatformConfig::upmem();
    platform.num_pes = 64;
    let w = LutWorkload::new(512, 32, 16, 128).expect("shape");
    let mut rng = DataRng::new(11);
    let indices: Vec<u16> = (0..w.n * w.cb).map(|_| rng.index(w.ct) as u16).collect();
    let table: Vec<i8> = (0..w.cb * w.ct * w.f)
        .map(|_| (rng.index(255) as i32 - 127) as i8)
        .collect();

    let schemes = [
        ("static", LoadScheme::Static),
        (
            "coarse",
            LoadScheme::CoarseGrain {
                cb_load: 4,
                f_load: 4,
            },
        ),
        (
            "fine",
            LoadScheme::FineGrain {
                f_load: 8,
                threads: 16,
            },
        ),
    ];
    for (name, scheme) in schemes {
        let mapping = Mapping {
            n_stile: 64,
            f_stile: 16,
            kernel: MicroKernel {
                n_mtile: 8,
                f_mtile: 8,
                cb_mtile: 8,
                traversal: TraversalOrder::Nfc,
                load_scheme: scheme,
            },
        };
        // Report the simulated latency once so bench output doubles as an
        // ablation table.
        let sim = estimate_cost(&platform, &w, &mapping).expect("cost");
        eprintln!(
            "load_schemes/{name}: simulated kernel latency = {:.3} ms (lut load {:.3} ms)",
            sim.time.total_s() * 1e3,
            sim.time.kernel_lut_s * 1e3
        );
        group.bench_function(name, |b| {
            b.iter(|| {
                run_lut_kernel(
                    black_box(&platform),
                    black_box(&w),
                    black_box(&mapping),
                    LutKernelData {
                        indices: &indices,
                        table: &table,
                        scale: 0.01,
                    },
                )
                .expect("run")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_load_schemes);
criterion_main!(benches);
