//! Measures the closest-centroid-search (CCS) operator: plain L2 search vs
//! the inner-product formulation the paper's host kernels use vs the
//! interleaved-layout kernel, plus the INT8 vs f32 gather on the LUT side
//! (the two halves of LUT-NN inference).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use pimdl_lutnn::lut::LutTable;
use pimdl_lutnn::pq::ProductQuantizer;
use pimdl_tensor::rng::DataRng;

fn bench_ccs(c: &mut Criterion) {
    let mut group = c.benchmark_group("ccs");
    group.sample_size(20);

    let mut rng = DataRng::new(7);
    let h = 256;
    let calib = rng.normal_matrix(512, h, 0.0, 1.0);
    let x = rng.normal_matrix(128, h, 0.0, 1.0);

    for ct in [8usize, 16, 64] {
        let pq = ProductQuantizer::fit(&calib, 4, ct, 10, &mut rng).expect("fit");
        group.bench_with_input(BenchmarkId::new("l2", ct), &ct, |b, _| {
            b.iter(|| pq.encode(black_box(&x)).expect("encode"))
        });
        group.bench_with_input(BenchmarkId::new("inner_product", ct), &ct, |b, _| {
            b.iter(|| pq.encode_via_inner_product(black_box(&x)).expect("encode"))
        });
        // The production layout: centroid-interleaved lanes + unrolled V.
        let cbs = pq.interleaved();
        group.bench_with_input(BenchmarkId::new("interleaved", ct), &ct, |b, _| {
            b.iter(|| cbs.encode(black_box(&x)).expect("encode"))
        });
    }

    // Gather side: f32 vs INT8 tables.
    let pq = ProductQuantizer::fit(&calib, 4, 16, 10, &mut rng).expect("fit");
    let weight = rng.normal_matrix(h, 256, 0.0, 0.5);
    let lut = LutTable::build(&pq, &weight).expect("build");
    let qlut = lut.quantize();
    let indices = pq.encode(&x).expect("encode");
    group.bench_function("lookup_f32", |b| {
        b.iter(|| lut.lookup(black_box(&indices)).expect("lookup"))
    });
    group.bench_function("lookup_int8", |b| {
        b.iter(|| qlut.lookup(black_box(&indices)).expect("lookup"))
    });
    group.finish();
}

criterion_group!(benches, bench_ccs);
criterion_main!(benches);
