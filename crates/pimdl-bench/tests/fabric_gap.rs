//! Pins the fabric experiment end to end with real worker processes: the
//! `reproduce` binary's hidden `__fabric-shard` self-exec entry spawns
//! the shards, the in-process and fabric sides both serve the full load,
//! and the calibrated-DES prediction stays within a generous band of the
//! measured fabric throughput. Loose bounds on purpose — both real sides
//! run threads and processes under an accelerated clock on a shared CI
//! host — but a regression that loses the network calibration or breaks
//! the self-exec worker path lands far outside them.

use pimdl_bench::experiments::fabric;

#[test]
fn fabric_experiment_runs_and_the_gap_is_pinned() {
    let worker_argv = vec![
        env!("CARGO_BIN_EXE_reproduce").to_string(),
        fabric::WORKER_SUBCOMMAND.to_string(),
    ];
    let r = fabric::run(40, 40, worker_argv).unwrap();

    assert_eq!(r.num_shards, 2);
    assert_eq!(r.num_requests, 40);
    assert!(r.speedup >= 1.0);

    // Both measured sides completed the whole load plus their two warmup
    // queries (drive() errors on any refusal, so completion is also
    // implied by run() returning Ok).
    assert_eq!(r.in_process.metrics.completed, 42);
    assert_eq!(r.fabric.metrics.completed, 42);
    assert!(r.in_process.virtual_rps > 0.0 && r.fabric.virtual_rps > 0.0);

    // A real loopback cannot be free, and the calibrated model must be
    // usable by the DES.
    assert!(r.rtt_small_s > 0.0 && r.rtt_large_s > 0.0);
    assert!(r.net.link_latency_s > 0.0 || r.net.per_byte_s > 0.0);
    assert!(r.des_rps > 0.0 && r.des_free_rps > 0.0);
    assert!(
        r.des_rps <= r.des_free_rps,
        "pricing the network cannot raise DES throughput: {} vs {}",
        r.des_rps,
        r.des_free_rps
    );

    // The pinned gaps: order-of-magnitude agreement, not noise-level
    // equality. (0.05, 20) catches a lost calibration or a fabric path
    // that stops batching, while surviving CI scheduling jitter.
    assert!(
        (0.05..20.0).contains(&r.fabric_vs_in_process),
        "fabric/in-process ratio out of band: {}",
        r.fabric_vs_in_process
    );
    assert!(
        (0.05..20.0).contains(&r.rt_des_gap),
        "RT/DES gap out of band: {}",
        r.rt_des_gap
    );

    let s = fabric::render(&r);
    assert!(s.contains("fabric / in-process"));
    assert!(s.contains("RT/DES"));
}
