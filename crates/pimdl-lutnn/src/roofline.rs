//! Roofline analysis of LUT kernels (paper §3.3 and Fig. 4).
//!
//! The paper measures the arithmetic intensity of INT8 LUT kernels for the
//! FC layers of BERT-base/large and ViT-huge on a dual-socket Xeon 4210
//! (Intel Advisor), finding 0.204–0.288 ops/byte — deep inside the
//! memory-bound region (CPU ridge point ≈ 7.4 ops/byte). This module
//! reproduces that analysis analytically.
//!
//! Byte accounting: the LUT operator's traffic is dominated by gathered
//! table entries, which have no temporal locality (the index stream is
//! data-dependent). Hardware-measured traffic per gathered INT8 entry is
//! larger than 1 byte because of cache-line granularity and prefetch; we use
//! an effective 4 bytes/entry, which calibrates the model into the paper's
//! measured band. Index reads (1 B per `(row, codebook)`) and output writes
//! (4 B per element) are also counted.

use serde::{Deserialize, Serialize};

/// A machine for roofline purposes: peak compute and peak memory bandwidth.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RooflineMachine {
    /// Peak throughput in giga-ops per second.
    pub peak_gops: f64,
    /// Peak memory bandwidth in GB/s.
    pub mem_bw_gbps: f64,
}

impl RooflineMachine {
    /// Dual-socket Intel Xeon 4210 (paper's Fig. 4 host): 795.11 GOPS peak,
    /// ~107 GB/s of 6-channel DDR4-2400 per socket pair.
    pub const XEON_4210_DUAL: RooflineMachine = RooflineMachine {
        peak_gops: 795.11,
        mem_bw_gbps: 107.3,
    };

    /// Arithmetic intensity at which the machine transitions from
    /// memory-bound to compute-bound (ops/byte).
    pub fn ridge_point(&self) -> f64 {
        self.peak_gops / self.mem_bw_gbps
    }

    /// Attainable throughput (GOPS) at the given arithmetic intensity.
    pub fn attainable_gops(&self, ai: f64) -> f64 {
        (ai * self.mem_bw_gbps).min(self.peak_gops)
    }

    /// Whether a kernel of this intensity is memory-bound on this machine.
    pub fn is_memory_bound(&self, ai: f64) -> bool {
        ai < self.ridge_point()
    }
}

/// Effective bytes of memory traffic per gathered INT8 table entry
/// (cache-line granularity; calibrates the model to the paper's Advisor
/// measurements).
pub const EFFECTIVE_BYTES_PER_GATHER: f64 = 4.0;

/// Arithmetic-intensity breakdown of one LUT kernel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LutKernelIntensity {
    /// Accumulation operations (`N · CB · F`).
    pub ops: u64,
    /// Total bytes moved (tables + indices + output).
    pub bytes: f64,
    /// Arithmetic intensity, ops/byte.
    pub ai: f64,
}

/// Computes the LUT operator's arithmetic intensity for a layer of
/// activation rows `n`, hidden dim `h`, output features `f`, `ct` centroids
/// and sub-vector length `v`.
///
/// # Panics
///
/// Panics if `v == 0` or `v` does not divide `h`.
pub fn lut_kernel_intensity(
    n: usize,
    h: usize,
    f: usize,
    ct: usize,
    v: usize,
) -> LutKernelIntensity {
    assert!(v > 0 && h.is_multiple_of(v), "v must divide h");
    let cb = (h / v) as u64;
    let ops = n as u64 * cb * f as u64;
    // Gathered table traffic: the index stream is data-dependent, so every
    // (row, codebook) gather re-touches its F-entry run; the effective-bytes
    // constant folds cache-line granularity and prefetch overfetch.
    let table_bytes = n as f64 * cb as f64 * f as f64 * EFFECTIVE_BYTES_PER_GATHER;
    // Indices fit one byte for CT ≤ 256 (the paper's setting), two otherwise.
    let index_width = if ct <= 256 { 1.0 } else { 2.0 };
    let index_bytes = n as f64 * cb as f64 * index_width;
    let output_bytes = n as f64 * f as f64 * 4.0; // f32 result write
    let bytes = table_bytes + index_bytes + output_bytes;
    LutKernelIntensity {
        ops,
        bytes,
        ai: ops as f64 / bytes,
    }
}

/// One operator row of the Fig. 4 analysis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig4Point {
    /// Model name.
    pub model: &'static str,
    /// Operator name (QKV / O / FFN1 / FFN2).
    pub operator: &'static str,
    /// Arithmetic intensity of the INT8 LUT kernel.
    pub ai: f64,
    /// Attainable throughput on the Fig. 4 CPU (GOPS).
    pub attainable_gops: f64,
}

/// Reproduces the Fig. 4 operator sweep: the four FC operators of
/// BERT-base (H = 768), BERT-large (H = 1024) and ViT-huge (H = 1280) at
/// batch 64 × sequence 512, V = 2, CT = 16, INT8 LUTs.
pub fn fig4_points() -> Vec<Fig4Point> {
    let machine = RooflineMachine::XEON_4210_DUAL;
    let n = 64 * 512;
    let (v, ct) = (2usize, 16usize);
    let models: [(&'static str, usize); 3] =
        [("Bert-Base", 768), ("Bert-Large", 1024), ("ViT-Huge", 1280)];
    let mut out = Vec::new();
    for (model, h) in models {
        // (operator, input dim, output dim)
        let ops: [(&'static str, usize, usize); 4] = [
            ("QKV", h, 3 * h),
            ("O", h, h),
            ("FFN1", h, 4 * h),
            ("FFN2", 4 * h, h),
        ];
        for (operator, in_dim, out_dim) in ops {
            let k = lut_kernel_intensity(n, in_dim, out_dim, ct, v);
            out.push(Fig4Point {
                model,
                operator,
                ai: k.ai,
                attainable_gops: machine.attainable_gops(k.ai),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ridge_point_matches_paper_regime() {
        let m = RooflineMachine::XEON_4210_DUAL;
        let ridge = m.ridge_point();
        assert!((5.0..12.0).contains(&ridge), "ridge={ridge}");
    }

    #[test]
    fn attainable_clamps_at_peak() {
        let m = RooflineMachine::XEON_4210_DUAL;
        assert!((m.attainable_gops(0.1) - 10.73).abs() < 0.01);
        assert_eq!(m.attainable_gops(1e9), m.peak_gops);
    }

    #[test]
    fn fig4_intensities_in_paper_band() {
        // Paper: all operators between 0.204 and 0.288 ops/byte.
        for p in fig4_points() {
            assert!(
                (0.15..0.35).contains(&p.ai),
                "{} {}: ai={}",
                p.model,
                p.operator,
                p.ai
            );
        }
    }

    #[test]
    fn fig4_all_memory_bound() {
        let m = RooflineMachine::XEON_4210_DUAL;
        for p in fig4_points() {
            assert!(
                m.is_memory_bound(p.ai),
                "{} {} not memory bound",
                p.model,
                p.operator
            );
            assert!(p.attainable_gops < m.peak_gops);
        }
    }

    #[test]
    fn fig4_has_all_twelve_points() {
        let points = fig4_points();
        assert_eq!(points.len(), 12);
        let qkv = points.iter().filter(|p| p.operator == "QKV").count();
        assert_eq!(qkv, 3);
    }

    #[test]
    fn intensity_ops_formula() {
        let k = lut_kernel_intensity(4, 8, 2, 16, 2);
        assert_eq!(k.ops, 4 * 4 * 2); // N * CB * F
        assert!(k.ai > 0.0 && k.bytes > 0.0);
    }

    #[test]
    fn ffn2_has_highest_intensity() {
        // FFN2 (input 4H, output H) has the largest CB, so its per-gather
        // index overhead amortizes best → highest AI among a model's four
        // operators.
        let points = fig4_points();
        let bert: Vec<&Fig4Point> = points.iter().filter(|p| p.model == "Bert-Base").collect();
        let ffn2 = bert.iter().find(|p| p.operator == "FFN2").unwrap();
        for p in &bert {
            assert!(ffn2.ai >= p.ai - 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "v must divide h")]
    fn intensity_rejects_bad_v() {
        let _ = lut_kernel_intensity(4, 9, 2, 16, 2);
    }
}
