//! Look-up-table construction and the LUT (gather-accumulate) operator.
//!
//! LUT construction is steps ❷–❸ of Fig. 2: each codebook centroid's inner
//! products with the corresponding weight sub-rows are precomputed, yielding
//! `CT` tables of shape `F x CB` (stored here as one `(CB*CT) x F` matrix).
//! The LUT operator (steps ❻–❼) fetches the `F`-vector selected by each
//! index and accumulates across codebooks — exactly the kernel PIM-DL
//! offloads to DRAM-PIM PEs.
//!
//! The key algebraic identity, asserted by the tests:
//! `lookup(encode(x)) == decode(encode(x)) · W` — the LUT path computes the
//! same result as multiplying the snapped activation by the weight.

use pimdl_tensor::quant::QuantMatrix;
use pimdl_tensor::Matrix;
use serde::{Deserialize, Serialize};

use crate::pq::{IndexMatrix, ProductQuantizer};
use crate::{LutError, Result};

/// Precomputed look-up tables for one linear layer, in `f32`.
///
/// Row `cb * CT + ct` holds the `F` partial products of codebook `cb`'s
/// centroid `ct` with the weight sub-rows `W[cb*V .. (cb+1)*V, :]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LutTable {
    cb: usize,
    ct: usize,
    f: usize,
    table: Matrix,
}

impl LutTable {
    /// Builds tables from a fitted quantizer and a weight matrix of shape
    /// `H x F` (input-major, i.e. `Y = X · W`).
    ///
    /// # Errors
    ///
    /// Returns [`LutError::Config`] if `weight.rows() != pq.hidden()`.
    pub fn build(pq: &ProductQuantizer, weight: &Matrix) -> Result<Self> {
        if weight.rows() != pq.hidden() {
            return Err(LutError::Config {
                op: "LutTable::build",
                detail: format!(
                    "weight has {} input rows but quantizer hidden dim is {}",
                    weight.rows(),
                    pq.hidden()
                ),
            });
        }
        let (cb, ct, v, f) = (pq.cb(), pq.ct(), pq.v(), weight.cols());
        let mut table = Matrix::zeros(cb * ct, f);
        for col in 0..cb {
            for k in 0..ct {
                let centroid = pq.centroid(col, k);
                let out_row = table.row_mut(col * ct + k);
                for (dv, &cv) in centroid.iter().enumerate().take(v) {
                    let w_row = weight.row(col * v + dv);
                    for j in 0..f {
                        out_row[j] += cv * w_row[j];
                    }
                }
            }
        }
        Ok(LutTable { cb, ct, f, table })
    }

    /// Codebook count `CB`.
    pub fn cb(&self) -> usize {
        self.cb
    }

    /// Centroids per codebook `CT`.
    pub fn ct(&self) -> usize {
        self.ct
    }

    /// Output feature length `F`.
    pub fn f(&self) -> usize {
        self.f
    }

    /// The raw table matrix, `(CB*CT) x F`.
    pub fn table(&self) -> &Matrix {
        &self.table
    }

    /// Borrows the `F`-length entry for codebook `cb`, centroid `ct`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn entry(&self, cb: usize, ct: usize) -> &[f32] {
        debug_assert!(cb < self.cb && ct < self.ct);
        self.table.row(cb * self.ct + ct)
    }

    /// The **LUT operator**: gathers and accumulates table entries selected
    /// by the index matrix, producing the `N x F` output (Fig. 2 ❻–❽).
    ///
    /// # Errors
    ///
    /// Returns [`LutError::Config`] if `indices.cols() != cb()` or an index
    /// exceeds `CT`.
    pub fn lookup(&self, indices: &IndexMatrix) -> Result<Matrix> {
        if indices.cols() != self.cb {
            return Err(LutError::Config {
                op: "LutTable::lookup",
                detail: format!("index width {} != CB = {}", indices.cols(), self.cb),
            });
        }
        validate_indices(indices, self.ct, "LutTable::lookup")?;
        let n = indices.rows();
        let mut out = Matrix::zeros(n, self.f);
        for r in 0..n {
            let idx_row = indices.row(r);
            let out_row = out.row_mut(r);
            for (col, &k) in idx_row.iter().enumerate() {
                let entry = self.table.row(col * self.ct + k as usize);
                for (o, &e) in out_row.iter_mut().zip(entry) {
                    *o += e;
                }
            }
        }
        Ok(out)
    }

    /// Re-lays the tables into the transposed [`TransposedLutTable`] slice
    /// layout (all `CT` candidates of one output feature contiguous).
    pub fn transposed(&self) -> TransposedLutTable {
        let mut data = vec![0.0f32; self.cb * self.f * self.ct];
        for c in 0..self.cb {
            for k in 0..self.ct {
                for (j, &v) in self.table.row(c * self.ct + k).iter().enumerate() {
                    data[(c * self.f + j) * self.ct + k] = v;
                }
            }
        }
        TransposedLutTable {
            cb: self.cb,
            ct: self.ct,
            f: self.f,
            data,
        }
    }

    /// Storage footprint of the `f32` tables in bytes.
    pub fn size_bytes(&self) -> usize {
        self.table.len() * 4
    }

    /// Quantizes the tables to INT8 (the setting used on UPMEM, §6.3).
    pub fn quantize(&self) -> QuantLutTable {
        QuantLutTable {
            cb: self.cb,
            ct: self.ct,
            f: self.f,
            table: QuantMatrix::quantize(&self.table),
        }
    }
}

/// INT8-quantized look-up tables with i32 accumulation.
///
/// Matches the UPMEM deployment: tables are stored as one byte per entry in
/// PIM local memory; the PE accumulates in 32-bit integers and the result is
/// dequantized once per output element.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantLutTable {
    cb: usize,
    ct: usize,
    f: usize,
    table: QuantMatrix,
}

impl QuantLutTable {
    /// Codebook count `CB`.
    pub fn cb(&self) -> usize {
        self.cb
    }

    /// Centroids per codebook `CT`.
    pub fn ct(&self) -> usize {
        self.ct
    }

    /// Output feature length `F`.
    pub fn f(&self) -> usize {
        self.f
    }

    /// The underlying quantized matrix.
    pub fn table(&self) -> &QuantMatrix {
        &self.table
    }

    /// Integer gather-accumulate followed by one dequantization per output.
    ///
    /// # Errors
    ///
    /// Returns [`LutError::Config`] on index-shape mismatch or out-of-range
    /// indices.
    pub fn lookup(&self, indices: &IndexMatrix) -> Result<Matrix> {
        if indices.cols() != self.cb {
            return Err(LutError::Config {
                op: "QuantLutTable::lookup",
                detail: format!("index width {} != CB = {}", indices.cols(), self.cb),
            });
        }
        // Hoisted validation: one pre-pass over the index matrix keeps the
        // gather-accumulate loop below branch-free.
        validate_indices(indices, self.ct, "QuantLutTable::lookup")?;
        let n = indices.rows();
        let mut out = Matrix::zeros(n, self.f);
        let scale = self.table.scale();
        let codes = self.table.codes();
        let mut acc = vec![0i32; self.f];
        for r in 0..n {
            acc.iter_mut().for_each(|a| *a = 0);
            for (col, &k) in indices.row(r).iter().enumerate() {
                let row = col * self.ct + k as usize;
                let entry = &codes[row * self.f..(row + 1) * self.f];
                for (a, &e) in acc.iter_mut().zip(entry) {
                    *a += e as i32;
                }
            }
            for (o, &a) in out.row_mut(r).iter_mut().zip(&acc) {
                *o = a as f32 * scale;
            }
        }
        Ok(out)
    }

    /// Assembles a quantized LUT from an existing code matrix (e.g. a
    /// serving checkpoint) instead of quantizing an `f32` table in-process.
    ///
    /// # Errors
    ///
    /// Returns [`LutError::Config`] if the code matrix shape is not
    /// `(cb*ct) x f` or `ct` is 0 / exceeds `u16` (unindexable).
    pub fn from_parts(cb: usize, ct: usize, f: usize, table: QuantMatrix) -> Result<Self> {
        if ct == 0 || ct > u16::MAX as usize {
            return Err(LutError::Config {
                op: "QuantLutTable::from_parts",
                detail: format!("ct={ct} out of range"),
            });
        }
        if table.shape() != (cb * ct, f) {
            return Err(LutError::Config {
                op: "QuantLutTable::from_parts",
                detail: format!(
                    "code matrix {}x{} inconsistent with cb={cb}, ct={ct}, f={f}",
                    table.rows(),
                    table.cols()
                ),
            });
        }
        Ok(QuantLutTable { cb, ct, f, table })
    }

    /// Re-lays the codes into the transposed [`TransposedQuantLutTable`]
    /// slice layout.
    pub fn transposed(&self) -> TransposedQuantLutTable {
        let mut data = vec![0i8; self.cb * self.f * self.ct];
        let codes = self.table.codes();
        for c in 0..self.cb {
            for k in 0..self.ct {
                let row = &codes[(c * self.ct + k) * self.f..(c * self.ct + k + 1) * self.f];
                for (j, &v) in row.iter().enumerate() {
                    data[(c * self.f + j) * self.ct + k] = v;
                }
            }
        }
        TransposedQuantLutTable {
            cb: self.cb,
            ct: self.ct,
            f: self.f,
            scale: self.table.scale(),
            data,
        }
    }

    /// Storage footprint in bytes (one byte per table entry).
    pub fn size_bytes(&self) -> usize {
        self.table.size_bytes()
    }
}

/// Checks index width and range in one pre-pass so the lookup hot loops can
/// be branch-free.
fn validate_indices(indices: &IndexMatrix, ct: usize, op: &'static str) -> Result<()> {
    if let Some(&k) = indices.as_slice().iter().find(|&&k| k as usize >= ct) {
        return Err(LutError::Config {
            op,
            detail: format!("index {k} >= CT = {ct}"),
        });
    }
    Ok(())
}

/// `f32` look-up tables in the **transposed slice layout**: for codebook
/// `cb` and output feature `j`, all `CT` candidate entries are contiguous
/// (`data[(cb·F + j)·CT + k]`).
///
/// This is the view a PIM PE holds of one table slice — a gather within a
/// resident `CT`-run — and the layout the serving replica's integrity check
/// streams. Produced by [`LutTable::transposed`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransposedLutTable {
    cb: usize,
    ct: usize,
    f: usize,
    data: Vec<f32>,
}

impl TransposedLutTable {
    /// Codebook count `CB`.
    pub fn cb(&self) -> usize {
        self.cb
    }

    /// Centroids per codebook `CT`.
    pub fn ct(&self) -> usize {
        self.ct
    }

    /// Output feature length `F`.
    pub fn f(&self) -> usize {
        self.f
    }

    /// Borrows codebook `cb`'s full slice (`F * CT` values, feature-major).
    ///
    /// # Panics
    ///
    /// Panics if `cb` is out of bounds.
    #[inline]
    pub fn slice(&self, cb: usize) -> &[f32] {
        &self.data[cb * self.f * self.ct..(cb + 1) * self.f * self.ct]
    }

    /// Borrows the contiguous `CT` candidates for `(cb, j)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn candidates(&self, cb: usize, j: usize) -> &[f32] {
        debug_assert!(cb < self.cb && j < self.f);
        &self.data[(cb * self.f + j) * self.ct..(cb * self.f + j + 1) * self.ct]
    }

    /// LUT gather over the transposed layout. Bit-identical to
    /// [`LutTable::lookup`] on the source table (per output element the
    /// codebook accumulation order is unchanged).
    ///
    /// # Errors
    ///
    /// Returns [`LutError::Config`] on index-shape mismatch or out-of-range
    /// indices.
    pub fn lookup(&self, indices: &IndexMatrix) -> Result<Matrix> {
        if indices.cols() != self.cb {
            return Err(LutError::Config {
                op: "TransposedLutTable::lookup",
                detail: format!("index width {} != CB = {}", indices.cols(), self.cb),
            });
        }
        validate_indices(indices, self.ct, "TransposedLutTable::lookup")?;
        let n = indices.rows();
        let mut out = Matrix::zeros(n, self.f);
        for r in 0..n {
            let idx_row = indices.row(r);
            for (j, o) in out.row_mut(r).iter_mut().enumerate() {
                let mut acc = 0.0f32;
                for (c, &k) in idx_row.iter().enumerate() {
                    acc += self.data[(c * self.f + j) * self.ct + k as usize];
                }
                *o = acc;
            }
        }
        Ok(out)
    }
}

/// INT8 look-up tables in the transposed slice layout, with i32
/// accumulation. Produced by [`QuantLutTable::transposed`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransposedQuantLutTable {
    cb: usize,
    ct: usize,
    f: usize,
    scale: f32,
    data: Vec<i8>,
}

impl TransposedQuantLutTable {
    /// Codebook count `CB`.
    pub fn cb(&self) -> usize {
        self.cb
    }

    /// Centroids per codebook `CT`.
    pub fn ct(&self) -> usize {
        self.ct
    }

    /// Output feature length `F`.
    pub fn f(&self) -> usize {
        self.f
    }

    /// The dequantization scale.
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// Borrows the contiguous `CT` candidate codes for `(cb, j)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn candidates(&self, cb: usize, j: usize) -> &[i8] {
        debug_assert!(cb < self.cb && j < self.f);
        &self.data[(cb * self.f + j) * self.ct..(cb * self.f + j + 1) * self.ct]
    }

    /// Integer gather over the transposed layout, dequantized once per
    /// output element. Bit-identical to [`QuantLutTable::lookup`] on the
    /// source table (i32 accumulation is exact; the final multiply is the
    /// same `acc as f32 * scale`).
    ///
    /// # Errors
    ///
    /// Returns [`LutError::Config`] on index-shape mismatch or out-of-range
    /// indices.
    pub fn lookup(&self, indices: &IndexMatrix) -> Result<Matrix> {
        if indices.cols() != self.cb {
            return Err(LutError::Config {
                op: "TransposedQuantLutTable::lookup",
                detail: format!("index width {} != CB = {}", indices.cols(), self.cb),
            });
        }
        validate_indices(indices, self.ct, "TransposedQuantLutTable::lookup")?;
        let n = indices.rows();
        let mut out = Matrix::zeros(n, self.f);
        for r in 0..n {
            let idx_row = indices.row(r);
            for (j, o) in out.row_mut(r).iter_mut().enumerate() {
                let mut acc = 0i32;
                for (c, &k) in idx_row.iter().enumerate() {
                    acc += self.data[(c * self.f + j) * self.ct + k as usize] as i32;
                }
                *o = acc as f32 * self.scale;
            }
        }
        Ok(out)
    }
}

/// Fused LUT-NN linear evaluation: CCS on `x`, then table lookup.
///
/// This is the complete LUT-NN replacement of `Y = X · W` (bias excluded).
/// See [`kernels::lut_linear_fused`](crate::kernels::lut_linear_fused) for
/// the tiled variant that never materializes the index matrix.
///
/// # Errors
///
/// Propagates shape errors from encoding or lookup.
pub fn lut_linear(x: &Matrix, pq: &ProductQuantizer, lut: &LutTable) -> Result<Matrix> {
    lut.lookup(&pq.encode(x)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimdl_tensor::gemm;
    use pimdl_tensor::rng::DataRng;

    fn setup(
        seed: u64,
        n: usize,
        h: usize,
        f: usize,
        v: usize,
        ct: usize,
    ) -> (ProductQuantizer, LutTable, Matrix, Matrix) {
        let mut rng = DataRng::new(seed);
        let acts = rng.normal_matrix(n.max(4 * ct), h, 0.0, 1.0);
        let weight = rng.normal_matrix(h, f, 0.0, 0.5);
        let pq = ProductQuantizer::fit(&acts, v, ct, 15, &mut rng).unwrap();
        let lut = LutTable::build(&pq, &weight).unwrap();
        let x = rng.normal_matrix(n, h, 0.0, 1.0);
        (pq, lut, weight, x)
    }

    #[test]
    fn lookup_equals_snapped_gemm() {
        // The central identity: LUT(encode(x)) == decode(encode(x)) · W.
        let (pq, lut, weight, x) = setup(0, 8, 12, 6, 3, 8);
        let (snapped, indices) = pq.snap(&x).unwrap();
        let via_lut = lut.lookup(&indices).unwrap();
        let via_gemm = gemm::matmul(&snapped, &weight).unwrap();
        assert!(
            via_lut.approx_eq(&via_gemm, 1e-4),
            "max diff {}",
            via_lut.sub(&via_gemm).unwrap().max_abs()
        );
    }

    #[test]
    fn lut_linear_fuses_encode_and_lookup() {
        let (pq, lut, _, x) = setup(1, 5, 8, 4, 2, 4);
        let fused = lut_linear(&x, &pq, &lut).unwrap();
        let manual = lut.lookup(&pq.encode(&x).unwrap()).unwrap();
        assert_eq!(fused, manual);
    }

    #[test]
    fn approximation_error_shrinks_with_more_centroids() {
        let mut rng = DataRng::new(2);
        let acts = rng.normal_matrix(512, 8, 0.0, 1.0);
        let weight = rng.normal_matrix(8, 16, 0.0, 0.5);
        let x = rng.normal_matrix(32, 8, 0.0, 1.0);
        let exact = gemm::matmul(&x, &weight).unwrap();

        let err = |ct: usize| {
            let pq = ProductQuantizer::fit(&acts, 2, ct, 20, &mut DataRng::new(11)).unwrap();
            let lut = LutTable::build(&pq, &weight).unwrap();
            let approx = lut_linear(&x, &pq, &lut).unwrap();
            approx.sub(&exact).unwrap().frobenius_sq()
        };
        let e4 = err(4);
        let e64 = err(64);
        assert!(e64 < e4, "e64={e64} e4={e4}");
    }

    #[test]
    fn build_rejects_mismatched_weight() {
        let mut rng = DataRng::new(3);
        let acts = rng.normal_matrix(32, 8, 0.0, 1.0);
        let pq = ProductQuantizer::fit(&acts, 2, 4, 10, &mut rng).unwrap();
        assert!(LutTable::build(&pq, &Matrix::zeros(10, 4)).is_err());
    }

    #[test]
    fn lookup_rejects_bad_indices() {
        let (pq, lut, _, _) = setup(4, 4, 8, 4, 2, 4);
        let bad_width = IndexMatrix::from_vec(1, 3, vec![0; 3]).unwrap();
        assert!(lut.lookup(&bad_width).is_err());
        let bad_value = IndexMatrix::from_vec(1, pq.cb(), vec![9; pq.cb()]).unwrap();
        assert!(lut.lookup(&bad_value).is_err());
    }

    #[test]
    fn table_entry_layout() {
        // One codebook, identity-ish check: entry(cb, ct) = centroid · W_sub.
        let centroids = Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]).unwrap();
        let pq = ProductQuantizer::from_centroids(centroids, 2, 2).unwrap();
        let weight = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let lut = LutTable::build(&pq, &weight).unwrap();
        assert_eq!(lut.entry(0, 0), &[1.0, 2.0, 3.0]); // centroid (1,0) picks row 0
        assert_eq!(lut.entry(0, 1), &[4.0, 5.0, 6.0]); // centroid (0,1) picks row 1
    }

    #[test]
    fn quantized_lookup_close_to_f32() {
        let (pq, lut, _, x) = setup(5, 16, 16, 32, 2, 16);
        let indices = pq.encode(&x).unwrap();
        let exact = lut.lookup(&indices).unwrap();
        let qlut = lut.quantize();
        let approx = qlut.lookup(&indices).unwrap();
        // INT8 tables: per-entry error ≤ scale/2, accumulated over CB entries.
        let bound = qlut.table().scale() * (lut.cb() as f32) * 0.51 + 1e-5;
        let max_diff = approx.sub(&exact).unwrap().max_abs();
        assert!(max_diff <= bound, "max_diff={max_diff} bound={bound}");
        assert_eq!(qlut.size_bytes() * 4, lut.size_bytes());
        assert_eq!(
            (qlut.cb(), qlut.ct(), qlut.f()),
            (lut.cb(), lut.ct(), lut.f())
        );
    }

    #[test]
    fn quantized_lookup_rejects_bad_indices() {
        let (pq, lut, _, _) = setup(6, 4, 8, 4, 2, 4);
        let qlut = lut.quantize();
        let bad_width = IndexMatrix::from_vec(1, 3, vec![0; 3]).unwrap();
        assert!(qlut.lookup(&bad_width).is_err());
        let bad_value = IndexMatrix::from_vec(1, pq.cb(), vec![9; pq.cb()]).unwrap();
        assert!(qlut.lookup(&bad_value).is_err());
    }

    #[test]
    fn transposed_lookup_bit_identical() {
        let (pq, lut, _, x) = setup(8, 12, 16, 9, 2, 8);
        let idx = pq.encode(&x).unwrap();
        let t = lut.transposed();
        assert_eq!((t.cb(), t.ct(), t.f()), (lut.cb(), lut.ct(), lut.f()));
        assert_eq!(t.lookup(&idx).unwrap(), lut.lookup(&idx).unwrap());
        let qlut = lut.quantize();
        let tq = qlut.transposed();
        assert_eq!(tq.scale(), qlut.table().scale());
        assert_eq!((tq.cb(), tq.ct(), tq.f()), (lut.cb(), lut.ct(), lut.f()));
        assert_eq!(tq.lookup(&idx).unwrap(), qlut.lookup(&idx).unwrap());
        // The candidate runs hold every centroid's entry for one (cb, j).
        for c in 0..lut.cb() {
            assert_eq!(t.slice(c).len(), lut.f() * lut.ct());
            for k in 0..lut.ct() {
                for j in 0..lut.f() {
                    assert_eq!(t.candidates(c, j)[k], lut.entry(c, k)[j]);
                    assert_eq!(
                        tq.candidates(c, j)[k],
                        qlut.table().code(c * lut.ct() + k, j)
                    );
                }
            }
        }
        // Shared validation: bad widths and out-of-range indices rejected.
        let bad_width = IndexMatrix::from_vec(1, 3, vec![0; 3]).unwrap();
        assert!(t.lookup(&bad_width).is_err());
        assert!(tq.lookup(&bad_width).is_err());
        let bad_value = IndexMatrix::from_vec(1, lut.cb(), vec![99; lut.cb()]).unwrap();
        assert!(t.lookup(&bad_value).is_err());
        assert!(tq.lookup(&bad_value).is_err());
    }

    #[test]
    fn from_parts_roundtrips_and_validates() {
        let (pq, lut, _, x) = setup(9, 6, 8, 5, 2, 4);
        let qlut = lut.quantize();
        let rebuilt =
            QuantLutTable::from_parts(qlut.cb(), qlut.ct(), qlut.f(), qlut.table().clone())
                .unwrap();
        let idx = pq.encode(&x).unwrap();
        assert_eq!(rebuilt.lookup(&idx).unwrap(), qlut.lookup(&idx).unwrap());
        // Shape inconsistencies and unindexable CT are rejected.
        assert!(QuantLutTable::from_parts(
            qlut.cb() + 1,
            qlut.ct(),
            qlut.f(),
            qlut.table().clone()
        )
        .is_err());
        assert!(QuantLutTable::from_parts(qlut.cb(), 0, qlut.f(), qlut.table().clone()).is_err());
        assert!(QuantLutTable::from_parts(
            qlut.cb(),
            u16::MAX as usize + 1,
            qlut.f(),
            qlut.table().clone()
        )
        .is_err());
    }

    #[test]
    fn size_accounting() {
        let (_, lut, _, _) = setup(7, 4, 8, 16, 2, 4);
        // CB=4, CT=4, F=16 → 256 entries → 1 KiB in f32, 256 B in INT8.
        assert_eq!(lut.size_bytes(), 4 * 4 * 16 * 4);
        assert_eq!(lut.quantize().size_bytes(), 4 * 4 * 16);
    }
}
