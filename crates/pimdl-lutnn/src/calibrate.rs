//! Model calibration: the baseline LUT-NN algorithm and the paper's
//! **eLUT-NN** algorithm (§4.2).
//!
//! Both algorithms replace every linear layer's input with a
//! centroid-coded approximation during training and jointly update
//! centroids and model weights; they differ exactly where §4.2 says they
//! do:
//!
//! * **Baseline LUT-NN** (the paper's comparison algorithm \[84\],
//!   [`calibrate_lutnn_baseline`]): gradients reach the centroids through a
//!   *soft assignment* — a temperature softmax over negative sub-vector
//!   distances (the deterministic core of Gumbel-softmax estimation) — and
//!   the loss is the model loss alone, propagated layer by layer. Under
//!   full-layer replacement this estimator converges poorly (vanishing,
//!   noisy centroid gradients; train-time soft vs. inference-time hard
//!   assignment mismatch), which is the paper's Tables 4–5 baseline
//!   collapse.
//! * **eLUT-NN** ([`calibrate_elutnn`]): adds the reconstruction loss of
//!   Eq. 1,
//!
//!   ```text
//!   L = ModelLoss + β · Σ_l ||A_l·W_l − Â_l·W_l||²
//!   ```
//!
//!   whose gradient reaches each centroid *directly* (each sub-vector's
//!   gradient scatters onto its assigned centroid), and replaces the soft
//!   estimator with the straight-through estimator of Eq. 2 (`∂Â/∂A ≈ I`).
//!   Under STE the reconstruction term's gradient w.r.t. the layer input
//!   cancels (`+2βEWᵀ` via `Â`, `−2βEWᵀ` via `A`), so it reaches only
//!   centroids and weights — the "direct gradient propagation" property the
//!   paper highlights.
//!
//! Following §6.2, centroids can be initialized randomly (the paper's
//! setting) or by k-means on calibration activations
//! ([`CentroidInit`]). [`convert_kmeans_only`] additionally exposes the
//! no-finetuning conversion (clustering only) as an ablation point.

use pimdl_nn::data::Dataset;
use pimdl_nn::embedding::SequenceInput;
use pimdl_nn::loss::cross_entropy;
use pimdl_nn::optim::Adam;
use pimdl_nn::transformer::{EncoderBlock, TransformerClassifier};
use pimdl_nn::Linear;
use pimdl_tensor::rng::DataRng;
use pimdl_tensor::{elementwise, gemm, norm, Matrix};

use crate::convert::{attention_arithmetic, LutClassifier};
use crate::kmeans::sq_dist;
use crate::pq::{IndexMatrix, ProductQuantizer};
use crate::{LutError, Result};

/// How centroids are initialized before fine-tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CentroidInit {
    /// Random Gaussian centroids matched to the activation scale — the
    /// paper's §6.2 setting ("the centroids are initialized randomly").
    Random,
    /// Per-column k-means on calibration activations (§3.1 step ❶).
    KMeans,
}

/// Hyper-parameters of an eLUT-NN conversion/calibration run.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationConfig {
    /// Sub-vector length `V` (paper default 2 for accuracy experiments).
    pub v: usize,
    /// Centroids per codebook `CT` (paper default 16).
    pub ct: usize,
    /// Centroid initialization method.
    pub init: CentroidInit,
    /// Lloyd iterations per codebook when `init` is k-means.
    pub kmeans_iters: usize,
    /// Reconstruction-loss weight β (paper: 1e-3 BERT, 1e-4 ViT).
    pub beta: f32,
    /// Adam learning rate for fine-tuning.
    pub lr: f32,
    /// Fine-tuning epochs over the calibration set.
    pub epochs: usize,
    /// Sequences per optimizer step.
    pub batch_size: usize,
    /// RNG seed for initialization and shuffling.
    pub seed: u64,
    /// Cap on activation rows gathered for k-means initialization.
    pub max_activation_rows: usize,
}

impl Default for CalibrationConfig {
    fn default() -> Self {
        CalibrationConfig {
            v: 2,
            ct: 16,
            init: CentroidInit::KMeans,
            kmeans_iters: 15,
            beta: 1e-3,
            lr: 1e-3,
            epochs: 3,
            batch_size: 8,
            seed: 0,
            max_activation_rows: 4096,
        }
    }
}

/// Hyper-parameters of the baseline LUT-NN calibration (the \[84\]
/// comparison algorithm).
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineLutNnConfig {
    /// Sub-vector length `V`.
    pub v: usize,
    /// Centroids per codebook `CT`.
    pub ct: usize,
    /// Centroid initialization (the paper evaluates random init).
    pub init: CentroidInit,
    /// Lloyd iterations when `init` is k-means.
    pub kmeans_iters: usize,
    /// Softmax temperature of the soft assignment.
    pub tau: f32,
    /// Whether to add Gumbel(0,1) noise to the assignment logits
    /// (stochastic Gumbel-softmax sampling, as in the original LUT-NN
    /// estimator).
    pub gumbel_noise: bool,
    /// Adam learning rate.
    pub lr: f32,
    /// Training epochs.
    pub epochs: usize,
    /// Sequences per optimizer step.
    pub batch_size: usize,
    /// RNG seed.
    pub seed: u64,
    /// Cap on activation rows gathered for initialization.
    pub max_activation_rows: usize,
}

impl Default for BaselineLutNnConfig {
    fn default() -> Self {
        BaselineLutNnConfig {
            v: 2,
            ct: 16,
            init: CentroidInit::Random,
            kmeans_iters: 15,
            tau: 1.0,
            gumbel_noise: true,
            lr: 1e-3,
            epochs: 3,
            batch_size: 8,
            seed: 0,
            max_activation_rows: 4096,
        }
    }
}

/// Per-epoch statistics of a calibration run.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibStats {
    /// Mean model (cross-entropy) loss per epoch.
    pub losses: Vec<f32>,
    /// Mean reconstruction-loss component per epoch (zero for the
    /// baseline algorithm, which has no reconstruction term).
    pub recon_losses: Vec<f32>,
}

// ---------------------------------------------------------------------------
// Activation collection & quantizer initialization
// ---------------------------------------------------------------------------

/// Collects the input activation matrix of every convertible layer over the
/// given sequences (layer order: per block, QKV / O / FFN1 / FFN2 — see
/// [`crate::convert::layer_index`]).
///
/// At most `max_rows` activation rows are retained per layer (the paper's
/// point A1: <1 % of the training set suffices).
///
/// # Errors
///
/// Propagates shape errors from the forward pass.
pub fn collect_activations(
    model: &TransformerClassifier,
    inputs: &[SequenceInput],
    max_rows: usize,
) -> Result<Vec<Matrix>> {
    let n_layers = 4 * model.num_blocks();
    let mut collected: Vec<Vec<Matrix>> = vec![Vec::new(); n_layers];
    let mut rows_so_far = vec![0usize; n_layers];

    for input in inputs {
        let (mut x, _) = model.embedding.forward(input)?;
        for (b, block) in model.blocks.iter().enumerate() {
            let hidden = block.attn.qkv.in_features();
            let heads = block.attn.heads();
            push_rows(&mut collected[b * 4], &mut rows_so_far[b * 4], &x, max_rows);
            let (concat, attn_out) = attention_arithmetic(
                &x,
                hidden,
                heads,
                |x| Ok(block.attn.qkv.forward(x)?),
                |c| Ok(block.attn.proj.forward(c)?),
            )?;
            push_rows(
                &mut collected[b * 4 + 1],
                &mut rows_so_far[b * 4 + 1],
                &concat,
                max_rows,
            );
            let res1 = x.add(&attn_out)?;
            let (x1, _) = block.ln1.forward(&res1)?;
            push_rows(
                &mut collected[b * 4 + 2],
                &mut rows_so_far[b * 4 + 2],
                &x1,
                max_rows,
            );
            let gelu_out = elementwise::gelu(&block.ffn1.forward(&x1)?);
            push_rows(
                &mut collected[b * 4 + 3],
                &mut rows_so_far[b * 4 + 3],
                &gelu_out,
                max_rows,
            );
            let ffn2_out = block.ffn2.forward(&gelu_out)?;
            let res2 = x1.add(&ffn2_out)?;
            x = block.ln2.forward(&res2)?.0;
        }
    }

    collected
        .into_iter()
        .enumerate()
        .map(|(l, parts)| {
            if parts.is_empty() {
                return Err(LutError::Config {
                    op: "collect_activations",
                    detail: format!("no activations collected for layer {l}"),
                });
            }
            let refs: Vec<&Matrix> = parts.iter().collect();
            Ok(Matrix::vcat(&refs)?)
        })
        .collect()
}

fn push_rows(store: &mut Vec<Matrix>, rows_so_far: &mut usize, m: &Matrix, max_rows: usize) {
    if *rows_so_far >= max_rows {
        return;
    }
    let take = (max_rows - *rows_so_far).min(m.rows());
    if take == m.rows() {
        store.push(m.clone());
    } else if let Ok(sub) = m.submatrix(0, 0, take, m.cols()) {
        store.push(sub);
    }
    *rows_so_far += take;
}

/// Initializes one [`ProductQuantizer`] per convertible layer.
///
/// With [`CentroidInit::KMeans`], codebooks come from per-column k-means on
/// the collected activations; with [`CentroidInit::Random`], centroids are
/// Gaussian samples scaled to each layer's activation standard deviation
/// (the §6.2 "initialized randomly" setting).
///
/// # Errors
///
/// Propagates collection and clustering errors.
#[allow(clippy::too_many_arguments)]
pub fn init_quantizers(
    model: &TransformerClassifier,
    inputs: &[SequenceInput],
    v: usize,
    ct: usize,
    init: CentroidInit,
    kmeans_iters: usize,
    max_rows: usize,
    rng: &mut DataRng,
) -> Result<Vec<ProductQuantizer>> {
    init_quantizers_per_op(
        model,
        inputs,
        &[(v, ct); 4],
        init,
        kmeans_iters,
        max_rows,
        rng,
    )
}

/// Like [`init_quantizers`], but with a distinct `(V, CT)` setting per
/// operator slot — `settings[0..4]` applies to QKV / O / FFN1 / FFN2 of
/// every block (the per-layer capacity allocation of `pimdl-tuner`
/// produces exactly such a quadruple).
///
/// # Errors
///
/// Returns [`LutError::Config`] when `settings` is not one quadruple or a
/// `V` does not divide its operator's input width; propagates collection
/// and clustering errors.
#[allow(clippy::too_many_arguments)]
pub fn init_quantizers_per_op(
    model: &TransformerClassifier,
    inputs: &[SequenceInput],
    settings: &[(usize, usize)],
    init: CentroidInit,
    kmeans_iters: usize,
    max_rows: usize,
    rng: &mut DataRng,
) -> Result<Vec<ProductQuantizer>> {
    if settings.len() != 4 {
        return Err(LutError::Config {
            op: "init_quantizers_per_op",
            detail: format!(
                "expected 4 (V, CT) settings (QKV/O/FFN1/FFN2), got {}",
                settings.len()
            ),
        });
    }
    let activations = collect_activations(model, inputs, max_rows)?;
    activations
        .iter()
        .enumerate()
        .map(|(l, acts)| {
            let (v, ct) = settings[l % 4];
            match init {
                CentroidInit::KMeans => ProductQuantizer::fit(acts, v, ct, kmeans_iters, rng),
                CentroidInit::Random => {
                    let mean = acts.mean();
                    let var = acts.map(|x| (x - mean) * (x - mean)).mean().max(1e-8);
                    let std = var.sqrt();
                    if acts.cols() % v != 0 || v == 0 {
                        return Err(LutError::Config {
                            op: "init_quantizers",
                            detail: format!("V = {v} does not divide H = {}", acts.cols()),
                        });
                    }
                    let cb = acts.cols() / v;
                    let centroids = rng.normal_matrix(cb * ct, v, mean, std);
                    ProductQuantizer::from_centroids(centroids, v, ct)
                }
            }
        })
        .collect()
}

/// Clustering-only conversion (no fine-tuning at all): k-means codebooks
/// straight into LUTs. An ablation point between the two trained
/// algorithms.
///
/// # Errors
///
/// Propagates collection, clustering, and conversion errors.
pub fn convert_kmeans_only(
    model: &TransformerClassifier,
    calib: &Dataset,
    v: usize,
    ct: usize,
    kmeans_iters: usize,
    max_rows: usize,
    rng: &mut DataRng,
) -> Result<LutClassifier> {
    let quantizers = init_quantizers(
        model,
        &calib.inputs,
        v,
        ct,
        CentroidInit::KMeans,
        kmeans_iters,
        max_rows,
        rng,
    )?;
    LutClassifier::convert(model, quantizers)
}

// ---------------------------------------------------------------------------
// Generic instrumented forward/backward over a quantized-linear operator
// ---------------------------------------------------------------------------

/// One quantized-linear strategy: how a layer's input is approximated
/// during calibration and how gradients reach centroids/inputs.
trait QuantOp {
    type Cache;

    fn forward(
        &self,
        linear: &Linear,
        pq: &ProductQuantizer,
        x: &Matrix,
    ) -> Result<(Matrix, Self::Cache)>;

    /// Accumulates weight/bias/centroid gradients; returns `dX` and adds
    /// any auxiliary loss (reconstruction) to `aux_loss`.
    fn backward(
        &self,
        linear: &mut Linear,
        pq: &ProductQuantizer,
        centroid_grad: &mut Matrix,
        cache: &Self::Cache,
        dy: &Matrix,
        aux_loss: &mut f32,
    ) -> Result<Matrix>;
}

fn accumulate_bias_grad(linear: &mut Linear, dy: &Matrix) {
    let mut db = Matrix::zeros(1, dy.cols());
    for r in 0..dy.rows() {
        for (acc, v) in db.row_mut(0).iter_mut().zip(dy.row(r)) {
            *acc += v;
        }
    }
    linear.bias.accumulate_grad(&db);
}

// ----- eLUT-NN: hard assignment + STE + reconstruction loss -----

struct SteOp {
    beta: f32,
}

struct SteCache {
    x: Matrix,
    x_hat: Matrix,
    indices: IndexMatrix,
}

impl QuantOp for SteOp {
    type Cache = SteCache;

    fn forward(
        &self,
        linear: &Linear,
        pq: &ProductQuantizer,
        x: &Matrix,
    ) -> Result<(Matrix, SteCache)> {
        let (x_hat, indices) = pq.snap(x)?;
        let y = linear.forward(&x_hat)?;
        Ok((
            y,
            SteCache {
                x: x.clone(),
                x_hat,
                indices,
            },
        ))
    }

    fn backward(
        &self,
        linear: &mut Linear,
        pq: &ProductQuantizer,
        centroid_grad: &mut Matrix,
        cache: &SteCache,
        dy: &Matrix,
        aux_loss: &mut f32,
    ) -> Result<Matrix> {
        // Model-loss path (Â is the effective layer input).
        let dw_model = gemm::matmul(&cache.x_hat.transpose(), dy)?;
        linear.weight.accumulate_grad(&dw_model);
        accumulate_bias_grad(linear, dy);
        let dx_hat_model = gemm::matmul(dy, &linear.weight.data.transpose())?;

        // Reconstruction term: E = (Â − A)·W (Eq. 1).
        let diff = cache.x_hat.sub(&cache.x)?;
        let e = gemm::matmul(&diff, &linear.weight.data)?;
        *aux_loss += self.beta * e.frobenius_sq();
        let dx_hat_recon =
            gemm::matmul(&e, &linear.weight.data.transpose())?.scale(2.0 * self.beta);
        let dw_recon = gemm::matmul(&diff.transpose(), &e)?.scale(2.0 * self.beta);
        linear.weight.accumulate_grad(&dw_recon);

        // Centroid gradients: scatter dÂ (model + recon) onto assigned
        // centroids — the direct gradient path.
        let dx_hat_total = dx_hat_model.add(&dx_hat_recon)?;
        let (v, ct) = (pq.v(), pq.ct());
        for r in 0..cache.indices.rows() {
            for cb in 0..cache.indices.cols() {
                let k = cache.indices.get(r, cb) as usize;
                let grad_row = centroid_grad.row_mut(cb * ct + k);
                let src = &dx_hat_total.row(r)[cb * v..(cb + 1) * v];
                for (g, s) in grad_row.iter_mut().zip(src) {
                    *g += s;
                }
            }
        }

        // STE (Eq. 2): the model-loss input gradient passes straight
        // through H(·); the reconstruction term's two input paths cancel.
        Ok(dx_hat_model)
    }
}

// ----- Baseline LUT-NN: soft assignment (Gumbel-softmax-style) -----

struct SoftOp {
    tau: f32,
    /// Gumbel-noise source for stochastic assignment sampling (the \[84\]
    /// estimator); `None` disables noise (deterministic softmax
    /// relaxation).
    noise: Option<std::cell::RefCell<DataRng>>,
}

impl SoftOp {
    fn deterministic(tau: f32) -> Self {
        SoftOp { tau, noise: None }
    }

    fn gumbel(tau: f32, seed: u64) -> Self {
        SoftOp {
            tau,
            noise: Some(std::cell::RefCell::new(DataRng::new(seed))),
        }
    }
}

struct SoftCache {
    x: Matrix,
    x_soft: Matrix,
    /// Soft assignment weights, `(n, cb*ct)` row-major.
    weights: Matrix,
}

impl QuantOp for SoftOp {
    type Cache = SoftCache;

    fn forward(
        &self,
        linear: &Linear,
        pq: &ProductQuantizer,
        x: &Matrix,
    ) -> Result<(Matrix, SoftCache)> {
        if x.cols() != pq.hidden() {
            return Err(LutError::Config {
                op: "SoftOp::forward",
                detail: format!("input width {} != H = {}", x.cols(), pq.hidden()),
            });
        }
        let (n, v, ct, cb) = (x.rows(), pq.v(), pq.ct(), pq.cb());
        let mut x_soft = Matrix::zeros(n, x.cols());
        let mut weights = Matrix::zeros(n, cb * ct);
        for r in 0..n {
            for c in 0..cb {
                let sub = &x.row(r)[c * v..(c + 1) * v];
                // Soft assignment: softmax(−d²/τ) over centroids.
                let mut logits: Vec<f32> = (0..ct)
                    .map(|k| -sq_dist(sub, pq.centroid(c, k)) / self.tau)
                    .collect();
                if let Some(noise) = &self.noise {
                    // Gumbel(0,1) perturbation: g = −ln(−ln(u)).
                    let mut rng = noise.borrow_mut();
                    for l in logits.iter_mut() {
                        let u: f32 = rng.uniform(1e-7, 1.0);
                        *l += -(-u.ln()).ln();
                    }
                }
                norm::softmax_row(&mut logits);
                for (k, &w) in logits.iter().enumerate() {
                    weights.set(r, c * ct + k, w);
                    let centroid = pq.centroid(c, k);
                    for (d, &cv) in centroid.iter().enumerate() {
                        let cur = x_soft.get(r, c * v + d);
                        x_soft.set(r, c * v + d, cur + w * cv);
                    }
                }
            }
        }
        let y = linear.forward(&x_soft)?;
        Ok((
            y,
            SoftCache {
                x: x.clone(),
                x_soft,
                weights,
            },
        ))
    }

    #[allow(clippy::needless_range_loop)]
    #[allow(clippy::needless_range_loop)]
    fn backward(
        &self,
        linear: &mut Linear,
        pq: &ProductQuantizer,
        centroid_grad: &mut Matrix,
        cache: &SoftCache,
        dy: &Matrix,
        _aux_loss: &mut f32,
    ) -> Result<Matrix> {
        let dw = gemm::matmul(&cache.x_soft.transpose(), dy)?;
        linear.weight.accumulate_grad(&dw);
        accumulate_bias_grad(linear, dy);
        let dx_soft = gemm::matmul(dy, &linear.weight.data.transpose())?;

        let (n, v, ct, cb) = (cache.x.rows(), pq.v(), pq.ct(), pq.cb());
        let mut dx = Matrix::zeros(n, cache.x.cols());
        for r in 0..n {
            for c in 0..cb {
                let sub = &cache.x.row(r)[c * v..(c + 1) * v];
                let d_soft_sub = &dx_soft.row(r)[c * v..(c + 1) * v];
                // Path 1: through the convex combination (w fixed).
                // dc_k += w_k · dâ; dw_k = dâ · c_k.
                let mut dw_soft = vec![0.0f32; ct];
                for k in 0..ct {
                    let w = cache.weights.get(r, c * ct + k);
                    let centroid = pq.centroid(c, k);
                    let grad_row = centroid_grad.row_mut(c * ct + k);
                    let mut dot = 0.0;
                    for d in 0..v {
                        grad_row[d] += w * d_soft_sub[d];
                        dot += d_soft_sub[d] * centroid[d];
                    }
                    dw_soft[k] = dot;
                }
                // Path 2: through the softmax weights.
                // ds_k = w_k (dw_k − Σ_j w_j dw_j); dd_k = −ds_k / τ.
                let avg: f32 = (0..ct)
                    .map(|k| cache.weights.get(r, c * ct + k) * dw_soft[k])
                    .sum();
                for k in 0..ct {
                    let w = cache.weights.get(r, c * ct + k);
                    let ds = w * (dw_soft[k] - avg);
                    let dd = -ds / self.tau;
                    let centroid = pq.centroid(c, k);
                    let grad_row = centroid_grad.row_mut(c * ct + k);
                    for d in 0..v {
                        // ∂d²/∂c = 2(c − sub); ∂d²/∂sub = 2(sub − c).
                        grad_row[d] += dd * 2.0 * (centroid[d] - sub[d]);
                        let cur = dx.get(r, c * v + d);
                        dx.set(r, c * v + d, cur + dd * 2.0 * (sub[d] - centroid[d]));
                    }
                }
            }
        }
        Ok(dx)
    }
}

// ----- Generic block plumbing -----

struct GenBlockCache<C> {
    qkv_c: C,
    proj_c: C,
    ffn1_c: C,
    ffn2_c: C,
    q: Matrix,
    k: Matrix,
    v: Matrix,
    probs: Vec<Matrix>,
    ln1_cache: norm::LayerNormCache,
    ln2_cache: norm::LayerNormCache,
    ffn1_pre: Matrix,
}

fn gen_block_forward<O: QuantOp>(
    op: &O,
    block: &EncoderBlock,
    pqs: &[ProductQuantizer],
    x: &Matrix,
) -> Result<(Matrix, GenBlockCache<O::Cache>)> {
    let hidden = block.attn.qkv.in_features();
    let heads = block.attn.heads();
    let dk = hidden / heads;
    let scale = 1.0 / (dk as f32).sqrt();
    let n = x.rows();

    let (qkv_out, qkv_c) = op.forward(&block.attn.qkv, &pqs[0], x)?;
    let q = qkv_out.submatrix(0, 0, n, hidden)?;
    let k = qkv_out.submatrix(0, hidden, n, hidden)?;
    let v = qkv_out.submatrix(0, 2 * hidden, n, hidden)?;
    let mut concat = Matrix::zeros(n, hidden);
    let mut probs = Vec::with_capacity(heads);
    for head in 0..heads {
        let qh = q.submatrix(0, head * dk, n, dk)?;
        let kh = k.submatrix(0, head * dk, n, dk)?;
        let vh = v.submatrix(0, head * dk, n, dk)?;
        let scores = gemm::matmul(&qh, &kh.transpose())?.scale(scale);
        let p = norm::softmax(&scores);
        let oh = gemm::matmul(&p, &vh)?;
        concat.set_submatrix(0, head * dk, &oh)?;
        probs.push(p);
    }
    let (proj_out, proj_c) = op.forward(&block.attn.proj, &pqs[1], &concat)?;
    let res1 = x.add(&proj_out)?;
    let (x1, ln1_cache) = block.ln1.forward(&res1)?;

    let (ffn1_pre, ffn1_c) = op.forward(&block.ffn1, &pqs[2], &x1)?;
    let gelu_out = elementwise::gelu(&ffn1_pre);
    let (ffn2_out, ffn2_c) = op.forward(&block.ffn2, &pqs[3], &gelu_out)?;
    let res2 = x1.add(&ffn2_out)?;
    let (x2, ln2_cache) = block.ln2.forward(&res2)?;

    Ok((
        x2,
        GenBlockCache {
            qkv_c,
            proj_c,
            ffn1_c,
            ffn2_c,
            q,
            k,
            v,
            probs,
            ln1_cache,
            ln2_cache,
            ffn1_pre,
        },
    ))
}

#[allow(clippy::too_many_arguments)]
fn gen_block_backward<O: QuantOp>(
    op: &O,
    block: &mut EncoderBlock,
    pqs: &[ProductQuantizer],
    centroid_grads: &mut [Matrix],
    cache: &GenBlockCache<O::Cache>,
    dy: &Matrix,
    aux_loss: &mut f32,
) -> Result<Matrix> {
    let hidden = block.attn.qkv.in_features();
    let heads = block.attn.heads();
    let dk = hidden / heads;
    let scale = 1.0 / (dk as f32).sqrt();
    let n = dy.rows();

    let d_res2 = block.ln2.backward(&cache.ln2_cache, dy)?;
    let d_gelu_out = op.backward(
        &mut block.ffn2,
        &pqs[3],
        &mut centroid_grads[3],
        &cache.ffn2_c,
        &d_res2,
        aux_loss,
    )?;
    let d_ffn1_pre = d_gelu_out.hadamard(&elementwise::gelu_grad(&cache.ffn1_pre))?;
    let dx1_ffn = op.backward(
        &mut block.ffn1,
        &pqs[2],
        &mut centroid_grads[2],
        &cache.ffn1_c,
        &d_ffn1_pre,
        aux_loss,
    )?;
    let dx1 = d_res2.add(&dx1_ffn)?;
    let d_res1 = block.ln1.backward(&cache.ln1_cache, &dx1)?;

    // Attention backward.
    let dconcat = op.backward(
        &mut block.attn.proj,
        &pqs[1],
        &mut centroid_grads[1],
        &cache.proj_c,
        &d_res1,
        aux_loss,
    )?;
    let mut dqkv = Matrix::zeros(n, 3 * hidden);
    for head in 0..heads {
        let qh = cache.q.submatrix(0, head * dk, n, dk)?;
        let kh = cache.k.submatrix(0, head * dk, n, dk)?;
        let vh = cache.v.submatrix(0, head * dk, n, dk)?;
        let p = &cache.probs[head];
        let doh = dconcat.submatrix(0, head * dk, n, dk)?;

        let dvh = gemm::matmul(&p.transpose(), &doh)?;
        let dp = gemm::matmul(&doh, &vh.transpose())?;
        let mut ds = Matrix::zeros(n, n);
        for i in 0..n {
            let p_row = p.row(i);
            let dp_row = dp.row(i);
            let dot: f32 = p_row.iter().zip(dp_row).map(|(a, b)| a * b).sum();
            for j in 0..n {
                ds.set(i, j, p_row[j] * (dp_row[j] - dot));
            }
        }
        let ds = ds.scale(scale);
        let dqh = gemm::matmul(&ds, &kh)?;
        let dkh = gemm::matmul(&ds.transpose(), &qh)?;
        dqkv.set_submatrix(0, head * dk, &dqh)?;
        dqkv.set_submatrix(0, hidden + head * dk, &dkh)?;
        dqkv.set_submatrix(0, 2 * hidden + head * dk, &dvh)?;
    }
    let dx_attn = op.backward(
        &mut block.attn.qkv,
        &pqs[0],
        &mut centroid_grads[0],
        &cache.qkv_c,
        &dqkv,
        aux_loss,
    )?;
    Ok(d_res1.add(&dx_attn)?)
}

// ---------------------------------------------------------------------------
// Generic training loop
// ---------------------------------------------------------------------------

#[allow(clippy::too_many_arguments)]
fn calibrate_with_op<O: QuantOp>(
    op: &O,
    model: &TransformerClassifier,
    calib: &Dataset,
    mut quantizers: Vec<ProductQuantizer>,
    lr: f32,
    epochs: usize,
    batch_size: usize,
    seed: u64,
    train_weights: bool,
) -> Result<(TransformerClassifier, Vec<ProductQuantizer>, CalibStats)> {
    let mut rng = DataRng::new(seed);
    let mut model = model.clone();
    let n_blocks = model.num_blocks();

    let mut opt = Adam::new(lr);
    let mut order: Vec<usize> = (0..calib.len()).collect();
    let mut losses = Vec::with_capacity(epochs);
    let mut recon_losses = Vec::with_capacity(epochs);

    let mut n_model_params = 0usize;
    model.visit_params(&mut |_| n_model_params += 1);

    for _ in 0..epochs {
        rng.shuffle(&mut order);
        let mut epoch_loss = 0.0;
        let mut epoch_aux = 0.0;
        for batch in order.chunks(batch_size.max(1)) {
            model.zero_grads();
            let mut centroid_grads: Vec<Matrix> = quantizers
                .iter()
                .map(|pq| Matrix::zeros(pq.cb() * pq.ct(), pq.v()))
                .collect();

            for &i in batch {
                let input = &calib.inputs[i];
                let label = calib.labels[i];

                let (mut x, emb_cache) = model.embedding.forward(input)?;
                let mut block_caches = Vec::with_capacity(n_blocks);
                for (b, block) in model.blocks.iter().enumerate() {
                    let (next, cache) =
                        gen_block_forward(op, block, &quantizers[b * 4..b * 4 + 4], &x)?;
                    block_caches.push(cache);
                    x = next;
                }
                let seq_len = x.rows();
                let hidden = model.hidden();
                let mut pooled = Matrix::zeros(1, hidden);
                for r in 0..seq_len {
                    for (acc, v) in pooled.row_mut(0).iter_mut().zip(x.row(r)) {
                        *acc += v / seq_len as f32;
                    }
                }
                let logits = model.head.forward(&pooled)?;
                let ce = cross_entropy(&logits, &[label])?;
                epoch_loss += ce.loss;

                let dlogits = ce.dlogits.scale(1.0 / batch.len() as f32);
                let d_pooled = model.head.backward(&pooled, &dlogits)?;
                let mut dx = Matrix::zeros(seq_len, hidden);
                for r in 0..seq_len {
                    for (v, g) in dx.row_mut(r).iter_mut().zip(d_pooled.row(0)) {
                        *v = g / seq_len as f32;
                    }
                }
                let mut aux = 0.0;
                for (b, block) in model.blocks.iter_mut().enumerate().rev() {
                    dx = gen_block_backward(
                        op,
                        block,
                        &quantizers[b * 4..b * 4 + 4],
                        &mut centroid_grads[b * 4..b * 4 + 4],
                        &block_caches[b],
                        &dx,
                        &mut aux,
                    )?;
                }
                epoch_aux += aux;
                model.embedding.backward(&emb_cache, &dx)?;
            }

            opt.begin_step();
            let mut idx = 0;
            model.visit_params(&mut |p| {
                if train_weights {
                    let grad = p.grad.as_slice().to_vec();
                    opt.step(idx, p.data.as_mut_slice(), &grad);
                }
                idx += 1;
            });
            for (qi, pq) in quantizers.iter_mut().enumerate() {
                let grad = centroid_grads[qi].as_slice().to_vec();
                opt.step(
                    n_model_params + qi,
                    pq.centroids_mut().as_mut_slice(),
                    &grad,
                );
            }
        }
        losses.push(epoch_loss / calib.len().max(1) as f32);
        recon_losses.push(epoch_aux / calib.len().max(1) as f32);
    }

    Ok((
        model,
        quantizers,
        CalibStats {
            losses,
            recon_losses,
        },
    ))
}

// ---------------------------------------------------------------------------
// Public entry points
// ---------------------------------------------------------------------------

/// Runs eLUT-NN calibration: centroid initialization, then joint Adam
/// fine-tuning of model parameters and centroids under Eq. 1 with STE.
///
/// Returns the fine-tuned model, the calibrated quantizers, and per-epoch
/// stats.
///
/// # Errors
///
/// Propagates shape/clustering errors.
pub fn calibrate_elutnn(
    model: &TransformerClassifier,
    calib: &Dataset,
    cfg: &CalibrationConfig,
) -> Result<(TransformerClassifier, Vec<ProductQuantizer>, CalibStats)> {
    let mut rng = DataRng::new(cfg.seed);
    let quantizers = init_quantizers(
        model,
        &calib.inputs,
        cfg.v,
        cfg.ct,
        cfg.init,
        cfg.kmeans_iters,
        cfg.max_activation_rows,
        &mut rng,
    )?;
    // eLUT-NN jointly calibrates centroids and model weights ("minor
    // parameter updates", §4.2).
    calibrate_with_op(
        &SteOp { beta: cfg.beta },
        model,
        calib,
        quantizers,
        cfg.lr,
        cfg.epochs,
        cfg.batch_size,
        cfg.seed ^ 0x1111,
        true,
    )
}

/// Full eLUT-NN conversion: calibrate, then build the LUT inference model.
///
/// # Errors
///
/// Propagates calibration and conversion errors.
pub fn convert_elutnn(
    model: &TransformerClassifier,
    calib: &Dataset,
    cfg: &CalibrationConfig,
) -> Result<(LutClassifier, CalibStats)> {
    let (tuned, quantizers, stats) = calibrate_elutnn(model, calib, cfg)?;
    Ok((LutClassifier::convert(&tuned, quantizers)?, stats))
}

/// Runs the baseline LUT-NN calibration (the paper's comparison algorithm):
/// soft-assignment (Gumbel-softmax-style) gradient estimation, model loss
/// only.
///
/// # Errors
///
/// Propagates shape/clustering errors.
pub fn calibrate_lutnn_baseline(
    model: &TransformerClassifier,
    train_set: &Dataset,
    cfg: &BaselineLutNnConfig,
) -> Result<(TransformerClassifier, Vec<ProductQuantizer>, CalibStats)> {
    let mut rng = DataRng::new(cfg.seed);
    let quantizers = init_quantizers(
        model,
        &train_set.inputs,
        cfg.v,
        cfg.ct,
        cfg.init,
        cfg.kmeans_iters,
        cfg.max_activation_rows,
        &mut rng,
    )?;
    let op = if cfg.gumbel_noise {
        SoftOp::gumbel(cfg.tau, cfg.seed ^ 0x6b1)
    } else {
        SoftOp::deterministic(cfg.tau)
    };
    // The baseline learns centroids only (layer-by-layer backprop through
    // the soft estimator); model weights stay at their pre-trained values.
    calibrate_with_op(
        &op,
        model,
        train_set,
        quantizers,
        cfg.lr,
        cfg.epochs,
        cfg.batch_size,
        cfg.seed ^ 0x2222,
        false,
    )
}

/// Full baseline LUT-NN conversion: soft-assignment training, then hard
/// (argmin) LUT inference — the train/inference mismatch is part of the
/// baseline's failure mode.
///
/// # Errors
///
/// Propagates calibration and conversion errors.
pub fn convert_lutnn_baseline(
    model: &TransformerClassifier,
    train_set: &Dataset,
    cfg: &BaselineLutNnConfig,
) -> Result<(LutClassifier, CalibStats)> {
    let (tuned, quantizers, stats) = calibrate_lutnn_baseline(model, train_set, cfg)?;
    Ok((LutClassifier::convert(&tuned, quantizers)?, stats))
}

/// Backwards-compatible alias: the clustering-only conversion used as an
/// additional ablation in the examples and tests.
///
/// # Errors
///
/// Propagates collection, clustering, and conversion errors.
pub fn convert_baseline(
    model: &TransformerClassifier,
    calib: &Dataset,
    cfg: &CalibrationConfig,
    rng: &mut DataRng,
) -> Result<LutClassifier> {
    let quantizers = init_quantizers(
        model,
        &calib.inputs,
        cfg.v,
        cfg.ct,
        CentroidInit::KMeans,
        cfg.kmeans_iters,
        cfg.max_activation_rows,
        rng,
    )?;
    LutClassifier::convert(model, quantizers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convert::lut_accuracy;
    use pimdl_nn::data::{nlp_dataset, NlpTask};
    use pimdl_nn::train::{evaluate, train, TrainConfig};
    use pimdl_nn::transformer::{InputKind, ModelConfig};

    fn trained_model_and_data(seed: u64) -> (TransformerClassifier, Dataset, Dataset, DataRng) {
        let mut rng = DataRng::new(seed);
        let mut ds = nlp_dataset(NlpTask::ContainsAnswer, 180, 12, 6, &mut rng);
        let test = ds.split_off(40);
        let cfg = ModelConfig {
            input: InputKind::Tokens { vocab: 12 },
            hidden: 16,
            heads: 2,
            layers: 2,
            ffn_dim: 32,
            max_seq: 6,
            classes: 2,
        };
        let mut model = TransformerClassifier::new(&cfg, &mut rng);
        train(
            &mut model,
            &ds,
            &TrainConfig {
                epochs: 8,
                batch_size: 8,
                lr: 3e-3,
                schedule: Default::default(),
                seed: 1,
            },
        )
        .unwrap();
        (model, ds, test, rng)
    }

    #[test]
    fn collect_activations_shapes() {
        let (model, ds, _, _) = trained_model_and_data(0);
        let acts = collect_activations(&model, &ds.inputs[..10], 1000).unwrap();
        assert_eq!(acts.len(), 8); // 2 blocks * 4 layers
        assert_eq!(acts[0].cols(), 16);
        assert_eq!(acts[1].cols(), 16);
        assert_eq!(acts[2].cols(), 16);
        assert_eq!(acts[3].cols(), 32);
        assert_eq!(acts[0].rows(), 60); // 10 sequences of length 6
    }

    #[test]
    fn collect_activations_respects_row_cap() {
        let (model, ds, _, _) = trained_model_and_data(1);
        let acts = collect_activations(&model, &ds.inputs[..10], 25).unwrap();
        for a in &acts {
            assert!(a.rows() <= 25 + 6, "rows={}", a.rows());
        }
    }

    #[test]
    fn random_init_quantizers_match_activation_scale() {
        let (model, ds, _, mut rng) = trained_model_and_data(2);
        let qs = init_quantizers(
            &model,
            &ds.inputs[..10],
            4,
            8,
            CentroidInit::Random,
            5,
            1000,
            &mut rng,
        )
        .unwrap();
        assert_eq!(qs.len(), 8);
        for pq in &qs {
            assert!(pq.centroids().iter().all(|v| v.is_finite()));
            assert!(pq.centroids().max_abs() > 0.0);
        }
    }

    #[test]
    fn per_op_quantizer_settings_build_a_heterogeneous_model() {
        // The per-layer capacity allocator emits one (V, CT) per operator
        // slot; conversion must accept the resulting mixed quantizers.
        let (model, ds, test, mut rng) = trained_model_and_data(9);
        let settings = [(4usize, 8usize), (2, 8), (8, 8), (4, 4)];
        let qs = init_quantizers_per_op(
            &model,
            &ds.inputs[..10],
            &settings,
            CentroidInit::KMeans,
            5,
            512,
            &mut rng,
        )
        .unwrap();
        assert_eq!(qs.len(), 8); // 2 blocks × 4 slots
        for (l, pq) in qs.iter().enumerate() {
            let (v, ct) = settings[l % 4];
            assert_eq!(pq.v(), v, "slot {l}");
            assert_eq!(pq.ct(), ct, "slot {l}");
        }
        // QKV/O/FFN1 read H=16, FFN2 reads ffn_dim=32.
        assert_eq!(qs[0].cb(), 4);
        assert_eq!(qs[1].cb(), 8);
        assert_eq!(qs[2].cb(), 2);
        assert_eq!(qs[3].cb(), 8);

        let converted = LutClassifier::convert(&model, qs).unwrap();
        let acc = lut_accuracy(&converted, &test, false).unwrap();
        assert!((0.0..=1.0).contains(&acc));
    }

    #[test]
    fn per_op_settings_must_be_a_quadruple() {
        let (model, ds, _, mut rng) = trained_model_and_data(10);
        let err = init_quantizers_per_op(
            &model,
            &ds.inputs[..4],
            &[(4, 8), (2, 8)],
            CentroidInit::KMeans,
            5,
            512,
            &mut rng,
        );
        assert!(err.is_err());
    }

    #[test]
    fn kmeans_only_conversion_runs() {
        let (model, ds, test, mut rng) = trained_model_and_data(3);
        let converted =
            convert_kmeans_only(&model, &ds.take(30), 2, 16, 10, 2048, &mut rng).unwrap();
        let acc = lut_accuracy(&converted, &test, false).unwrap();
        assert!((0.0..=1.0).contains(&acc));
    }

    #[test]
    fn elutnn_recovers_from_random_init() {
        // The A2 claim in miniature: starting from *random* centroids
        // (§6.2's setting), eLUT-NN calibration recovers accuracy close to
        // the original model.
        let (model, ds, test, _) = trained_model_and_data(4);
        let original_acc = evaluate(&model, &test).unwrap();

        let cfg = CalibrationConfig {
            v: 4,
            ct: 8,
            init: CentroidInit::Random,
            kmeans_iters: 0,
            beta: 1e-3,
            lr: 3e-3,
            epochs: 8,
            batch_size: 8,
            seed: 5,
            max_activation_rows: 2048,
        };
        let calib_set = ds.take(60);
        let (elut, stats) = convert_elutnn(&model, &calib_set, &cfg).unwrap();
        let elut_acc = lut_accuracy(&elut, &test, false).unwrap();
        assert!(!stats.losses.is_empty());
        assert!(
            elut_acc >= original_acc - 0.3,
            "eLUT-NN {elut_acc} too far below original {original_acc}"
        );
    }

    #[test]
    fn elutnn_beats_soft_baseline_from_random_init() {
        // The Tables 4/5 ordering: from random centroid init, the
        // soft-assignment baseline trails eLUT-NN.
        let (model, ds, test, _) = trained_model_and_data(6);
        let calib_set = ds.take(60);

        let bcfg = BaselineLutNnConfig {
            v: 4,
            ct: 8,
            init: CentroidInit::Random,
            kmeans_iters: 0,
            tau: 1.0,
            gumbel_noise: true,
            lr: 3e-3,
            epochs: 8,
            batch_size: 8,
            seed: 5,
            max_activation_rows: 2048,
        };
        let (baseline, _) = convert_lutnn_baseline(&model, &calib_set, &bcfg).unwrap();
        let baseline_acc = lut_accuracy(&baseline, &test, false).unwrap();

        let ecfg = CalibrationConfig {
            v: 4,
            ct: 8,
            init: CentroidInit::Random,
            kmeans_iters: 0,
            beta: 1e-3,
            lr: 3e-3,
            epochs: 8,
            batch_size: 8,
            seed: 5,
            max_activation_rows: 2048,
        };
        let (elut, _) = convert_elutnn(&model, &calib_set, &ecfg).unwrap();
        let elut_acc = lut_accuracy(&elut, &test, false).unwrap();

        assert!(
            elut_acc >= baseline_acc - 0.05,
            "eLUT-NN {elut_acc} should not trail the soft baseline {baseline_acc}"
        );
    }

    #[test]
    fn calibration_reduces_combined_loss() {
        let (model, ds, _, _) = trained_model_and_data(4);
        let cfg = CalibrationConfig {
            v: 4,
            ct: 8,
            epochs: 5,
            lr: 2e-3,
            ..CalibrationConfig::default()
        };
        let (_, _, stats) = calibrate_elutnn(&model, &ds.take(40), &cfg).unwrap();
        assert_eq!(stats.losses.len(), 5);
        let first_ce = stats.losses[0];
        let last_ce = *stats.losses.last().unwrap();
        assert!(
            last_ce <= first_ce * 1.1 + 1e-3,
            "model losses regressed: {:?}",
            stats.losses
        );
        for &r in &stats.recon_losses {
            assert!(r.is_finite() && r >= 0.0, "recon={:?}", stats.recon_losses);
        }
        assert!(
            *stats.recon_losses.last().unwrap() <= stats.recon_losses[0] * 5.0 + 1e-3,
            "recon blew up: {:?}",
            stats.recon_losses
        );
    }

    #[test]
    fn baseline_reports_zero_recon_loss() {
        let (model, ds, _, _) = trained_model_and_data(7);
        let cfg = BaselineLutNnConfig {
            v: 4,
            ct: 8,
            epochs: 2,
            ..BaselineLutNnConfig::default()
        };
        let (_, _, stats) = calibrate_lutnn_baseline(&model, &ds.take(30), &cfg).unwrap();
        assert!(stats.recon_losses.iter().all(|&r| r == 0.0));
        assert_eq!(stats.losses.len(), 2);
    }

    #[test]
    fn soft_forward_approaches_hard_snap_at_low_temperature() {
        // As τ → 0 the soft assignment concentrates on the nearest
        // centroid, so SoftOp's forward converges to SteOp's snapped input.
        let (model, ds, _, mut rng) = trained_model_and_data(8);
        let qs = init_quantizers(
            &model,
            &ds.inputs[..10],
            4,
            4,
            CentroidInit::KMeans,
            10,
            512,
            &mut rng,
        )
        .unwrap();
        let pq = &qs[0];
        let linear = &model.blocks[0].attn.qkv;
        let x = rng.normal_matrix(6, 16, 0.0, 1.0);

        let cold = SoftOp::deterministic(1e-4);
        let (_, soft_cache) = cold.forward(linear, pq, &x).unwrap();
        let (hard, _) = pq.snap(&x).unwrap();
        assert!(
            soft_cache.x_soft.approx_eq(&hard, 1e-2),
            "max diff {}",
            soft_cache.x_soft.sub(&hard).unwrap().max_abs()
        );

        let hot = SoftOp::deterministic(1e6);
        let (_, hot_cache) = hot.forward(linear, pq, &x).unwrap();
        // At huge temperature every weight is ~1/CT.
        let w0 = hot_cache.weights.get(0, 0);
        assert!((w0 - 0.25).abs() < 1e-3, "w0={w0}");
    }

    #[test]
    fn soft_backward_matches_finite_difference() {
        // Gradient check of the soft-assignment estimator on a single
        // layer: loss = sum(dy ⊙ forward(x)).
        let mut rng = DataRng::new(60);
        let mut linear = Linear::new(8, 4, &mut rng);
        let acts = rng.normal_matrix(64, 8, 0.0, 1.0);
        let pq = ProductQuantizer::fit(&acts, 4, 4, 10, &mut rng).unwrap();
        let x = rng.normal_matrix(5, 8, 0.0, 1.0);
        let dy = rng.normal_matrix(5, 4, 0.0, 1.0);
        let op = SoftOp::deterministic(0.7);

        let (_, cache) = op.forward(&linear, &pq, &x).unwrap();
        let mut centroid_grad = Matrix::zeros(pq.cb() * pq.ct(), pq.v());
        let mut aux = 0.0;
        let dx = op
            .backward(&mut linear, &pq, &mut centroid_grad, &cache, &dy, &mut aux)
            .unwrap();

        let loss = |pq: &ProductQuantizer, x: &Matrix| -> f32 {
            let (y, _) = op.forward(&linear, pq, x).unwrap();
            y.hadamard(&dy).unwrap().sum()
        };
        let h = 1e-3_f32;

        // dX check.
        let mut xp = x.clone();
        xp.set(2, 3, x.get(2, 3) + h);
        let mut xm = x.clone();
        xm.set(2, 3, x.get(2, 3) - h);
        let fd = (loss(&pq, &xp) - loss(&pq, &xm)) / (2.0 * h);
        assert!(
            (fd - dx.get(2, 3)).abs() < 5e-2,
            "dx fd={fd} analytic={}",
            dx.get(2, 3)
        );

        // Centroid gradient check.
        let (cr, cc) = (3usize, 1usize);
        let mut pp = pq.clone();
        let v0 = pp.centroids().get(cr, cc);
        pp.centroids_mut().set(cr, cc, v0 + h);
        let mut pm = pq.clone();
        pm.centroids_mut().set(cr, cc, v0 - h);
        let fd = (loss(&pp, &x) - loss(&pm, &x)) / (2.0 * h);
        let analytic = centroid_grad.get(cr, cc);
        assert!(
            (fd - analytic).abs() < 5e-2,
            "dc fd={fd} analytic={analytic}"
        );
    }

    #[test]
    fn recon_gradient_descends_reconstruction_loss() {
        // Isolate the reconstruction gradient: gradient-descend centroids of
        // a single linear layer with zero model-loss signal (dy = 0) and
        // verify β·||(Â − A)W||² strictly decreases.
        let mut rng = DataRng::new(50);
        let mut linear = Linear::new(8, 4, &mut rng);
        let acts = rng.normal_matrix(128, 8, 0.0, 1.0);
        let mut pq = ProductQuantizer::fit(&acts, 4, 4, 3, &mut rng).unwrap();
        let x = rng.normal_matrix(32, 8, 0.0, 1.0);
        let dy = Matrix::zeros(32, 4);
        let op = SteOp { beta: 1.0 };

        let mut losses = Vec::new();
        for _ in 0..80 {
            let (_, cache) = op.forward(&linear, &pq, &x).unwrap();
            let mut centroid_grad = Matrix::zeros(pq.cb() * pq.ct(), pq.v());
            let mut recon = 0.0;
            linear.weight.zero_grad();
            linear.bias.zero_grad();
            op.backward(
                &mut linear,
                &pq,
                &mut centroid_grad,
                &cache,
                &dy,
                &mut recon,
            )
            .unwrap();
            losses.push(recon);
            for (c, g) in pq.centroids_mut().iter_mut().zip(centroid_grad.iter()) {
                *c -= 0.002 * g;
            }
        }
        let first = losses[0];
        let last = *losses.last().unwrap();
        assert!(
            last < first * 0.9,
            "recon loss did not descend: first={first} last={last}"
        );
    }

    #[test]
    fn centroids_stay_finite_during_calibration() {
        let (model, ds, _, _) = trained_model_and_data(6);
        let cfg = CalibrationConfig {
            v: 4,
            ct: 8,
            epochs: 2,
            ..CalibrationConfig::default()
        };
        let (_, tuned, _) = calibrate_elutnn(&model, &ds.take(20), &cfg).unwrap();
        for pq in &tuned {
            assert!(pq.centroids().iter().all(|v| v.is_finite()));
        }
    }
}
