//! Product quantization of activation matrices: codebooks and the
//! closest-centroid search (CCS) operator.
//!
//! An `N x H` activation matrix is split along `H` into `CB = H / V`
//! columns of `1 x V` sub-vectors (paper §3.1). Each column owns a codebook
//! of `CT` centroids. [`ProductQuantizer::encode`] is the CCS operator
//! (steps ❹–❺ of Fig. 2): it emits an [`IndexMatrix`] of shape `N x CB`
//! whose entries select centroids.

use pimdl_tensor::rng::DataRng;
use pimdl_tensor::Matrix;
use serde::{Deserialize, Serialize};

use crate::kernels::InterleavedCodebooks;
use crate::kmeans::{kmeans, sq_dist};
use crate::{LutError, Result};

/// The index matrix produced by closest-centroid search.
///
/// Entry `(n, cb)` is the centroid index (`< CT`) chosen for row `n`'s
/// sub-vector in codebook column `cb`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IndexMatrix {
    rows: usize,
    cols: usize,
    data: Vec<u16>,
}

impl IndexMatrix {
    /// Creates an index matrix from raw data.
    ///
    /// # Errors
    ///
    /// Returns [`LutError::Config`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<u16>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LutError::Config {
                op: "IndexMatrix::from_vec",
                detail: format!("{} entries for {rows}x{cols}", data.len()),
            });
        }
        Ok(IndexMatrix { rows, cols, data })
    }

    /// Number of activation rows `N`.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of codebook columns `CB`.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Index at `(row, cb)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn get(&self, row: usize, cb: usize) -> u16 {
        debug_assert!(row < self.rows && cb < self.cols);
        self.data[row * self.cols + cb]
    }

    /// Borrows row `r` (one index per codebook).
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    #[inline]
    pub fn row(&self, r: usize) -> &[u16] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Extracts the sub-matrix of rows `[r0, r0 + h)`.
    ///
    /// # Errors
    ///
    /// Returns [`LutError::Config`] if the range exceeds the bounds.
    pub fn row_slice(&self, r0: usize, h: usize) -> Result<IndexMatrix> {
        if r0 + h > self.rows {
            return Err(LutError::Config {
                op: "IndexMatrix::row_slice",
                detail: format!("rows {r0}+{h} exceed {}", self.rows),
            });
        }
        Ok(IndexMatrix {
            rows: h,
            cols: self.cols,
            data: self.data[r0 * self.cols..(r0 + h) * self.cols].to_vec(),
        })
    }

    /// Size in bytes when transferred as one byte per index (`CT ≤ 256`,
    /// the paper's INT8 index setting) .
    pub fn size_bytes_u8(&self) -> usize {
        self.data.len()
    }

    /// All indices in row-major order.
    pub fn as_slice(&self) -> &[u16] {
        &self.data
    }
}

/// Per-layer product quantizer: `CB` codebooks of `CT` centroids of length
/// `V`.
///
/// Centroids are stored as a `(CB * CT) x V` matrix; codebook `cb`'s
/// centroid `ct` is row `cb * CT + ct`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProductQuantizer {
    v: usize,
    ct: usize,
    cb: usize,
    centroids: Matrix,
}

impl ProductQuantizer {
    /// Fits codebooks to an activation matrix by per-column k-means
    /// (paper §3.1 step ❶).
    ///
    /// * `activations`: `N x H` calibration activations.
    /// * `v`: sub-vector length (must divide `H`).
    /// * `ct`: centroids per codebook (must fit in `u16`).
    /// * `iters`: Lloyd iterations per codebook.
    ///
    /// # Errors
    ///
    /// Returns [`LutError::Config`] if `v` does not divide `H`, `ct` is 0 or
    /// exceeds `u16::MAX`, or the activation matrix is empty.
    pub fn fit(
        activations: &Matrix,
        v: usize,
        ct: usize,
        iters: usize,
        rng: &mut DataRng,
    ) -> Result<Self> {
        let (n, h) = activations.shape();
        Self::validate_dims(h, v, ct)?;
        if n == 0 {
            return Err(LutError::Config {
                op: "ProductQuantizer::fit",
                detail: "empty activation matrix".to_string(),
            });
        }
        if activations.iter().any(|v| !v.is_finite()) {
            return Err(LutError::Config {
                op: "ProductQuantizer::fit",
                detail: "activation matrix contains non-finite values".to_string(),
            });
        }
        let cb = h / v;
        let mut centroids = Matrix::zeros(cb * ct, v);
        for col in 0..cb {
            let mut subvecs = Matrix::zeros(n, v);
            for r in 0..n {
                subvecs
                    .row_mut(r)
                    .copy_from_slice(&activations.row(r)[col * v..(col + 1) * v]);
            }
            let result = kmeans(&subvecs, ct, iters, rng)?;
            for k in 0..ct {
                centroids
                    .row_mut(col * ct + k)
                    .copy_from_slice(result.centroids.row(k));
            }
        }
        Ok(ProductQuantizer {
            v,
            ct,
            cb,
            centroids,
        })
    }

    /// Creates a quantizer from an explicit centroid matrix
    /// (`(cb * ct) x v`).
    ///
    /// # Errors
    ///
    /// Returns [`LutError::Config`] on any dimension inconsistency.
    pub fn from_centroids(centroids: Matrix, v: usize, ct: usize) -> Result<Self> {
        if ct == 0 || ct > u16::MAX as usize {
            return Err(LutError::Config {
                op: "ProductQuantizer::from_centroids",
                detail: format!("ct={ct} out of range"),
            });
        }
        if centroids.cols() != v || !centroids.rows().is_multiple_of(ct) || centroids.rows() == 0 {
            return Err(LutError::Config {
                op: "ProductQuantizer::from_centroids",
                detail: format!(
                    "centroid matrix {}x{} inconsistent with v={v}, ct={ct}",
                    centroids.rows(),
                    centroids.cols()
                ),
            });
        }
        let cb = centroids.rows() / ct;
        Ok(ProductQuantizer {
            v,
            ct,
            cb,
            centroids,
        })
    }

    fn validate_dims(h: usize, v: usize, ct: usize) -> Result<()> {
        if v == 0 || h == 0 || !h.is_multiple_of(v) {
            return Err(LutError::Config {
                op: "ProductQuantizer",
                detail: format!("sub-vector length {v} must divide hidden dim {h}"),
            });
        }
        if ct == 0 || ct > u16::MAX as usize {
            return Err(LutError::Config {
                op: "ProductQuantizer",
                detail: format!("centroid count {ct} out of range"),
            });
        }
        Ok(())
    }

    /// Sub-vector length `V`.
    pub fn v(&self) -> usize {
        self.v
    }

    /// Centroids per codebook `CT`.
    pub fn ct(&self) -> usize {
        self.ct
    }

    /// Codebook count `CB = H / V`.
    pub fn cb(&self) -> usize {
        self.cb
    }

    /// Hidden dimension `H = CB * V` this quantizer applies to.
    pub fn hidden(&self) -> usize {
        self.cb * self.v
    }

    /// The raw centroid matrix, `(CB * CT) x V`.
    pub fn centroids(&self) -> &Matrix {
        &self.centroids
    }

    /// Mutable centroid matrix (used by eLUT-NN calibration updates).
    pub fn centroids_mut(&mut self) -> &mut Matrix {
        &mut self.centroids
    }

    /// Borrows centroid `ct` of codebook `cb` as a `V`-length slice.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn centroid(&self, cb: usize, ct: usize) -> &[f32] {
        debug_assert!(cb < self.cb && ct < self.ct);
        self.centroids.row(cb * self.ct + ct)
    }

    /// Closest-centroid search (the **CCS operator**, Fig. 2 steps ❹–❺).
    ///
    /// For every row and codebook column, finds the centroid with minimal
    /// L2 distance and records its index.
    ///
    /// # Errors
    ///
    /// Returns [`LutError::Config`] if `x.cols() != hidden()`.
    pub fn encode(&self, x: &Matrix) -> Result<IndexMatrix> {
        if x.cols() != self.hidden() {
            return Err(LutError::Config {
                op: "ProductQuantizer::encode",
                detail: format!("input width {} != H = {}", x.cols(), self.hidden()),
            });
        }
        let n = x.rows();
        let mut data = Vec::with_capacity(n * self.cb);
        for r in 0..n {
            let row = x.row(r);
            for col in 0..self.cb {
                let sub = &row[col * self.v..(col + 1) * self.v];
                data.push(self.nearest_in_codebook(col, sub) as u16);
            }
        }
        IndexMatrix::from_vec(n, self.cb, data)
    }

    /// CCS via the inner-product formulation the paper uses on the host:
    /// `argmin ||a - c||² = argmin (||c||² - 2 a·c)`.
    ///
    /// Produces identical indices to [`Self::encode`] up to floating-point
    /// tie-breaking; exists so the cost models and tests can exercise the
    /// GEMM-shaped CCS kernel (`3·N·H·CT` ops, §3.3).
    ///
    /// # Errors
    ///
    /// Returns [`LutError::Config`] if `x.cols() != hidden()`.
    pub fn encode_via_inner_product(&self, x: &Matrix) -> Result<IndexMatrix> {
        if x.cols() != self.hidden() {
            return Err(LutError::Config {
                op: "ProductQuantizer::encode_via_inner_product",
                detail: format!("input width {} != H = {}", x.cols(), self.hidden()),
            });
        }
        // Precompute ||c||² per centroid.
        let norms: Vec<f32> = (0..self.cb * self.ct)
            .map(|i| self.centroids.row(i).iter().map(|v| v * v).sum())
            .collect();
        let n = x.rows();
        let mut data = Vec::with_capacity(n * self.cb);
        for r in 0..n {
            let row = x.row(r);
            for col in 0..self.cb {
                let sub = &row[col * self.v..(col + 1) * self.v];
                let mut best = 0usize;
                let mut best_score = f32::INFINITY;
                for k in 0..self.ct {
                    let c = self.centroids.row(col * self.ct + k);
                    let dot: f32 = sub.iter().zip(c).map(|(a, b)| a * b).sum();
                    let score = norms[col * self.ct + k] - 2.0 * dot;
                    if score < best_score {
                        best_score = score;
                        best = k;
                    }
                }
                data.push(best as u16);
            }
        }
        IndexMatrix::from_vec(n, self.cb, data)
    }

    /// Multi-threaded CCS: identical results to [`Self::encode`], with
    /// activation rows partitioned across `threads` bands executed on the
    /// persistent worker pool. CCS is the host-side hot path of LUT-NN
    /// serving, and it is embarrassingly parallel over rows.
    ///
    /// This re-lays the centroids into the interleaved layout on every call;
    /// hot callers should hold an [`InterleavedCodebooks`] (see
    /// [`Self::interleaved`]) and call its encode methods directly.
    ///
    /// # Errors
    ///
    /// Returns [`LutError::Config`] if `x.cols() != hidden()` or
    /// `threads == 0`.
    pub fn encode_parallel(&self, x: &Matrix, threads: usize) -> Result<IndexMatrix> {
        if threads == 0 {
            return Err(LutError::Config {
                op: "ProductQuantizer::encode_parallel",
                detail: "thread count must be positive".to_string(),
            });
        }
        self.interleaved().encode_parallel(x, threads)
    }

    /// Re-lays the centroids into the cache-friendly
    /// [`InterleavedCodebooks`] layout used by the optimized CCS and fused
    /// kernels.
    pub fn interleaved(&self) -> InterleavedCodebooks {
        InterleavedCodebooks::from_quantizer(self)
    }

    fn nearest_in_codebook(&self, cb: usize, sub: &[f32]) -> usize {
        let mut best = 0;
        let mut best_d = f32::INFINITY;
        for k in 0..self.ct {
            let d = sq_dist(sub, self.centroid(cb, k));
            if d < best_d {
                best_d = d;
                best = k;
            }
        }
        best
    }

    /// Reconstructs the approximated activation matrix `Â` from indices
    /// (each sub-vector replaced by its centroid) — the `H(·)` operation of
    /// Eq. 1.
    ///
    /// # Errors
    ///
    /// Returns [`LutError::Config`] if `indices.cols() != cb()` or any index
    /// is out of the codebook's range.
    pub fn decode(&self, indices: &IndexMatrix) -> Result<Matrix> {
        if indices.cols() != self.cb {
            return Err(LutError::Config {
                op: "ProductQuantizer::decode",
                detail: format!("index width {} != CB = {}", indices.cols(), self.cb),
            });
        }
        let n = indices.rows();
        let mut out = Matrix::zeros(n, self.hidden());
        for r in 0..n {
            for col in 0..self.cb {
                let k = indices.get(r, col) as usize;
                if k >= self.ct {
                    return Err(LutError::Config {
                        op: "ProductQuantizer::decode",
                        detail: format!("index {k} >= CT = {}", self.ct),
                    });
                }
                out.row_mut(r)[col * self.v..(col + 1) * self.v]
                    .copy_from_slice(self.centroid(col, k));
            }
        }
        Ok(out)
    }

    /// Encode-then-decode: snaps every sub-vector of `x` to its nearest
    /// centroid. Returns `(Â, indices)`.
    ///
    /// # Errors
    ///
    /// Returns [`LutError::Config`] on width mismatch.
    pub fn snap(&self, x: &Matrix) -> Result<(Matrix, IndexMatrix)> {
        let indices = self.encode(x)?;
        let approx = self.decode(&indices)?;
        Ok((approx, indices))
    }

    /// Mean squared sub-vector quantization error of `x` under this
    /// quantizer.
    ///
    /// # Errors
    ///
    /// Returns [`LutError::Config`] on width mismatch.
    pub fn quantization_mse(&self, x: &Matrix) -> Result<f32> {
        let (approx, _) = self.snap(x)?;
        let diff = approx.sub(x)?;
        Ok(diff.frobenius_sq() / x.len().max(1) as f32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quantizer(
        seed: u64,
        n: usize,
        h: usize,
        v: usize,
        ct: usize,
    ) -> (ProductQuantizer, Matrix, DataRng) {
        let mut rng = DataRng::new(seed);
        let acts = rng.normal_matrix(n, h, 0.0, 1.0);
        let pq = ProductQuantizer::fit(&acts, v, ct, 15, &mut rng).unwrap();
        (pq, acts, rng)
    }

    #[test]
    fn fit_dimensions() {
        let (pq, _, _) = quantizer(0, 64, 12, 3, 8);
        assert_eq!(pq.v(), 3);
        assert_eq!(pq.ct(), 8);
        assert_eq!(pq.cb(), 4);
        assert_eq!(pq.hidden(), 12);
        assert_eq!(pq.centroids().shape(), (32, 3));
    }

    #[test]
    fn fit_rejects_bad_dims() {
        let mut rng = DataRng::new(1);
        let acts = rng.normal_matrix(8, 10, 0.0, 1.0);
        assert!(ProductQuantizer::fit(&acts, 3, 4, 5, &mut rng).is_err()); // 3 ∤ 10
        assert!(ProductQuantizer::fit(&acts, 0, 4, 5, &mut rng).is_err());
        assert!(ProductQuantizer::fit(&acts, 2, 0, 5, &mut rng).is_err());
        assert!(ProductQuantizer::fit(&Matrix::zeros(0, 10), 2, 4, 5, &mut rng).is_err());
    }

    #[test]
    fn encode_decode_shapes() {
        let (pq, acts, _) = quantizer(2, 32, 8, 2, 4);
        let idx = pq.encode(&acts).unwrap();
        assert_eq!(idx.rows(), 32);
        assert_eq!(idx.cols(), 4);
        assert!(idx.as_slice().iter().all(|&i| (i as usize) < 4));
        let decoded = pq.decode(&idx).unwrap();
        assert_eq!(decoded.shape(), (32, 8));
    }

    #[test]
    fn snap_is_idempotent() {
        let (pq, acts, _) = quantizer(3, 16, 8, 2, 4);
        let (snapped, _) = pq.snap(&acts).unwrap();
        let (snapped2, _) = pq.snap(&snapped).unwrap();
        assert!(snapped.approx_eq(&snapped2, 1e-6));
    }

    #[test]
    fn snap_reduces_to_exact_when_ct_covers_data() {
        // With as many centroids as distinct sub-vectors, snapping is
        // near-lossless on the calibration data itself.
        let mut rng = DataRng::new(4);
        // Build activations from only 4 distinct sub-vector values.
        let protos = rng.normal_matrix(4, 2, 0.0, 1.0);
        let acts = Matrix::from_fn(32, 8, |r, c| {
            let which = (r * 7 + c / 2) % 4;
            protos.get(which, c % 2)
        });
        let pq = ProductQuantizer::fit(&acts, 2, 4, 30, &mut rng).unwrap();
        let mse = pq.quantization_mse(&acts).unwrap();
        assert!(mse < 1e-6, "mse={mse}");
    }

    #[test]
    fn more_centroids_reduce_mse() {
        let mut rng = DataRng::new(5);
        let acts = rng.normal_matrix(256, 8, 0.0, 1.0);
        let mse4 = ProductQuantizer::fit(&acts, 2, 4, 20, &mut DataRng::new(9))
            .unwrap()
            .quantization_mse(&acts)
            .unwrap();
        let mse32 = ProductQuantizer::fit(&acts, 2, 32, 20, &mut DataRng::new(9))
            .unwrap()
            .quantization_mse(&acts)
            .unwrap();
        assert!(mse32 < mse4, "mse32={mse32} mse4={mse4}");
    }

    #[test]
    fn inner_product_encoding_matches_l2() {
        let (pq, acts, mut rng) = quantizer(6, 64, 8, 2, 8);
        let fresh = rng.normal_matrix(16, 8, 0.0, 1.0);
        for x in [&acts, &fresh] {
            let a = pq.encode(x).unwrap();
            let b = pq.encode_via_inner_product(x).unwrap();
            // Ties can break differently; verify distances are equal instead
            // of indices.
            for r in 0..x.rows() {
                for cb in 0..pq.cb() {
                    let sub = &x.row(r)[cb * 2..cb * 2 + 2];
                    let da = sq_dist(sub, pq.centroid(cb, a.get(r, cb) as usize));
                    let db = sq_dist(sub, pq.centroid(cb, b.get(r, cb) as usize));
                    assert!((da - db).abs() < 1e-5, "row {r} cb {cb}: {da} vs {db}");
                }
            }
        }
    }

    #[test]
    fn parallel_encode_matches_serial() {
        let (pq, acts, mut rng) = quantizer(20, 64, 8, 2, 8);
        let fresh = rng.normal_matrix(37, 8, 0.0, 1.0); // non-divisible row count
        for x in [&acts, &fresh] {
            let serial = pq.encode(x).unwrap();
            for threads in [1usize, 2, 3, 8, 64] {
                let parallel = pq.encode_parallel(x, threads).unwrap();
                assert_eq!(parallel, serial, "threads={threads}");
            }
        }
        // Empty input.
        let empty = pimdl_tensor::Matrix::zeros(0, 8);
        assert_eq!(pq.encode_parallel(&empty, 4).unwrap().rows(), 0);
        // Errors.
        assert!(pq
            .encode_parallel(&pimdl_tensor::Matrix::zeros(2, 6), 4)
            .is_err());
        assert!(pq.encode_parallel(&acts, 0).is_err());
    }

    #[test]
    fn encode_rejects_wrong_width() {
        let (pq, _, _) = quantizer(7, 16, 8, 2, 4);
        assert!(pq.encode(&Matrix::zeros(2, 6)).is_err());
        assert!(pq.encode_via_inner_product(&Matrix::zeros(2, 6)).is_err());
        let idx = IndexMatrix::from_vec(2, 3, vec![0; 6]).unwrap();
        assert!(pq.decode(&idx).is_err());
    }

    #[test]
    fn index_matrix_accessors() {
        let idx = IndexMatrix::from_vec(2, 3, vec![0, 1, 2, 3, 4, 5]).unwrap();
        assert_eq!(idx.get(1, 2), 5);
        assert_eq!(idx.row(0), &[0, 1, 2]);
        assert_eq!(idx.size_bytes_u8(), 6);
        let slice = idx.row_slice(1, 1).unwrap();
        assert_eq!(slice.row(0), &[3, 4, 5]);
        assert!(idx.row_slice(1, 2).is_err());
        assert!(IndexMatrix::from_vec(2, 3, vec![0; 5]).is_err());
    }

    #[test]
    fn from_centroids_validation() {
        let c = Matrix::zeros(8, 2);
        assert!(ProductQuantizer::from_centroids(c.clone(), 2, 4).is_ok());
        assert!(ProductQuantizer::from_centroids(c.clone(), 3, 4).is_err()); // wrong v
        assert!(ProductQuantizer::from_centroids(c.clone(), 2, 3).is_err()); // 3 ∤ 8
        assert!(ProductQuantizer::from_centroids(c, 2, 0).is_err());
        assert!(ProductQuantizer::from_centroids(Matrix::zeros(0, 2), 2, 4).is_err());
    }

    #[test]
    fn decode_uses_selected_centroids() {
        let centroids = Matrix::from_vec(4, 1, vec![10.0, 20.0, 30.0, 40.0]).unwrap();
        let pq = ProductQuantizer::from_centroids(centroids, 1, 2).unwrap();
        // cb=2 codebooks (rows 0-1 are codebook 0; rows 2-3 are codebook 1).
        let idx = IndexMatrix::from_vec(1, 2, vec![1, 0]).unwrap();
        let decoded = pq.decode(&idx).unwrap();
        assert_eq!(decoded.row(0), &[20.0, 30.0]);
    }
}
