//! LUT-NN core: the primary algorithmic contribution of PIM-DL.
//!
//! The LUT-based deep-learning paradigm (paper §3) replaces the GEMM of a
//! linear layer with:
//!
//! 1. **Conversion** (offline): cluster activation sub-vectors into per-column
//!    codebooks of `CT` centroids of length `V` ([`kmeans`], [`pq`]), then
//!    precompute centroid×weight partial products into look-up tables
//!    ([`lut`]).
//! 2. **Inference** (online): closest-centroid search produces an index
//!    matrix ([`pq::ProductQuantizer::encode`], the CCS operator), then the
//!    LUT operator gathers and accumulates precomputed partial sums
//!    ([`lut::LutTable::lookup`]).
//!
//! The [`calibrate`] module implements the paper's **eLUT-NN** algorithm
//! (§4.2): joint fine-tuning of centroids and weights with a reconstruction
//! loss (Eq. 1) and a straight-through estimator (Eq. 2), against the plain
//! k-means **baseline LUT-NN**. [`flops`] and [`roofline`] reproduce the
//! computation-reduction (Fig. 3) and arithmetic-intensity (Fig. 4) analyses.
//!
//! # Example
//!
//! ```rust
//! use pimdl_lutnn::pq::ProductQuantizer;
//! use pimdl_lutnn::lut::LutTable;
//! use pimdl_tensor::{gemm, rng::DataRng};
//!
//! let mut rng = DataRng::new(0);
//! let acts = rng.normal_matrix(64, 8, 0.0, 1.0);
//! let weight = rng.normal_matrix(8, 4, 0.0, 1.0); // H x F
//!
//! let pq = ProductQuantizer::fit(&acts, 2, 16, 10, &mut rng)?;
//! let lut = LutTable::build(&pq, &weight)?;
//!
//! let x = rng.normal_matrix(3, 8, 0.0, 1.0);
//! let approx = lut.lookup(&pq.encode(&x)?)?;        // LUT-NN path
//! let exact = gemm::matmul(&x, &weight)?;           // GEMM path
//! assert_eq!(approx.shape(), exact.shape());
//! # Ok::<(), pimdl_lutnn::LutError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod error;

pub mod calibrate;
pub mod convert;
pub mod flops;
pub mod kernels;
pub mod kmeans;
pub mod lut;
pub mod pq;
pub mod roofline;

pub use error::LutError;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, LutError>;
