use std::fmt;

use pimdl_tensor::TensorError;

/// Error type for LUT-NN conversion, inference, and calibration.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum LutError {
    /// An underlying tensor operation failed.
    Tensor(TensorError),
    /// The configuration (V, CT, CB, F, ...) is inconsistent with the data.
    Config {
        /// Human-readable description of the failing operation.
        op: &'static str,
        /// Explanation of the inconsistency.
        detail: String,
    },
    /// Clustering failed (for example too few samples for the requested
    /// number of centroids).
    Clustering {
        /// Explanation of the failure.
        detail: String,
    },
}

impl fmt::Display for LutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LutError::Tensor(e) => write!(f, "tensor error: {e}"),
            LutError::Config { op, detail } => write!(f, "invalid config in {op}: {detail}"),
            LutError::Clustering { detail } => write!(f, "clustering failed: {detail}"),
        }
    }
}

impl std::error::Error for LutError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LutError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for LutError {
    fn from(e: TensorError) -> Self {
        LutError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn display_and_source() {
        let inner = TensorError::InvalidDimension {
            op: "x",
            detail: "bad".to_string(),
        };
        let err = LutError::from(inner.clone());
        assert!(err.to_string().contains("tensor error"));
        assert!(err.source().is_some());

        let cfg = LutError::Config {
            op: "fit",
            detail: "V does not divide H".to_string(),
        };
        assert!(cfg.to_string().contains("fit"));
        assert!(cfg.source().is_none());

        let clus = LutError::Clustering {
            detail: "too few samples".to_string(),
        };
        assert!(clus.to_string().contains("too few samples"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LutError>();
    }
}
