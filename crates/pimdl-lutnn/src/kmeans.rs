//! Lloyd's k-means with k-means++ seeding.
//!
//! This is the centroid-clustering step of LUT-NN conversion (paper §3.1,
//! step ❶): activation sub-vectors within one column are clustered into `CT`
//! centroids of length `V`.

use pimdl_tensor::rng::DataRng;
use pimdl_tensor::Matrix;

use crate::kernels::assign_nearest;
use crate::{LutError, Result};

/// Result of a k-means run.
#[derive(Debug, Clone, PartialEq)]
pub struct KMeansResult {
    /// Centroid matrix, `k x dim`.
    pub centroids: Matrix,
    /// Cluster assignment of every input point.
    pub assignments: Vec<usize>,
    /// Final within-cluster sum of squared distances.
    pub inertia: f32,
    /// Number of Lloyd iterations actually performed.
    pub iterations: usize,
}

/// Squared Euclidean distance between two equal-length slices.
#[inline]
pub fn sq_dist(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Runs k-means on the rows of `points` (`n x dim`) with `k` clusters and at
/// most `max_iters` Lloyd iterations.
///
/// Seeding is k-means++; empty clusters are re-seeded from the point that is
/// currently farthest from its assigned centroid, so the result always has
/// `k` usable centroids (possibly duplicated when `n < k`).
///
/// # Errors
///
/// Returns [`LutError::Clustering`] if `points` is empty or `k == 0`.
#[allow(clippy::needless_range_loop)]
pub fn kmeans(
    points: &Matrix,
    k: usize,
    max_iters: usize,
    rng: &mut DataRng,
) -> Result<KMeansResult> {
    let n = points.rows();
    let dim = points.cols();
    if n == 0 || dim == 0 {
        return Err(LutError::Clustering {
            detail: format!("cannot cluster {n} points of dim {dim}"),
        });
    }
    if k == 0 {
        return Err(LutError::Clustering {
            detail: "k must be positive".to_string(),
        });
    }

    let mut centroids = kmeanspp_init(points, k, rng);
    let mut assignments = vec![0usize; n];
    let mut nearest = vec![(0usize, 0.0f32); n];
    let mut inertia = f32::INFINITY;
    let mut iterations = 0;

    for iter in 0..max_iters.max(1) {
        iterations = iter + 1;
        // Assignment step — the shared CCS kernel (interleaved distance
        // lanes, pool-parallel on large inputs).
        assign_nearest(points, &centroids, &mut nearest);
        let mut new_inertia = 0.0;
        for (assignment, &(best, best_d)) in assignments.iter_mut().zip(&nearest) {
            *assignment = best;
            new_inertia += best_d;
        }

        // Update step.
        let mut sums = Matrix::zeros(k, dim);
        let mut counts = vec![0usize; k];
        for (i, &a) in assignments.iter().enumerate() {
            counts[a] += 1;
            for (s, v) in sums.row_mut(a).iter_mut().zip(points.row(i)) {
                *s += v;
            }
        }
        for c in 0..k {
            if counts[c] > 0 {
                let inv = 1.0 / counts[c] as f32;
                let row: Vec<f32> = sums.row(c).iter().map(|s| s * inv).collect();
                centroids.row_mut(c).copy_from_slice(&row);
            } else {
                // Re-seed from the farthest point.
                let far = farthest_point(points, &centroids, &assignments);
                let row = points.row(far).to_vec();
                centroids.row_mut(c).copy_from_slice(&row);
            }
        }

        // Converged when inertia stops improving meaningfully.
        let converged = (inertia - new_inertia).abs() <= 1e-7 * (1.0 + inertia.abs());
        inertia = new_inertia;
        if converged {
            break;
        }
    }
    let _ = inertia; // superseded by the final assignment pass below

    // Final assignment pass so assignments are consistent with the returned
    // (post-update) centroids.
    inertia = 0.0;
    assign_nearest(points, &centroids, &mut nearest);
    for (assignment, &(best, best_d)) in assignments.iter_mut().zip(&nearest) {
        *assignment = best;
        inertia += best_d;
    }

    Ok(KMeansResult {
        centroids,
        assignments,
        inertia,
        iterations,
    })
}

/// Mini-batch k-means (Sculley 2010): each iteration samples `batch_size`
/// points and moves their nearest centroids toward them with a per-centroid
/// learning rate of `1 / count`. Far cheaper than Lloyd on large
/// calibration sets at a small inertia cost; the per-layer activation
/// matrices of a real calibration run (thousands of rows × hundreds of
/// codebooks) are exactly that regime.
///
/// A final full assignment pass produces assignments/inertia consistent
/// with the returned centroids.
///
/// # Errors
///
/// Returns [`LutError::Clustering`] on empty input or `k == 0`.
pub fn kmeans_minibatch(
    points: &Matrix,
    k: usize,
    iterations: usize,
    batch_size: usize,
    rng: &mut DataRng,
) -> Result<KMeansResult> {
    let n = points.rows();
    let dim = points.cols();
    if n == 0 || dim == 0 {
        return Err(LutError::Clustering {
            detail: format!("cannot cluster {n} points of dim {dim}"),
        });
    }
    if k == 0 {
        return Err(LutError::Clustering {
            detail: "k must be positive".to_string(),
        });
    }
    let batch_size = batch_size.clamp(1, n);
    let mut centroids = kmeanspp_init(points, k, rng);
    let mut counts = vec![1u64; k];

    for _ in 0..iterations.max(1) {
        for _ in 0..batch_size {
            let i = rng.index(n);
            let row = points.row(i);
            // Single-point search: the online update mutates a centroid
            // after every sample, so rows cannot be batched through
            // `assign_nearest` here.
            let (best, _) = nearest_row(&centroids, row);
            counts[best] += 1;
            let eta = 1.0 / counts[best] as f32;
            let centroid = centroids.row_mut(best);
            for (cv, &pv) in centroid.iter_mut().zip(row) {
                *cv += eta * (pv - *cv);
            }
        }
    }

    // Final assignment pass against the converged centroids.
    let mut assignments = vec![0usize; n];
    let mut nearest = vec![(0usize, 0.0f32); n];
    let mut inertia = 0.0;
    assign_nearest(points, &centroids, &mut nearest);
    for (assignment, &(best, best_d)) in assignments.iter_mut().zip(&nearest) {
        *assignment = best;
        inertia += best_d;
    }
    Ok(KMeansResult {
        centroids,
        assignments,
        inertia,
        iterations,
    })
}

fn kmeanspp_init(points: &Matrix, k: usize, rng: &mut DataRng) -> Matrix {
    let n = points.rows();
    let dim = points.cols();
    let mut centroids = Matrix::zeros(k, dim);
    let first = rng.index(n);
    centroids.row_mut(0).copy_from_slice(points.row(first));

    let mut dists: Vec<f32> = (0..n)
        .map(|i| sq_dist(points.row(i), centroids.row(0)))
        .collect();
    for c in 1..k {
        let total: f32 = dists.iter().sum();
        let chosen = if total <= 0.0 {
            rng.index(n)
        } else {
            let mut target = rng.uniform(0.0, total.max(f32::EPSILON));
            let mut chosen = n - 1;
            for (i, &d) in dists.iter().enumerate() {
                if target < d {
                    chosen = i;
                    break;
                }
                target -= d;
            }
            chosen
        };
        centroids.row_mut(c).copy_from_slice(points.row(chosen));
        for (i, d) in dists.iter_mut().enumerate() {
            *d = d.min(sq_dist(points.row(i), centroids.row(c)));
        }
    }
    centroids
}

/// Nearest centroid of a single point under strict-`<` first-wins argmin.
///
/// Only the mini-batch online update uses this; every full assignment pass
/// goes through [`assign_nearest`].
fn nearest_row(centroids: &Matrix, row: &[f32]) -> (usize, f32) {
    let mut best = 0;
    let mut best_d = f32::INFINITY;
    for c in 0..centroids.rows() {
        let d = sq_dist(row, centroids.row(c));
        if d < best_d {
            best_d = d;
            best = c;
        }
    }
    (best, best_d)
}

fn farthest_point(points: &Matrix, centroids: &Matrix, assignments: &[usize]) -> usize {
    let mut far = 0;
    let mut far_d = -1.0;
    for (i, &a) in assignments.iter().enumerate() {
        let d = sq_dist(points.row(i), centroids.row(a));
        if d > far_d {
            far_d = d;
            far = i;
        }
    }
    far
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blob_points(rng: &mut DataRng) -> Matrix {
        let mut points = Matrix::zeros(100, 2);
        for i in 0..50 {
            points.set(i, 0, rng.normal(-5.0, 0.3));
            points.set(i, 1, rng.normal(-5.0, 0.3));
        }
        for i in 50..100 {
            points.set(i, 0, rng.normal(5.0, 0.3));
            points.set(i, 1, rng.normal(5.0, 0.3));
        }
        points
    }

    #[test]
    fn separates_two_blobs() {
        let mut rng = DataRng::new(0);
        let points = two_blob_points(&mut rng);
        let result = kmeans(&points, 2, 50, &mut rng).unwrap();
        // Centroids near (-5,-5) and (5,5) in some order.
        let c0 = result.centroids.row(0);
        let c1 = result.centroids.row(1);
        let (neg, pos) = if c0[0] < 0.0 { (c0, c1) } else { (c1, c0) };
        assert!((neg[0] + 5.0).abs() < 0.5 && (neg[1] + 5.0).abs() < 0.5);
        assert!((pos[0] - 5.0).abs() < 0.5 && (pos[1] - 5.0).abs() < 0.5);
        // All points in the same blob share an assignment.
        let first_half = result.assignments[0];
        assert!(result.assignments[..50].iter().all(|&a| a == first_half));
        assert!(result.assignments[50..].iter().all(|&a| a != first_half));
    }

    #[test]
    fn inertia_never_increases_with_more_clusters() {
        let mut rng = DataRng::new(1);
        let points = rng.normal_matrix(200, 4, 0.0, 1.0);
        let mut prev = f32::INFINITY;
        for k in [1, 2, 4, 8, 16] {
            let result = kmeans(&points, k, 30, &mut DataRng::new(7)).unwrap();
            assert!(
                result.inertia <= prev * 1.05,
                "k={k}: inertia {} vs prev {prev}",
                result.inertia
            );
            prev = result.inertia;
        }
    }

    #[test]
    fn k_equals_n_gives_zero_inertia() {
        let mut rng = DataRng::new(2);
        let points = rng.normal_matrix(8, 3, 0.0, 1.0);
        let result = kmeans(&points, 8, 50, &mut rng).unwrap();
        assert!(result.inertia < 1e-6, "inertia={}", result.inertia);
    }

    #[test]
    fn k_greater_than_n_still_works() {
        let mut rng = DataRng::new(3);
        let points = rng.normal_matrix(3, 2, 0.0, 1.0);
        let result = kmeans(&points, 8, 10, &mut rng).unwrap();
        assert_eq!(result.centroids.rows(), 8);
        assert!(result.assignments.iter().all(|&a| a < 8));
    }

    #[test]
    fn identical_points_converge_immediately() {
        let points = Matrix::full(10, 2, 3.0);
        let mut rng = DataRng::new(4);
        let result = kmeans(&points, 2, 50, &mut rng).unwrap();
        assert!(result.inertia < 1e-10);
        assert!(result.iterations <= 3);
    }

    #[test]
    fn rejects_empty_input() {
        let mut rng = DataRng::new(5);
        assert!(kmeans(&Matrix::zeros(0, 2), 2, 10, &mut rng).is_err());
        assert!(kmeans(&Matrix::zeros(5, 0), 2, 10, &mut rng).is_err());
        assert!(kmeans(&Matrix::zeros(5, 2), 0, 10, &mut rng).is_err());
    }

    #[test]
    fn assignments_are_nearest_centroid() {
        let mut rng = DataRng::new(6);
        let points = rng.normal_matrix(60, 3, 0.0, 2.0);
        let result = kmeans(&points, 4, 40, &mut rng).unwrap();
        for i in 0..60 {
            let assigned = sq_dist(points.row(i), result.centroids.row(result.assignments[i]));
            for c in 0..4 {
                assert!(
                    assigned <= sq_dist(points.row(i), result.centroids.row(c)) + 1e-5,
                    "point {i} closer to centroid {c} than its assignment"
                );
            }
        }
    }

    #[test]
    fn minibatch_separates_two_blobs() {
        let mut rng = DataRng::new(10);
        let points = two_blob_points(&mut rng);
        let result = kmeans_minibatch(&points, 2, 40, 32, &mut rng).unwrap();
        let c0 = result.centroids.row(0);
        let c1 = result.centroids.row(1);
        let (neg, pos) = if c0[0] < 0.0 { (c0, c1) } else { (c1, c0) };
        assert!((neg[0] + 5.0).abs() < 1.0 && (pos[0] - 5.0).abs() < 1.0);
    }

    #[test]
    fn minibatch_inertia_close_to_lloyd() {
        let mut rng = DataRng::new(11);
        let points = rng.normal_matrix(400, 4, 0.0, 1.0);
        let lloyd = kmeans(&points, 8, 30, &mut DataRng::new(3)).unwrap();
        let mb = kmeans_minibatch(&points, 8, 60, 64, &mut DataRng::new(3)).unwrap();
        assert!(
            mb.inertia <= lloyd.inertia * 1.4,
            "mini-batch {} vs lloyd {}",
            mb.inertia,
            lloyd.inertia
        );
    }

    #[test]
    fn minibatch_rejects_bad_input() {
        let mut rng = DataRng::new(12);
        assert!(kmeans_minibatch(&Matrix::zeros(0, 2), 2, 5, 8, &mut rng).is_err());
        assert!(kmeans_minibatch(&Matrix::zeros(4, 2), 0, 5, 8, &mut rng).is_err());
    }

    #[test]
    fn minibatch_assignments_consistent() {
        let mut rng = DataRng::new(13);
        let points = rng.normal_matrix(60, 3, 0.0, 1.0);
        let result = kmeans_minibatch(&points, 4, 20, 16, &mut rng).unwrap();
        for i in 0..60 {
            let assigned = sq_dist(points.row(i), result.centroids.row(result.assignments[i]));
            for c in 0..4 {
                assert!(assigned <= sq_dist(points.row(i), result.centroids.row(c)) + 1e-5);
            }
        }
    }

    #[test]
    fn sq_dist_basics() {
        assert_eq!(sq_dist(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(sq_dist(&[1.0], &[1.0]), 0.0);
    }
}
