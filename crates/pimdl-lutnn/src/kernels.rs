//! Optimized host kernels for LUT-NN inference: interleaved centroid
//! layouts, unrolled distance kernels, and the fused CCS+LUT operator.
//!
//! The hot path of LUT-NN serving is host-side closest-centroid search (CCS)
//! feeding the LUT gather (paper §3.3, Fig. 11). The reference operators in
//! [`pq`](crate::pq) and [`lut`](crate::lut) are written for clarity: CCS
//! walks row-major centroids one sub-vector at a time, and `lut_linear`
//! materializes a full [`IndexMatrix`] between two passes over memory. This
//! module provides the production layout and kernels:
//!
//! * [`InterleavedCodebooks`] — codebook-major, **centroid-interleaved**
//!   centroid storage: within one codebook, dimension `d` of all `CT`
//!   centroids is contiguous (`data[(cb·V + d)·CT + k]`), so the inner CCS
//!   loop over candidate centroids streams unit-stride and autovectorizes.
//!   Distance kernels are monomorphized for V ∈ {1, 2, 4, 8, 16} (fully
//!   unrolled over `V`) with a lane-wise generic fallback.
//! * [`lut_linear_fused`] / [`lut_linear_fused_quant`] — encode a tile of
//!   rows and immediately gather/accumulate it into the output, tiled over
//!   rows ([`FUSED_ROW_TILE`]) and output features ([`FUSED_F_TILE`]) so the
//!   active LUT slice stays cache-resident. The intermediate index matrix is
//!   never materialized beyond one row tile.
//! * `*_parallel` variants — partition rows across the persistent
//!   [`WorkerPool`], not per-call spawned threads.
//!
//! **Bit-exactness contract**: every kernel here reproduces the reference
//! operators exactly, bit for bit. Distances accumulate in the same order as
//! [`sq_dist`](crate::kmeans::sq_dist) (dimension-ascending, starting from
//! `+0.0`, and `0.0 + x == x` bitwise because squared terms are never
//! `-0.0`), argmin keeps the reference first-wins strict `<` tie-break, and
//! the fused gather accumulates codebooks in ascending order per output
//! element, so row/feature tiling cannot reassociate any float sum. The
//! property tests in `tests/properties.rs` assert exact equality.

use pimdl_tensor::pool::WorkerPool;
use pimdl_tensor::Matrix;

use crate::lut::{LutTable, QuantLutTable};
use crate::pq::{IndexMatrix, ProductQuantizer};
use crate::{LutError, Result};

/// Rows encoded per fused tile before their gather begins.
///
/// The dominant cost of the gather is streaming table entries: a tile of
/// `R` rows touching a feature block reads each codebook's candidate slice
/// at most once (up to `CT` entries) instead of once per row, so larger
/// tiles asymptotically reduce table traffic by `R / CT`. 256 rows keeps
/// the tile's output block (`256 × FUSED_F_TILE × 4 B`) L2-resident at the
/// serving shapes while capturing nearly all of that reuse.
pub const FUSED_ROW_TILE: usize = 256;

/// Output features processed per fused tile.
///
/// At the serving shape (F = 768, f32 tables) the tile's output block is
/// `256 × 768 × 4 B = 768 KiB` — L2-resident, revisited once per codebook —
/// so F up to 768 runs unblocked; wider FFN-style tables split into 768-wide
/// blocks to keep that bound.
pub const FUSED_F_TILE: usize = 768;

/// Tile sizes of the fused CCS+LUT kernels, selectable at runtime.
///
/// The defaults ([`FUSED_ROW_TILE`], [`FUSED_F_TILE`]) are sized for the
/// serving shapes on a ~1 MiB L2; `pimdl_tuner::ktile` searches this space
/// with a DRAM-traffic model for other cache geometries. Tiling is purely a
/// blocking decision: by the module's bit-exactness contract, **every**
/// tiling produces bit-identical output (asserted by a property test).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FusedTiling {
    /// Rows encoded per fused tile (see [`FUSED_ROW_TILE`]).
    pub row_tile: usize,
    /// Output features per fused tile (see [`FUSED_F_TILE`]).
    pub f_tile: usize,
}

impl Default for FusedTiling {
    fn default() -> Self {
        FusedTiling {
            row_tile: FUSED_ROW_TILE,
            f_tile: FUSED_F_TILE,
        }
    }
}

impl FusedTiling {
    /// Checks the tiling for degenerate values.
    ///
    /// # Errors
    ///
    /// Returns [`LutError::Config`] if either tile extent is zero — a zero
    /// step would make the kernel's tile loops spin forever.
    pub fn validate(&self) -> Result<()> {
        if self.row_tile == 0 || self.f_tile == 0 {
            return Err(LutError::Config {
                op: "FusedTiling::validate",
                detail: format!(
                    "tile extents must be positive, got {} x {}",
                    self.row_tile, self.f_tile
                ),
            });
        }
        Ok(())
    }
}

/// Codebook-major, centroid-interleaved centroid storage.
///
/// For codebook `cb`, dimension `d`, centroid `k`, the value lives at
/// `data[(cb * v + d) * ct + k]`: all `CT` candidates' `d`-th components are
/// contiguous ("lanes"), which is the layout the distance kernels stream.
#[derive(Debug, Clone, PartialEq)]
pub struct InterleavedCodebooks {
    v: usize,
    ct: usize,
    cb: usize,
    data: Vec<f32>,
}

impl InterleavedCodebooks {
    /// Re-lays a fitted quantizer's `(CB*CT) x V` centroid matrix into the
    /// interleaved layout.
    pub fn from_quantizer(pq: &ProductQuantizer) -> Self {
        Self::from_centroid_rows(pq.centroids(), pq.v(), pq.ct())
    }

    /// Builds the interleaved layout from row-major centroids (`(cb*ct) x v`
    /// with codebook `cb`'s centroid `k` at row `cb*ct + k`).
    ///
    /// # Panics
    ///
    /// Panics if the matrix shape is inconsistent with `v`/`ct`.
    pub fn from_centroid_rows(centroids: &Matrix, v: usize, ct: usize) -> Self {
        assert!(ct > 0, "ct must be positive");
        assert_eq!(centroids.cols(), v, "centroid length != v");
        assert_eq!(
            centroids.rows() % ct,
            0,
            "centroid rows not a multiple of ct"
        );
        let cb = centroids.rows() / ct;
        let mut data = vec![0.0f32; cb * v * ct];
        for c in 0..cb {
            for k in 0..ct {
                for (d, &val) in centroids.row(c * ct + k).iter().enumerate() {
                    data[(c * v + d) * ct + k] = val;
                }
            }
        }
        InterleavedCodebooks { v, ct, cb, data }
    }

    /// Sub-vector length `V`.
    pub fn v(&self) -> usize {
        self.v
    }

    /// Centroids per codebook `CT`.
    pub fn ct(&self) -> usize {
        self.ct
    }

    /// Codebook count `CB`.
    pub fn cb(&self) -> usize {
        self.cb
    }

    /// Hidden dimension `H = CB * V` this layout encodes.
    pub fn hidden(&self) -> usize {
        self.cb * self.v
    }

    /// Squared L2 distances from `sub` to every centroid of codebook `cb`,
    /// written into `out[..ct]`. Dispatches to an unrolled kernel for the
    /// paper's sub-vector lengths, with a lane-wise generic fallback.
    ///
    /// # Panics
    ///
    /// Panics if `sub.len() != v` or `out.len() != ct`.
    #[inline(always)]
    pub fn dists_into(&self, cb: usize, sub: &[f32], out: &mut [f32]) {
        let lanes = &self.data[cb * self.v * self.ct..(cb + 1) * self.v * self.ct];
        match self.v {
            1 => dists_unrolled::<1>(lanes, self.ct, sub, out),
            2 => dists_unrolled::<2>(lanes, self.ct, sub, out),
            4 => dists_unrolled::<4>(lanes, self.ct, sub, out),
            8 => dists_unrolled::<8>(lanes, self.ct, sub, out),
            16 => dists_unrolled::<16>(lanes, self.ct, sub, out),
            _ => dists_generic(lanes, self.ct, sub, out),
        }
    }

    /// CCS over the interleaved layout: bit-identical indices to
    /// [`ProductQuantizer::encode`].
    ///
    /// # Errors
    ///
    /// Returns [`LutError::Config`] if `x.cols() != hidden()`.
    pub fn encode(&self, x: &Matrix) -> Result<IndexMatrix> {
        self.check_input(x, "InterleavedCodebooks::encode")?;
        let n = x.rows();
        let mut data = vec![0u16; n * self.cb];
        let mut dists = vec![0.0f32; self.ct];
        self.encode_rows_into(x, 0, &mut data, &mut dists);
        IndexMatrix::from_vec(n, self.cb, data)
    }

    /// Pool-parallel CCS: activation rows are partitioned into `threads`
    /// bands executed on the global [`WorkerPool`]. Identical output to
    /// [`Self::encode`] for any `threads`.
    ///
    /// # Errors
    ///
    /// Returns [`LutError::Config`] if `x.cols() != hidden()` or
    /// `threads == 0`.
    pub fn encode_parallel(&self, x: &Matrix, threads: usize) -> Result<IndexMatrix> {
        self.check_input(x, "InterleavedCodebooks::encode_parallel")?;
        if threads == 0 {
            return Err(LutError::Config {
                op: "InterleavedCodebooks::encode_parallel",
                detail: "thread count must be positive".to_string(),
            });
        }
        let n = x.rows();
        if n == 0 {
            return IndexMatrix::from_vec(0, self.cb, Vec::new());
        }
        let rows_per = n.div_ceil(threads.min(n));
        let mut data = vec![0u16; n * self.cb];
        WorkerPool::global().run_row_bands(&mut data, self.cb, rows_per, |first_row, band| {
            let mut dists = vec![0.0f32; self.ct];
            self.encode_rows_into(x, first_row, band, &mut dists);
        });
        IndexMatrix::from_vec(n, self.cb, data)
    }

    /// Encodes rows `first_row ..` of `x` into `band` (one `cb`-wide index
    /// row per activation row). `dists` is `ct`-length scratch.
    ///
    /// Dispatches once to an AVX2-compiled clone of the same body when the
    /// CPU supports it: element-wise float ops are IEEE-identical at any
    /// vector width (FMA contraction is *not* enabled), so the wider kernel
    /// stays bit-exact.
    fn encode_rows_into(&self, x: &Matrix, first_row: usize, band: &mut [u16], dists: &mut [f32]) {
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: feature presence checked at runtime.
            return unsafe { self.encode_rows_avx2(x, first_row, band, dists) };
        }
        self.encode_rows_body(x, first_row, band, dists);
    }

    /// AVX2-compiled clone of [`Self::encode_rows_body`].
    ///
    /// # Safety
    ///
    /// The body is safe code; `unsafe` comes only from `target_feature`.
    /// The caller must verify AVX2 support (`is_x86_feature_detected!`)
    /// before calling, or the compiled instructions fault on older CPUs.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn encode_rows_avx2(
        &self,
        x: &Matrix,
        first_row: usize,
        band: &mut [u16],
        dists: &mut [f32],
    ) {
        self.encode_rows_body(x, first_row, band, dists);
    }

    #[inline(always)]
    fn encode_rows_body(&self, x: &Matrix, first_row: usize, band: &mut [u16], dists: &mut [f32]) {
        for (local, idx_row) in band.chunks_mut(self.cb).enumerate() {
            let row = x.row(first_row + local);
            for (c, slot) in idx_row.iter_mut().enumerate() {
                let sub = &row[c * self.v..(c + 1) * self.v];
                self.dists_into(c, sub, dists);
                *slot = argmin(dists) as u16;
            }
        }
    }

    fn check_input(&self, x: &Matrix, op: &'static str) -> Result<()> {
        if x.cols() != self.hidden() {
            return Err(LutError::Config {
                op,
                detail: format!("input width {} != H = {}", x.cols(), self.hidden()),
            });
        }
        Ok(())
    }
}

/// Distance kernel monomorphized over the sub-vector length: the `V` loop
/// unrolls completely and the `k` loop streams `V` contiguous lanes, which
/// rustc autovectorizes.
///
/// Accumulation is dimension-ascending from `0.0`, matching the reference
/// [`sq_dist`](crate::kmeans::sq_dist) bit for bit.
#[inline(always)]
fn dists_unrolled<const V: usize>(lanes: &[f32], ct: usize, sub: &[f32], out: &mut [f32]) {
    assert_eq!(lanes.len(), V * ct);
    assert_eq!(out.len(), ct);
    let xs: &[f32; V] = sub.try_into().expect("sub-vector length mismatch");
    for (k, o) in out.iter_mut().enumerate() {
        let mut acc = 0.0f32;
        for d in 0..V {
            let diff = xs[d] - lanes[d * ct + k];
            acc += diff * diff;
        }
        *o = acc;
    }
}

/// Generic fallback: lane-wise accumulation (still unit-stride in `k`).
/// Per centroid the terms are added dimension-ascending starting from a
/// `0.0` fill, so results match [`dists_unrolled`] and the reference scalar
/// path exactly.
#[inline(always)]
fn dists_generic(lanes: &[f32], ct: usize, sub: &[f32], out: &mut [f32]) {
    assert_eq!(lanes.len(), sub.len() * ct);
    assert_eq!(out.len(), ct);
    out.fill(0.0);
    for (d, &x) in sub.iter().enumerate() {
        let lane = &lanes[d * ct..(d + 1) * ct];
        for (o, &c) in out.iter_mut().zip(lane) {
            let diff = x - c;
            *o += diff * diff;
        }
    }
}

/// First-wins argmin under strict `<` — the reference CCS tie-break.
#[inline(always)]
fn argmin(dists: &[f32]) -> usize {
    let mut best = 0usize;
    let mut best_d = f32::INFINITY;
    for (k, &d) in dists.iter().enumerate() {
        if d < best_d {
            best_d = d;
            best = k;
        }
    }
    best
}

/// Nearest centroid of `points.row(i)`-style slices for flat row-major
/// centroid sets, as `(index, squared distance)` pairs for each point row.
///
/// This is the k-means assignment step (one "codebook" of `k` centroids of
/// length `dim`), shared with CCS so calibration does not re-implement the
/// search. Rows are partitioned across the global [`WorkerPool`] when the
/// problem is large enough to amortize dispatch.
///
/// # Panics
///
/// Panics if `centroids` is empty, the dimensions disagree, or
/// `out.len() != points.rows()`.
pub fn assign_nearest(points: &Matrix, centroids: &Matrix, out: &mut [(usize, f32)]) {
    let n = points.rows();
    let k = centroids.rows();
    let dim = points.cols();
    assert!(k > 0, "no centroids");
    assert_eq!(centroids.cols(), dim, "dimension mismatch");
    assert_eq!(out.len(), n, "output length mismatch");
    if n == 0 {
        return;
    }
    let lanes = InterleavedCodebooks::from_centroid_rows(centroids, dim, k);
    // Only fan out when the assignment is big enough to amortize pool
    // dispatch; the partition below never changes results, only wall time.
    let work = n * k * dim.max(1);
    let chunk_rows = if work < (1 << 18) {
        n
    } else {
        n.div_ceil(WorkerPool::global().threads() * 4).max(32)
    };
    WorkerPool::global().run_row_bands(out, 1, chunk_rows, |first_row, band| {
        let mut dists = vec![0.0f32; k];
        for (local, slot) in band.iter_mut().enumerate() {
            lanes.dists_into(0, points.row(first_row + local), &mut dists);
            let best = argmin(&dists);
            *slot = (best, dists[best]);
        }
    });
}

fn check_fused_dims(
    x: &Matrix,
    cbs: &InterleavedCodebooks,
    (cb, ct): (usize, usize),
    op: &'static str,
) -> Result<()> {
    if x.cols() != cbs.hidden() {
        return Err(LutError::Config {
            op,
            detail: format!("input width {} != H = {}", x.cols(), cbs.hidden()),
        });
    }
    if cb != cbs.cb() || ct != cbs.ct() {
        return Err(LutError::Config {
            op,
            detail: format!(
                "table shape CB={cb}, CT={ct} != codebooks CB={}, CT={}",
                cbs.cb(),
                cbs.ct()
            ),
        });
    }
    Ok(())
}

/// Fused CCS + LUT gather over `f32` tables.
///
/// Encodes [`FUSED_ROW_TILE`]-row tiles and immediately accumulates their
/// table entries into the output, blocked over output features, without
/// materializing an [`IndexMatrix`]. Bit-identical to
/// `lut.lookup(&pq.encode(x)?)` (same distance accumulation order, same
/// argmin tie-break, same per-element codebook-ascending accumulation).
///
/// # Errors
///
/// Returns [`LutError::Config`] if `x`'s width or the table's `CB`/`CT`
/// disagree with `cbs`.
pub fn lut_linear_fused(x: &Matrix, cbs: &InterleavedCodebooks, lut: &LutTable) -> Result<Matrix> {
    lut_linear_fused_tiled(x, cbs, lut, FusedTiling::default())
}

/// [`lut_linear_fused`] with explicit tile sizes (bit-identical output for
/// any tiling; see [`FusedTiling`]).
///
/// # Errors
///
/// Returns [`LutError::Config`] on shape mismatch or a zero tile extent.
pub fn lut_linear_fused_tiled(
    x: &Matrix,
    cbs: &InterleavedCodebooks,
    lut: &LutTable,
    tiling: FusedTiling,
) -> Result<Matrix> {
    check_fused_dims(x, cbs, (lut.cb(), lut.ct()), "lut_linear_fused_tiled")?;
    tiling.validate()?;
    let mut out = Matrix::zeros(x.rows(), lut.f());
    if x.rows() > 0 && lut.f() > 0 {
        fused_band_f32(x, cbs, lut, 0, out.as_mut_slice(), tiling);
    }
    Ok(out)
}

/// Pool-parallel [`lut_linear_fused`]: rows are partitioned into `threads`
/// bands on the global [`WorkerPool`]. Identical output for any `threads`.
///
/// # Errors
///
/// Returns [`LutError::Config`] on shape mismatch or `threads == 0`.
pub fn lut_linear_fused_parallel(
    x: &Matrix,
    cbs: &InterleavedCodebooks,
    lut: &LutTable,
    threads: usize,
) -> Result<Matrix> {
    check_fused_dims(x, cbs, (lut.cb(), lut.ct()), "lut_linear_fused_parallel")?;
    if threads == 0 {
        return Err(LutError::Config {
            op: "lut_linear_fused_parallel",
            detail: "thread count must be positive".to_string(),
        });
    }
    let n = x.rows();
    let mut out = Matrix::zeros(n, lut.f());
    if n == 0 || lut.f() == 0 {
        return Ok(out);
    }
    let rows_per = n.div_ceil(threads.min(n));
    WorkerPool::global().run_row_bands(out.as_mut_slice(), lut.f(), rows_per, |first_row, band| {
        fused_band_f32(x, cbs, lut, first_row, band, FusedTiling::default());
    });
    Ok(out)
}

/// Fused CCS + LUT gather over INT8 tables with i32 accumulation.
///
/// Bit-identical to `qlut.lookup(&pq.encode(x)?)`: integer accumulation is
/// exact, and the single dequantizing multiply per output element is
/// unchanged.
///
/// # Errors
///
/// Returns [`LutError::Config`] on shape mismatch.
pub fn lut_linear_fused_quant(
    x: &Matrix,
    cbs: &InterleavedCodebooks,
    qlut: &QuantLutTable,
) -> Result<Matrix> {
    lut_linear_fused_quant_tiled(x, cbs, qlut, FusedTiling::default())
}

/// [`lut_linear_fused_quant`] with explicit tile sizes (bit-identical
/// output for any tiling; see [`FusedTiling`]).
///
/// # Errors
///
/// Returns [`LutError::Config`] on shape mismatch or a zero tile extent.
pub fn lut_linear_fused_quant_tiled(
    x: &Matrix,
    cbs: &InterleavedCodebooks,
    qlut: &QuantLutTable,
    tiling: FusedTiling,
) -> Result<Matrix> {
    check_fused_dims(
        x,
        cbs,
        (qlut.cb(), qlut.ct()),
        "lut_linear_fused_quant_tiled",
    )?;
    tiling.validate()?;
    let mut out = Matrix::zeros(x.rows(), qlut.f());
    if x.rows() > 0 && qlut.f() > 0 {
        fused_band_quant(x, cbs, qlut, 0, out.as_mut_slice(), tiling);
    }
    Ok(out)
}

/// Pool-parallel [`lut_linear_fused_quant`].
///
/// # Errors
///
/// Returns [`LutError::Config`] on shape mismatch or `threads == 0`.
pub fn lut_linear_fused_quant_parallel(
    x: &Matrix,
    cbs: &InterleavedCodebooks,
    qlut: &QuantLutTable,
    threads: usize,
) -> Result<Matrix> {
    check_fused_dims(
        x,
        cbs,
        (qlut.cb(), qlut.ct()),
        "lut_linear_fused_quant_parallel",
    )?;
    if threads == 0 {
        return Err(LutError::Config {
            op: "lut_linear_fused_quant_parallel",
            detail: "thread count must be positive".to_string(),
        });
    }
    let n = x.rows();
    let mut out = Matrix::zeros(n, qlut.f());
    if n == 0 || qlut.f() == 0 {
        return Ok(out);
    }
    let rows_per = n.div_ceil(threads.min(n));
    WorkerPool::global().run_row_bands(
        out.as_mut_slice(),
        qlut.f(),
        rows_per,
        |first_row, band| {
            fused_band_quant(x, cbs, qlut, first_row, band, FusedTiling::default());
        },
    );
    Ok(out)
}

/// The fused f32 tile kernel for rows `first_row ..` of `x`, writing into a
/// zero-initialized `band` (`rows × f`, row-major).
///
/// Loop order inside one row tile: features are blocked, and within one
/// feature block the codebook loop is outermost so one codebook's table
/// slice is reused across every row of the tile before moving on.
fn fused_band_f32(
    x: &Matrix,
    cbs: &InterleavedCodebooks,
    lut: &LutTable,
    first_row: usize,
    band: &mut [f32],
    tiling: FusedTiling,
) {
    let f = lut.f();
    let (cb, ct) = (cbs.cb(), cbs.ct());
    let rows = band.len() / f;
    let table = lut.table().as_slice();
    let mut idx = vec![0u16; tiling.row_tile * cb];
    let mut dists = vec![0.0f32; ct];
    for t0 in (0..rows).step_by(tiling.row_tile) {
        let t1 = (t0 + tiling.row_tile).min(rows);
        let tile = &mut idx[..(t1 - t0) * cb];
        cbs.encode_rows_into(x, first_row + t0, tile, &mut dists);
        for j0 in (0..f).step_by(tiling.f_tile) {
            let j1 = (j0 + tiling.f_tile).min(f);
            gather_block_f32(band, f, (t0, t1), (j0, j1), table, (cb, ct), tile);
        }
    }
}

/// One feature block of the fused f32 gather: accumulates every codebook's
/// entry slice into the row tile's output block.
///
/// Codebooks are unrolled 8-wide — each output element is loaded and stored
/// once per 8 accumulated entries instead of once per entry — with the adds
/// still applied in ascending codebook order per element, so the result is
/// bit-identical to the reference lookup. Dispatches to an AVX2 clone when
/// the CPU supports it (element-wise adds are IEEE-identical at any vector
/// width; FMA contraction is not enabled).
fn gather_block_f32(
    band: &mut [f32],
    f: usize,
    (t0, t1): (usize, usize),
    (j0, j1): (usize, usize),
    table: &[f32],
    (cb, ct): (usize, usize),
    tile: &[u16],
) {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: feature presence checked at runtime.
        return unsafe {
            gather_block_f32_avx2(band, f, (t0, t1), (j0, j1), table, (cb, ct), tile)
        };
    }
    gather_block_f32_body(band, f, (t0, t1), (j0, j1), table, (cb, ct), tile);
}

/// AVX2-compiled clone of [`gather_block_f32_body`].
///
/// # Safety
///
/// The body is safe code; `unsafe` comes only from `target_feature`. The
/// caller must verify AVX2 support (`is_x86_feature_detected!`) before
/// calling, or the compiled instructions fault on older CPUs.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn gather_block_f32_avx2(
    band: &mut [f32],
    f: usize,
    rt: (usize, usize),
    jb: (usize, usize),
    table: &[f32],
    shape: (usize, usize),
    tile: &[u16],
) {
    gather_block_f32_body(band, f, rt, jb, table, shape, tile);
}

#[inline(always)]
fn gather_block_f32_body(
    band: &mut [f32],
    f: usize,
    (t0, t1): (usize, usize),
    (j0, j1): (usize, usize),
    table: &[f32],
    (cb, ct): (usize, usize),
    tile: &[u16],
) {
    let b = j1 - j0;
    let mut c = 0;
    while c + 8 <= cb {
        for r in t0..t1 {
            let irow = &tile[(r - t0) * cb..(r - t0 + 1) * cb];
            let o0 = ((c * ct) + irow[c] as usize) * f + j0;
            let o1 = (((c + 1) * ct) + irow[c + 1] as usize) * f + j0;
            let o2 = (((c + 2) * ct) + irow[c + 2] as usize) * f + j0;
            let o3 = (((c + 3) * ct) + irow[c + 3] as usize) * f + j0;
            let o4 = (((c + 4) * ct) + irow[c + 4] as usize) * f + j0;
            let o5 = (((c + 5) * ct) + irow[c + 5] as usize) * f + j0;
            let o6 = (((c + 6) * ct) + irow[c + 6] as usize) * f + j0;
            let o7 = (((c + 7) * ct) + irow[c + 7] as usize) * f + j0;
            let e0 = &table[o0..o0 + b];
            let e1 = &table[o1..o1 + b];
            let e2 = &table[o2..o2 + b];
            let e3 = &table[o3..o3 + b];
            let e4 = &table[o4..o4 + b];
            let e5 = &table[o5..o5 + b];
            let e6 = &table[o6..o6 + b];
            let e7 = &table[o7..o7 + b];
            let out_row = &mut band[r * f + j0..r * f + j0 + b];
            for j in 0..b {
                let a = (((out_row[j] + e0[j]) + e1[j]) + e2[j]) + e3[j];
                out_row[j] = (((a + e4[j]) + e5[j]) + e6[j]) + e7[j];
            }
        }
        c += 8;
    }
    while c < cb {
        let base = c * ct;
        for r in t0..t1 {
            let k = tile[(r - t0) * cb + c] as usize;
            let entry = &table[(base + k) * f + j0..(base + k) * f + j0 + b];
            let out_row = &mut band[r * f + j0..r * f + j0 + b];
            for (o, &e) in out_row.iter_mut().zip(entry) {
                *o += e;
            }
        }
        c += 1;
    }
}

/// The fused INT8 tile kernel: same structure as [`fused_band_f32`] with an
/// i32 accumulator tile and one dequantizing multiply per output element.
fn fused_band_quant(
    x: &Matrix,
    cbs: &InterleavedCodebooks,
    qlut: &QuantLutTable,
    first_row: usize,
    band: &mut [f32],
    tiling: FusedTiling,
) {
    let f = qlut.f();
    let (cb, ct) = (cbs.cb(), cbs.ct());
    let rows = band.len() / f;
    let codes = qlut.table().codes();
    let scale = qlut.table().scale();
    let mut idx = vec![0u16; tiling.row_tile * cb];
    let mut dists = vec![0.0f32; ct];
    let mut acc = vec![0i32; tiling.row_tile * tiling.f_tile.min(f.max(1))];
    for t0 in (0..rows).step_by(tiling.row_tile) {
        let t1 = (t0 + tiling.row_tile).min(rows);
        let tile = &mut idx[..(t1 - t0) * cb];
        cbs.encode_rows_into(x, first_row + t0, tile, &mut dists);
        for j0 in (0..f).step_by(tiling.f_tile) {
            let j1 = (j0 + tiling.f_tile).min(f);
            let jb = j1 - j0;
            let acc_tile = &mut acc[..(t1 - t0) * jb];
            acc_tile.fill(0);
            gather_block_quant(acc_tile, jb, (t0, t1), j0, codes, f, (cb, ct), tile);
            for r in t0..t1 {
                let acc_row = &acc_tile[(r - t0) * jb..(r - t0 + 1) * jb];
                let out_row = &mut band[r * f + j0..r * f + j1];
                for (o, &a) in out_row.iter_mut().zip(acc_row) {
                    *o = a as f32 * scale;
                }
            }
        }
    }
}

/// One feature block of the fused INT8 gather: widening i8 → i32
/// accumulation into the tile accumulator, 4-wide over codebooks (integer
/// addition is associative, so the unroll is exact by construction).
/// Dispatches to an AVX2 clone when available.
#[allow(clippy::too_many_arguments)]
fn gather_block_quant(
    acc_tile: &mut [i32],
    jb: usize,
    (t0, t1): (usize, usize),
    j0: usize,
    codes: &[i8],
    f: usize,
    (cb, ct): (usize, usize),
    tile: &[u16],
) {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: feature presence checked at runtime.
        return unsafe {
            gather_block_quant_avx2(acc_tile, jb, (t0, t1), j0, codes, f, (cb, ct), tile)
        };
    }
    gather_block_quant_body(acc_tile, jb, (t0, t1), j0, codes, f, (cb, ct), tile);
}

/// AVX2-compiled clone of [`gather_block_quant_body`].
///
/// # Safety
///
/// The body is safe code; `unsafe` comes only from `target_feature`. The
/// caller must verify AVX2 support (`is_x86_feature_detected!`) before
/// calling, or the compiled instructions fault on older CPUs.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
unsafe fn gather_block_quant_avx2(
    acc_tile: &mut [i32],
    jb: usize,
    rt: (usize, usize),
    j0: usize,
    codes: &[i8],
    f: usize,
    shape: (usize, usize),
    tile: &[u16],
) {
    gather_block_quant_body(acc_tile, jb, rt, j0, codes, f, shape, tile);
}

#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn gather_block_quant_body(
    acc_tile: &mut [i32],
    jb: usize,
    (t0, t1): (usize, usize),
    j0: usize,
    codes: &[i8],
    f: usize,
    (cb, ct): (usize, usize),
    tile: &[u16],
) {
    let mut c = 0;
    while c + 4 <= cb {
        for r in t0..t1 {
            let irow = &tile[(r - t0) * cb..(r - t0 + 1) * cb];
            let o0 = ((c * ct) + irow[c] as usize) * f + j0;
            let o1 = (((c + 1) * ct) + irow[c + 1] as usize) * f + j0;
            let o2 = (((c + 2) * ct) + irow[c + 2] as usize) * f + j0;
            let o3 = (((c + 3) * ct) + irow[c + 3] as usize) * f + j0;
            let e0 = &codes[o0..o0 + jb];
            let e1 = &codes[o1..o1 + jb];
            let e2 = &codes[o2..o2 + jb];
            let e3 = &codes[o3..o3 + jb];
            let acc_row = &mut acc_tile[(r - t0) * jb..(r - t0 + 1) * jb];
            for j in 0..jb {
                acc_row[j] += e0[j] as i32 + e1[j] as i32 + e2[j] as i32 + e3[j] as i32;
            }
        }
        c += 4;
    }
    while c < cb {
        let base = c * ct;
        for r in t0..t1 {
            let k = tile[(r - t0) * cb + c] as usize;
            let entry = &codes[(base + k) * f + j0..(base + k) * f + j0 + jb];
            let acc_row = &mut acc_tile[(r - t0) * jb..(r - t0 + 1) * jb];
            for (a, &e) in acc_row.iter_mut().zip(entry) {
                *a += e as i32;
            }
        }
        c += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lut::lut_linear;
    use pimdl_tensor::rng::DataRng;

    fn setup(
        seed: u64,
        n: usize,
        h: usize,
        f: usize,
        v: usize,
        ct: usize,
    ) -> (ProductQuantizer, LutTable, Matrix) {
        let mut rng = DataRng::new(seed);
        let acts = rng.normal_matrix((4 * ct).max(8), h, 0.0, 1.0);
        let weight = rng.normal_matrix(h, f, 0.0, 0.5);
        let pq = ProductQuantizer::fit(&acts, v, ct, 12, &mut rng).unwrap();
        let lut = LutTable::build(&pq, &weight).unwrap();
        let x = rng.normal_matrix(n, h, 0.0, 1.0);
        (pq, lut, x)
    }

    #[test]
    fn interleaved_encode_bit_identical_for_all_v() {
        // Cover every specialized kernel plus the generic fallback (v=3).
        for (v, h) in [(1, 6), (2, 8), (3, 9), (4, 8), (8, 16), (16, 32)] {
            let mut rng = DataRng::new(7 + v as u64);
            let acts = rng.normal_matrix(64, h, 0.0, 1.0);
            let pq = ProductQuantizer::fit(&acts, v, 8, 10, &mut rng).unwrap();
            let x = rng.normal_matrix(19, h, 0.0, 1.0);
            let cbs = pq.interleaved();
            assert_eq!(cbs.encode(&x).unwrap(), pq.encode(&x).unwrap(), "v={v}");
        }
    }

    #[test]
    fn encode_parallel_matches_serial() {
        let (pq, _, x) = setup(1, 37, 12, 8, 3, 8);
        let cbs = pq.interleaved();
        let serial = cbs.encode(&x).unwrap();
        for threads in [1, 2, 7, 64] {
            assert_eq!(cbs.encode_parallel(&x, threads).unwrap(), serial);
        }
        assert!(cbs.encode_parallel(&x, 0).is_err());
        let empty = Matrix::zeros(0, 12);
        assert_eq!(cbs.encode_parallel(&empty, 3).unwrap().rows(), 0);
    }

    #[test]
    fn fused_bit_identical_to_reference() {
        let (pq, lut, x) = setup(2, 53, 16, 37, 4, 16);
        let cbs = pq.interleaved();
        let reference = lut_linear(&x, &pq, &lut).unwrap();
        assert_eq!(lut_linear_fused(&x, &cbs, &lut).unwrap(), reference);
        for threads in [1, 2, 7, 64] {
            assert_eq!(
                lut_linear_fused_parallel(&x, &cbs, &lut, threads).unwrap(),
                reference,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn fused_quant_bit_identical_to_reference() {
        let (pq, lut, x) = setup(3, 41, 16, 29, 2, 16);
        let cbs = pq.interleaved();
        let qlut = lut.quantize();
        let reference = qlut.lookup(&pq.encode(&x).unwrap()).unwrap();
        assert_eq!(lut_linear_fused_quant(&x, &cbs, &qlut).unwrap(), reference);
        for threads in [1, 2, 7, 64] {
            assert_eq!(
                lut_linear_fused_quant_parallel(&x, &cbs, &qlut, threads).unwrap(),
                reference,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn any_tiling_is_bit_identical() {
        let (pq, lut, x) = setup(8, 61, 16, 43, 4, 16);
        let cbs = pq.interleaved();
        let qlut = lut.quantize();
        let reference = lut_linear_fused(&x, &cbs, &lut).unwrap();
        let qreference = lut_linear_fused_quant(&x, &cbs, &qlut).unwrap();
        for (row_tile, f_tile) in [(1, 1), (3, 5), (17, 8), (61, 43), (256, 768), (1024, 1024)] {
            let tiling = FusedTiling { row_tile, f_tile };
            assert_eq!(
                lut_linear_fused_tiled(&x, &cbs, &lut, tiling).unwrap(),
                reference,
                "{tiling:?}"
            );
            assert_eq!(
                lut_linear_fused_quant_tiled(&x, &cbs, &qlut, tiling).unwrap(),
                qreference,
                "{tiling:?}"
            );
        }
        // Degenerate tilings are rejected, not looped on forever.
        let zero = FusedTiling {
            row_tile: 0,
            f_tile: 16,
        };
        assert!(zero.validate().is_err());
        assert!(lut_linear_fused_tiled(&x, &cbs, &lut, zero).is_err());
        let zero_f = FusedTiling {
            row_tile: 16,
            f_tile: 0,
        };
        assert!(lut_linear_fused_quant_tiled(&x, &cbs, &qlut, zero_f).is_err());
        assert_eq!(FusedTiling::default().row_tile, FUSED_ROW_TILE);
        assert_eq!(FusedTiling::default().f_tile, FUSED_F_TILE);
    }

    #[test]
    fn fused_handles_degenerate_shapes() {
        // n = 0 rows.
        let (pq, lut, _) = setup(4, 4, 8, 6, 2, 4);
        let cbs = pq.interleaved();
        let empty = Matrix::zeros(0, 8);
        assert_eq!(
            lut_linear_fused(&empty, &cbs, &lut).unwrap().shape(),
            (0, 6)
        );
        assert_eq!(
            lut_linear_fused_parallel(&empty, &cbs, &lut, 4)
                .unwrap()
                .shape(),
            (0, 6)
        );
        // CT = 1: every index is 0.
        let centroids = Matrix::from_vec(2, 1, vec![0.5, -0.5]).unwrap();
        let pq1 = ProductQuantizer::from_centroids(centroids, 1, 1).unwrap();
        let w = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let lut1 = LutTable::build(&pq1, &w).unwrap();
        let cbs1 = pq1.interleaved();
        let x1 = Matrix::from_vec(2, 2, vec![9.0, -9.0, 0.0, 0.0]).unwrap();
        let reference = lut_linear(&x1, &pq1, &lut1).unwrap();
        assert_eq!(lut_linear_fused(&x1, &cbs1, &lut1).unwrap(), reference);
    }

    #[test]
    fn fused_rejects_mismatched_shapes() {
        let (pq, lut, x) = setup(5, 8, 8, 6, 2, 4);
        let cbs = pq.interleaved();
        let bad_x = Matrix::zeros(2, 6);
        assert!(lut_linear_fused(&bad_x, &cbs, &lut).is_err());
        assert!(lut_linear_fused_parallel(&x, &cbs, &lut, 0).is_err());
        let (other_pq, _, _) = setup(6, 8, 8, 6, 2, 8); // different CT
        assert!(lut_linear_fused(&x, &other_pq.interleaved(), &lut).is_err());
        let qlut = lut.quantize();
        assert!(lut_linear_fused_quant(&bad_x, &cbs, &qlut).is_err());
        assert!(lut_linear_fused_quant_parallel(&x, &cbs, &qlut, 0).is_err());
    }

    #[test]
    fn assign_nearest_matches_scalar_argmin() {
        let mut rng = DataRng::new(9);
        let points = rng.normal_matrix(100, 5, 0.0, 1.0);
        let centroids = rng.normal_matrix(7, 5, 0.0, 1.0);
        let mut out = vec![(0usize, 0.0f32); 100];
        assign_nearest(&points, &centroids, &mut out);
        for (i, &(best, d)) in out.iter().enumerate() {
            let mut exp_best = 0;
            let mut exp_d = f32::INFINITY;
            for c in 0..7 {
                let dc = crate::kmeans::sq_dist(points.row(i), centroids.row(c));
                if dc < exp_d {
                    exp_d = dc;
                    exp_best = c;
                }
            }
            assert_eq!(best, exp_best, "row {i}");
            assert_eq!(d.to_bits(), exp_d.to_bits(), "row {i}");
        }
        // Empty point set is a no-op.
        assign_nearest(&Matrix::zeros(0, 5), &centroids, &mut []);
    }

    #[test]
    fn tie_breaks_pick_first_centroid() {
        // Two identical centroids: index 0 must always win, as in the
        // reference scalar path.
        let centroids = Matrix::from_vec(2, 2, vec![1.0, 1.0, 1.0, 1.0]).unwrap();
        let pq = ProductQuantizer::from_centroids(centroids, 2, 2).unwrap();
        let cbs = pq.interleaved();
        let x = Matrix::from_vec(3, 2, vec![1.0, 1.0, 0.0, 0.0, -5.0, 2.0]).unwrap();
        let idx = cbs.encode(&x).unwrap();
        assert!(idx.as_slice().iter().all(|&k| k == 0));
        assert_eq!(idx, pq.encode(&x).unwrap());
    }
}
