//! Computation-reduction analysis (paper §3.3 and Fig. 3).
//!
//! For GEMM with shapes `N x H @ H x F`: `2·N·H·F` operations, half of which
//! are multiplies. For LUT-NN with `CT` centroids and sub-vector length `V`:
//! `3·N·H·CT` operations for index calculation (of which `N·H·CT` are
//! multiplies) plus `N·F·H/V` additions for result accumulation.

use serde::{Deserialize, Serialize};

/// Operation counts of one linear-layer evaluation under GEMM vs. LUT-NN.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OpCounts {
    /// Multiply operations.
    pub multiplies: u64,
    /// Add (and compare, for argmin) operations.
    pub adds: u64,
}

impl OpCounts {
    /// Total operations.
    pub fn total(&self) -> u64 {
        self.multiplies + self.adds
    }

    /// Fraction of operations that are multiplies.
    pub fn multiply_fraction(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.multiplies as f64 / self.total() as f64
        }
    }
}

/// GEMM operation count for `N x H @ H x F` (§3.3: `2·N·H·F`, half
/// multiplies).
pub fn gemm_ops(n: usize, h: usize, f: usize) -> OpCounts {
    let half = (n as u64) * (h as u64) * (f as u64);
    OpCounts {
        multiplies: half,
        adds: half,
    }
}

/// LUT-NN operation count for the same layer with `ct` centroids and
/// sub-vector length `v` (§3.3: `3·N·H·CT` for index calculation of which
/// `N·H·CT` are multiplies, plus `N·F·H/V` accumulation adds).
///
/// # Panics
///
/// Panics if `v == 0` or `v` does not divide `h`.
pub fn lutnn_ops(n: usize, h: usize, f: usize, ct: usize, v: usize) -> OpCounts {
    assert!(v > 0 && h.is_multiple_of(v), "v must divide h");
    let index_mults = (n as u64) * (h as u64) * (ct as u64);
    let index_adds = 2 * index_mults; // subtract+square / add+compare
    let reduce_adds = (n as u64) * (f as u64) * (h as u64 / v as u64);
    OpCounts {
        multiplies: index_mults,
        adds: index_adds + reduce_adds,
    }
}

/// One row of the Fig. 3 analysis.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReductionPoint {
    /// Sub-vector length `V`.
    pub v: usize,
    /// Centroid count `CT`.
    pub ct: usize,
    /// LUT-NN total operations (GFLOP-scale; raw count).
    pub lut_ops: OpCounts,
    /// GEMM total operations.
    pub gemm_ops: OpCounts,
    /// FLOP reduction ratio `FLOP_GEMM / FLOP_LUT-NN`.
    pub reduction: f64,
}

/// Reproduces Fig. 3: sweeps `V` at fixed `CT` and `CT` at fixed `V` for the
/// square workload `N = H = F = dim` (paper uses 1024).
pub fn fig3_sweep(dim: usize) -> Vec<ReductionPoint> {
    let mut points = Vec::new();
    // Left panel: CT = 16, V ∈ {2, 4, 8, 16}.
    for v in [2usize, 4, 8, 16] {
        points.push(point(dim, v, 16));
    }
    // Right panel: V = 4, CT ∈ {64, 32, 16, 8}.
    for ct in [64usize, 32, 16, 8] {
        points.push(point(dim, 4, ct));
    }
    points
}

fn point(dim: usize, v: usize, ct: usize) -> ReductionPoint {
    let lut = lutnn_ops(dim, dim, dim, ct, v);
    let gemm = gemm_ops(dim, dim, dim);
    ReductionPoint {
        v,
        ct,
        lut_ops: lut,
        gemm_ops: gemm,
        reduction: gemm.total() as f64 / lut.total() as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_counts() {
        let ops = gemm_ops(2, 3, 4);
        assert_eq!(ops.multiplies, 24);
        assert_eq!(ops.adds, 24);
        assert_eq!(ops.total(), 48);
        assert!((ops.multiply_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lutnn_counts() {
        // N=H=F=8, CT=4, V=2: index mult = 8*8*4 = 256, index adds = 512,
        // reduce = 8*8*4 = 256.
        let ops = lutnn_ops(8, 8, 8, 4, 2);
        assert_eq!(ops.multiplies, 256);
        assert_eq!(ops.adds, 512 + 256);
    }

    #[test]
    #[should_panic(expected = "v must divide h")]
    fn lutnn_rejects_bad_v() {
        let _ = lutnn_ops(8, 10, 8, 4, 3);
    }

    #[test]
    fn fig3_reduction_range_matches_paper() {
        // Paper: 3.66×–18.29× reduction over the swept configurations at
        // N=H=F=1024.
        let points = fig3_sweep(1024);
        let min = points
            .iter()
            .map(|p| p.reduction)
            .fold(f64::INFINITY, f64::min);
        let max = points.iter().map(|p| p.reduction).fold(0.0, f64::max);
        assert!((3.0..5.0).contains(&min), "min reduction {min}");
        assert!((15.0..22.0).contains(&max), "max reduction {max}");
    }

    #[test]
    fn fig3_multiply_fraction_matches_paper() {
        // Paper: multiplies are 2.9 %–14.3 % of LUT-NN's total operations.
        let points = fig3_sweep(1024);
        for p in &points {
            let frac = p.lut_ops.multiply_fraction();
            assert!(
                (0.02..0.20).contains(&frac),
                "V={} CT={}: multiply fraction {frac}",
                p.v,
                p.ct
            );
        }
    }

    #[test]
    fn larger_v_reduces_ops() {
        let points = fig3_sweep(1024);
        // First four points share CT=16 with V increasing: total ops must
        // decrease (reduce term shrinks).
        for w in points[..4].windows(2) {
            assert!(w[1].lut_ops.total() < w[0].lut_ops.total());
        }
    }

    #[test]
    fn fewer_centroids_reduce_ops() {
        let points = fig3_sweep(1024);
        // Last four points share V=4 with CT decreasing: ops must decrease.
        for w in points[4..].windows(2) {
            assert!(w[1].lut_ops.total() < w[0].lut_ops.total());
        }
    }

    #[test]
    fn zero_total_multiply_fraction() {
        let ops = OpCounts {
            multiplies: 0,
            adds: 0,
        };
        assert_eq!(ops.multiply_fraction(), 0.0);
    }
}
