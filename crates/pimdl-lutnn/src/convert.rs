//! Model conversion: replacing every linear layer of a transformer with a
//! LUT-NN operator (the paper's LUT-NN Converter output format).
//!
//! [`LutLinear`] is the converted form of one `pimdl_nn::Linear`:
//! codebooks + look-up tables + bias. [`LutClassifier`] is the converted
//! form of a whole [`TransformerClassifier`]: embedding, layer norms,
//! attention arithmetic and the classification head are carried over
//! unchanged; the four linear operators per block (fused QKV, O projection,
//! FFN1, FFN2 — Fig. 6-(b)) run through LUTs.

use pimdl_nn::embedding::{InputEmbedding, SequenceInput};
use pimdl_nn::transformer::{LayerNorm, TransformerClassifier};
use pimdl_nn::Linear;
use pimdl_tensor::{elementwise, norm, Matrix};

use crate::lut::{LutTable, QuantLutTable};
use crate::pq::ProductQuantizer;
use crate::{LutError, Result};

/// Which of the four convertible operators of a block a layer index refers
/// to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayerKind {
    /// Fused Q/K/V projection (`H -> 3H`).
    Qkv,
    /// Attention output projection (`H -> H`).
    OProj,
    /// First feed-forward layer (`H -> 4H`).
    Ffn1,
    /// Second feed-forward layer (`4H -> H`).
    Ffn2,
}

impl LayerKind {
    /// The four kinds in conversion order.
    pub fn all() -> [LayerKind; 4] {
        [
            LayerKind::Qkv,
            LayerKind::OProj,
            LayerKind::Ffn1,
            LayerKind::Ffn2,
        ]
    }

    /// Display name used in reports (matches Fig. 11-(b) labels).
    pub fn name(self) -> &'static str {
        match self {
            LayerKind::Qkv => "QKV",
            LayerKind::OProj => "O",
            LayerKind::Ffn1 => "FFN1",
            LayerKind::Ffn2 => "FFN2",
        }
    }
}

/// Flat index of a convertible layer: `block * 4 + kind`.
pub fn layer_index(block: usize, kind: LayerKind) -> usize {
    let k = match kind {
        LayerKind::Qkv => 0,
        LayerKind::OProj => 1,
        LayerKind::Ffn1 => 2,
        LayerKind::Ffn2 => 3,
    };
    block * 4 + k
}

/// A linear layer converted to the LUT-NN form.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct LutLinear {
    pq: ProductQuantizer,
    lut: LutTable,
    qlut: QuantLutTable,
    bias: Vec<f32>,
}

impl LutLinear {
    /// Converts a dense linear layer using a fitted quantizer.
    ///
    /// # Errors
    ///
    /// Returns [`LutError::Config`] if the quantizer's hidden dim does not
    /// match the layer's input dim.
    pub fn convert(linear: &Linear, pq: ProductQuantizer) -> Result<Self> {
        if pq.hidden() != linear.in_features() {
            return Err(LutError::Config {
                op: "LutLinear::convert",
                detail: format!(
                    "quantizer hidden {} != layer input {}",
                    pq.hidden(),
                    linear.in_features()
                ),
            });
        }
        let lut = LutTable::build(&pq, &linear.weight.data)?;
        let qlut = lut.quantize();
        Ok(LutLinear {
            pq,
            lut,
            qlut,
            bias: linear.bias.data.row(0).to_vec(),
        })
    }

    /// Input feature count `H`.
    pub fn in_features(&self) -> usize {
        self.pq.hidden()
    }

    /// Output feature count `F`.
    pub fn out_features(&self) -> usize {
        self.lut.f()
    }

    /// The quantizer (codebooks) of this layer.
    pub fn quantizer(&self) -> &ProductQuantizer {
        &self.pq
    }

    /// The `f32` look-up tables.
    pub fn lut(&self) -> &LutTable {
        &self.lut
    }

    /// The INT8 look-up tables (the form shipped to PIM local memory).
    pub fn quant_lut(&self) -> &QuantLutTable {
        &self.qlut
    }

    /// LUT-NN forward: CCS + gather-accumulate + bias.
    ///
    /// With `int8 = true` the gather runs over the INT8 tables with i32
    /// accumulation (the UPMEM deployment); otherwise over the `f32` tables.
    ///
    /// # Errors
    ///
    /// Propagates shape errors.
    pub fn forward(&self, x: &Matrix, int8: bool) -> Result<Matrix> {
        let indices = self.pq.encode(x)?;
        let mut y = if int8 {
            self.qlut.lookup(&indices)?
        } else {
            self.lut.lookup(&indices)?
        };
        for r in 0..y.rows() {
            for (v, b) in y.row_mut(r).iter_mut().zip(&self.bias) {
                *v += b;
            }
        }
        Ok(y)
    }
}

/// One converted encoder block.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct LutBlock {
    /// Converted fused QKV projection.
    pub qkv: LutLinear,
    /// Converted output projection.
    pub proj: LutLinear,
    /// Converted FFN1.
    pub ffn1: LutLinear,
    /// Converted FFN2.
    pub ffn2: LutLinear,
    /// Post-attention layer norm (copied from the source model).
    pub ln1: LayerNorm,
    /// Post-FFN layer norm (copied from the source model).
    pub ln2: LayerNorm,
    heads: usize,
}

/// Shared attention arithmetic: applies `qkv_apply` to `x`, runs per-head
/// scaled-dot-product attention, and returns `(proj_input, attn_out)` where
/// `attn_out = proj_apply(proj_input)`.
///
/// Both the exact activation-collection path and the LUT inference path use
/// this function, so they cannot drift apart.
///
/// # Errors
///
/// Propagates shape errors from the supplied linear applications.
pub fn attention_arithmetic<Q, P>(
    x: &Matrix,
    hidden: usize,
    heads: usize,
    qkv_apply: Q,
    proj_apply: P,
) -> Result<(Matrix, Matrix)>
where
    Q: FnOnce(&Matrix) -> Result<Matrix>,
    P: FnOnce(&Matrix) -> Result<Matrix>,
{
    if hidden == 0 || heads == 0 || !hidden.is_multiple_of(heads) {
        return Err(LutError::Config {
            op: "attention_arithmetic",
            detail: format!("hidden {hidden} not divisible by heads {heads}"),
        });
    }
    let n = x.rows();
    let dk = hidden / heads;
    let scale = 1.0 / (dk as f32).sqrt();
    let qkv_out = qkv_apply(x)?;
    if qkv_out.shape() != (n, 3 * hidden) {
        return Err(LutError::Config {
            op: "attention_arithmetic",
            detail: format!(
                "qkv output {}x{} != {n}x{}",
                qkv_out.rows(),
                qkv_out.cols(),
                3 * hidden
            ),
        });
    }
    let q = qkv_out.submatrix(0, 0, n, hidden)?;
    let k = qkv_out.submatrix(0, hidden, n, hidden)?;
    let v = qkv_out.submatrix(0, 2 * hidden, n, hidden)?;
    let mut concat = Matrix::zeros(n, hidden);
    for head in 0..heads {
        let qh = q.submatrix(0, head * dk, n, dk)?;
        let kh = k.submatrix(0, head * dk, n, dk)?;
        let vh = v.submatrix(0, head * dk, n, dk)?;
        let scores = pimdl_tensor::gemm::matmul(&qh, &kh.transpose())?.scale(scale);
        let p = norm::softmax(&scores);
        let oh = pimdl_tensor::gemm::matmul(&p, &vh)?;
        concat.set_submatrix(0, head * dk, &oh)?;
    }
    let out = proj_apply(&concat)?;
    Ok((concat, out))
}

impl LutBlock {
    /// Forward pass of the converted block.
    ///
    /// # Errors
    ///
    /// Propagates shape errors.
    pub fn forward(&self, x: &Matrix, int8: bool) -> Result<Matrix> {
        let hidden = self.qkv.in_features();
        let (_, attn_out) = attention_arithmetic(
            x,
            hidden,
            self.heads,
            |x| self.qkv.forward(x, int8),
            |c| self.proj.forward(c, int8),
        )?;
        let res1 = x.add(&attn_out)?;
        let (x1, _) = self.ln1.forward(&res1)?;
        let ffn1_out = elementwise::gelu(&self.ffn1.forward(&x1, int8)?);
        let ffn2_out = self.ffn2.forward(&ffn1_out, int8)?;
        let res2 = x1.add(&ffn2_out)?;
        Ok(self.ln2.forward(&res2)?.0)
    }
}

/// A fully converted transformer classifier (LUT-NN inference model).
///
/// Serializable: the serde form (codebooks + INT8 LUTs + norms + head) is
/// the deployable artifact the converter ships to a PIM serving host.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct LutClassifier {
    /// Input embedding (unconverted; element-wise / lookup, PIM-friendly).
    pub embedding: InputEmbedding,
    /// Converted encoder blocks.
    pub blocks: Vec<LutBlock>,
    /// Classification head (kept exact: a single tiny GEMV per sequence).
    pub head: Linear,
    hidden: usize,
}

impl LutClassifier {
    /// Converts a trained model using one fitted quantizer per convertible
    /// layer, ordered by [`layer_index`].
    ///
    /// # Errors
    ///
    /// Returns [`LutError::Config`] if `quantizers.len() != 4 * blocks` or
    /// any quantizer mismatches its layer.
    pub fn convert(
        model: &TransformerClassifier,
        quantizers: Vec<ProductQuantizer>,
    ) -> Result<Self> {
        let n_blocks = model.num_blocks();
        if quantizers.len() != 4 * n_blocks {
            return Err(LutError::Config {
                op: "LutClassifier::convert",
                detail: format!(
                    "{} quantizers for {} layers",
                    quantizers.len(),
                    4 * n_blocks
                ),
            });
        }
        let mut qs = quantizers.into_iter();
        let mut blocks = Vec::with_capacity(n_blocks);
        for block in &model.blocks {
            let qkv = LutLinear::convert(&block.attn.qkv, qs.next().expect("counted"))?;
            let proj = LutLinear::convert(&block.attn.proj, qs.next().expect("counted"))?;
            let ffn1 = LutLinear::convert(&block.ffn1, qs.next().expect("counted"))?;
            let ffn2 = LutLinear::convert(&block.ffn2, qs.next().expect("counted"))?;
            blocks.push(LutBlock {
                qkv,
                proj,
                ffn1,
                ffn2,
                ln1: block.ln1.clone(),
                ln2: block.ln2.clone(),
                heads: block.attn.heads(),
            });
        }
        Ok(LutClassifier {
            embedding: model.embedding.clone(),
            blocks,
            head: model.head.clone(),
            hidden: model.hidden(),
        })
    }

    /// Hidden dimension.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Forward pass producing logits (`1 x classes`).
    ///
    /// # Errors
    ///
    /// Propagates shape errors.
    pub fn predict(&self, input: &SequenceInput, int8: bool) -> Result<Matrix> {
        let (mut x, _) = self.embedding.forward(input)?;
        for block in &self.blocks {
            x = block.forward(&x, int8)?;
        }
        let n = x.rows().max(1);
        let mut pooled = Matrix::zeros(1, self.hidden);
        for r in 0..x.rows() {
            for (acc, v) in pooled.row_mut(0).iter_mut().zip(x.row(r)) {
                *acc += v / n as f32;
            }
        }
        Ok(self.head.forward(&pooled)?)
    }

    /// Total INT8 LUT storage across all layers, in bytes — the memory the
    /// PIM modules must hold.
    pub fn total_lut_bytes(&self) -> usize {
        self.blocks
            .iter()
            .flat_map(|b| [&b.qkv, &b.proj, &b.ffn1, &b.ffn2])
            .map(|l| l.quant_lut().size_bytes())
            .sum()
    }
}

/// Per-layer diagnostics of a converted model over a probe set.
#[derive(Debug, Clone, serde::Serialize)]
pub struct LayerDiagnostics {
    /// Block index.
    pub block: usize,
    /// Operator name (QKV / O / FFN1 / FFN2).
    pub operator: &'static str,
    /// Mean squared sub-vector quantization error of the layer's inputs.
    pub quantization_mse: f32,
    /// Fraction of consecutive-row index repeats in the layer's CCS output
    /// — the hot-entry reuse available to the fine-grain load scheme on
    /// *real* model traffic (cf. the §7 buffer-management analysis).
    pub index_repeat_fraction: f64,
    /// INT8 LUT bytes of the layer.
    pub lut_bytes: usize,
}

impl LutClassifier {
    /// Runs the probe inputs through the converted model, measuring each
    /// layer's quantization error and index-repeat statistics.
    ///
    /// # Errors
    ///
    /// Propagates shape errors.
    pub fn layer_diagnostics(&self, inputs: &[SequenceInput]) -> Result<Vec<LayerDiagnostics>> {
        // Accumulators per layer: (sum squared error, element count,
        // repeats, transitions).
        let n_layers = 4 * self.blocks.len();
        let mut sse = vec![0.0f64; n_layers];
        let mut elems = vec![0u64; n_layers];
        let mut repeats = vec![0u64; n_layers];
        let mut transitions = vec![0u64; n_layers];

        let mut probe = |layer: usize, ll: &LutLinear, x: &Matrix| -> Result<()> {
            let (snapped, indices) = ll.quantizer().snap(x)?;
            let diff = snapped.sub(x)?;
            sse[layer] += f64::from(diff.frobenius_sq());
            elems[layer] += x.len() as u64;
            for r in 1..indices.rows() {
                for c in 0..indices.cols() {
                    transitions[layer] += 1;
                    if indices.get(r, c) == indices.get(r - 1, c) {
                        repeats[layer] += 1;
                    }
                }
            }
            Ok(())
        };

        for input in inputs {
            let (mut x, _) = self.embedding.forward(input)?;
            for (b, block) in self.blocks.iter().enumerate() {
                let hidden = block.qkv.in_features();
                probe(b * 4, &block.qkv, &x)?;
                let (concat, attn_out) = attention_arithmetic(
                    &x,
                    hidden,
                    block.heads,
                    |x| block.qkv.forward(x, false),
                    |c| block.proj.forward(c, false),
                )?;
                probe(b * 4 + 1, &block.proj, &concat)?;
                let res1 = x.add(&attn_out)?;
                let (x1, _) = block.ln1.forward(&res1)?;
                probe(b * 4 + 2, &block.ffn1, &x1)?;
                let gelu_out = elementwise::gelu(&block.ffn1.forward(&x1, false)?);
                probe(b * 4 + 3, &block.ffn2, &gelu_out)?;
                let ffn2_out = block.ffn2.forward(&gelu_out, false)?;
                let res2 = x1.add(&ffn2_out)?;
                x = block.ln2.forward(&res2)?.0;
            }
        }

        let mut out = Vec::with_capacity(n_layers);
        for (b, block) in self.blocks.iter().enumerate() {
            for (k, (kind, ll)) in [
                ("QKV", &block.qkv),
                ("O", &block.proj),
                ("FFN1", &block.ffn1),
                ("FFN2", &block.ffn2),
            ]
            .into_iter()
            .enumerate()
            {
                let layer = b * 4 + k;
                out.push(LayerDiagnostics {
                    block: b,
                    operator: kind,
                    quantization_mse: (sse[layer] / elems[layer].max(1) as f64) as f32,
                    index_repeat_fraction: repeats[layer] as f64 / transitions[layer].max(1) as f64,
                    lut_bytes: ll.quant_lut().size_bytes(),
                });
            }
        }
        Ok(out)
    }
}

/// Classification accuracy of a converted model on a dataset.
///
/// # Errors
///
/// Propagates shape errors.
pub fn lut_accuracy(
    model: &LutClassifier,
    dataset: &pimdl_nn::data::Dataset,
    int8: bool,
) -> Result<f32> {
    let mut correct = 0usize;
    for (input, &label) in dataset.inputs.iter().zip(&dataset.labels) {
        let logits = model.predict(input, int8)?;
        if pimdl_nn::loss::argmax_rows(&logits)[0] == label {
            correct += 1;
        }
    }
    Ok(correct as f32 / dataset.len().max(1) as f32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimdl_nn::transformer::ModelConfig;
    use pimdl_tensor::rng::DataRng;

    fn model_and_rng(seed: u64) -> (TransformerClassifier, DataRng) {
        let cfg = ModelConfig {
            input: pimdl_nn::transformer::InputKind::Tokens { vocab: 12 },
            hidden: 8,
            heads: 2,
            layers: 2,
            ffn_dim: 16,
            max_seq: 6,
            classes: 3,
        };
        let mut rng = DataRng::new(seed);
        let model = TransformerClassifier::new(&cfg, &mut rng);
        (model, rng)
    }

    /// Fits quantizers with generous CT so conversion is near-lossless on
    /// the calibration inputs.
    fn rich_quantizers(
        model: &TransformerClassifier,
        rng: &mut DataRng,
        ct: usize,
    ) -> Vec<ProductQuantizer> {
        // Use random activations of the right widths; for structural tests
        // fidelity does not matter.
        let mut qs = Vec::new();
        for block in &model.blocks {
            for dim in [
                block.attn.qkv.in_features(),
                block.attn.proj.in_features(),
                block.ffn1.in_features(),
                block.ffn2.in_features(),
            ] {
                let acts = rng.normal_matrix(64, dim, 0.0, 1.0);
                qs.push(ProductQuantizer::fit(&acts, 2, ct, 10, rng).unwrap());
            }
        }
        qs
    }

    #[test]
    fn layer_index_layout() {
        assert_eq!(layer_index(0, LayerKind::Qkv), 0);
        assert_eq!(layer_index(0, LayerKind::Ffn2), 3);
        assert_eq!(layer_index(2, LayerKind::OProj), 9);
        assert_eq!(
            LayerKind::all().map(|k| k.name()),
            ["QKV", "O", "FFN1", "FFN2"]
        );
    }

    #[test]
    fn convert_structure() {
        let (model, mut rng) = model_and_rng(0);
        let qs = rich_quantizers(&model, &mut rng, 8);
        let lut_model = LutClassifier::convert(&model, qs).unwrap();
        assert_eq!(lut_model.blocks.len(), 2);
        assert_eq!(lut_model.hidden(), 8);
        assert!(lut_model.total_lut_bytes() > 0);
    }

    #[test]
    fn convert_rejects_wrong_quantizer_count() {
        let (model, mut rng) = model_and_rng(1);
        let mut qs = rich_quantizers(&model, &mut rng, 8);
        qs.pop();
        assert!(LutClassifier::convert(&model, qs).is_err());
    }

    #[test]
    fn convert_rejects_mismatched_quantizer() {
        let (model, mut rng) = model_and_rng(2);
        let mut qs = rich_quantizers(&model, &mut rng, 8);
        // Swap a quantizer with one of the wrong width (ffn2 input is 16).
        let acts = rng.normal_matrix(32, 10, 0.0, 1.0);
        qs[3] = ProductQuantizer::fit(&acts, 2, 8, 5, &mut rng).unwrap();
        assert!(LutClassifier::convert(&model, qs).is_err());
    }

    #[test]
    fn lut_linear_forward_matches_snapped_dense() {
        let mut rng = DataRng::new(3);
        let linear = Linear::new(8, 4, &mut rng);
        let acts = rng.normal_matrix(128, 8, 0.0, 1.0);
        let pq = ProductQuantizer::fit(&acts, 2, 16, 15, &mut rng).unwrap();
        let ll = LutLinear::convert(&linear, pq.clone()).unwrap();
        let x = rng.normal_matrix(4, 8, 0.0, 1.0);
        let via_lut = ll.forward(&x, false).unwrap();
        let (snapped, _) = pq.snap(&x).unwrap();
        let dense = linear.forward(&snapped).unwrap();
        assert!(
            via_lut.approx_eq(&dense, 1e-4),
            "max diff {}",
            via_lut.sub(&dense).unwrap().max_abs()
        );
    }

    #[test]
    fn int8_forward_close_to_f32() {
        let mut rng = DataRng::new(4);
        let linear = Linear::new(8, 8, &mut rng);
        let acts = rng.normal_matrix(128, 8, 0.0, 1.0);
        let pq = ProductQuantizer::fit(&acts, 2, 16, 15, &mut rng).unwrap();
        let ll = LutLinear::convert(&linear, pq).unwrap();
        let x = rng.normal_matrix(4, 8, 0.0, 1.0);
        let f32_out = ll.forward(&x, false).unwrap();
        let i8_out = ll.forward(&x, true).unwrap();
        assert!(f32_out.approx_eq(&i8_out, 0.1), "int8 drift too large");
    }

    #[test]
    fn predict_shape_and_finiteness() {
        let (model, mut rng) = model_and_rng(5);
        let qs = rich_quantizers(&model, &mut rng, 16);
        let lut_model = LutClassifier::convert(&model, qs).unwrap();
        let input = SequenceInput::Tokens(vec![1, 2, 3]);
        for int8 in [false, true] {
            let logits = lut_model.predict(&input, int8).unwrap();
            assert_eq!(logits.shape(), (1, 3));
            assert!(logits.iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn attention_arithmetic_matches_nn_module() {
        // The shared attention arithmetic must agree with
        // pimdl_nn::attention::MultiHeadAttention exactly when fed the same
        // dense linears.
        let mut rng = DataRng::new(6);
        let mha = pimdl_nn::attention::MultiHeadAttention::new(8, 2, &mut rng);
        let x = rng.normal_matrix(5, 8, 0.0, 1.0);
        let (expected, _) = mha.forward(&x).unwrap();
        let (_, actual) = attention_arithmetic(
            &x,
            8,
            2,
            |x| Ok(mha.qkv.forward(x)?),
            |c| Ok(mha.proj.forward(c)?),
        )
        .unwrap();
        assert!(actual.approx_eq(&expected, 1e-5));
    }

    #[test]
    fn attention_arithmetic_validates() {
        let x = Matrix::zeros(2, 8);
        assert!(
            attention_arithmetic(&x, 8, 3, |_| Ok(Matrix::zeros(2, 24)), |c| Ok(c.clone()))
                .is_err()
        );
        assert!(
            attention_arithmetic(&x, 8, 2, |_| Ok(Matrix::zeros(2, 10)), |c| Ok(c.clone()))
                .is_err()
        );
    }

    #[test]
    fn layer_diagnostics_cover_all_layers() {
        let (model, mut rng) = model_and_rng(8);
        let qs = rich_quantizers(&model, &mut rng, 8);
        let lut_model = LutClassifier::convert(&model, qs).unwrap();
        let inputs: Vec<SequenceInput> = (0..6)
            .map(|i| SequenceInput::Tokens(vec![i % 12, (i + 1) % 12, (i + 5) % 12]))
            .collect();
        let diag = lut_model.layer_diagnostics(&inputs).unwrap();
        assert_eq!(diag.len(), 8); // 2 blocks × 4 operators
        for d in &diag {
            assert!(d.quantization_mse >= 0.0 && d.quantization_mse.is_finite());
            assert!((0.0..=1.0).contains(&d.index_repeat_fraction));
            assert!(d.lut_bytes > 0);
        }
        // Operators enumerate in Fig. 6 order per block.
        assert_eq!(diag[0].operator, "QKV");
        assert_eq!(diag[3].operator, "FFN2");
        assert_eq!(diag[4].block, 1);
    }

    #[test]
    fn lut_accuracy_runs() {
        let (model, mut rng) = model_and_rng(7);
        let qs = rich_quantizers(&model, &mut rng, 16);
        let lut_model = LutClassifier::convert(&model, qs).unwrap();
        let ds =
            pimdl_nn::data::nlp_dataset(pimdl_nn::data::NlpTask::Sentiment, 20, 12, 6, &mut rng);
        let acc = lut_accuracy(&lut_model, &ds, false).unwrap();
        assert!((0.0..=1.0).contains(&acc));
    }
}
