//! Property-based tests for the LUT-NN core invariants.

use proptest::prelude::*;

use pimdl_lutnn::kernels::{
    lut_linear_fused, lut_linear_fused_parallel, lut_linear_fused_quant,
    lut_linear_fused_quant_parallel, lut_linear_fused_quant_tiled, lut_linear_fused_tiled,
    FusedTiling,
};
use pimdl_lutnn::kmeans::{kmeans, sq_dist};
use pimdl_lutnn::lut::LutTable;
use pimdl_lutnn::pq::ProductQuantizer;
use pimdl_tensor::gemm;
use pimdl_tensor::rng::DataRng;
use pimdl_tensor::Matrix;

/// Rounds every entry to a multiple of `step`, manufacturing duplicate
/// centroids and exactly equidistant candidates so ties are common.
fn snap_to_grid(m: &Matrix, step: f32) -> Matrix {
    let data = m
        .as_slice()
        .iter()
        .map(|&v| (v / step).round() * step)
        .collect();
    Matrix::from_vec(m.rows(), m.cols(), data).expect("same shape")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Decoding any encoding yields sub-vectors that are actual centroids,
    /// and each is the *nearest* centroid of its codebook.
    #[test]
    fn encode_picks_nearest(seed in any::<u64>(), cb in 1usize..4, v in 1usize..4, ct in 2usize..9) {
        let h = cb * v;
        let mut rng = DataRng::new(seed);
        let calib = rng.normal_matrix(32.max(4 * ct), h, 0.0, 1.0);
        let pq = ProductQuantizer::fit(&calib, v, ct, 8, &mut rng).unwrap();
        let x = rng.normal_matrix(6, h, 0.0, 1.0);
        let idx = pq.encode(&x).unwrap();
        for r in 0..x.rows() {
            for c in 0..cb {
                let sub = &x.row(r)[c * v..(c + 1) * v];
                let chosen = sq_dist(sub, pq.centroid(c, idx.get(r, c) as usize));
                for k in 0..ct {
                    prop_assert!(chosen <= sq_dist(sub, pq.centroid(c, k)) + 1e-5);
                }
            }
        }
    }

    /// Quantization MSE never increases when centroids are a superset-quality
    /// fit (more Lloyd iterations with the same seed).
    #[test]
    fn more_iterations_do_not_hurt(seed in any::<u64>()) {
        let mut rng = DataRng::new(seed);
        let acts = rng.normal_matrix(64, 8, 0.0, 1.0);
        let short = ProductQuantizer::fit(&acts, 2, 4, 1, &mut DataRng::new(7)).unwrap();
        let long = ProductQuantizer::fit(&acts, 2, 4, 25, &mut DataRng::new(7)).unwrap();
        let mse_short = short.quantization_mse(&acts).unwrap();
        let mse_long = long.quantization_mse(&acts).unwrap();
        prop_assert!(mse_long <= mse_short * 1.01 + 1e-6,
            "long {mse_long} vs short {mse_short}");
    }

    /// INT8 LUT lookup error is bounded by CB × scale/2 per output element.
    #[test]
    fn quantized_lookup_error_bound(seed in any::<u64>(), cb in 1usize..5, f in 1usize..10) {
        let v = 2usize;
        let ct = 8usize;
        let h = cb * v;
        let mut rng = DataRng::new(seed);
        let calib = rng.normal_matrix(64, h, 0.0, 1.0);
        let weight = rng.normal_matrix(h, f, 0.0, 0.5);
        let pq = ProductQuantizer::fit(&calib, v, ct, 8, &mut rng).unwrap();
        let lut = LutTable::build(&pq, &weight).unwrap();
        let qlut = lut.quantize();
        let x = rng.normal_matrix(4, h, 0.0, 1.0);
        let idx = pq.encode(&x).unwrap();
        let exact = lut.lookup(&idx).unwrap();
        let quant = qlut.lookup(&idx).unwrap();
        let bound = qlut.table().scale() * cb as f32 * 0.51 + 1e-5;
        prop_assert!(exact.sub(&quant).unwrap().max_abs() <= bound);
    }

    /// k-means inertia equals the sum of squared distances to assigned
    /// centroids, and assignments are optimal.
    #[test]
    fn kmeans_inertia_consistent(seed in any::<u64>(), n in 4usize..30, k in 1usize..6) {
        let mut rng = DataRng::new(seed);
        let points = rng.normal_matrix(n, 3, 0.0, 2.0);
        let result = kmeans(&points, k, 20, &mut rng).unwrap();
        let mut total = 0.0;
        for (i, &a) in result.assignments.iter().enumerate() {
            total += sq_dist(points.row(i), result.centroids.row(a));
        }
        prop_assert!((total - result.inertia).abs() <= 1e-3 * (1.0 + total));
    }

    /// LUT construction is linear in the weight: LUT(W1 + W2) entry-wise
    /// equals LUT(W1) + LUT(W2).
    #[test]
    fn lut_linear_in_weight(seed in any::<u64>()) {
        let mut rng = DataRng::new(seed);
        let calib = rng.normal_matrix(32, 8, 0.0, 1.0);
        let pq = ProductQuantizer::fit(&calib, 2, 4, 8, &mut rng).unwrap();
        let w1 = rng.normal_matrix(8, 6, 0.0, 1.0);
        let w2 = rng.normal_matrix(8, 6, 0.0, 1.0);
        let sum = w1.add(&w2).unwrap();
        let l1 = LutTable::build(&pq, &w1).unwrap();
        let l2 = LutTable::build(&pq, &w2).unwrap();
        let ls = LutTable::build(&pq, &sum).unwrap();
        let combined = l1.table().add(l2.table()).unwrap();
        prop_assert!(combined.approx_eq(ls.table(), 1e-4));
    }

    /// The approximation error of the full LUT path is exactly the error of
    /// the snapped input propagated through W:
    /// `LUT(encode(x)) − x·W == (x̂ − x)·W`.
    #[test]
    fn error_decomposition(seed in any::<u64>()) {
        let mut rng = DataRng::new(seed);
        let calib = rng.normal_matrix(48, 8, 0.0, 1.0);
        let weight = rng.normal_matrix(8, 5, 0.0, 0.5);
        let pq = ProductQuantizer::fit(&calib, 2, 4, 8, &mut rng).unwrap();
        let lut = LutTable::build(&pq, &weight).unwrap();
        let x = rng.normal_matrix(4, 8, 0.0, 1.0);
        let (x_hat, idx) = pq.snap(&x).unwrap();
        let approx = lut.lookup(&idx).unwrap();
        let exact = gemm::matmul(&x, &weight).unwrap();
        let lhs = approx.sub(&exact).unwrap();
        let rhs = gemm::matmul(&x_hat.sub(&x).unwrap(), &weight).unwrap();
        prop_assert!(lhs.approx_eq(&rhs, 1e-3));
    }

    /// The fused kernel is *bit-identical* to the two-pass reference
    /// `lookup(encode(x))` — f32 and INT8 — over random shapes including
    /// n = 0, V = 1, CT = 1, and tie-prone grid-snapped inputs.
    #[test]
    fn fused_matches_two_pass_exactly(
        seed in any::<u64>(),
        n in 0usize..7,
        cb in 1usize..4,
        v in 1usize..5,
        ct in 1usize..9,
        f in 1usize..10,
        ties in any::<bool>(),
    ) {
        let h = cb * v;
        let mut rng = DataRng::new(seed);
        let mut centroids = rng.normal_matrix(cb * ct, v, 0.0, 1.0);
        let mut x = rng.normal_matrix(n, h, 0.0, 1.0);
        if ties {
            centroids = snap_to_grid(&centroids, 1.0);
            x = snap_to_grid(&x, 1.0);
        }
        let pq = ProductQuantizer::from_centroids(centroids, v, ct).unwrap();
        let weight = rng.normal_matrix(h, f, 0.0, 0.5);
        let lut = LutTable::build(&pq, &weight).unwrap();
        let qlut = lut.quantize();
        let cbs = pq.interleaved();
        let idx = pq.encode(&x).unwrap();

        let reference = lut.lookup(&idx).unwrap();
        let fused = lut_linear_fused(&x, &cbs, &lut).unwrap();
        prop_assert_eq!(reference.as_slice(), fused.as_slice());

        let qreference = qlut.lookup(&idx).unwrap();
        let qfused = lut_linear_fused_quant(&x, &cbs, &qlut).unwrap();
        prop_assert_eq!(qreference.as_slice(), qfused.as_slice());
    }

    /// Tile sizes are a pure blocking decision: every `FusedTiling` yields
    /// bit-identical output to the default tiling, f32 and INT8, including
    /// tiles larger than the problem and 1 x 1 tiles.
    #[test]
    fn tiling_does_not_change_bits(
        seed in any::<u64>(),
        n in 0usize..9,
        cb in 1usize..4,
        f in 1usize..12,
        row_tile in 1usize..12,
        f_tile in 1usize..14,
    ) {
        let (v, ct) = (2usize, 4usize);
        let h = cb * v;
        let mut rng = DataRng::new(seed);
        let centroids = rng.normal_matrix(cb * ct, v, 0.0, 1.0);
        let pq = ProductQuantizer::from_centroids(centroids, v, ct).unwrap();
        let weight = rng.normal_matrix(h, f, 0.0, 0.5);
        let lut = LutTable::build(&pq, &weight).unwrap();
        let qlut = lut.quantize();
        let cbs = pq.interleaved();
        let x = rng.normal_matrix(n, h, 0.0, 1.0);
        let tiling = FusedTiling { row_tile, f_tile };

        let reference = lut_linear_fused(&x, &cbs, &lut).unwrap();
        let tiled = lut_linear_fused_tiled(&x, &cbs, &lut, tiling).unwrap();
        prop_assert_eq!(reference.as_slice(), tiled.as_slice());

        let qreference = lut_linear_fused_quant(&x, &cbs, &qlut).unwrap();
        let qtiled = lut_linear_fused_quant_tiled(&x, &cbs, &qlut, tiling).unwrap();
        prop_assert_eq!(qreference.as_slice(), qtiled.as_slice());
    }

    /// The interleaved-layout CCS picks identical indices to the row-major
    /// reference encode — same strict-`<` first-wins tie-break — including
    /// on tie-prone snapped inputs and degenerate V = 1 / CT = 1 / n = 0.
    #[test]
    fn interleaved_encode_matches_row_major(
        seed in any::<u64>(),
        n in 0usize..8,
        cb in 1usize..4,
        v in 1usize..5,
        ct in 1usize..9,
        ties in any::<bool>(),
    ) {
        let h = cb * v;
        let mut rng = DataRng::new(seed);
        let mut centroids = rng.normal_matrix(cb * ct, v, 0.0, 1.0);
        let mut x = rng.normal_matrix(n, h, 0.0, 1.0);
        if ties {
            centroids = snap_to_grid(&centroids, 1.0);
            x = snap_to_grid(&x, 1.0);
        }
        let pq = ProductQuantizer::from_centroids(centroids, v, ct).unwrap();
        let cbs = pq.interleaved();
        prop_assert_eq!(pq.encode(&x).unwrap(), cbs.encode(&x).unwrap());
    }

    /// Worker-pool width never changes a single bit of any parallel kernel's
    /// output: encode, fused f32, and fused INT8 agree with their
    /// single-thread runs for threads ∈ {1, 2, 7, 64}.
    #[test]
    fn pool_width_does_not_change_bits(seed in any::<u64>(), n in 0usize..9) {
        let (cb, v, ct, f) = (3usize, 2usize, 4usize, 5usize);
        let h = cb * v;
        let mut rng = DataRng::new(seed);
        let centroids = rng.normal_matrix(cb * ct, v, 0.0, 1.0);
        let pq = ProductQuantizer::from_centroids(centroids, v, ct).unwrap();
        let weight = rng.normal_matrix(h, f, 0.0, 0.5);
        let lut = LutTable::build(&pq, &weight).unwrap();
        let qlut = lut.quantize();
        let cbs = pq.interleaved();
        let x = rng.normal_matrix(n, h, 0.0, 1.0);

        let idx = cbs.encode(&x).unwrap();
        let fused = lut_linear_fused(&x, &cbs, &lut).unwrap();
        let qfused = lut_linear_fused_quant(&x, &cbs, &qlut).unwrap();
        for threads in [1usize, 2, 7, 64] {
            prop_assert_eq!(&idx, &cbs.encode_parallel(&x, threads).unwrap());
            let par = lut_linear_fused_parallel(&x, &cbs, &lut, threads).unwrap();
            prop_assert_eq!(fused.as_slice(), par.as_slice());
            let qpar = lut_linear_fused_quant_parallel(&x, &cbs, &qlut, threads).unwrap();
            prop_assert_eq!(qfused.as_slice(), qpar.as_slice());
        }
    }
}
