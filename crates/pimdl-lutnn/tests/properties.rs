//! Property-based tests for the LUT-NN core invariants.

use proptest::prelude::*;

use pimdl_lutnn::kmeans::{kmeans, sq_dist};
use pimdl_lutnn::lut::LutTable;
use pimdl_lutnn::pq::ProductQuantizer;
use pimdl_tensor::gemm;
use pimdl_tensor::rng::DataRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Decoding any encoding yields sub-vectors that are actual centroids,
    /// and each is the *nearest* centroid of its codebook.
    #[test]
    fn encode_picks_nearest(seed in any::<u64>(), cb in 1usize..4, v in 1usize..4, ct in 2usize..9) {
        let h = cb * v;
        let mut rng = DataRng::new(seed);
        let calib = rng.normal_matrix(32.max(4 * ct), h, 0.0, 1.0);
        let pq = ProductQuantizer::fit(&calib, v, ct, 8, &mut rng).unwrap();
        let x = rng.normal_matrix(6, h, 0.0, 1.0);
        let idx = pq.encode(&x).unwrap();
        for r in 0..x.rows() {
            for c in 0..cb {
                let sub = &x.row(r)[c * v..(c + 1) * v];
                let chosen = sq_dist(sub, pq.centroid(c, idx.get(r, c) as usize));
                for k in 0..ct {
                    prop_assert!(chosen <= sq_dist(sub, pq.centroid(c, k)) + 1e-5);
                }
            }
        }
    }

    /// Quantization MSE never increases when centroids are a superset-quality
    /// fit (more Lloyd iterations with the same seed).
    #[test]
    fn more_iterations_do_not_hurt(seed in any::<u64>()) {
        let mut rng = DataRng::new(seed);
        let acts = rng.normal_matrix(64, 8, 0.0, 1.0);
        let short = ProductQuantizer::fit(&acts, 2, 4, 1, &mut DataRng::new(7)).unwrap();
        let long = ProductQuantizer::fit(&acts, 2, 4, 25, &mut DataRng::new(7)).unwrap();
        let mse_short = short.quantization_mse(&acts).unwrap();
        let mse_long = long.quantization_mse(&acts).unwrap();
        prop_assert!(mse_long <= mse_short * 1.01 + 1e-6,
            "long {mse_long} vs short {mse_short}");
    }

    /// INT8 LUT lookup error is bounded by CB × scale/2 per output element.
    #[test]
    fn quantized_lookup_error_bound(seed in any::<u64>(), cb in 1usize..5, f in 1usize..10) {
        let v = 2usize;
        let ct = 8usize;
        let h = cb * v;
        let mut rng = DataRng::new(seed);
        let calib = rng.normal_matrix(64, h, 0.0, 1.0);
        let weight = rng.normal_matrix(h, f, 0.0, 0.5);
        let pq = ProductQuantizer::fit(&calib, v, ct, 8, &mut rng).unwrap();
        let lut = LutTable::build(&pq, &weight).unwrap();
        let qlut = lut.quantize();
        let x = rng.normal_matrix(4, h, 0.0, 1.0);
        let idx = pq.encode(&x).unwrap();
        let exact = lut.lookup(&idx).unwrap();
        let quant = qlut.lookup(&idx).unwrap();
        let bound = qlut.table().scale() * cb as f32 * 0.51 + 1e-5;
        prop_assert!(exact.sub(&quant).unwrap().max_abs() <= bound);
    }

    /// k-means inertia equals the sum of squared distances to assigned
    /// centroids, and assignments are optimal.
    #[test]
    fn kmeans_inertia_consistent(seed in any::<u64>(), n in 4usize..30, k in 1usize..6) {
        let mut rng = DataRng::new(seed);
        let points = rng.normal_matrix(n, 3, 0.0, 2.0);
        let result = kmeans(&points, k, 20, &mut rng).unwrap();
        let mut total = 0.0;
        for (i, &a) in result.assignments.iter().enumerate() {
            total += sq_dist(points.row(i), result.centroids.row(a));
        }
        prop_assert!((total - result.inertia).abs() <= 1e-3 * (1.0 + total));
    }

    /// LUT construction is linear in the weight: LUT(W1 + W2) entry-wise
    /// equals LUT(W1) + LUT(W2).
    #[test]
    fn lut_linear_in_weight(seed in any::<u64>()) {
        let mut rng = DataRng::new(seed);
        let calib = rng.normal_matrix(32, 8, 0.0, 1.0);
        let pq = ProductQuantizer::fit(&calib, 2, 4, 8, &mut rng).unwrap();
        let w1 = rng.normal_matrix(8, 6, 0.0, 1.0);
        let w2 = rng.normal_matrix(8, 6, 0.0, 1.0);
        let sum = w1.add(&w2).unwrap();
        let l1 = LutTable::build(&pq, &w1).unwrap();
        let l2 = LutTable::build(&pq, &w2).unwrap();
        let ls = LutTable::build(&pq, &sum).unwrap();
        let combined = l1.table().add(l2.table()).unwrap();
        prop_assert!(combined.approx_eq(ls.table(), 1e-4));
    }

    /// The approximation error of the full LUT path is exactly the error of
    /// the snapped input propagated through W:
    /// `LUT(encode(x)) − x·W == (x̂ − x)·W`.
    #[test]
    fn error_decomposition(seed in any::<u64>()) {
        let mut rng = DataRng::new(seed);
        let calib = rng.normal_matrix(48, 8, 0.0, 1.0);
        let weight = rng.normal_matrix(8, 5, 0.0, 0.5);
        let pq = ProductQuantizer::fit(&calib, 2, 4, 8, &mut rng).unwrap();
        let lut = LutTable::build(&pq, &weight).unwrap();
        let x = rng.normal_matrix(4, 8, 0.0, 1.0);
        let (x_hat, idx) = pq.snap(&x).unwrap();
        let approx = lut.lookup(&idx).unwrap();
        let exact = gemm::matmul(&x, &weight).unwrap();
        let lhs = approx.sub(&exact).unwrap();
        let rhs = gemm::matmul(&x_hat.sub(&x).unwrap(), &weight).unwrap();
        prop_assert!(lhs.approx_eq(&rhs, 1e-3));
    }
}
