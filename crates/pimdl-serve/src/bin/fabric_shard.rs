//! Thin entry point for a fabric shard worker process.
//!
//! Spawned by [`pimdl_serve::Runtime::serve_fabric`] (or any caller
//! passing a worker argv) as:
//!
//! ```text
//! fabric_shard <addr> <shard_id> <speedup> <worker-spec-json>
//! ```
//!
//! All logic lives in [`pimdl_serve::fabric::shard_worker_main`]; this
//! binary only parses argv so integration tests can point
//! `CARGO_BIN_EXE_fabric_shard` at a real process.

use pimdl_serve::fabric::shard_worker_main;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.len() != 5 {
        eprintln!("usage: fabric_shard <addr> <shard_id> <speedup> <worker-spec-json>");
        std::process::exit(2);
    }
    let shard_id: u32 = match args[2].parse() {
        Ok(v) => v,
        Err(e) => {
            eprintln!("fabric_shard: bad shard id {:?}: {e}", args[2]);
            std::process::exit(2);
        }
    };
    let speedup: f64 = match args[3].parse() {
        Ok(v) => v,
        Err(e) => {
            eprintln!("fabric_shard: bad speedup {:?}: {e}", args[3]);
            std::process::exit(2);
        }
    };
    if let Err(e) = shard_worker_main(&args[1], shard_id, speedup, &args[4]) {
        eprintln!("fabric_shard: {e}");
        std::process::exit(1);
    }
}
