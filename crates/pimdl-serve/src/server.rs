//! The reactor-driven serving front end: one event loop, two transports.
//!
//! [`ServerLoop`] parks on an [`EventSource`] and feeds accepted
//! connections through the existing pipeline — [`AdmissionQueue`] →
//! [`ContinuousBatcher`] → [`ShardManager`] routing → a
//! [`BatchExecutor`] — speaking the line protocol of [`crate::codec`].
//! The loop is written once against the two traits, so the identical
//! byte-for-byte pipeline runs under:
//!
//! * [`EpollPoller`] + [`ThreadedExecutor`] — real sockets, real shard
//!   worker threads ([`Runtime::serve`] wires this up and returns a
//!   [`ServeHandle`]);
//! * [`crate::reactor::SimPoller`] + [`SimExecutor`] — scripted
//!   connections and inline execution on a [`VirtualClock`], advanced
//!   tick by tick by the deterministic tests.
//!
//! Idle costs nothing: with no pending work the loop's wait has no
//! timeout, so it burns zero wakeups until a socket, a shard completion,
//! or a shutdown token fires.

use std::collections::{BTreeMap, HashMap};
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};

use crate::admission::AdmissionQueue;
use crate::batcher::ContinuousBatcher;
use crate::clock::{Clock, RealClock, VirtualClock};
use crate::codec::{self, ErrorKind};
use crate::error::ServeError;
use crate::http::{self, HttpLimits, HttpParser, HttpRequest, Route};
use crate::metrics::{Metrics, MetricsSnapshot};
use crate::reactor::{
    EpollPoller, EventSource, IoEvent, SimHandle, Token, Waker, WAKE_COMPLETION, WAKE_SHUTDOWN,
};
use crate::registry::{AdmitRefusal, FairBatcher, ModelRegistry, TaggedJob};
use crate::request::Request;
use crate::runtime::{Runtime, ServeConfig};
use crate::shard::{ReplicaModel, ServiceModel, ShardManager};
use crate::Result;
use pimdl_engine::scheduler::TenantQuota;

/// Deadline expiry is strict (`now > deadline`), so deadline-driven
/// wakeups aim this far past the deadline (simulated seconds). Waking at
/// exactly `deadline` would shed nothing and respin on a zero timeout.
pub(crate) const DEADLINE_SLOP_S: f64 = 1e-9;

/// One finished batch, as reported by a [`BatchExecutor`].
#[derive(Debug)]
pub struct BatchDone {
    /// Shard that executed the batch.
    pub shard: usize,
    /// Completion time (simulated seconds).
    pub finish_s: f64,
    /// The batch's requests paired with their functional-correctness
    /// flags, in dispatch order.
    pub results: Vec<(Request, bool)>,
}

/// Executes dispatched batches on shard replicas.
///
/// The serving loop owns routing (which shard, what service time); the
/// executor owns *how* the batch runs — on real worker threads
/// ([`ThreadedExecutor`]) or inline with a scheduled virtual completion
/// ([`SimExecutor`]).
pub trait BatchExecutor: std::fmt::Debug {
    /// Hands a batch to `shard` with the cost model's `service_s`,
    /// executing against `model`'s table (the registry's resident model
    /// for the batch, or the runtime's single replica for the legacy line
    /// protocol). The shard must be free (see
    /// [`BatchExecutor::free_shards`]).
    ///
    /// # Errors
    ///
    /// Fails if the shard's worker is gone or execution fails fatally.
    fn submit(
        &mut self,
        shard: usize,
        service_s: f64,
        model: &Arc<ReplicaModel>,
        batch: Vec<Request>,
    ) -> Result<()>;

    /// Takes every batch that has completed, sorted by
    /// `(finish_s, shard)` so downstream bookkeeping is deterministic.
    fn drain(&mut self) -> Vec<BatchDone>;

    /// Per-shard availability (`true` = can take a batch now).
    fn free_shards(&self) -> Vec<bool>;

    /// Batches submitted but not yet drained.
    fn in_flight(&self) -> usize;
}

fn sort_done(done: &mut [BatchDone]) {
    done.sort_by(|a, b| {
        a.finish_s
            .total_cmp(&b.finish_s)
            .then(a.shard.cmp(&b.shard))
    });
}

// ---------------------------------------------------------------------------
// SimExecutor
// ---------------------------------------------------------------------------

/// Deterministic executor for the simulated transport: batches execute
/// functionally at submit time, completion is scheduled on the
/// [`crate::reactor::SimPoller`] script at `now + service_s`, and
/// [`BatchExecutor::drain`] releases results once the virtual clock
/// reaches them.
#[derive(Debug)]
pub struct SimExecutor {
    clock: Arc<VirtualClock>,
    sim: SimHandle,
    metrics: Arc<Metrics>,
    pending: Vec<BatchDone>,
    busy: Vec<bool>,
}

impl SimExecutor {
    /// An executor over `num_shards` simulated shards, scheduling
    /// completion wakes through `sim`.
    pub fn new(
        clock: Arc<VirtualClock>,
        sim: SimHandle,
        metrics: Arc<Metrics>,
        num_shards: usize,
    ) -> Self {
        SimExecutor {
            clock,
            sim,
            metrics,
            pending: Vec::new(),
            busy: vec![false; num_shards],
        }
    }
}

impl BatchExecutor for SimExecutor {
    fn submit(
        &mut self,
        shard: usize,
        service_s: f64,
        model: &Arc<ReplicaModel>,
        batch: Vec<Request>,
    ) -> Result<()> {
        debug_assert!(!self.busy[shard], "submit to a busy shard");
        self.busy[shard] = true;
        self.metrics.record_shard_wakeup();
        let flags = model.execute_batch(&batch)?;
        let finish_s = self.clock.now() + service_s;
        self.pending.push(BatchDone {
            shard,
            finish_s,
            results: batch.into_iter().zip(flags).collect(),
        });
        self.sim.wake_at(finish_s, WAKE_COMPLETION);
        Ok(())
    }

    fn drain(&mut self) -> Vec<BatchDone> {
        let now = self.clock.now();
        let mut done = Vec::new();
        let mut still = Vec::new();
        for b in self.pending.drain(..) {
            if b.finish_s <= now {
                self.busy[b.shard] = false;
                done.push(b);
            } else {
                still.push(b);
            }
        }
        self.pending = still;
        sort_done(&mut done);
        done
    }

    fn free_shards(&self) -> Vec<bool> {
        self.busy.iter().map(|&b| !b).collect()
    }

    fn in_flight(&self) -> usize {
        self.pending.len()
    }
}

// ---------------------------------------------------------------------------
// ThreadedExecutor
// ---------------------------------------------------------------------------

struct WorkMsg {
    service_s: f64,
    model: Arc<ReplicaModel>,
    batch: Vec<Request>,
}

/// Real shard workers: one thread per shard, each parked on a depth-1
/// channel. A worker wakes exactly once per dispatched batch, executes it
/// functionally, sleeps out the cost-model service time on the
/// accelerated clock, and fires the serving loop's completion wake token.
#[derive(Debug)]
pub struct ThreadedExecutor {
    txs: Vec<mpsc::SyncSender<WorkMsg>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    busy: Arc<Vec<AtomicBool>>,
    inflight: Arc<AtomicUsize>,
    done: Arc<Mutex<Vec<BatchDone>>>,
    error: Arc<Mutex<Option<ServeError>>>,
}

impl std::fmt::Debug for WorkMsg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkMsg")
            .field("service_s", &self.service_s)
            .field("batch", &self.batch.len())
            .finish()
    }
}

impl ThreadedExecutor {
    /// Spawns one worker per shard. `completion` is the serving loop's
    /// [`WAKE_COMPLETION`] waker. Each dispatched batch carries the model
    /// it executes against, so one worker pool serves every registered
    /// model.
    pub fn new(
        clock: Arc<RealClock>,
        metrics: Arc<Metrics>,
        completion: Waker,
        num_shards: usize,
    ) -> Self {
        let busy: Arc<Vec<AtomicBool>> =
            Arc::new((0..num_shards).map(|_| AtomicBool::new(false)).collect());
        let inflight = Arc::new(AtomicUsize::new(0));
        let done: Arc<Mutex<Vec<BatchDone>>> = Arc::new(Mutex::new(Vec::new()));
        let error: Arc<Mutex<Option<ServeError>>> = Arc::new(Mutex::new(None));
        let mut txs = Vec::with_capacity(num_shards);
        let mut workers = Vec::with_capacity(num_shards);
        for sid in 0..num_shards {
            let (tx, rx) = mpsc::sync_channel::<WorkMsg>(1);
            txs.push(tx);
            let (clock, metrics, completion) =
                (Arc::clone(&clock), Arc::clone(&metrics), completion.clone());
            let (busy, inflight, done, error) = (
                Arc::clone(&busy),
                Arc::clone(&inflight),
                Arc::clone(&done),
                Arc::clone(&error),
            );
            workers.push(std::thread::spawn(move || {
                for msg in rx.iter() {
                    metrics.record_shard_wakeup();
                    let t_recv = clock.now();
                    let flags = match msg.model.execute_batch(&msg.batch) {
                        Ok(flags) => flags,
                        Err(e) => {
                            *error
                                .lock()
                                .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(e);
                            vec![false; msg.batch.len()]
                        }
                    };
                    // The host-side functional check overlaps the modeled
                    // service time rather than adding to it.
                    clock.sleep(msg.service_s - (clock.now() - t_recv));
                    let finish_s = clock.now();
                    done.lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .push(BatchDone {
                            shard: sid,
                            finish_s,
                            results: msg.batch.into_iter().zip(flags).collect(),
                        });
                    busy[sid].store(false, Ordering::Release);
                    inflight.fetch_sub(1, Ordering::AcqRel);
                    completion.wake();
                }
            }));
        }
        ThreadedExecutor {
            txs,
            workers,
            busy,
            inflight,
            done,
            error,
        }
    }

    /// Joins every worker and propagates any stashed execution error.
    ///
    /// # Errors
    ///
    /// The first shard execution error of the run, if any.
    pub fn shutdown(mut self) -> Result<()> {
        self.txs.clear(); // closes every worker channel
        for w in self.workers.drain(..) {
            w.join().map_err(|_| ServeError::Io {
                detail: "shard worker panicked".to_string(),
            })?;
        }
        let stashed = self
            .error
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .take();
        match stashed {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

impl BatchExecutor for ThreadedExecutor {
    fn submit(
        &mut self,
        shard: usize,
        service_s: f64,
        model: &Arc<ReplicaModel>,
        batch: Vec<Request>,
    ) -> Result<()> {
        self.busy[shard].store(true, Ordering::Release);
        self.inflight.fetch_add(1, Ordering::AcqRel);
        // The shard was free, so its depth-1 channel is empty: the send
        // cannot block.
        self.txs[shard]
            .send(WorkMsg {
                service_s,
                model: Arc::clone(model),
                batch,
            })
            .map_err(|_| ServeError::Io {
                detail: format!("shard {shard} worker is gone"),
            })
    }

    fn drain(&mut self) -> Vec<BatchDone> {
        let mut done = std::mem::take(
            &mut *self
                .done
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        );
        sort_done(&mut done);
        done
    }

    fn free_shards(&self) -> Vec<bool> {
        self.busy
            .iter()
            .map(|b| !b.load(Ordering::Acquire))
            .collect()
    }

    fn in_flight(&self) -> usize {
        self.inflight.load(Ordering::Acquire)
    }
}

// ---------------------------------------------------------------------------
// ServerLoop
// ---------------------------------------------------------------------------

/// Per-connection server-side state.
#[derive(Debug, Default)]
struct ServerConn {
    buf: codec::LineBuffer,
    out: Vec<u8>,
    peer_closed: bool,
    /// Admitted requests whose responses this connection still owes.
    pending: usize,
    want_write: bool,
}

/// The serving event loop: admission, batching, routing, and the line
/// protocol, driven entirely by an [`EventSource`].
#[derive(Debug)]
pub struct ServerLoop<'a> {
    cfg: ServeConfig,
    service: &'a ServiceModel,
    replica: Arc<ReplicaModel>,
    clock: Arc<dyn Clock>,
    metrics: Arc<Metrics>,
    queue: AdmissionQueue,
    batcher: ContinuousBatcher,
    shards: ShardManager,
    conns: BTreeMap<u64, ServerConn>,
    /// request id → (connection token, client tag) of admitted requests.
    route: HashMap<u64, (u64, String)>,
    next_id: u64,
    draining: bool,
}

impl<'a> ServerLoop<'a> {
    /// A loop over `rt`'s pipeline, measuring time on `clock` and
    /// recording into `metrics`.
    ///
    /// # Errors
    ///
    /// Configuration validation of the queue/batcher/shard state machines.
    pub fn new(rt: &'a Runtime, clock: Arc<dyn Clock>, metrics: Arc<Metrics>) -> Result<Self> {
        let cfg = *rt.config();
        Ok(ServerLoop {
            cfg,
            service: rt.service_model(),
            replica: rt.replica_arc(),
            clock,
            metrics,
            queue: AdmissionQueue::new(cfg.queue_capacity)?,
            batcher: ContinuousBatcher::new(cfg.policy)?,
            shards: ShardManager::new(cfg.num_shards)?,
            conns: BTreeMap::new(),
            route: HashMap::new(),
            next_id: 0,
            draining: false,
        })
    }

    /// The shard router (exposed so tests can check per-shard dispatch and
    /// wakeup accounting after a run).
    pub fn shards(&self) -> &ShardManager {
        &self.shards
    }

    /// Runs until shutdown (a [`WAKE_SHUTDOWN`] token followed by a full
    /// drain) or — for the simulated transport — until the script is
    /// exhausted and no work remains.
    ///
    /// # Errors
    ///
    /// Poller failures and fatal executor failures. Per-connection I/O
    /// errors only drop that connection.
    pub fn run(
        &mut self,
        source: &mut dyn EventSource,
        executor: &mut dyn BatchExecutor,
    ) -> Result<()> {
        let stats = source.stats();
        let can_quiesce = source.supports_quiescence();
        let mut events: Vec<IoEvent> = Vec::new();
        loop {
            let timeout = self.next_timeout(executor);
            source.wait(timeout, &mut events)?;
            // Only a scripted source proves end-of-input with an empty
            // untimed wait; a live poller can return an empty batch
            // spuriously (stale wake-pipe byte) and must be re-parked.
            let quiescent = can_quiesce && events.is_empty() && timeout.is_none();
            let mut had_wake = false;
            let mut progress = false;
            for &event in events.iter() {
                match event {
                    IoEvent::Accepted(t) => {
                        self.conns.insert(t.0, ServerConn::default());
                        progress = true;
                    }
                    IoEvent::Readable(t) => {
                        if self.handle_readable(source, t)? {
                            progress = true;
                        }
                    }
                    IoEvent::Writable(t) => {
                        self.flush_conn(source, t);
                        progress = true;
                    }
                    IoEvent::Wake(t) => {
                        had_wake = true;
                        if t == WAKE_SHUTDOWN && !self.draining {
                            self.draining = true;
                            source.stop_accepting();
                            progress = true;
                        }
                    }
                }
            }

            if self.drain_completions(source, executor) {
                progress = true;
            }

            if self.pump(source, executor)? {
                progress = true;
            }
            if had_wake && !progress {
                stats.record_spurious_wakeup();
            }
            if (self.draining || quiescent)
                && self.queue.is_empty()
                && self.batcher.is_empty()
                && executor.in_flight() == 0
                // A worker publishes its BatchDone *before* decrementing
                // in-flight, so a completion landing between the drain above
                // and the in-flight check is still undelivered here. Re-drain;
                // if anything surfaced, its responses were just queued — loop
                // once more instead of exiting with them unwritten.
                && !self.drain_completions(source, executor)
            {
                return Ok(());
            }
        }
    }

    /// Delivers every finished batch the executor has published: records
    /// completion latency and writes each response back to its connection.
    /// Returns whether anything was drained.
    fn drain_completions(
        &mut self,
        source: &mut dyn EventSource,
        executor: &mut dyn BatchExecutor,
    ) -> bool {
        let mut progress = false;
        for done in executor.drain() {
            progress = true;
            for (req, correct) in done.results {
                self.metrics.record_completed(done.finish_s - req.arrival_s);
                if let Some((conn, tag)) = self.route.remove(&req.id) {
                    if let Some(c) = self.conns.get_mut(&conn) {
                        c.pending -= 1;
                    }
                    let line = codec::encode_result(&tag, correct, req.expected_checksum.to_bits());
                    self.respond(source, Token(conn), &line);
                }
            }
        }
        progress
    }

    /// Relative wait timeout: the earliest timed obligation — the flush
    /// window (only meaningful while a shard can absorb the batch) or a
    /// queued request's deadline. `None` = nothing timed, park until a
    /// socket or wake token fires.
    fn next_timeout(&self, executor: &dyn BatchExecutor) -> Option<f64> {
        let now = self.clock.now();
        let mut wake_s = f64::INFINITY;
        if !self.batcher.is_empty() && executor.free_shards().iter().any(|&f| f) {
            if let Some(d) = self.batcher.flush_deadline_s() {
                wake_s = wake_s.min(d);
            }
        }
        // Request deadlines are strict (`now > deadline`), so wake a hair
        // *past* them — waking at exactly `deadline` would shed nothing and
        // recompute the same zero timeout forever.
        if let Some(d) = self.queue.min_deadline_s() {
            wake_s = wake_s.min(d + DEADLINE_SLOP_S);
        }
        if let Some(d) = self.batcher.min_deadline_s() {
            wake_s = wake_s.min(d + DEADLINE_SLOP_S);
        }
        wake_s.is_finite().then(|| (wake_s - now).max(0.0))
    }

    /// Drains a readable connection and processes every complete line.
    /// Returns whether any byte moved.
    fn handle_readable(&mut self, source: &mut dyn EventSource, t: Token) -> Result<bool> {
        let mut scratch = Vec::new();
        let rr = source.read(t, &mut scratch)?;
        let Some(conn) = self.conns.get_mut(&t.0) else {
            return Ok(false);
        };
        conn.buf.push(&scratch);
        if rr.closed {
            conn.peer_closed = true;
        }
        // `get_mut` re-runs each iteration: a protocol error inside
        // `handle_line` may drop the connection mid-loop (oversized line).
        while let Some(c) = self.conns.get_mut(&t.0) {
            match c.buf.pop_line() {
                Ok(Some(line)) => self.handle_line(source, t, &line)?,
                Ok(None) => break,
                Err(_) => {
                    self.drop_conn(source, t);
                    break;
                }
            }
        }
        if let Some(c) = self.conns.get_mut(&t.0) {
            if c.peer_closed && c.pending == 0 && c.out.is_empty() {
                self.drop_conn(source, t);
            }
        }
        Ok(rr.bytes > 0 || rr.closed)
    }

    /// Parses and admits (or refuses) one query line.
    fn handle_line(&mut self, source: &mut dyn EventSource, t: Token, line: &[u8]) -> Result<()> {
        if line.is_empty() {
            return Ok(());
        }
        let now = self.clock.now();
        let query = match codec::parse_query(line) {
            Ok(q) => q,
            Err(_) => {
                let tag = fallback_tag(line);
                let msg = codec::encode_error(&tag, ErrorKind::Invalid);
                self.respond(source, t, &msg);
                return Ok(());
            }
        };
        if self.draining {
            let msg = codec::encode_error(&query.tag, ErrorKind::Shutdown);
            self.respond(source, t, &msg);
            return Ok(());
        }
        let req = match self.replica.request_from_indices(
            self.next_id,
            now,
            now + self.cfg.deadline_s,
            query.indices,
        ) {
            Ok(req) => req,
            Err(_) => {
                let msg = codec::encode_error(&query.tag, ErrorKind::Invalid);
                self.respond(source, t, &msg);
                return Ok(());
            }
        };
        let id = self.next_id;
        self.next_id += 1;
        self.metrics.record_submitted();
        match self.queue.try_admit(req) {
            Ok(()) => {
                self.metrics.observe_queue_depth(self.queue.len());
                self.route.insert(id, (t.0, query.tag));
                if let Some(c) = self.conns.get_mut(&t.0) {
                    c.pending += 1;
                }
            }
            Err(_rejected) => {
                self.metrics.record_rejected();
                let msg = codec::encode_error(&query.tag, ErrorKind::Rejected);
                self.respond(source, t, &msg);
            }
        }
        Ok(())
    }

    /// Shed → refill → dispatch while a shard can absorb work. Returns
    /// whether anything was shed or dispatched.
    fn pump(
        &mut self,
        source: &mut dyn EventSource,
        executor: &mut dyn BatchExecutor,
    ) -> Result<bool> {
        let now = self.clock.now();
        let mut progress = false;
        loop {
            let mut shed = self.queue.shed_expired(now);
            shed.extend(self.batcher.shed_expired(now));
            for r in shed {
                progress = true;
                self.metrics.record_deadline_exceeded();
                if let Some((conn, tag)) = self.route.remove(&r.id) {
                    if let Some(c) = self.conns.get_mut(&conn) {
                        c.pending -= 1;
                    }
                    let msg = codec::encode_error(&tag, ErrorKind::Deadline);
                    self.respond(source, Token(conn), &msg);
                }
            }
            while !self.batcher.is_full() {
                match self.queue.pop() {
                    Some(r) => self.batcher.push(r),
                    None => break,
                }
            }
            self.metrics.observe_queue_depth(self.queue.len());
            let flush = self.batcher.ready(now)
                || (self.draining && !self.batcher.is_empty() && self.queue.is_empty());
            if flush {
                if let Some(sid) = self.shards.least_loaded_among(&executor.free_shards()) {
                    let batch = self.batcher.take();
                    let service_s = self.service.batch_service_s(batch.len())?;
                    self.shards.dispatch_to(sid, now, service_s);
                    self.shards.record_wakeup(sid);
                    self.metrics.record_batch(batch.len());
                    let model = Arc::clone(&self.replica);
                    executor.submit(sid, service_s, &model, batch)?;
                    progress = true;
                    continue; // another batch may fit another shard
                }
            }
            return Ok(progress);
        }
    }

    /// Queues `bytes` on the connection and flushes as far as the
    /// transport allows.
    fn respond(&mut self, source: &mut dyn EventSource, t: Token, bytes: &[u8]) {
        if let Some(c) = self.conns.get_mut(&t.0) {
            c.out.extend_from_slice(bytes);
        }
        self.flush_conn(source, t);
    }

    /// Writes the connection's output buffer; arms writable interest on a
    /// partial write; reaps the connection when it is fully drained and
    /// the peer is gone. A hard write error drops the connection.
    fn flush_conn(&mut self, source: &mut dyn EventSource, t: Token) {
        let Some(c) = self.conns.get_mut(&t.0) else {
            return;
        };
        if !c.out.is_empty() {
            match source.write(t, &c.out) {
                Ok(n) => {
                    c.out.drain(..n);
                }
                Err(_) => {
                    self.drop_conn(source, t);
                    return;
                }
            }
        }
        let want = !c.out.is_empty();
        if want != c.want_write && source.set_writable_interest(t, want).is_ok() {
            c.want_write = want;
        }
        if c.peer_closed && c.pending == 0 && c.out.is_empty() {
            self.drop_conn(source, t);
        }
    }

    /// Closes and forgets a connection. In-flight requests it submitted
    /// still execute (and are counted); their responses are dropped.
    fn drop_conn(&mut self, source: &mut dyn EventSource, t: Token) {
        source.close(t);
        self.conns.remove(&t.0);
    }
}

/// Best-effort tag extraction from an unparsable line, so the `E` reply
/// still correlates ("-" when even the tag is unusable). Shared with the
/// fabric front end, which speaks the same line protocol to clients.
pub(crate) fn fallback_tag(line: &[u8]) -> String {
    std::str::from_utf8(line)
        .ok()
        .and_then(|s| s.split(' ').nth(1))
        .filter(|t| {
            !t.is_empty()
                && t.len() <= 64
                && t.bytes()
                    .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_' || b == b'.')
        })
        .unwrap_or("-")
        .to_string()
}

// ---------------------------------------------------------------------------
// Runtime::serve — the real network front end
// ---------------------------------------------------------------------------

/// Handle to a running network server: its bound address, a shutdown
/// trigger, and the reactor thread's final metrics.
#[derive(Debug)]
pub struct ServeHandle {
    addr: SocketAddr,
    shutdown: Waker,
    join: std::thread::JoinHandle<Result<MetricsSnapshot>>,
}

impl ServeHandle {
    /// The address the listener is bound to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signals drain, waits for in-flight work to finish, and returns the
    /// run's metrics (with the reactor's stats attached).
    ///
    /// # Errors
    ///
    /// Propagates reactor-loop and shard-execution failures.
    pub fn shutdown(self) -> Result<MetricsSnapshot> {
        self.shutdown.wake();
        self.join.join().map_err(|_| ServeError::Io {
            detail: "reactor thread panicked".to_string(),
        })?
    }
}

impl Runtime {
    /// Serves the line protocol on `listener` from a dedicated reactor
    /// thread: an [`EpollPoller`] owns the listener and every accepted
    /// connection, and a [`ThreadedExecutor`] runs one worker per shard.
    /// `speedup` compresses simulated service seconds into real time
    /// (`1.0` = real time), exactly as in
    /// [`Runtime::run_threaded`].
    ///
    /// # Errors
    ///
    /// Poller construction, listener registration, or clock validation.
    pub fn serve(self: &Arc<Self>, listener: TcpListener, speedup: f64) -> Result<ServeHandle> {
        let addr = listener
            .local_addr()
            .map_err(ServeError::from_io("local_addr"))?;
        let mut poller = EpollPoller::new(speedup)?;
        poller.listen(listener)?;
        let shutdown = poller.waker(WAKE_SHUTDOWN);
        let completion = poller.waker(WAKE_COMPLETION);
        let rt = Arc::clone(self);
        let join = std::thread::Builder::new()
            .name("pimdl-serve-reactor".to_string())
            .spawn(move || -> Result<MetricsSnapshot> {
                let clock = Arc::new(RealClock::accelerated(speedup)?);
                let metrics = Arc::new(Metrics::new(rt.config().policy.max_batch));
                let mut executor = ThreadedExecutor::new(
                    Arc::clone(&clock),
                    Arc::clone(&metrics),
                    completion,
                    rt.config().num_shards,
                );
                let clock_dyn: Arc<dyn Clock> = clock;
                let mut server = ServerLoop::new(&rt, clock_dyn, Arc::clone(&metrics))?;
                let run = server.run(&mut poller, &mut executor);
                let stop = executor.shutdown();
                run?;
                stop?;
                Ok(metrics.snapshot_with_reactor(poller.stats().snapshot()))
            })
            .map_err(ServeError::from_io("spawn reactor thread"))?;
        Ok(ServeHandle {
            addr,
            shutdown,
            join,
        })
    }

    /// Serves HTTP/1.1 on `listener` from a dedicated reactor thread:
    /// the same [`EpollPoller`] + [`ThreadedExecutor`] wiring as
    /// [`Runtime::serve`], but speaking HTTP through an
    /// [`HttpServerLoop`] over `registry`'s models with `http`'s tenant
    /// quotas.
    ///
    /// # Errors
    ///
    /// Poller construction, listener registration, configuration
    /// validation, or clock validation.
    pub fn serve_http(
        self: &Arc<Self>,
        listener: TcpListener,
        speedup: f64,
        http: HttpConfig,
        registry: ModelRegistry,
    ) -> Result<ServeHandle> {
        let addr = listener
            .local_addr()
            .map_err(ServeError::from_io("local_addr"))?;
        let mut poller = EpollPoller::new(speedup)?;
        poller.listen(listener)?;
        let shutdown = poller.waker(WAKE_SHUTDOWN);
        let completion = poller.waker(WAKE_COMPLETION);
        let rt = Arc::clone(self);
        let join = std::thread::Builder::new()
            .name("pimdl-serve-http".to_string())
            .spawn(move || -> Result<MetricsSnapshot> {
                let clock = Arc::new(RealClock::accelerated(speedup)?);
                let metrics = Arc::new(Metrics::new(rt.config().policy.max_batch));
                let mut executor = ThreadedExecutor::new(
                    Arc::clone(&clock),
                    Arc::clone(&metrics),
                    completion,
                    rt.config().num_shards,
                );
                let clock_dyn: Arc<dyn Clock> = clock;
                let mut server =
                    HttpServerLoop::new(&rt, http, registry, clock_dyn, Arc::clone(&metrics))?;
                let run = server.run(&mut poller, &mut executor);
                let stop = executor.shutdown();
                run?;
                stop?;
                Ok(metrics.snapshot_with_reactor(poller.stats().snapshot()))
            })
            .map_err(ServeError::from_io("spawn reactor thread"))?;
        Ok(ServeHandle {
            addr,
            shutdown,
            join,
        })
    }
}

// ---------------------------------------------------------------------------
// HttpServerLoop — the HTTP/1.1 front end over the model registry
// ---------------------------------------------------------------------------

/// Configuration of the HTTP front end: parser limits and the tenant
/// quota table the weighted-fair batcher enforces.
#[derive(Debug, Clone)]
pub struct HttpConfig {
    /// Request parser limits (header/body byte caps → 431/413).
    pub limits: HttpLimits,
    /// Configured tenants and their quotas.
    pub tenants: Vec<(String, TenantQuota)>,
    /// Quota lazily granted to tenants not in `tenants`; `None` refuses
    /// them with 403.
    pub default_quota: Option<TenantQuota>,
}

impl Default for HttpConfig {
    fn default() -> Self {
        HttpConfig {
            limits: HttpLimits::default(),
            tenants: Vec::new(),
            default_quota: Some(TenantQuota::default()),
        }
    }
}

/// Per-connection HTTP state.
///
/// Pipelined requests are answered strictly in arrival order: each parsed
/// request takes a sequence number, finished responses park in `ready`
/// until every earlier response has been emitted, and `next_flush` walks
/// the sequence forward.
#[derive(Debug)]
struct HttpConn {
    parser: HttpParser,
    /// Bytes ready for the transport (in-order responses only).
    out: Vec<u8>,
    /// Out-of-order finished responses: seq → (bytes, close-after).
    ready: BTreeMap<u64, (Vec<u8>, bool)>,
    /// Sequence number the next parsed request takes.
    next_seq: u64,
    /// Sequence number the next emitted response must carry.
    next_flush: u64,
    /// Admitted infer requests whose responses this connection still owes.
    pending: usize,
    peer_closed: bool,
    want_write: bool,
    /// A `Connection: close` (or fatal-error) response has been emitted:
    /// stop parsing, close once `out` drains.
    closing: bool,
}

impl HttpConn {
    fn new(limits: HttpLimits) -> Self {
        HttpConn {
            parser: HttpParser::new(limits),
            out: Vec::new(),
            ready: BTreeMap::new(),
            next_seq: 0,
            next_flush: 0,
            pending: 0,
            peer_closed: false,
            want_write: false,
            closing: false,
        }
    }
}

/// Where an admitted infer request's response goes, and who to charge.
#[derive(Debug)]
struct HttpRouteEntry {
    conn: u64,
    seq: u64,
    tenant: String,
    keep_alive: bool,
}

/// The HTTP serving event loop: incremental parsing, routing, per-tenant
/// admission, weighted-fair batching across the model registry, and
/// in-order pipelined responses — driven entirely by an [`EventSource`],
/// so the identical state machine runs under the real poller and the
/// deterministic simulated one.
#[derive(Debug)]
pub struct HttpServerLoop<'a> {
    cfg: ServeConfig,
    http: HttpConfig,
    service: &'a ServiceModel,
    registry: ModelRegistry,
    clock: Arc<dyn Clock>,
    metrics: Arc<Metrics>,
    batcher: FairBatcher,
    shards: ShardManager,
    conns: BTreeMap<u64, HttpConn>,
    /// request id → response routing of admitted infer requests.
    route: HashMap<u64, HttpRouteEntry>,
    next_id: u64,
    draining: bool,
}

impl<'a> HttpServerLoop<'a> {
    /// A loop serving `registry`'s models through `rt`'s pipeline
    /// configuration, measuring time on `clock` and recording into
    /// `metrics`.
    ///
    /// # Errors
    ///
    /// An empty registry, or configuration validation of the fair batcher
    /// and shard router.
    pub fn new(
        rt: &'a Runtime,
        http: HttpConfig,
        registry: ModelRegistry,
        clock: Arc<dyn Clock>,
        metrics: Arc<Metrics>,
    ) -> Result<Self> {
        if registry.is_empty() {
            return Err(ServeError::Config {
                detail: "HTTP front end needs at least one registered model".to_string(),
            });
        }
        let cfg = *rt.config();
        let batcher = FairBatcher::new(
            cfg.policy,
            cfg.queue_capacity,
            &http.tenants,
            http.default_quota,
        )?;
        Ok(HttpServerLoop {
            cfg,
            http,
            service: rt.service_model(),
            registry,
            clock,
            metrics,
            batcher,
            shards: ShardManager::new(cfg.num_shards)?,
            conns: BTreeMap::new(),
            route: HashMap::new(),
            next_id: 0,
            draining: false,
        })
    }

    /// The shard router (exposed so tests can check per-shard dispatch and
    /// wakeup accounting after a run).
    pub fn shards(&self) -> &ShardManager {
        &self.shards
    }

    /// Runs until shutdown (a [`WAKE_SHUTDOWN`] token followed by a full
    /// drain) or — for the simulated transport — until the script is
    /// exhausted and no work remains.
    ///
    /// # Errors
    ///
    /// Poller failures and fatal executor failures. Per-connection I/O
    /// errors only drop that connection.
    pub fn run(
        &mut self,
        source: &mut dyn EventSource,
        executor: &mut dyn BatchExecutor,
    ) -> Result<()> {
        let stats = source.stats();
        let can_quiesce = source.supports_quiescence();
        let mut events: Vec<IoEvent> = Vec::new();
        loop {
            let timeout = self.next_timeout(executor);
            source.wait(timeout, &mut events)?;
            let quiescent = can_quiesce && events.is_empty() && timeout.is_none();
            let mut had_wake = false;
            let mut progress = false;
            for &event in events.iter() {
                match event {
                    IoEvent::Accepted(t) => {
                        self.conns.insert(t.0, HttpConn::new(self.http.limits));
                        progress = true;
                    }
                    IoEvent::Readable(t) => {
                        if self.handle_readable(source, t)? {
                            progress = true;
                        }
                    }
                    IoEvent::Writable(t) => {
                        self.flush_conn(source, t);
                        progress = true;
                    }
                    IoEvent::Wake(t) => {
                        had_wake = true;
                        if t == WAKE_SHUTDOWN && !self.draining {
                            self.draining = true;
                            source.stop_accepting();
                            progress = true;
                        }
                    }
                }
            }

            if self.drain_completions(source, executor) {
                progress = true;
            }
            if self.pump(source, executor)? {
                progress = true;
            }
            if had_wake && !progress {
                stats.record_spurious_wakeup();
            }
            if (self.draining || quiescent)
                && self.batcher.is_empty()
                && executor.in_flight() == 0
                // Same late-completion race as ServerLoop::run: a worker
                // publishes its BatchDone before decrementing in-flight, so
                // re-drain once more before exiting.
                && !self.drain_completions(source, executor)
            {
                return Ok(());
            }
        }
    }

    /// Relative wait timeout: the flush window (only while a shard can
    /// absorb the batch) or the earliest queued request deadline.
    fn next_timeout(&self, executor: &dyn BatchExecutor) -> Option<f64> {
        let now = self.clock.now();
        let mut wake_s = f64::INFINITY;
        if !self.batcher.is_empty() && executor.free_shards().iter().any(|&f| f) {
            if let Some(d) = self.batcher.flush_deadline_s() {
                wake_s = wake_s.min(d);
            }
        }
        if let Some(d) = self.batcher.min_deadline_s() {
            wake_s = wake_s.min(d + DEADLINE_SLOP_S);
        }
        wake_s.is_finite().then(|| (wake_s - now).max(0.0))
    }

    /// Delivers every finished batch: records completion latency, releases
    /// the tenant's quota slot, and emits the JSON result in pipeline
    /// order. Returns whether anything was drained.
    fn drain_completions(
        &mut self,
        source: &mut dyn EventSource,
        executor: &mut dyn BatchExecutor,
    ) -> bool {
        let mut progress = false;
        for done in executor.drain() {
            progress = true;
            for (req, correct) in done.results {
                self.metrics.record_completed(done.finish_s - req.arrival_s);
                if let Some(entry) = self.route.remove(&req.id) {
                    // Quota releases even when the connection is gone —
                    // otherwise a dropped client would leak its slots.
                    self.batcher.release(&entry.tenant);
                    if let Some(c) = self.conns.get_mut(&entry.conn) {
                        c.pending -= 1;
                    }
                    let body = http::infer_result_body(correct, req.expected_checksum.to_bits());
                    let bytes =
                        http::encode_response(200, "application/json", &body, entry.keep_alive);
                    self.enqueue_response(
                        source,
                        Token(entry.conn),
                        entry.seq,
                        bytes,
                        !entry.keep_alive,
                    );
                }
            }
        }
        progress
    }

    /// Drains a readable connection and processes every complete request.
    /// Returns whether any byte moved.
    fn handle_readable(&mut self, source: &mut dyn EventSource, t: Token) -> Result<bool> {
        let mut scratch = Vec::new();
        let rr = source.read(t, &mut scratch)?;
        let Some(conn) = self.conns.get_mut(&t.0) else {
            return Ok(false);
        };
        conn.parser.push(&scratch);
        if rr.closed {
            conn.peer_closed = true;
        }
        // Re-fetched each iteration: handling a request needs &mut self
        // and may drop the connection (hard write error).
        while let Some(c) = self.conns.get_mut(&t.0) {
            if c.closing {
                break; // a close-marked response is already on the wire
            }
            match c.parser.next_request() {
                Ok(Some(req)) => self.handle_request(source, t, &req)?,
                Ok(None) => break,
                Err(e) => {
                    // Fatal framing error: one error response, connection
                    // marked for close after it flushes — never a silent
                    // drop, never a parse-fail respin on the same bytes
                    // (the parser is poisoned).
                    let seq = c.next_seq;
                    c.next_seq += 1;
                    let body = format!("{}\n", e.detail).into_bytes();
                    let bytes =
                        http::encode_response(e.status, "text/plain; charset=utf-8", &body, false);
                    self.enqueue_response(source, t, seq, bytes, true);
                    break;
                }
            }
        }
        self.reap_if_done(source, t);
        Ok(rr.bytes > 0 || rr.closed)
    }

    /// Routes and answers one parsed request.
    fn handle_request(
        &mut self,
        source: &mut dyn EventSource,
        t: Token,
        req: &HttpRequest,
    ) -> Result<()> {
        let keep = req.keep_alive();
        let seq = {
            let Some(c) = self.conns.get_mut(&t.0) else {
                return Ok(());
            };
            let seq = c.next_seq;
            c.next_seq += 1;
            seq
        };
        match http::route(&req.method, &req.target) {
            Route::Healthz => {
                let bytes = http::encode_response(200, "text/plain; charset=utf-8", b"ok\n", keep);
                self.enqueue_response(source, t, seq, bytes, !keep);
            }
            Route::Metrics => {
                // Live snapshot, streamed chunked: the body length isn't
                // known before rendering, and chunked framing exercises the
                // streaming half of the response writer.
                let snap = self
                    .metrics
                    .snapshot_with_reactor(source.stats().snapshot());
                let text = snap.render_prometheus();
                let mut bytes = http::encode_chunked_head(200, "text/plain; version=0.0.4", keep);
                bytes.extend_from_slice(&http::encode_chunk(text.as_bytes()));
                bytes.extend_from_slice(http::CHUNKED_END);
                self.enqueue_response(source, t, seq, bytes, !keep);
            }
            Route::MethodNotAllowed => {
                let bytes = http::encode_response(
                    405,
                    "text/plain; charset=utf-8",
                    b"method not allowed\n",
                    keep,
                );
                self.enqueue_response(source, t, seq, bytes, !keep);
            }
            Route::NotFound => {
                let bytes =
                    http::encode_response(404, "text/plain; charset=utf-8", b"not found\n", keep);
                self.enqueue_response(source, t, seq, bytes, !keep);
            }
            Route::Infer { model } => self.handle_infer(source, t, seq, keep, req, &model),
        }
        Ok(())
    }

    /// Admits (or refuses) one infer request.
    fn handle_infer(
        &mut self,
        source: &mut dyn EventSource,
        t: Token,
        seq: u64,
        keep: bool,
        req: &HttpRequest,
        model: &str,
    ) {
        let refuse = |this: &mut Self, source: &mut dyn EventSource, status: u16, msg: &str| {
            let body = format!("{msg}\n").into_bytes();
            let bytes = http::encode_response(status, "text/plain; charset=utf-8", &body, keep);
            this.enqueue_response(source, t, seq, bytes, !keep);
        };
        let Some(replica) = self.registry.get(model).map(Arc::clone) else {
            refuse(self, source, 404, &format!("unknown model {model:?}"));
            return;
        };
        if self.draining {
            refuse(self, source, 503, "draining");
            return;
        }
        let indices = match http::parse_infer_body(&req.body) {
            Ok(indices) => indices,
            Err(detail) => {
                refuse(self, source, 400, &detail);
                return;
            }
        };
        let now = self.clock.now();
        let request = match replica.request_from_indices(
            self.next_id,
            now,
            now + self.cfg.deadline_s,
            indices,
        ) {
            Ok(r) => r,
            Err(e) => {
                refuse(self, source, 400, &format!("invalid infer payload: {e}"));
                return;
            }
        };
        let tenant = req.header("x-tenant").unwrap_or("anonymous").to_string();
        let id = self.next_id;
        self.next_id += 1;
        self.metrics.record_submitted();
        match self.batcher.admit(TaggedJob {
            request,
            tenant: tenant.clone(),
            model: model.to_string(),
        }) {
            Ok(()) => {
                self.metrics
                    .observe_queue_depth(self.batcher.queued_total());
                self.route.insert(
                    id,
                    HttpRouteEntry {
                        conn: t.0,
                        seq,
                        tenant,
                        keep_alive: keep,
                    },
                );
                if let Some(c) = self.conns.get_mut(&t.0) {
                    c.pending += 1;
                }
            }
            Err((_, refusal)) => {
                self.metrics.record_rejected();
                let (status, msg) = match refusal {
                    AdmitRefusal::UnknownTenant => (403, format!("unknown tenant {tenant:?}")),
                    AdmitRefusal::QuotaExceeded => {
                        (429, format!("tenant {tenant:?} quota exceeded"))
                    }
                    AdmitRefusal::QueueFull => (503, "queue full".to_string()),
                };
                refuse(self, source, status, &msg);
            }
        }
    }

    /// Shed → dispatch while a shard can absorb work. Returns whether
    /// anything was shed or dispatched.
    fn pump(
        &mut self,
        source: &mut dyn EventSource,
        executor: &mut dyn BatchExecutor,
    ) -> Result<bool> {
        let now = self.clock.now();
        let mut progress = false;
        loop {
            for job in self.batcher.shed_expired(now) {
                progress = true;
                self.metrics.record_deadline_exceeded();
                if let Some(entry) = self.route.remove(&job.request.id) {
                    if let Some(c) = self.conns.get_mut(&entry.conn) {
                        c.pending -= 1;
                    }
                    let bytes = http::encode_response(
                        504,
                        "text/plain; charset=utf-8",
                        b"deadline exceeded\n",
                        entry.keep_alive,
                    );
                    self.enqueue_response(
                        source,
                        Token(entry.conn),
                        entry.seq,
                        bytes,
                        !entry.keep_alive,
                    );
                }
            }
            self.metrics
                .observe_queue_depth(self.batcher.queued_total());
            let flush = self.batcher.ready(now) || (self.draining && !self.batcher.is_empty());
            if flush {
                if let Some(sid) = self.shards.least_loaded_among(&executor.free_shards()) {
                    if let Some((model_name, jobs)) = self.batcher.take_batch() {
                        let Some(model) = self.registry.get(&model_name) else {
                            // Admission verified the model; a miss here is a
                            // registry invariant violation, not a client error.
                            return Err(ServeError::Config {
                                detail: format!("batch for unregistered model {model_name:?}"),
                            });
                        };
                        let model = Arc::clone(model);
                        let batch: Vec<Request> = jobs.into_iter().map(|j| j.request).collect();
                        let service_s = self.service.batch_service_s(batch.len())?;
                        self.shards.dispatch_to(sid, now, service_s);
                        self.shards.record_wakeup(sid);
                        self.metrics.record_batch(batch.len());
                        executor.submit(sid, service_s, &model, batch)?;
                        progress = true;
                        continue; // another batch may fit another shard
                    }
                }
            }
            return Ok(progress);
        }
    }

    /// Parks `bytes` as the response for `seq` and emits every response
    /// the in-order cursor has reached. `close_after` marks the connection
    /// for close once this response (and everything before it) flushes.
    fn enqueue_response(
        &mut self,
        source: &mut dyn EventSource,
        t: Token,
        seq: u64,
        bytes: Vec<u8>,
        close_after: bool,
    ) {
        if let Some(c) = self.conns.get_mut(&t.0) {
            if !c.closing {
                c.ready.insert(seq, (bytes, close_after));
                while let Some((b, close)) = c.ready.remove(&c.next_flush) {
                    c.out.extend_from_slice(&b);
                    c.next_flush += 1;
                    if close {
                        // The client asked to close (or the stream is
                        // unframed): later pipelined responses are moot.
                        c.closing = true;
                        c.ready.clear();
                        break;
                    }
                }
            }
        }
        self.flush_conn(source, t);
    }

    /// Writes the connection's output buffer; arms writable interest on a
    /// partial write; reaps the connection when nothing more can happen on
    /// it. A hard write error drops the connection.
    fn flush_conn(&mut self, source: &mut dyn EventSource, t: Token) {
        let Some(c) = self.conns.get_mut(&t.0) else {
            return;
        };
        if !c.out.is_empty() {
            match source.write(t, &c.out) {
                Ok(n) => {
                    c.out.drain(..n);
                }
                Err(_) => {
                    self.drop_conn(source, t);
                    return;
                }
            }
        }
        let want = !c.out.is_empty();
        if want != c.want_write && source.set_writable_interest(t, want).is_ok() {
            c.want_write = want;
        }
        self.reap_if_done(source, t);
    }

    /// Closes the connection when its story is over: a close-marked
    /// response has fully flushed, or the peer is gone and nothing is owed.
    fn reap_if_done(&mut self, source: &mut dyn EventSource, t: Token) {
        let Some(c) = self.conns.get(&t.0) else {
            return;
        };
        let closing_done = c.closing && c.out.is_empty();
        let peer_done = c.peer_closed && c.pending == 0 && c.out.is_empty() && c.ready.is_empty();
        if closing_done || peer_done {
            self.drop_conn(source, t);
        }
    }

    /// Closes and forgets a connection. In-flight requests it submitted
    /// still execute (and release their tenant's quota on completion);
    /// their responses are dropped.
    fn drop_conn(&mut self, source: &mut dyn EventSource, t: Token) {
        source.close(t);
        self.conns.remove(&t.0);
    }
}
