//! Distributed shard fabric (DESIGN.md §13): LUT shard workers as
//! separate OS processes speaking a length-prefixed, CRC-checked binary
//! frame protocol over sockets registered with the [`EventSource`]
//! reactor.
//!
//! The front end keeps the line protocol of [`crate::codec`] toward
//! clients (now with an optional table token for routing) and speaks
//! [`Frame`]s toward shard workers. Tables are placed on shards by the
//! consistent-hash [`crate::supervisor::Supervisor`]; a dead worker
//! (EOF — which covers `kill -9` — or a protocol timeout) has its tables
//! re-replicated to the consistent-hash successor while its queued and
//! in-flight requests are re-routed rather than dropped.
//!
//! The same [`FabricServerLoop`] runs under the deterministic
//! [`crate::SimPoller`] (with [`SimShardEngine`] standing in for worker
//! processes) and under the real epoll reactor with
//! [`ProcessShardEngine`] and actual child processes spawned by
//! [`Runtime::serve_fabric`].
//!
//! ## Frame format
//!
//! ```text
//! magic 0xAB 0x1E | version u8 | kind u8 | payload_len u32 LE
//! payload (payload_len bytes)
//! crc32-IEEE u32 LE over header + payload
//! ```
//!
//! The first magic byte is deliberately non-ASCII so a connection's first
//! byte classifies it: `0xAB` → shard worker, anything else → line-protocol
//! client. Like [`crate::HttpParser`], a [`FrameDecoder`] that observes a
//! framing violation is *poisoned*: it yields exactly one error and then
//! `Ok(None)` forever — the stream is no longer framed, so the connection
//! must be closed, never re-parsed.

use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use pimdl_engine::fabric::FabricConfig;
use pimdl_engine::pipeline::PimDlEngine;
use pimdl_sim::{LutWorkload, NetworkModel, PlatformConfig};

use crate::clock::{Clock, RealClock};
use crate::codec::{self, ErrorKind, LineBuffer};
use crate::error::ServeError;
use crate::metrics::{Metrics, MetricsSnapshot};
use crate::reactor::{
    EpollPoller, EventSource, IoEvent, SimHandle, Token, Waker, WAKE_COMPLETION, WAKE_SHUTDOWN,
};
use crate::request::Request;
use crate::runtime::Runtime;
use crate::server::{fallback_tag, DEADLINE_SLOP_S};
use crate::shard::{ReplicaModel, ServiceModel};
use crate::supervisor::{LoadOrder, Supervisor, TableState};
use crate::Result;

// ---------------------------------------------------------------------------
// Frame protocol
// ---------------------------------------------------------------------------

/// Frame magic. The first byte is non-ASCII on purpose: it disambiguates
/// shard-worker connections from line-protocol clients on a shared
/// listener by their very first byte.
pub const FRAME_MAGIC: [u8; 2] = [0xAB, 0x1E];
/// Protocol version carried in every frame header.
pub const FRAME_VERSION: u8 = 1;
/// Hard per-frame payload cap (1 MiB): bounds decoder buffering against
/// corrupt or hostile length fields.
pub const MAX_FRAME_PAYLOAD: usize = 1 << 20;
/// Cap on the request count in an `Execute` frame; batching policies top
/// out far below this, so a larger count is a corrupt or hostile frame.
pub const MAX_EXECUTE_REQUESTS: usize = 1024;
/// Cap on the per-request index count in an `Execute` frame (the full
/// `u16` index space — indices address LUT rows and travel as `u16`).
pub const MAX_REQUEST_INDICES: usize = 1 << 16;
/// Cap on the flag count in an `ExecDone` frame (one flag per request).
pub const MAX_EXEC_FLAGS: usize = MAX_EXECUTE_REQUESTS;

const HEADER_LEN: usize = 8;
const TRAILER_LEN: usize = 4;

const KIND_HELLO: u8 = 1;
const KIND_LOAD_TABLE: u8 = 2;
const KIND_TABLE_READY: u8 = 3;
const KIND_EXECUTE: u8 = 4;
const KIND_EXEC_DONE: u8 = 5;
const KIND_SHUTDOWN: u8 = 6;

const fn make_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = make_crc_table();

/// CRC32 (IEEE 802.3 polynomial, reflected) of `bytes`.
fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// A fatal framing error. Any [`FrameError`] poisons its decoder: the
/// byte stream is no longer framed and the connection must be closed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameError {
    /// What was malformed.
    pub detail: String,
}

impl FrameError {
    fn new(detail: impl Into<String>) -> Self {
        FrameError {
            detail: detail.into(),
        }
    }
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fabric frame error: {}", self.detail)
    }
}

impl std::error::Error for FrameError {}

impl From<FrameError> for ServeError {
    fn from(e: FrameError) -> Self {
        ServeError::Io {
            detail: e.to_string(),
        }
    }
}

/// One fabric protocol message.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Worker → front end: first frame on a shard connection.
    Hello {
        /// The worker's shard id (assigned at spawn).
        shard_id: u32,
    },
    /// Front end → worker: build the table deterministically from `seed`.
    LoadTable {
        /// Table name.
        table: String,
        /// Deterministic build seed ([`ReplicaModel::build`]).
        seed: u64,
    },
    /// Worker → front end: the table is resident and routable.
    TableReady {
        /// Table name.
        table: String,
    },
    /// Front end → worker: execute a batch against a resident table.
    Execute {
        /// Correlation id echoed in the matching [`Frame::ExecDone`].
        batch_id: u64,
        /// Simulated service time of this batch (the worker sleeps it,
        /// scaled by the runtime speedup).
        service_s: f64,
        /// Target table.
        table: String,
        /// The batch's requests, verbatim.
        requests: Vec<Request>,
    },
    /// Worker → front end: batch finished; per-request correctness flags
    /// in dispatch order.
    ExecDone {
        /// Echoed correlation id.
        batch_id: u64,
        /// Whether each request's PIM result matched its host checksum.
        flags: Vec<bool>,
    },
    /// Front end → worker: drain and exit.
    Shutdown,
}

fn put_str(out: &mut Vec<u8>, s: &str) -> std::result::Result<(), FrameError> {
    let len = u16::try_from(s.len())
        .map_err(|_| FrameError::new(format!("string of {} bytes exceeds u16 length", s.len())))?;
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(s.as_bytes());
    Ok(())
}

fn put_count(out: &mut Vec<u8>, n: usize) -> std::result::Result<(), FrameError> {
    let n =
        u32::try_from(n).map_err(|_| FrameError::new(format!("count {n} exceeds u32 range")))?;
    out.extend_from_slice(&n.to_le_bytes());
    Ok(())
}

impl Frame {
    fn kind(&self) -> u8 {
        match self {
            Frame::Hello { .. } => KIND_HELLO,
            Frame::LoadTable { .. } => KIND_LOAD_TABLE,
            Frame::TableReady { .. } => KIND_TABLE_READY,
            Frame::Execute { .. } => KIND_EXECUTE,
            Frame::ExecDone { .. } => KIND_EXEC_DONE,
            Frame::Shutdown => KIND_SHUTDOWN,
        }
    }

    /// Encodes the frame (header + payload + CRC trailer), ready to write.
    ///
    /// # Errors
    ///
    /// Returns [`FrameError`] when a string or collection exceeds the wire
    /// format's length fields, or the payload exceeds
    /// [`MAX_FRAME_PAYLOAD`].
    pub fn encode(&self) -> std::result::Result<Vec<u8>, FrameError> {
        let mut payload = Vec::new();
        match self {
            Frame::Hello { shard_id } => payload.extend_from_slice(&shard_id.to_le_bytes()),
            Frame::LoadTable { table, seed } => {
                put_str(&mut payload, table)?;
                payload.extend_from_slice(&seed.to_le_bytes());
            }
            Frame::TableReady { table } => put_str(&mut payload, table)?,
            Frame::Execute {
                batch_id,
                service_s,
                table,
                requests,
            } => {
                payload.extend_from_slice(&batch_id.to_le_bytes());
                payload.extend_from_slice(&service_s.to_bits().to_le_bytes());
                put_str(&mut payload, table)?;
                put_count(&mut payload, requests.len())?;
                for r in requests {
                    payload.extend_from_slice(&r.id.to_le_bytes());
                    payload.extend_from_slice(&r.arrival_s.to_bits().to_le_bytes());
                    payload.extend_from_slice(&r.deadline_s.to_bits().to_le_bytes());
                    payload.extend_from_slice(&r.expected_checksum.to_bits().to_le_bytes());
                    put_count(&mut payload, r.indices.len())?;
                    for &i in &r.indices {
                        payload.extend_from_slice(&i.to_le_bytes());
                    }
                }
            }
            Frame::ExecDone { batch_id, flags } => {
                payload.extend_from_slice(&batch_id.to_le_bytes());
                put_count(&mut payload, flags.len())?;
                payload.extend(flags.iter().map(|&f| u8::from(f)));
            }
            Frame::Shutdown => {}
        }
        if payload.len() > MAX_FRAME_PAYLOAD {
            return Err(FrameError::new(format!(
                "payload of {} bytes exceeds the {MAX_FRAME_PAYLOAD}-byte cap",
                payload.len()
            )));
        }
        let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + TRAILER_LEN);
        out.extend_from_slice(&FRAME_MAGIC);
        out.push(FRAME_VERSION);
        out.push(self.kind());
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&payload);
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        Ok(out)
    }
}

/// Bounds-checked little-endian payload reader.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> std::result::Result<&'a [u8], FrameError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| FrameError::new("payload truncated"))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u16(&mut self) -> std::result::Result<u16, FrameError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> std::result::Result<u32, FrameError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> std::result::Result<u64, FrameError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn f64(&mut self) -> std::result::Result<f64, FrameError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn str_(&mut self) -> std::result::Result<String, FrameError> {
        let len = usize::from(self.u16()?);
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| FrameError::new("string field is not UTF-8"))
    }

    fn finish(&self) -> std::result::Result<(), FrameError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(FrameError::new(format!(
                "{} trailing payload bytes",
                self.buf.len() - self.pos
            )))
        }
    }
}

fn decode_payload(kind: u8, payload: &[u8]) -> std::result::Result<Frame, FrameError> {
    let mut c = Cursor::new(payload);
    let frame = match kind {
        KIND_HELLO => Frame::Hello { shard_id: c.u32()? },
        KIND_LOAD_TABLE => Frame::LoadTable {
            table: c.str_()?,
            seed: c.u64()?,
        },
        KIND_TABLE_READY => Frame::TableReady { table: c.str_()? },
        KIND_EXECUTE => {
            let batch_id = c.u64()?;
            let service_s = c.f64()?;
            let table = c.str_()?;
            let n = c.u32()? as usize;
            if n > MAX_EXECUTE_REQUESTS {
                return Err(FrameError::new(format!(
                    "request count {n} exceeds MAX_EXECUTE_REQUESTS"
                )));
            }
            let mut requests = Vec::with_capacity(n);
            for _ in 0..n {
                let id = c.u64()?;
                let arrival_s = c.f64()?;
                let deadline_s = c.f64()?;
                let expected_checksum = c.f64()?;
                let k = c.u32()? as usize;
                if k > MAX_REQUEST_INDICES {
                    return Err(FrameError::new(format!(
                        "index count {k} exceeds MAX_REQUEST_INDICES"
                    )));
                }
                let raw = c.take(k * 2)?;
                let indices = raw
                    .chunks_exact(2)
                    .map(|p| u16::from_le_bytes([p[0], p[1]]))
                    .collect();
                requests.push(Request {
                    id,
                    arrival_s,
                    deadline_s,
                    indices,
                    expected_checksum,
                });
            }
            Frame::Execute {
                batch_id,
                service_s,
                table,
                requests,
            }
        }
        KIND_EXEC_DONE => {
            let batch_id = c.u64()?;
            let n = c.u32()? as usize;
            if n > MAX_EXEC_FLAGS {
                return Err(FrameError::new(format!(
                    "flag count {n} exceeds MAX_EXEC_FLAGS"
                )));
            }
            let raw = c.take(n)?;
            let flags = raw.iter().map(|&b| b != 0).collect();
            Frame::ExecDone { batch_id, flags }
        }
        KIND_SHUTDOWN => Frame::Shutdown,
        other => return Err(FrameError::new(format!("unknown frame kind {other}"))),
    };
    c.finish()?;
    Ok(frame)
}

/// Incremental frame decoder: push transport chunks as they arrive, pop
/// complete frames. Mirrors [`crate::HttpParser`]'s poisoning contract:
/// the first framing violation yields exactly one `Err`, and every
/// subsequent call returns `Ok(None)` — the caller must close the
/// connection.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    poisoned: bool,
    reported: bool,
}

impl FrameDecoder {
    /// An empty decoder.
    pub fn new() -> Self {
        FrameDecoder::default()
    }

    /// Appends transport bytes (ignored once poisoned — the stream is
    /// dead, buffering it would be unbounded).
    pub fn push(&mut self, bytes: &[u8]) {
        if !self.poisoned {
            self.buf.extend_from_slice(bytes);
        }
    }

    /// Bytes buffered but not yet consumed by a complete frame.
    pub fn pending(&self) -> usize {
        self.buf.len()
    }

    fn fail(
        &mut self,
        detail: impl Into<String>,
    ) -> std::result::Result<Option<Frame>, FrameError> {
        self.poisoned = true;
        self.reported = true;
        self.buf.clear();
        Err(FrameError::new(detail))
    }

    /// Pops the next complete frame, if the buffer holds one.
    ///
    /// # Errors
    ///
    /// Returns [`FrameError`] on the *first* framing violation (bad magic,
    /// unsupported version, oversized payload, CRC mismatch, malformed
    /// payload); the decoder is then poisoned and every later call
    /// returns `Ok(None)`.
    pub fn next_frame(&mut self) -> std::result::Result<Option<Frame>, FrameError> {
        if self.poisoned {
            return Ok(None);
        }
        if !self.buf.is_empty() && self.buf[0] != FRAME_MAGIC[0] {
            return self.fail(format!("bad frame magic byte 0x{:02X}", self.buf[0]));
        }
        if self.buf.len() >= 2 && self.buf[1] != FRAME_MAGIC[1] {
            return self.fail(format!("bad frame magic byte 0x{:02X}", self.buf[1]));
        }
        if self.buf.len() < HEADER_LEN {
            return Ok(None);
        }
        let version = self.buf[2];
        if version != FRAME_VERSION {
            return self.fail(format!(
                "unsupported frame version {version} (expected {FRAME_VERSION})"
            ));
        }
        let kind = self.buf[3];
        let len = u32::from_le_bytes([self.buf[4], self.buf[5], self.buf[6], self.buf[7]]) as usize;
        if len > MAX_FRAME_PAYLOAD {
            return self.fail(format!(
                "frame payload of {len} bytes exceeds the {MAX_FRAME_PAYLOAD}-byte cap"
            ));
        }
        let total = HEADER_LEN + len + TRAILER_LEN;
        if self.buf.len() < total {
            return Ok(None);
        }
        let crc_got = u32::from_le_bytes([
            self.buf[HEADER_LEN + len],
            self.buf[HEADER_LEN + len + 1],
            self.buf[HEADER_LEN + len + 2],
            self.buf[HEADER_LEN + len + 3],
        ]);
        let crc_want = crc32(&self.buf[..HEADER_LEN + len]);
        if crc_got != crc_want {
            return self.fail(format!(
                "frame CRC mismatch (got 0x{crc_got:08X}, computed 0x{crc_want:08X})"
            ));
        }
        let frame = match decode_payload(kind, &self.buf[HEADER_LEN..HEADER_LEN + len]) {
            Ok(f) => f,
            Err(e) => return self.fail(e.detail),
        };
        self.buf.drain(..total);
        Ok(Some(frame))
    }
}

// ---------------------------------------------------------------------------
// Shard engines
// ---------------------------------------------------------------------------

/// How the fabric loop's shard side is realized.
///
/// The loop writes encoded frames to shard connections through the
/// [`EventSource`] either way; the engine hook is where a simulated
/// backend intercepts them. [`ProcessShardEngine`] does nothing (real
/// workers answer over their sockets); [`SimShardEngine`] executes
/// batches inline and schedules the reply bytes on the virtual clock.
pub trait FabricShardEngine: fmt::Debug {
    /// Observes a frame the loop just sent to shard connection `token`.
    ///
    /// # Errors
    ///
    /// Simulated execution failures (fatal: they indicate a bug, not a
    /// flaky peer).
    fn on_send(&mut self, token: Token, frame: &Frame, now_s: f64) -> Result<()>;

    /// Reply bytes that have "arrived" from shards by `now_s` (simulated
    /// backends only; process backends return nothing — real replies
    /// arrive as readable socket events).
    fn due_replies(&mut self, now_s: f64) -> Vec<(Token, Vec<u8>)>;

    /// Drops all state held for a dead shard connection.
    fn forget(&mut self, token: Token);
}

/// The production engine: shard workers are real processes, so sending is
/// just socket I/O and replies arrive through the reactor.
#[derive(Debug, Default, Clone, Copy)]
pub struct ProcessShardEngine;

impl FabricShardEngine for ProcessShardEngine {
    fn on_send(&mut self, _token: Token, _frame: &Frame, _now_s: f64) -> Result<()> {
        Ok(())
    }

    fn due_replies(&mut self, _now_s: f64) -> Vec<(Token, Vec<u8>)> {
        Vec::new()
    }

    fn forget(&mut self, _token: Token) {}
}

/// Deterministic in-process stand-in for shard worker processes: executes
/// `LoadTable`/`Execute` frames inline, then schedules the encoded reply
/// (`TableReady` after `load_delay_s`, `ExecDone` after the batch's
/// service time) on the virtual clock, waking the loop through
/// [`WAKE_COMPLETION`]. Replies flow through the same [`FrameDecoder`]
/// path real sockets feed.
#[derive(Debug)]
pub struct SimShardEngine<'a> {
    rt: &'a Runtime,
    handle: SimHandle,
    load_delay_s: f64,
    network: NetworkModel,
    replicas: BTreeMap<(u64, String), Arc<ReplicaModel>>,
    /// (due, insertion seq, shard conn, encoded reply) — sorted on drain
    /// so equal-time replies pop in send order, keeping runs bit-identical.
    pending: Vec<(f64, u64, Token, Vec<u8>)>,
    seq: u64,
}

impl<'a> SimShardEngine<'a> {
    /// An engine building replicas through `rt` (same engine and LUT
    /// shape as the front end's oracles), delivering `TableReady` after
    /// `load_delay_s` simulated seconds.
    pub fn new(rt: &'a Runtime, handle: SimHandle, load_delay_s: f64) -> Self {
        SimShardEngine {
            rt,
            handle,
            load_delay_s,
            network: NetworkModel::zero(),
            replicas: BTreeMap::new(),
            pending: Vec::new(),
            seq: 0,
        }
    }

    /// Prices both socket crossings of every round trip with `network`
    /// (typically [`NetworkModel::calibrate`]d from loopback RTTs measured
    /// by [`measure_loopback_rtt`]): a reply becomes due at
    /// `now + cost(request frame) + service + cost(reply frame)` instead
    /// of `now + service`. The default is [`NetworkModel::zero`], which
    /// keeps the fabric DES identical to the in-process DES.
    #[must_use]
    pub fn with_network(mut self, network: NetworkModel) -> Self {
        self.network = network;
        self
    }

    /// One-way cost of `frame` under the configured network model. Skips
    /// the re-encode entirely on the (default) free network.
    fn one_way_cost_s(&self, frame: &Frame) -> Result<f64> {
        if self.network.link_latency_s == 0.0 && self.network.per_byte_s == 0.0 {
            return Ok(0.0);
        }
        Ok(self.network.frame_cost_s(frame.encode()?.len()))
    }

    fn push_reply(&mut self, due_s: f64, token: Token, bytes: Vec<u8>) {
        self.pending.push((due_s, self.seq, token, bytes));
        self.seq += 1;
        self.handle.wake_at(due_s, WAKE_COMPLETION);
    }
}

impl<'a> FabricShardEngine for SimShardEngine<'a> {
    fn on_send(&mut self, token: Token, frame: &Frame, now_s: f64) -> Result<()> {
        match frame {
            Frame::LoadTable { table, seed } => {
                let in_cost = self.one_way_cost_s(frame)?;
                let replica = self.rt.build_replica(*seed)?;
                self.replicas.insert((token.0, table.clone()), replica);
                let reply = Frame::TableReady {
                    table: table.clone(),
                }
                .encode()?;
                let out_cost = self.network.frame_cost_s(reply.len());
                let due = now_s + in_cost + self.load_delay_s + out_cost;
                self.push_reply(due, token, reply);
                Ok(())
            }
            Frame::Execute {
                batch_id,
                service_s,
                table,
                requests,
            } => {
                let Some(replica) = self.replicas.get(&(token.0, table.clone())) else {
                    return Err(ServeError::Io {
                        detail: format!("simulated shard got Execute for unloaded table {table:?}"),
                    });
                };
                let in_cost = self.one_way_cost_s(frame)?;
                let flags = replica.execute_batch(requests)?;
                let reply = Frame::ExecDone {
                    batch_id: *batch_id,
                    flags,
                }
                .encode()?;
                let out_cost = self.network.frame_cost_s(reply.len());
                let due = now_s + in_cost + service_s.max(0.0) + out_cost;
                self.push_reply(due, token, reply);
                Ok(())
            }
            Frame::Shutdown => {
                self.forget(token);
                Ok(())
            }
            Frame::Hello { .. } | Frame::TableReady { .. } | Frame::ExecDone { .. } => {
                Err(ServeError::Io {
                    detail: "front end sent a shard-to-host frame".to_string(),
                })
            }
        }
    }

    fn due_replies(&mut self, now_s: f64) -> Vec<(Token, Vec<u8>)> {
        self.pending
            .sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let cut = self
            .pending
            .iter()
            .position(|p| p.0 > now_s + 1e-12)
            .unwrap_or(self.pending.len());
        self.pending
            .drain(..cut)
            .map(|(_, _, t, b)| (t, b))
            .collect()
    }

    fn forget(&mut self, token: Token) {
        self.pending.retain(|p| p.2 != token);
        self.replicas.retain(|(t, _), _| *t != token.0);
    }
}

// ---------------------------------------------------------------------------
// Worker spec
// ---------------------------------------------------------------------------

/// Everything a shard worker process needs to rebuild replicas: the
/// platform model and the LUT workload shape. Passed to the worker as a
/// JSON argv argument (table seeds travel in `LoadTable` frames).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkerSpec {
    /// Simulated PIM platform the replicas execute on.
    pub platform: PlatformConfig,
    /// Per-request functional LUT query shape.
    pub lut: LutWorkload,
}

fn valid_table_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 64
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_' || b == b'.')
}

// ---------------------------------------------------------------------------
// FabricServerLoop
// ---------------------------------------------------------------------------

/// A queued query: the validated request plus where its response goes.
#[derive(Debug)]
struct PendingReq {
    req: Request,
    conn: u64,
    tag: String,
    table: String,
}

/// A batch dispatched to a shard and not yet acknowledged.
#[derive(Debug)]
struct InflightBatch {
    shard: u32,
    items: Vec<PendingReq>,
}

#[derive(Debug)]
enum ConnKind {
    /// No bytes seen yet; the first byte classifies the peer.
    Unknown,
    /// Line-protocol client.
    Client { lines: LineBuffer, pending: usize },
    /// Shard worker speaking frames.
    Shard { decoder: FrameDecoder },
}

#[derive(Debug)]
struct FabricConn {
    kind: ConnKind,
    out: Vec<u8>,
    peer_closed: bool,
    want_write: bool,
}

impl FabricConn {
    fn new() -> Self {
        FabricConn {
            kind: ConnKind::Unknown,
            out: Vec::new(),
            peer_closed: false,
            want_write: false,
        }
    }
}

/// The fabric serving event loop: line-protocol clients with table
/// routing on one side, framed shard workers on the other, the
/// consistent-hash [`Supervisor`] deciding placement and liveness in
/// between — driven entirely by an [`EventSource`], so the identical
/// state machine runs under the real poller and the deterministic
/// simulated one.
///
/// Queries queue per table (FIFO, bounded by the runtime's
/// `queue_capacity` across all tables) and dispatch as batches of up to
/// `max_batch` when full, when the oldest has waited `max_wait_s`, or on
/// drain — but only to a table's resident shard, at most one in-flight
/// batch per shard. A dead shard's in-flight batches are re-queued at the
/// front of their table queues (zero lost requests) while the supervisor
/// re-replicates its tables to the consistent-hash successor; queries for
/// terminally lost tables are error-responded, never silently dropped.
#[derive(Debug)]
pub struct FabricServerLoop<'a> {
    cfg: crate::runtime::ServeConfig,
    service: &'a ServiceModel,
    clock: Arc<dyn Clock>,
    metrics: Arc<Metrics>,
    sup: Supervisor,
    /// Host-side oracle replicas (one per table) for request validation
    /// and reference checksums.
    oracles: BTreeMap<String, Arc<ReplicaModel>>,
    conns: BTreeMap<u64, FabricConn>,
    queues: BTreeMap<String, VecDeque<PendingReq>>,
    queued_total: usize,
    inflight: BTreeMap<u64, InflightBatch>,
    /// Shard connections that failed I/O and await death bookkeeping.
    pending_dead: Vec<Token>,
    next_batch_id: u64,
    next_req_id: u64,
    draining: bool,
    default_table: String,
    /// Latched `true` the first time every table routes (all workers
    /// hello'd and loaded). [`FabricHandle::wait_all_ready`] observes it.
    all_ready: Arc<AtomicBool>,
}

impl<'a> FabricServerLoop<'a> {
    /// A loop serving `tables` (name, build-seed pairs; the first is the
    /// default route for queries without a table token) over `fabric`'s
    /// shard fleet, using `rt` for oracles and service times.
    ///
    /// # Errors
    ///
    /// Fabric/supervisor configuration validation, invalid or duplicate
    /// table names, or oracle replica construction failures.
    pub fn new(
        rt: &'a Runtime,
        fabric: FabricConfig,
        tables: &[(String, u64)],
        clock: Arc<dyn Clock>,
        metrics: Arc<Metrics>,
    ) -> Result<Self> {
        fabric.validate()?;
        let Some((first, _)) = tables.first() else {
            return Err(ServeError::Config {
                detail: "fabric needs at least one table".to_string(),
            });
        };
        let mut oracles = BTreeMap::new();
        for (name, seed) in tables {
            if !valid_table_name(name) {
                return Err(ServeError::Config {
                    detail: format!("table name {name:?} must be 1-64 chars of [A-Za-z0-9._-]"),
                });
            }
            if oracles
                .insert(name.clone(), rt.build_replica(*seed)?)
                .is_some()
            {
                return Err(ServeError::Config {
                    detail: format!("duplicate fabric table {name:?}"),
                });
            }
        }
        let sup = Supervisor::new(
            fabric.num_shards,
            fabric.vnodes,
            fabric.hello_timeout_s,
            clock.now(),
            tables,
        )?;
        Ok(FabricServerLoop {
            cfg: *rt.config(),
            service: rt.service_model(),
            clock,
            metrics,
            sup,
            oracles,
            conns: BTreeMap::new(),
            queues: BTreeMap::new(),
            queued_total: 0,
            inflight: BTreeMap::new(),
            pending_dead: Vec::new(),
            next_batch_id: 0,
            next_req_id: 0,
            draining: false,
            default_table: first.clone(),
            all_ready: Arc::new(AtomicBool::new(false)),
        })
    }

    /// Shares the all-tables-ready latch with an observer (the run loop
    /// latches it `true` the first time every table routes; Relaxed —
    /// the flag carries no associated published state).
    #[must_use]
    pub fn with_ready_flag(mut self, flag: Arc<AtomicBool>) -> Self {
        self.all_ready = flag;
        self
    }

    /// The placement/liveness supervisor (exposed so tests can check
    /// residency and shard states after a run).
    pub fn supervisor(&self) -> &Supervisor {
        &self.sup
    }

    /// Queries currently queued across all tables.
    pub fn queued(&self) -> usize {
        self.queued_total
    }

    /// Runs until shutdown (a [`WAKE_SHUTDOWN`] token followed by a full
    /// drain) or — for the simulated transport — until the script is
    /// exhausted and no work remains. Live shards get a [`Frame::Shutdown`]
    /// on the way out.
    ///
    /// # Errors
    ///
    /// Poller failures and fatal engine failures. Per-connection I/O
    /// errors only drop that connection (for shard connections, after
    /// death bookkeeping and re-replication).
    pub fn run(
        &mut self,
        source: &mut dyn EventSource,
        engine: &mut dyn FabricShardEngine,
    ) -> Result<()> {
        let stats = source.stats();
        let can_quiesce = source.supports_quiescence();
        let mut events: Vec<IoEvent> = Vec::new();
        loop {
            let timeout = self.next_timeout();
            source.wait(timeout, &mut events)?;
            let quiescent = can_quiesce && events.is_empty() && timeout.is_none();
            let mut had_wake = false;
            let mut progress = false;
            for &event in events.iter() {
                match event {
                    IoEvent::Accepted(t) => {
                        self.conns.insert(t.0, FabricConn::new());
                        progress = true;
                    }
                    IoEvent::Readable(t) => {
                        if self.handle_readable(source, engine, t)? {
                            progress = true;
                        }
                    }
                    IoEvent::Writable(t) => {
                        self.flush_conn(source, t);
                        progress = true;
                    }
                    IoEvent::Wake(t) => {
                        had_wake = true;
                        if t == WAKE_SHUTDOWN && !self.draining {
                            self.draining = true;
                            source.stop_accepting();
                            progress = true;
                        }
                    }
                }
            }

            let now = self.clock.now();
            for shard in self.sup.expired(now) {
                self.shard_died(source, engine, shard)?;
                progress = true;
            }
            if self.deliver_sim_replies(source, engine)? {
                progress = true;
            }
            loop {
                let dead = self.reap_dead(source, engine)?;
                if self.pump(source, engine)? || dead {
                    progress = true;
                }
                if self.pending_dead.is_empty() && !dead {
                    break;
                }
            }
            if had_wake && !progress {
                stats.record_spurious_wakeup();
            }
            // Relaxed on purpose: the latch is a monotonic flag guarding
            // no other memory — observers act through sockets, not shared
            // state published alongside the store.
            if !self.all_ready.load(Ordering::Relaxed) && self.sup.all_tables_ready() {
                self.all_ready.store(true, Ordering::Relaxed);
            }
            if (self.draining || quiescent) && self.queued_total == 0 && self.inflight.is_empty() {
                self.send_shutdowns(source, engine);
                return Ok(());
            }
        }
    }

    /// Relative wait timeout: the earliest of the batch flush window (only
    /// for tables whose shard could take the batch), queued-request
    /// deadlines, and the supervisor's protocol deadlines.
    fn next_timeout(&self) -> Option<f64> {
        let now = self.clock.now();
        let mut wake_s = f64::INFINITY;
        for (table, q) in &self.queues {
            let Some(front) = q.front() else { continue };
            if let Some((shard, _)) = self.sup.route(table) {
                if !self.shard_busy(shard) {
                    wake_s = wake_s.min(front.req.arrival_s + self.cfg.policy.max_wait_s);
                }
            }
            for p in q {
                if p.req.deadline_s.is_finite() {
                    wake_s = wake_s.min(p.req.deadline_s + DEADLINE_SLOP_S);
                }
            }
        }
        if let Some(d) = self.sup.next_deadline_s() {
            wake_s = wake_s.min(d + DEADLINE_SLOP_S);
        }
        wake_s.is_finite().then(|| (wake_s - now).max(0.0))
    }

    fn shard_busy(&self, shard: u32) -> bool {
        self.inflight.values().any(|b| b.shard == shard)
    }
}

impl<'a> FabricServerLoop<'a> {
    /// Drains a readable connection, classifying it on its first byte,
    /// then parses lines (clients) or frames (shards). Returns whether any
    /// byte moved.
    fn handle_readable(
        &mut self,
        source: &mut dyn EventSource,
        engine: &mut dyn FabricShardEngine,
        t: Token,
    ) -> Result<bool> {
        let mut scratch = Vec::new();
        let rr = source.read(t, &mut scratch)?;
        let Some(conn) = self.conns.get_mut(&t.0) else {
            return Ok(false);
        };
        if matches!(conn.kind, ConnKind::Unknown) && !scratch.is_empty() {
            conn.kind = if scratch[0] == FRAME_MAGIC[0] {
                ConnKind::Shard {
                    decoder: FrameDecoder::new(),
                }
            } else {
                ConnKind::Client {
                    lines: LineBuffer::new(),
                    pending: 0,
                }
            };
        }
        if rr.closed {
            conn.peer_closed = true;
        }
        let progress = rr.bytes > 0 || rr.closed;
        match &mut conn.kind {
            ConnKind::Unknown => {
                if rr.closed {
                    self.conn_failed(source, t);
                }
            }
            ConnKind::Client { lines, .. } => {
                lines.push(&scratch);
                self.pump_client_lines(source, t)?;
                self.reap_if_done(source, t);
            }
            ConnKind::Shard { decoder } => {
                decoder.push(&scratch);
                self.pump_shard_frames(source, engine, t)?;
                if rr.closed {
                    // EOF from a worker — including one that was
                    // `kill -9`ed mid-batch.
                    self.conn_failed(source, t);
                }
            }
        }
        Ok(progress)
    }

    /// Pops and serves every complete client line. An oversized line
    /// (framing lost) drops the connection, as in `ServerLoop`.
    fn pump_client_lines(&mut self, source: &mut dyn EventSource, t: Token) -> Result<()> {
        loop {
            let Some(conn) = self.conns.get_mut(&t.0) else {
                return Ok(());
            };
            let ConnKind::Client { lines, .. } = &mut conn.kind else {
                return Ok(());
            };
            match lines.pop_line() {
                Ok(Some(line)) => self.handle_query_line(source, t, &line)?,
                Ok(None) => return Ok(()),
                Err(_) => {
                    self.conn_failed(source, t);
                    return Ok(());
                }
            }
        }
    }

    /// One client query: parse, route to a table, validate against the
    /// table's oracle, and enqueue — or refuse with an `E` line. Mirrors
    /// `ServerLoop::handle_line`'s refusal order.
    fn handle_query_line(
        &mut self,
        source: &mut dyn EventSource,
        t: Token,
        line: &[u8],
    ) -> Result<()> {
        let q = match codec::parse_query(line) {
            Ok(q) => q,
            Err(_) => {
                self.respond_error(source, t, &fallback_tag(line), ErrorKind::Invalid);
                return Ok(());
            }
        };
        if self.draining {
            self.respond_error(source, t, &q.tag, ErrorKind::Shutdown);
            return Ok(());
        }
        let table = q
            .table
            .clone()
            .unwrap_or_else(|| self.default_table.clone());
        let Some(oracle) = self.oracles.get(&table) else {
            self.respond_error(source, t, &q.tag, ErrorKind::Invalid);
            return Ok(());
        };
        if self.sup.table_state(&table) == Some(TableState::Lost) {
            self.respond_error(source, t, &q.tag, ErrorKind::Shutdown);
            return Ok(());
        }
        let now = self.clock.now();
        let id = self.next_req_id;
        self.next_req_id += 1;
        let req = match oracle.request_from_indices(id, now, now + self.cfg.deadline_s, q.indices) {
            Ok(r) => r,
            Err(_) => {
                self.respond_error(source, t, &q.tag, ErrorKind::Invalid);
                return Ok(());
            }
        };
        self.metrics.record_submitted();
        if self.queued_total >= self.cfg.queue_capacity {
            self.metrics.record_rejected();
            self.respond_error(source, t, &q.tag, ErrorKind::Rejected);
            return Ok(());
        }
        if let Some(conn) = self.conns.get_mut(&t.0) {
            if let ConnKind::Client { pending, .. } = &mut conn.kind {
                *pending += 1;
            }
        }
        self.queues
            .entry(table.clone())
            .or_default()
            .push_back(PendingReq {
                req,
                conn: t.0,
                tag: q.tag,
                table,
            });
        self.queued_total += 1;
        self.metrics.observe_queue_depth(self.queued_total);
        Ok(())
    }

    /// Pops and handles every complete shard frame. A framing violation
    /// poisons the decoder; the shard is treated as failed.
    fn pump_shard_frames(
        &mut self,
        source: &mut dyn EventSource,
        engine: &mut dyn FabricShardEngine,
        t: Token,
    ) -> Result<()> {
        loop {
            let Some(conn) = self.conns.get_mut(&t.0) else {
                return Ok(());
            };
            let ConnKind::Shard { decoder } = &mut conn.kind else {
                return Ok(());
            };
            match decoder.next_frame() {
                Ok(Some(frame)) => self.handle_shard_frame(source, engine, t, frame)?,
                Ok(None) => return Ok(()),
                Err(_) => {
                    self.conn_failed(source, t);
                    return Ok(());
                }
            }
        }
    }

    /// One frame from a shard connection. Protocol violations (frames
    /// from the wrong state, unknown ids) fail the connection — the shard
    /// is no longer trustworthy.
    fn handle_shard_frame(
        &mut self,
        source: &mut dyn EventSource,
        engine: &mut dyn FabricShardEngine,
        t: Token,
        frame: Frame,
    ) -> Result<()> {
        let now = self.clock.now();
        match frame {
            Frame::Hello { shard_id } => match self.sup.on_hello(shard_id, t, now) {
                Ok(orders) => {
                    for o in orders {
                        self.send_load(source, engine, &o)?;
                    }
                }
                Err(_) => self.conn_failed(source, t),
            },
            Frame::TableReady { table } => {
                let Some(shard) = self.sup.shard_by_token(t) else {
                    self.conn_failed(source, t);
                    return Ok(());
                };
                if self.sup.on_table_ready(shard, &table, now).is_err() {
                    self.conn_failed(source, t);
                }
            }
            Frame::ExecDone { batch_id, flags } => {
                let Some(shard) = self.sup.shard_by_token(t) else {
                    self.conn_failed(source, t);
                    return Ok(());
                };
                let valid = self
                    .inflight
                    .get(&batch_id)
                    .is_some_and(|b| b.shard == shard && b.items.len() == flags.len());
                if !valid {
                    self.conn_failed(source, t);
                    return Ok(());
                }
                let Some(batch) = self.inflight.remove(&batch_id) else {
                    return Ok(());
                };
                for (item, correct) in batch.items.into_iter().zip(flags) {
                    self.metrics.record_completed(now - item.req.arrival_s);
                    let bytes = codec::encode_result(
                        &item.tag,
                        correct,
                        item.req.expected_checksum.to_bits(),
                    );
                    self.respond_to_pending(source, &item, bytes);
                }
            }
            Frame::LoadTable { .. } | Frame::Execute { .. } | Frame::Shutdown => {
                self.conn_failed(source, t);
            }
        }
        Ok(())
    }

    /// Sends a `LoadTable` order to its shard, if that shard has hello'd
    /// (otherwise its own `Hello` will re-collect the order).
    fn send_load(
        &mut self,
        source: &mut dyn EventSource,
        engine: &mut dyn FabricShardEngine,
        order: &LoadOrder,
    ) -> Result<()> {
        let Some(token) = self.sup.token_of(order.shard) else {
            return Ok(());
        };
        let frame = Frame::LoadTable {
            table: order.table.clone(),
            seed: order.seed,
        };
        self.send_frame(source, engine, token, &frame)
    }

    /// Encodes and sends a frame to a shard connection, giving the engine
    /// its interception hook first.
    fn send_frame(
        &mut self,
        source: &mut dyn EventSource,
        engine: &mut dyn FabricShardEngine,
        t: Token,
        frame: &Frame,
    ) -> Result<()> {
        let bytes = frame.encode()?;
        engine.on_send(t, frame, self.clock.now())?;
        if let Some(conn) = self.conns.get_mut(&t.0) {
            conn.out.extend_from_slice(&bytes);
            self.flush_conn(source, t);
        }
        Ok(())
    }

    /// Feeds simulated shard replies due by now through the same decoder
    /// path real socket reads use. Returns whether anything arrived.
    fn deliver_sim_replies(
        &mut self,
        source: &mut dyn EventSource,
        engine: &mut dyn FabricShardEngine,
    ) -> Result<bool> {
        let replies = engine.due_replies(self.clock.now());
        if replies.is_empty() {
            return Ok(false);
        }
        for (t, bytes) in replies {
            let Some(conn) = self.conns.get_mut(&t.0) else {
                continue;
            };
            let ConnKind::Shard { decoder } = &mut conn.kind else {
                continue;
            };
            decoder.push(&bytes);
            self.pump_shard_frames(source, engine, t)?;
        }
        Ok(true)
    }

    /// Sheds expired queued requests, error-drains lost tables, and
    /// dispatches due batches to free resident shards. Returns whether
    /// anything moved.
    fn pump(
        &mut self,
        source: &mut dyn EventSource,
        engine: &mut dyn FabricShardEngine,
    ) -> Result<bool> {
        let now = self.clock.now();
        let mut progress = false;
        let tables: Vec<String> = self.queues.keys().cloned().collect();
        for table in &tables {
            // Deadline shedding (strict `now > deadline`, as everywhere).
            while let Some(q) = self.queues.get_mut(table) {
                let Some(pos) = q.iter().position(|p| p.req.expired(now)) else {
                    break;
                };
                let Some(item) = q.remove(pos) else { break };
                self.queued_total -= 1;
                self.metrics.record_deadline_exceeded();
                let bytes = codec::encode_error(&item.tag, ErrorKind::Deadline);
                self.respond_to_pending(source, &item, bytes);
                progress = true;
            }

            let Some((shard, token)) = self.sup.route(table) else {
                if self.sup.table_state(table) == Some(TableState::Lost) {
                    // No shard can ever serve this again: error-respond
                    // rather than strand the clients.
                    while let Some(item) = self.queues.get_mut(table).and_then(VecDeque::pop_front)
                    {
                        self.queued_total -= 1;
                        let bytes = codec::encode_error(&item.tag, ErrorKind::Shutdown);
                        self.respond_to_pending(source, &item, bytes);
                        progress = true;
                    }
                }
                continue;
            };
            if self.shard_busy(shard) {
                continue;
            }
            let (q_len, oldest_arrival) = match self.queues.get(table) {
                Some(q) => match q.front() {
                    Some(front) => (q.len(), front.req.arrival_s),
                    None => continue,
                },
                None => continue,
            };
            let max_batch = self.cfg.policy.max_batch;
            let due = q_len >= max_batch
                || now + 1e-12 >= oldest_arrival + self.cfg.policy.max_wait_s
                || self.draining;
            if !due {
                continue;
            }
            let n = q_len.min(max_batch);
            let mut items = Vec::with_capacity(n);
            if let Some(q) = self.queues.get_mut(table) {
                for _ in 0..n {
                    if let Some(item) = q.pop_front() {
                        items.push(item);
                    }
                }
            }
            self.queued_total -= items.len();
            let service_s = self.service.batch_service_s(items.len())?;
            let batch_id = self.next_batch_id;
            self.next_batch_id += 1;
            let frame = Frame::Execute {
                batch_id,
                service_s,
                table: table.clone(),
                requests: items.iter().map(|p| p.req.clone()).collect(),
            };
            self.metrics.record_batch(items.len());
            self.metrics.record_shard_wakeup();
            self.inflight
                .insert(batch_id, InflightBatch { shard, items });
            self.send_frame(source, engine, token, &frame)?;
            progress = true;
        }
        Ok(progress)
    }

    /// Death bookkeeping for one shard: the supervisor re-places its
    /// tables, its in-flight batches re-queue at the *front* of their
    /// table queues (zero lost requests, original order preserved, no
    /// double submission accounting), and re-replication orders go out to
    /// ready successors.
    fn shard_died(
        &mut self,
        source: &mut dyn EventSource,
        engine: &mut dyn FabricShardEngine,
        shard: u32,
    ) -> Result<()> {
        let token = self.sup.token_of(shard);
        let orders = self.sup.mark_dead(shard, self.clock.now());
        if let Some(t) = token {
            engine.forget(t);
            source.close(t);
            self.conns.remove(&t.0);
        }
        let mut ids: Vec<u64> = self
            .inflight
            .iter()
            .filter(|(_, b)| b.shard == shard)
            .map(|(&id, _)| id)
            .collect();
        // Re-queue newest batch first so the oldest batch ends up at the
        // very front of its queue.
        ids.sort_unstable();
        for id in ids.into_iter().rev() {
            let Some(batch) = self.inflight.remove(&id) else {
                continue;
            };
            for item in batch.items.into_iter().rev() {
                self.queues
                    .entry(item.table.clone())
                    .or_default()
                    .push_front(item);
                self.queued_total += 1;
            }
        }
        for o in orders {
            self.send_load(source, engine, &o)?;
        }
        Ok(())
    }

    /// Processes shard connections that failed I/O since the last pass.
    fn reap_dead(
        &mut self,
        source: &mut dyn EventSource,
        engine: &mut dyn FabricShardEngine,
    ) -> Result<bool> {
        let mut progress = false;
        while let Some(t) = self.pending_dead.pop() {
            if let Some(shard) = self.sup.shard_by_token(t) {
                self.shard_died(source, engine, shard)?;
                progress = true;
            }
        }
        Ok(progress)
    }

    /// Best-effort `Shutdown` frames to every live shard on exit.
    fn send_shutdowns(&mut self, source: &mut dyn EventSource, engine: &mut dyn FabricShardEngine) {
        let now = self.clock.now();
        for t in self.sup.live_tokens() {
            if let Ok(bytes) = Frame::Shutdown.encode() {
                let _ = engine.on_send(t, &Frame::Shutdown, now);
                let _ = source.write(t, &bytes);
            }
        }
    }

    /// Fails a connection: shard connections queue for death bookkeeping,
    /// everything else just closes.
    fn conn_failed(&mut self, source: &mut dyn EventSource, t: Token) {
        if self.sup.shard_by_token(t).is_some() && !self.pending_dead.contains(&t) {
            self.pending_dead.push(t);
        }
        source.close(t);
        self.conns.remove(&t.0);
    }

    /// Emits an `E` refusal on a client connection.
    fn respond_error(
        &mut self,
        source: &mut dyn EventSource,
        t: Token,
        tag: &str,
        kind: ErrorKind,
    ) {
        let bytes = codec::encode_error(tag, kind);
        if let Some(conn) = self.conns.get_mut(&t.0) {
            conn.out.extend_from_slice(&bytes);
            self.flush_conn(source, t);
        }
    }

    /// Delivers a response for a tracked (queued or in-flight) request to
    /// its client connection, releasing its pending slot. Responses to
    /// connections that have since dropped are discarded — the work was
    /// still executed and counted.
    fn respond_to_pending(
        &mut self,
        source: &mut dyn EventSource,
        item: &PendingReq,
        bytes: Vec<u8>,
    ) {
        let Some(conn) = self.conns.get_mut(&item.conn) else {
            return;
        };
        if let ConnKind::Client { pending, .. } = &mut conn.kind {
            *pending = pending.saturating_sub(1);
        }
        conn.out.extend_from_slice(&bytes);
        self.flush_conn(source, Token(item.conn));
    }

    /// Writes as much buffered output as the connection accepts, arming
    /// writable interest on backpressure. Hard write errors fail the
    /// connection.
    fn flush_conn(&mut self, source: &mut dyn EventSource, t: Token) {
        let Some(c) = self.conns.get_mut(&t.0) else {
            return;
        };
        if !c.out.is_empty() {
            match source.write(t, &c.out) {
                Ok(n) => {
                    c.out.drain(..n);
                }
                Err(_) => {
                    self.conn_failed(source, t);
                    return;
                }
            }
        }
        let want = !c.out.is_empty();
        if want != c.want_write && source.set_writable_interest(t, want).is_ok() {
            c.want_write = want;
        }
        self.reap_if_done(source, t);
    }

    /// Reaps a client connection once its peer closed and nothing is owed.
    fn reap_if_done(&mut self, source: &mut dyn EventSource, t: Token) {
        let Some(c) = self.conns.get(&t.0) else {
            return;
        };
        let done = match &c.kind {
            ConnKind::Client { pending, .. } => c.peer_closed && *pending == 0 && c.out.is_empty(),
            ConnKind::Unknown => c.peer_closed,
            ConnKind::Shard { .. } => false,
        };
        if done {
            source.close(t);
            self.conns.remove(&t.0);
        }
    }
}

// ---------------------------------------------------------------------------
// Runtime::serve_fabric — the multi-process front end
// ---------------------------------------------------------------------------

/// Handle to a running shard fabric: the bound address, a shutdown
/// trigger, the reactor thread's final metrics, and the worker child
/// processes (exposed so fault-injection tests can kill one).
#[derive(Debug)]
pub struct FabricHandle {
    addr: SocketAddr,
    shutdown: Waker,
    join: std::thread::JoinHandle<Result<MetricsSnapshot>>,
    children: Mutex<Vec<Child>>,
    all_ready: Arc<AtomicBool>,
}

impl FabricHandle {
    /// The address the listener is bound to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until every table has become routable at least once (all
    /// workers hello'd and finished their initial loads), polling the
    /// loop's latch. Call this before [`Self::kill_worker`]: EOF-driven
    /// death detection needs the victim to have *connected* — a worker
    /// killed before its `Hello` leaves no socket to close, and only the
    /// (virtual-time) hello timeout would ever reclaim its tables.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] if `timeout` (real time) elapses first.
    pub fn wait_all_ready(&self, timeout: Duration) -> Result<()> {
        let start = Instant::now();
        while !self.all_ready.load(Ordering::Relaxed) {
            if start.elapsed() > timeout {
                return Err(ServeError::Io {
                    detail: format!(
                        "fabric tables not all ready within {:.1}s",
                        timeout.as_secs_f64()
                    ),
                });
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        Ok(())
    }

    /// Kills worker `idx` with SIGKILL and reaps it — the fault-injection
    /// tests' `kill -9`. The supervisor sees the EOF and re-replicates.
    /// Wait on [`Self::wait_all_ready`] first if the test relies on
    /// EOF-driven detection rather than the hello timeout.
    ///
    /// # Errors
    ///
    /// Unknown index, or kill/wait failures.
    pub fn kill_worker(&self, idx: usize) -> Result<()> {
        let mut kids = self
            .children
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let Some(child) = kids.get_mut(idx) else {
            return Err(ServeError::Config {
                detail: format!("no fabric worker {idx}"),
            });
        };
        child
            .kill()
            .map_err(ServeError::from_io("kill fabric worker"))?;
        child
            .wait()
            .map_err(ServeError::from_io("reap fabric worker"))?;
        Ok(())
    }

    /// Signals drain, waits for in-flight work to finish, reaps the
    /// worker processes, and returns the run's metrics (with the
    /// reactor's stats attached).
    ///
    /// # Errors
    ///
    /// Propagates reactor-loop failures.
    pub fn shutdown(self) -> Result<MetricsSnapshot> {
        self.shutdown.wake();
        let result = self.join.join().map_err(|_| ServeError::Io {
            detail: "fabric reactor thread panicked".to_string(),
        })?;
        let mut kids = self
            .children
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        for mut child in kids.drain(..) {
            // Workers exit on their Shutdown frame or the closed socket;
            // the kill is a belt-and-braces reap for ones that never
            // connected.
            let _ = child.kill();
            let _ = child.wait();
        }
        result
    }
}

fn kill_all(children: &mut Vec<Child>) {
    for child in children.iter_mut() {
        let _ = child.kill();
        let _ = child.wait();
    }
    children.clear();
}

impl Runtime {
    /// Serves the line protocol (with table routing) on `listener` from a
    /// dedicated reactor thread, executing batches on `fabric.num_shards`
    /// worker *processes* spawned from `worker_argv` (program plus leading
    /// arguments; the worker's address, shard id, speedup, and
    /// [`WorkerSpec`] JSON are appended). `tables` are (name, build-seed)
    /// pairs placed by consistent hashing; the first is the default route.
    ///
    /// # Errors
    ///
    /// Configuration validation, poller construction, listener
    /// registration, or worker spawn failures (already-spawned workers are
    /// killed before returning).
    pub fn serve_fabric(
        self: &Arc<Self>,
        listener: TcpListener,
        speedup: f64,
        fabric: FabricConfig,
        tables: Vec<(String, u64)>,
        worker_argv: Vec<String>,
    ) -> Result<FabricHandle> {
        fabric.validate()?;
        let Some(program) = worker_argv.first() else {
            return Err(ServeError::Config {
                detail: "serve_fabric needs a worker argv (program + args)".to_string(),
            });
        };
        let addr = listener
            .local_addr()
            .map_err(ServeError::from_io("local_addr"))?;
        let mut poller = EpollPoller::new(speedup)?;
        poller.listen(listener)?;
        let shutdown = poller.waker(WAKE_SHUTDOWN);

        let spec = WorkerSpec {
            platform: self.service_model().engine().platform().clone(),
            lut: self.config().lut,
        };
        let spec_json = serde_json::to_string(&spec).map_err(|e| ServeError::Config {
            detail: format!("encode worker spec: {e}"),
        })?;
        let mut children: Vec<Child> = Vec::with_capacity(fabric.num_shards);
        for shard in 0..fabric.num_shards {
            let spawned = Command::new(program)
                .args(&worker_argv[1..])
                .arg(addr.to_string())
                .arg(shard.to_string())
                .arg(format!("{speedup}"))
                .arg(&spec_json)
                .stdin(Stdio::null())
                .spawn();
            match spawned {
                Ok(child) => children.push(child),
                Err(e) => {
                    kill_all(&mut children);
                    return Err(ServeError::Io {
                        detail: format!("spawn fabric worker {shard}: {e}"),
                    });
                }
            }
        }

        let rt = Arc::clone(self);
        let all_ready = Arc::new(AtomicBool::new(false));
        let ready_flag = Arc::clone(&all_ready);
        let join = std::thread::Builder::new()
            .name("pimdl-serve-fabric".to_string())
            .spawn(move || -> Result<MetricsSnapshot> {
                let clock = Arc::new(RealClock::accelerated(speedup)?);
                let metrics = Arc::new(Metrics::new(rt.config().policy.max_batch));
                let clock_dyn: Arc<dyn Clock> = clock;
                let mut engine = ProcessShardEngine;
                let mut server =
                    FabricServerLoop::new(&rt, fabric, &tables, clock_dyn, Arc::clone(&metrics))?
                        .with_ready_flag(ready_flag);
                server.run(&mut poller, &mut engine)?;
                Ok(metrics.snapshot_with_reactor(poller.stats().snapshot()))
            });
        let join = match join {
            Ok(j) => j,
            Err(e) => {
                kill_all(&mut children);
                return Err(ServeError::Io {
                    detail: format!("spawn fabric reactor thread: {e}"),
                });
            }
        };
        Ok(FabricHandle {
            addr,
            shutdown,
            join,
            children: Mutex::new(children),
            all_ready,
        })
    }
}

// ---------------------------------------------------------------------------
// Worker process
// ---------------------------------------------------------------------------

/// Longest real-time sleep a worker will take for one batch, regardless
/// of the simulated service time (keeps a mis-calibrated cost model from
/// wedging a worker).
const MAX_WORKER_SLEEP_S: f64 = 60.0;

/// Entry point of a shard worker process: connects to the front end,
/// sends `Hello`, then serves `LoadTable`/`Execute` frames (building
/// replicas deterministically from their seeds and sleeping each batch's
/// service time scaled by `speedup`) until `Shutdown` or EOF.
///
/// Blocking std-only I/O on purpose: the worker is a leaf process, and a
/// blocked read *is* its idle state.
///
/// # Errors
///
/// Invalid arguments/spec, connection failures, framing violations, or
/// execution failures. EOF from the front end is a clean exit.
pub fn shard_worker_main(addr: &str, shard_id: u32, speedup: f64, spec_json: &str) -> Result<()> {
    if !speedup.is_finite() || speedup <= 0.0 {
        return Err(ServeError::Config {
            detail: format!("worker speedup must be finite and > 0, got {speedup}"),
        });
    }
    let spec: WorkerSpec = serde_json::from_str(spec_json).map_err(|e| ServeError::Config {
        detail: format!("decode worker spec: {e}"),
    })?;
    let engine = PimDlEngine::new(spec.platform);
    let mut stream =
        TcpStream::connect(addr).map_err(ServeError::from_io("connect fabric front end"))?;
    let _ = stream.set_nodelay(true);
    let hello = Frame::Hello { shard_id }.encode()?;
    stream
        .write_all(&hello)
        .map_err(ServeError::from_io("send Hello"))?;

    let mut decoder = FrameDecoder::new();
    let mut replicas: BTreeMap<String, ReplicaModel> = BTreeMap::new();
    let mut buf = [0u8; 16 * 1024];
    loop {
        let n = stream
            .read(&mut buf)
            .map_err(ServeError::from_io("read fabric frame"))?;
        if n == 0 {
            return Ok(()); // front end went away: clean exit
        }
        decoder.push(&buf[..n]);
        loop {
            match decoder.next_frame() {
                Ok(None) => break,
                Err(e) => return Err(e.into()),
                Ok(Some(Frame::LoadTable { table, seed })) => {
                    let replica = ReplicaModel::build(&engine, spec.lut, seed)?;
                    replicas.insert(table.clone(), replica);
                    let out = Frame::TableReady { table }.encode()?;
                    stream
                        .write_all(&out)
                        .map_err(ServeError::from_io("send TableReady"))?;
                }
                Ok(Some(Frame::Execute {
                    batch_id,
                    service_s,
                    table,
                    requests,
                })) => {
                    let Some(replica) = replicas.get(&table) else {
                        return Err(ServeError::Io {
                            detail: format!("Execute for unloaded table {table:?}"),
                        });
                    };
                    let flags = replica.execute_batch(&requests)?;
                    if service_s.is_finite() && service_s > 0.0 {
                        let real_s = (service_s / speedup).min(MAX_WORKER_SLEEP_S);
                        std::thread::sleep(Duration::from_secs_f64(real_s));
                    }
                    let out = Frame::ExecDone { batch_id, flags }.encode()?;
                    stream
                        .write_all(&out)
                        .map_err(ServeError::from_io("send ExecDone"))?;
                }
                Ok(Some(Frame::Shutdown)) => return Ok(()),
                Ok(Some(other)) => {
                    return Err(ServeError::Io {
                        detail: format!("worker got unexpected frame {other:?}"),
                    });
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Loopback calibration
// ---------------------------------------------------------------------------

/// Measures the mean round-trip time of echoing `payload_bytes` over a
/// real loopback TCP connection (`iters` round trips after a short
/// warm-up). Two measurements at different sizes feed
/// [`pimdl_sim::NetworkModel::calibrate`], giving the DES a
/// machine-specific network cost model.
///
/// # Errors
///
/// `iters == 0`, or socket failures.
pub fn measure_loopback_rtt(payload_bytes: usize, iters: usize) -> Result<f64> {
    if iters == 0 {
        return Err(ServeError::Config {
            detail: "loopback RTT needs iters >= 1".to_string(),
        });
    }
    let listener =
        TcpListener::bind(("127.0.0.1", 0)).map_err(ServeError::from_io("bind loopback"))?;
    let addr = listener
        .local_addr()
        .map_err(ServeError::from_io("local_addr"))?;
    let echo = std::thread::spawn(move || {
        if let Ok((mut s, _)) = listener.accept() {
            let mut buf = vec![0u8; 64 * 1024];
            loop {
                match s.read(&mut buf) {
                    Ok(0) | Err(_) => break,
                    Ok(n) => {
                        if s.write_all(&buf[..n]).is_err() {
                            break;
                        }
                    }
                }
            }
        }
    });
    let run = (|| -> Result<f64> {
        let mut s = TcpStream::connect(addr).map_err(ServeError::from_io("connect loopback"))?;
        let _ = s.set_nodelay(true);
        let payload = vec![0xA5u8; payload_bytes.max(1)];
        let mut back = vec![0u8; payload.len()];
        for _ in 0..2 {
            s.write_all(&payload)
                .map_err(ServeError::from_io("loopback write"))?;
            s.read_exact(&mut back)
                .map_err(ServeError::from_io("loopback read"))?;
        }
        let start = Instant::now();
        for _ in 0..iters {
            s.write_all(&payload)
                .map_err(ServeError::from_io("loopback write"))?;
            s.read_exact(&mut back)
                .map_err(ServeError::from_io("loopback read"))?;
        }
        Ok(start.elapsed().as_secs_f64() / iters as f64)
    })();
    let _ = echo.join();
    run
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_frames() -> Vec<Frame> {
        vec![
            Frame::Hello { shard_id: 7 },
            Frame::LoadTable {
                table: "bert.ffn1".to_string(),
                seed: 0xDEAD_BEEF,
            },
            Frame::TableReady {
                table: "bert.ffn1".to_string(),
            },
            Frame::Execute {
                batch_id: 42,
                service_s: 1.5e-3,
                table: "bert.ffn1".to_string(),
                requests: vec![Request {
                    id: 9,
                    arrival_s: 0.25,
                    deadline_s: f64::INFINITY,
                    indices: vec![0, 3, 1, 2],
                    expected_checksum: -12.5,
                }],
            },
            Frame::ExecDone {
                batch_id: 42,
                flags: vec![true, false, true],
            },
            Frame::Shutdown,
        ]
    }

    #[test]
    fn every_frame_kind_round_trips() {
        let mut decoder = FrameDecoder::new();
        for frame in sample_frames() {
            let bytes = frame.encode().unwrap();
            decoder.push(&bytes);
            assert_eq!(decoder.next_frame().unwrap(), Some(frame));
            assert_eq!(decoder.pending(), 0);
        }
        assert_eq!(decoder.next_frame().unwrap(), None);
    }

    #[test]
    fn byte_at_a_time_delivery_round_trips() {
        let mut decoder = FrameDecoder::new();
        let frames = sample_frames();
        let mut out = Vec::new();
        for frame in &frames {
            for &b in &frame.encode().unwrap() {
                decoder.push(&[b]);
                while let Some(f) = decoder.next_frame().unwrap() {
                    out.push(f);
                }
            }
        }
        assert_eq!(out, frames);
    }

    #[test]
    fn truncated_frames_wait_instead_of_erroring() {
        let bytes = sample_frames()[3].encode().unwrap();
        for cut in 0..bytes.len() {
            let mut d = FrameDecoder::new();
            d.push(&bytes[..cut]);
            assert_eq!(d.next_frame().unwrap(), None, "cut at {cut}");
            d.push(&bytes[cut..]);
            assert!(d.next_frame().unwrap().is_some(), "cut at {cut}");
        }
    }

    #[test]
    fn corrupted_crc_poisons_with_exactly_one_error() {
        let mut bytes = sample_frames()[1].encode().unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        let mut d = FrameDecoder::new();
        d.push(&bytes);
        let e = d.next_frame().unwrap_err();
        assert!(e.detail.contains("CRC"), "{e}");
        // Poisoned: even a pristine frame afterwards yields nothing.
        d.push(&sample_frames()[0].encode().unwrap());
        assert_eq!(d.next_frame().unwrap(), None);
        assert_eq!(d.next_frame().unwrap(), None);
    }

    #[test]
    fn payload_corruption_fails_the_crc() {
        let mut bytes = sample_frames()[3].encode().unwrap();
        bytes[HEADER_LEN + 2] ^= 0x40;
        let mut d = FrameDecoder::new();
        d.push(&bytes);
        assert!(d.next_frame().is_err());
    }

    #[test]
    fn version_mismatch_is_fatal() {
        let mut bytes = sample_frames()[0].encode().unwrap();
        bytes[2] = FRAME_VERSION + 1;
        // Re-stamp the CRC so only the version is wrong.
        let crc_at = bytes.len() - TRAILER_LEN;
        let crc = crc32(&bytes[..crc_at]);
        bytes[crc_at..].copy_from_slice(&crc.to_le_bytes());
        let mut d = FrameDecoder::new();
        d.push(&bytes);
        let e = d.next_frame().unwrap_err();
        assert!(e.detail.contains("version"), "{e}");
        assert_eq!(d.next_frame().unwrap(), None);
    }

    #[test]
    fn bad_magic_is_fatal_on_the_first_byte() {
        let mut d = FrameDecoder::new();
        d.push(b"GET / HTTP/1.1\r\n");
        assert!(d.next_frame().is_err());
        assert_eq!(d.next_frame().unwrap(), None);
    }

    #[test]
    fn oversized_length_field_is_fatal_before_buffering() {
        let mut bytes = vec![FRAME_MAGIC[0], FRAME_MAGIC[1], FRAME_VERSION, KIND_SHUTDOWN];
        bytes.extend_from_slice(&(MAX_FRAME_PAYLOAD as u32 + 1).to_le_bytes());
        let mut d = FrameDecoder::new();
        d.push(&bytes);
        let e = d.next_frame().unwrap_err();
        assert!(e.detail.contains("cap"), "{e}");
    }

    #[test]
    fn unknown_kind_and_trailing_bytes_are_fatal() {
        // Unknown kind with a valid CRC.
        let mut bytes = vec![FRAME_MAGIC[0], FRAME_MAGIC[1], FRAME_VERSION, 99];
        bytes.extend_from_slice(&0u32.to_le_bytes());
        let crc = crc32(&bytes);
        bytes.extend_from_slice(&crc.to_le_bytes());
        let mut d = FrameDecoder::new();
        d.push(&bytes);
        assert!(d.next_frame().unwrap_err().detail.contains("kind"));

        // Shutdown with a stray payload byte, CRC re-stamped.
        let mut bytes = vec![FRAME_MAGIC[0], FRAME_MAGIC[1], FRAME_VERSION, KIND_SHUTDOWN];
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.push(0xFF);
        let crc = crc32(&bytes);
        bytes.extend_from_slice(&crc.to_le_bytes());
        let mut d = FrameDecoder::new();
        d.push(&bytes);
        assert!(d.next_frame().unwrap_err().detail.contains("trailing"));
    }

    #[test]
    fn crc_matches_the_ieee_reference_vector() {
        // The classic check value for CRC-32/IEEE ("123456789").
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn worker_spec_round_trips_json() {
        let spec = WorkerSpec {
            platform: PlatformConfig::upmem(),
            lut: LutWorkload {
                n: 8,
                cb: 8,
                ct: 16,
                f: 32,
            },
        };
        let json = serde_json::to_string(&spec).unwrap();
        let back: WorkerSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back.platform, spec.platform);
        assert_eq!(back.lut, spec.lut);
    }

    #[test]
    fn loopback_rtt_is_positive_and_scales_sanely() {
        let small = measure_loopback_rtt(64, 8).unwrap();
        assert!(small > 0.0 && small < 1.0, "implausible RTT {small}");
        assert!(measure_loopback_rtt(64, 0).is_err());
    }
}
