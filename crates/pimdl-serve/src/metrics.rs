//! Lock-free serving metrics: atomic counters plus fixed-bucket latency
//! and batch-size histograms, snapshotted at shutdown.
//!
//! All recorders take `&self` and use only atomics, so the generator,
//! batcher, and shard workers share one [`Metrics`] without locking on the
//! hot path.

use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

use crate::reactor::ReactorStatsSnapshot;

/// A fixed-bucket histogram with atomic counters.
///
/// Quantiles are read as the **upper bound** of the bucket holding the
/// requested rank — a conservative (over-)estimate with relative error
/// bounded by the bucket ratio.
#[derive(Debug)]
pub struct Histogram {
    /// Ascending upper bounds; values above the last bound land in an
    /// overflow bucket.
    upper_bounds: Vec<f64>,
    /// `upper_bounds.len() + 1` counters (last = overflow).
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// Running sum, stored as `f64` bits (CAS-updated).
    sum_bits: AtomicU64,
}

impl Histogram {
    /// A histogram over the given ascending upper bounds.
    pub fn new(upper_bounds: Vec<f64>) -> Self {
        debug_assert!(upper_bounds.windows(2).all(|w| w[0] < w[1]));
        let buckets = (0..=upper_bounds.len())
            .map(|_| AtomicU64::new(0))
            .collect();
        Histogram {
            upper_bounds,
            buckets,
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0.0f64.to_bits()),
        }
    }

    /// Log-spaced time buckets: five per decade from 1 µs to 1000 s.
    pub fn log_time() -> Self {
        let mut bounds = Vec::new();
        for decade in -6..3i32 {
            for step in 0..5 {
                bounds.push(10f64.powf(f64::from(decade) + f64::from(step) / 5.0));
            }
        }
        bounds.push(1e3);
        Histogram::new(bounds)
    }

    /// Unit-width buckets `1, 2, …, max` (for batch sizes).
    pub fn linear_counts(max: usize) -> Self {
        Histogram::new((1..=max.max(1)).map(|i| i as f64).collect())
    }

    /// Records one observation.
    pub fn record(&self, v: f64) {
        let idx = self
            .upper_bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.upper_bounds.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let new = (f64::from_bits(cur) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                new,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Observation count.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() / n as f64
        }
    }

    /// Quantile `q ∈ [0, 1]` as the upper bound of the bucket holding that
    /// rank (0 when empty; the last finite bound for overflow).
    pub fn quantile(&self, q: f64) -> f64 {
        let n = self.count();
        if n == 0 {
            return 0.0;
        }
        let rank = ((n as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            cum += b.load(Ordering::Relaxed);
            if cum >= rank {
                return self
                    .upper_bounds
                    .get(i)
                    .copied()
                    .unwrap_or_else(|| *self.upper_bounds.last().expect("non-empty bounds"));
            }
        }
        *self.upper_bounds.last().expect("non-empty bounds")
    }
}

/// Shared metrics registry of one serving run.
#[derive(Debug)]
pub struct Metrics {
    submitted: AtomicU64,
    completed: AtomicU64,
    rejected: AtomicU64,
    deadline_exceeded: AtomicU64,
    batches: AtomicU64,
    shard_wakeups: AtomicU64,
    queue_depth_peak: AtomicU64,
    latency: Histogram,
    batch_size: Histogram,
}

impl Metrics {
    /// A fresh registry; `max_batch` sizes the batch-size histogram.
    pub fn new(max_batch: usize) -> Self {
        Metrics {
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            deadline_exceeded: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            shard_wakeups: AtomicU64::new(0),
            queue_depth_peak: AtomicU64::new(0),
            latency: Histogram::log_time(),
            batch_size: Histogram::linear_counts(max_batch),
        }
    }

    /// One request entered the front end.
    pub fn record_submitted(&self) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
    }

    /// One request was load-shed at admission.
    pub fn record_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// One request was shed on deadline before dispatch.
    pub fn record_deadline_exceeded(&self) {
        self.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
    }

    /// One request completed with the given end-to-end latency.
    pub fn record_completed(&self, latency_s: f64) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        self.latency.record(latency_s);
    }

    /// One batch of `size` requests was dispatched.
    pub fn record_batch(&self, size: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batch_size.record(size as f64);
    }

    /// One shard worker woke to process a batch. A reactor-parked runtime
    /// wakes a shard exactly once per dispatched batch, so
    /// `shard_wakeups == batches` is the no-spurious-wakeups invariant the
    /// pipeline tests pin.
    pub fn record_shard_wakeup(&self) {
        self.shard_wakeups.fetch_add(1, Ordering::Relaxed);
    }

    /// Updates the peak queue depth.
    pub fn observe_queue_depth(&self, depth: usize) {
        self.queue_depth_peak
            .fetch_max(depth as u64, Ordering::Relaxed);
    }

    /// Immutable snapshot of every counter and derived statistic (reactor
    /// stats zeroed; see [`Metrics::snapshot_with_reactor`]).
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.snapshot_with_reactor(ReactorStatsSnapshot::default())
    }

    /// Snapshot with the event source's [`ReactorStatsSnapshot`] attached
    /// (reactor-backed drivers pass their poller's stats at shutdown).
    pub fn snapshot_with_reactor(&self, reactor: ReactorStatsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            deadline_exceeded: self.deadline_exceeded.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            shard_wakeups: self.shard_wakeups.load(Ordering::Relaxed),
            queue_depth_peak: self.queue_depth_peak.load(Ordering::Relaxed),
            mean_latency_s: self.latency.mean(),
            p50_latency_s: self.latency.quantile(0.50),
            p95_latency_s: self.latency.quantile(0.95),
            p99_latency_s: self.latency.quantile(0.99),
            mean_batch: self.batch_size.mean(),
            reactor,
        }
    }
}

/// Point-in-time view of a [`Metrics`] registry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Requests that entered the front end.
    pub submitted: u64,
    /// Requests served to completion.
    pub completed: u64,
    /// Requests load-shed at admission (queue full).
    pub rejected: u64,
    /// Requests shed on deadline before dispatch.
    pub deadline_exceeded: u64,
    /// Batches dispatched to shards.
    pub batches: u64,
    /// Shard worker wakeups (equals `batches` when no wakeup is spurious).
    pub shard_wakeups: u64,
    /// Peak admission-queue depth observed.
    pub queue_depth_peak: u64,
    /// Mean end-to-end latency (seconds).
    pub mean_latency_s: f64,
    /// Median latency (bucket upper bound, seconds).
    pub p50_latency_s: f64,
    /// 95th-percentile latency (bucket upper bound, seconds).
    pub p95_latency_s: f64,
    /// 99th-percentile latency (bucket upper bound, seconds).
    pub p99_latency_s: f64,
    /// Mean dispatched batch size.
    pub mean_batch: f64,
    /// Event-source counters of the run's reactor (all zero for drivers
    /// without one, e.g. the deterministic virtual event loop).
    #[serde(default)]
    pub reactor: ReactorStatsSnapshot,
}

impl MetricsSnapshot {
    /// Multi-line shutdown report.
    pub fn render(&self) -> String {
        format!(
            "serving metrics\n\
             \x20 submitted          {}\n\
             \x20 completed          {}\n\
             \x20 rejected           {}\n\
             \x20 deadline exceeded  {}\n\
             \x20 batches            {} (mean size {:.2})\n\
             \x20 shard wakeups      {}\n\
             \x20 peak queue depth   {}\n\
             \x20 latency mean/p50/p95/p99  {:.3e} / {:.3e} / {:.3e} / {:.3e} s\n\
             \x20 reactor polls/wakeups/spurious  {} / {} / {}\n\
             \x20 reactor accepts/reads/writes    {} / {} / {}\n\
             \x20 reactor mean wake latency       {:.3e} s",
            self.submitted,
            self.completed,
            self.rejected,
            self.deadline_exceeded,
            self.batches,
            self.mean_batch,
            self.shard_wakeups,
            self.queue_depth_peak,
            self.mean_latency_s,
            self.p50_latency_s,
            self.p95_latency_s,
            self.p99_latency_s,
            self.reactor.polls,
            self.reactor.wakeups,
            self.reactor.spurious_wakeups,
            self.reactor.accepts,
            self.reactor.reads,
            self.reactor.writes,
            self.reactor.mean_wake_latency_s,
        )
    }

    /// Prometheus text exposition (format version 0.0.4) of the snapshot,
    /// served by the HTTP front end's `GET /metrics`.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let mut emit = |name: &str, help: &str, kind: &str, value: String| {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} {kind}\n{name} {value}\n"
            ));
        };
        let counters: [(&str, &str, u64); 6] = [
            (
                "pimdl_requests_submitted_total",
                "Requests that entered the front end.",
                self.submitted,
            ),
            (
                "pimdl_requests_completed_total",
                "Requests served to completion.",
                self.completed,
            ),
            (
                "pimdl_requests_rejected_total",
                "Requests load-shed at admission.",
                self.rejected,
            ),
            (
                "pimdl_requests_deadline_exceeded_total",
                "Requests shed on deadline before dispatch.",
                self.deadline_exceeded,
            ),
            (
                "pimdl_batches_total",
                "Batches dispatched to shards.",
                self.batches,
            ),
            (
                "pimdl_shard_wakeups_total",
                "Shard worker wakeups.",
                self.shard_wakeups,
            ),
        ];
        for (name, help, v) in counters {
            emit(name, help, "counter", v.to_string());
        }
        let gauges: [(&str, &str, f64); 6] = [
            (
                "pimdl_queue_depth_peak",
                "Peak admission-queue depth observed.",
                self.queue_depth_peak as f64,
            ),
            (
                "pimdl_latency_mean_seconds",
                "Mean end-to-end latency.",
                self.mean_latency_s,
            ),
            (
                "pimdl_latency_p50_seconds",
                "Median latency (bucket upper bound).",
                self.p50_latency_s,
            ),
            (
                "pimdl_latency_p95_seconds",
                "95th-percentile latency (bucket upper bound).",
                self.p95_latency_s,
            ),
            (
                "pimdl_latency_p99_seconds",
                "99th-percentile latency (bucket upper bound).",
                self.p99_latency_s,
            ),
            (
                "pimdl_batch_size_mean",
                "Mean dispatched batch size.",
                self.mean_batch,
            ),
        ];
        for (name, help, v) in gauges {
            emit(name, help, "gauge", format!("{v}"));
        }
        let reactor: [(&str, &str, u64); 9] = [
            (
                "pimdl_reactor_polls_total",
                "Event-source wait calls.",
                self.reactor.polls,
            ),
            (
                "pimdl_reactor_timeouts_total",
                "Waits that expired on timeout.",
                self.reactor.timeouts,
            ),
            (
                "pimdl_reactor_wakeups_total",
                "Wake-token deliveries.",
                self.reactor.wakeups,
            ),
            (
                "pimdl_reactor_spurious_wakeups_total",
                "Wakeups that produced no progress.",
                self.reactor.spurious_wakeups,
            ),
            (
                "pimdl_reactor_accepts_total",
                "Connections accepted.",
                self.reactor.accepts,
            ),
            (
                "pimdl_reactor_accept_errors_total",
                "Accept failures.",
                self.reactor.accept_errors,
            ),
            (
                "pimdl_reactor_reads_total",
                "Readable events serviced.",
                self.reactor.reads,
            ),
            (
                "pimdl_reactor_writes_total",
                "Write calls issued.",
                self.reactor.writes,
            ),
            (
                "pimdl_reactor_lock_recoveries_total",
                "Poisoned-lock recoveries.",
                self.reactor.lock_recoveries,
            ),
        ];
        for (name, help, v) in reactor {
            emit(name, help, "counter", v.to_string());
        }
        emit(
            "pimdl_reactor_mean_wake_latency_seconds",
            "Mean wake-token delivery latency.",
            "gauge",
            format!("{}", self.reactor.mean_wake_latency_s),
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_counts_and_quantiles() {
        let h = Histogram::new(vec![1.0, 2.0, 4.0]);
        for v in [0.5, 0.7, 1.5, 3.0, 100.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert!((h.sum() - 105.7).abs() < 1e-9);
        // rank 1..5 over buckets [2, 1, 1, 1(overflow)]
        assert_eq!(h.quantile(0.0), 1.0);
        assert_eq!(h.quantile(0.40), 1.0);
        assert_eq!(h.quantile(0.60), 2.0);
        assert_eq!(h.quantile(0.80), 4.0);
        // overflow clamps to the last finite bound
        assert_eq!(h.quantile(1.0), 4.0);
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = Histogram::log_time();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0.0);
    }

    #[test]
    fn metrics_snapshot_reflects_recorders() {
        let m = Metrics::new(8);
        m.record_submitted();
        m.record_submitted();
        m.record_submitted();
        m.record_rejected();
        m.record_deadline_exceeded();
        m.record_completed(0.010);
        m.record_batch(1);
        m.observe_queue_depth(3);
        m.observe_queue_depth(2);
        let s = m.snapshot();
        assert_eq!(s.submitted, 3);
        assert_eq!(s.completed, 1);
        assert_eq!(s.rejected, 1);
        assert_eq!(s.deadline_exceeded, 1);
        assert_eq!(s.batches, 1);
        assert_eq!(s.queue_depth_peak, 3);
        assert!((s.mean_batch - 1.0).abs() < 1e-12);
        assert!(s.p50_latency_s >= 0.010);
        assert!(s.render().contains("completed"));
    }

    #[test]
    fn prometheus_text_is_well_formed() {
        let m = Metrics::new(4);
        m.record_submitted();
        m.record_completed(0.002);
        let text = m.snapshot().render_prometheus();
        let mut samples = 0;
        for line in text.lines() {
            if line.starts_with('#') {
                assert!(
                    line.starts_with("# HELP ") || line.starts_with("# TYPE "),
                    "bad comment line: {line}"
                );
                continue;
            }
            let (name, value) = line.split_once(' ').expect("sample line has a value");
            assert!(
                name.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'_'),
                "bad metric name: {name}"
            );
            let v: f64 = value.parse().expect("sample value parses as a number");
            assert!(v.is_finite());
            samples += 1;
        }
        assert!(
            samples >= 20,
            "expected a full metric family, got {samples}"
        );
        assert!(text.contains("pimdl_requests_submitted_total 1\n"));
        assert!(text.contains("pimdl_requests_completed_total 1\n"));
    }
}
