//! Error type of the serving runtime.

use std::error::Error;
use std::fmt;

use pimdl_engine::EngineError;
use pimdl_sim::SimError;

/// Errors produced by the serving runtime.
#[derive(Debug)]
#[non_exhaustive]
pub enum ServeError {
    /// Invalid runtime, policy, or load configuration.
    Config {
        /// Human-readable description of the offending value.
        detail: String,
    },
    /// The engine's cost model or auto-tuner failed.
    Engine(EngineError),
    /// Functional execution on the simulated platform failed.
    Sim(SimError),
    /// A reactor or socket operation failed.
    Io {
        /// The failing operation and the OS error text.
        detail: String,
    },
}

impl ServeError {
    /// Adapter turning an [`std::io::Error`] into [`ServeError::Io`] with
    /// the failing operation named, usable directly in `map_err`.
    pub fn from_io(op: &str) -> impl FnOnce(std::io::Error) -> ServeError + '_ {
        move |e| ServeError::Io {
            detail: format!("{op}: {e}"),
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Config { detail } => write!(f, "serving configuration error: {detail}"),
            ServeError::Engine(e) => write!(f, "engine error: {e}"),
            ServeError::Sim(e) => write!(f, "simulator error: {e}"),
            ServeError::Io { detail } => write!(f, "reactor I/O error: {detail}"),
        }
    }
}

impl Error for ServeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ServeError::Config { .. } | ServeError::Io { .. } => None,
            ServeError::Engine(e) => Some(e),
            ServeError::Sim(e) => Some(e),
        }
    }
}

impl From<EngineError> for ServeError {
    fn from(e: EngineError) -> Self {
        ServeError::Engine(e)
    }
}

impl From<SimError> for ServeError {
    fn from(e: SimError) -> Self {
        ServeError::Sim(e)
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io {
            detail: e.to_string(),
        }
    }
}
