//! Error type of the serving runtime.

use std::error::Error;
use std::fmt;

use pimdl_engine::EngineError;
use pimdl_sim::SimError;

/// Errors produced by the serving runtime.
#[derive(Debug)]
#[non_exhaustive]
pub enum ServeError {
    /// Invalid runtime, policy, or load configuration.
    Config {
        /// Human-readable description of the offending value.
        detail: String,
    },
    /// The engine's cost model or auto-tuner failed.
    Engine(EngineError),
    /// Functional execution on the simulated platform failed.
    Sim(SimError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Config { detail } => write!(f, "serving configuration error: {detail}"),
            ServeError::Engine(e) => write!(f, "engine error: {e}"),
            ServeError::Sim(e) => write!(f, "simulator error: {e}"),
        }
    }
}

impl Error for ServeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ServeError::Config { .. } => None,
            ServeError::Engine(e) => Some(e),
            ServeError::Sim(e) => Some(e),
        }
    }
}

impl From<EngineError> for ServeError {
    fn from(e: EngineError) -> Self {
        ServeError::Engine(e)
    }
}

impl From<SimError> for ServeError {
    fn from(e: SimError) -> Self {
        ServeError::Sim(e)
    }
}
