//! Multi-tenant model registry and weighted-fair batching.
//!
//! Two pieces sit between the HTTP front end and the shard executors:
//!
//! * [`ModelRegistry`] — named calibrated [`ReplicaModel`]s resident
//!   concurrently; the infer route picks one by name and every dispatched
//!   batch executes against exactly one registered table.
//! * [`FairBatcher`] — per-tenant FIFO queues scheduled by **stride
//!   scheduling**: each tenant holds an integer `pass`, advanced by
//!   `TENANT_STRIDE_SCALE / weight` per scheduled request, and the batcher
//!   always serves the smallest pass (ties break on tenant name, so the
//!   schedule is deterministic). A weight-3 tenant therefore gets 3x the
//!   service of a weight-1 tenant under contention, and a hot tenant
//!   cannot starve the rest: everyone's pass keeps ratcheting forward.
//!
//! Batches are **model-uniform** — one dispatch executes against one
//! model's table — so the batcher picks a lead `(tenant, model)` by pass
//! and fills the rest of the batch with the stride order restricted to
//! that model. Admission enforces [`TenantQuota::max_in_flight`] (HTTP
//! 429) per tenant and a global queued-job capacity (HTTP 503) before any
//! job enters a queue.

use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

use pimdl_engine::scheduler::{BatchingPolicy, TenantQuota};

use crate::error::ServeError;
use crate::request::Request;
use crate::shard::ReplicaModel;
use crate::Result;

/// Named, concurrently resident model replicas.
#[derive(Debug, Default)]
pub struct ModelRegistry {
    models: BTreeMap<String, Arc<ReplicaModel>>,
}

fn valid_model_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 64
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_' || b == b'.')
}

impl ModelRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        ModelRegistry::default()
    }

    /// Registers `replica` under `name`.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Config`] for an invalid name (URL-safe
    /// `[A-Za-z0-9._-]{1,64}` only — it appears in request paths) or a
    /// duplicate registration.
    pub fn register(&mut self, name: &str, replica: Arc<ReplicaModel>) -> Result<()> {
        if !valid_model_name(name) {
            return Err(ServeError::Config {
                detail: format!("invalid model name {name:?} (want [A-Za-z0-9._-]{{1,64}})"),
            });
        }
        if self.models.contains_key(name) {
            return Err(ServeError::Config {
                detail: format!("model {name:?} is already registered"),
            });
        }
        self.models.insert(name.to_string(), replica);
        Ok(())
    }

    /// The replica registered under `name`.
    pub fn get(&self, name: &str) -> Option<&Arc<ReplicaModel>> {
        self.models.get(name)
    }

    /// Registered model names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.models.keys().map(String::as_str).collect()
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// Whether no model is registered.
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }
}

/// One queued inference job, tagged with the tenant that owns it and the
/// registered model it executes against.
#[derive(Debug, Clone, PartialEq)]
pub struct TaggedJob {
    /// The underlying request (checksum computed against `model`'s table).
    pub request: Request,
    /// Owning tenant (quota accounting and fair-share identity).
    pub tenant: String,
    /// Registered model name the job executes against.
    pub model: String,
}

/// Why the batcher refused a job at admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitRefusal {
    /// The tenant is not configured and no default quota exists (HTTP 403).
    UnknownTenant,
    /// The tenant is at its `max_in_flight` quota (HTTP 429).
    QuotaExceeded,
    /// The global queued-job capacity is exhausted (HTTP 503).
    QueueFull,
}

/// Per-tenant scheduling state.
#[derive(Debug)]
struct TenantState {
    quota: TenantQuota,
    /// Stride-scheduler pass: the tenant with the smallest pass is served
    /// next; each scheduled request advances it by `quota.stride()`.
    pass: u64,
    /// Admitted-but-unfinished jobs (queued here plus dispatched).
    in_flight: usize,
    /// Per-model FIFO queues (model-uniform batches pop from one of them).
    queues: BTreeMap<String, VecDeque<TaggedJob>>,
    queued: usize,
}

impl TenantState {
    fn new(quota: TenantQuota) -> Self {
        TenantState {
            quota,
            pass: 0,
            in_flight: 0,
            queues: BTreeMap::new(),
            queued: 0,
        }
    }
}

/// Weighted-fair, model-uniform continuous batcher over per-tenant queues.
///
/// Pure state machine like [`crate::batcher::ContinuousBatcher`]: time
/// enters only through `now` arguments, so the identical schedule runs
/// under the real poller and the deterministic simulated one.
#[derive(Debug)]
pub struct FairBatcher {
    policy: BatchingPolicy,
    capacity: usize,
    default_quota: Option<TenantQuota>,
    tenants: BTreeMap<String, TenantState>,
    /// Global virtual time: the pass of the most recently scheduled
    /// request. A tenant going from idle to active restarts at this value
    /// (not its stale old pass), so sleeping does not bank priority and
    /// returning does not let it monopolize the batcher.
    global_pass: u64,
    queued_total: usize,
}

impl FairBatcher {
    /// A batcher flushing under `policy`, holding at most `capacity`
    /// queued jobs globally, with the given per-tenant quotas. Tenants not
    /// listed fall back to `default_quota`; with `None`, unknown tenants
    /// are refused outright.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Config`] for an invalid policy, a zero
    /// capacity, a duplicate tenant name, or any invalid quota.
    pub fn new(
        policy: BatchingPolicy,
        capacity: usize,
        tenants: &[(String, TenantQuota)],
        default_quota: Option<TenantQuota>,
    ) -> Result<Self> {
        policy.validate()?;
        if capacity == 0 {
            return Err(ServeError::Config {
                detail: "fair batcher capacity must be >= 1".to_string(),
            });
        }
        if let Some(q) = &default_quota {
            q.validate()?;
        }
        let mut map = BTreeMap::new();
        for (name, quota) in tenants {
            quota.validate()?;
            if name.is_empty() {
                return Err(ServeError::Config {
                    detail: "tenant name must be non-empty".to_string(),
                });
            }
            if map.insert(name.clone(), TenantState::new(*quota)).is_some() {
                return Err(ServeError::Config {
                    detail: format!("tenant {name:?} configured twice"),
                });
            }
        }
        Ok(FairBatcher {
            policy,
            capacity,
            default_quota,
            tenants: map,
            global_pass: 0,
            queued_total: 0,
        })
    }

    /// The flush policy.
    pub fn policy(&self) -> BatchingPolicy {
        self.policy
    }

    /// Jobs queued across every tenant.
    pub fn queued_total(&self) -> usize {
        self.queued_total
    }

    /// Whether no job is queued anywhere.
    pub fn is_empty(&self) -> bool {
        self.queued_total == 0
    }

    /// The quota governing `tenant` (configured or default).
    pub fn quota_of(&self, tenant: &str) -> Option<TenantQuota> {
        self.tenants
            .get(tenant)
            .map(|t| t.quota)
            .or(self.default_quota)
    }

    /// A tenant's admitted-but-unfinished job count.
    pub fn in_flight_of(&self, tenant: &str) -> usize {
        self.tenants.get(tenant).map_or(0, |t| t.in_flight)
    }

    /// Admits `job` into its tenant's queue, or hands it back with the
    /// refusal reason (the caller maps it to an HTTP status and records
    /// the rejection).
    ///
    /// # Errors
    ///
    /// The refused job and why: unknown tenant, per-tenant quota, or
    /// global capacity.
    pub fn admit(&mut self, job: TaggedJob) -> std::result::Result<(), (TaggedJob, AdmitRefusal)> {
        if !self.tenants.contains_key(&job.tenant) {
            let Some(default) = self.default_quota else {
                return Err((job, AdmitRefusal::UnknownTenant));
            };
            self.tenants
                .insert(job.tenant.clone(), TenantState::new(default));
        }
        let global_pass = self.global_pass;
        let Some(t) = self.tenants.get_mut(&job.tenant) else {
            return Err((job, AdmitRefusal::UnknownTenant));
        };
        if t.in_flight >= t.quota.max_in_flight {
            return Err((job, AdmitRefusal::QuotaExceeded));
        }
        if self.queued_total >= self.capacity {
            return Err((job, AdmitRefusal::QueueFull));
        }
        if t.queued == 0 {
            // Idle → active: rejoin at the current virtual time.
            t.pass = t.pass.max(global_pass);
        }
        t.in_flight += 1;
        t.queued += 1;
        self.queued_total += 1;
        t.queues
            .entry(job.model.clone())
            .or_default()
            .push_back(job);
        Ok(())
    }

    /// Releases one in-flight slot of `tenant` (its job completed after
    /// dispatch). Queued jobs removed by [`FairBatcher::shed_expired`]
    /// release their slot there.
    pub fn release(&mut self, tenant: &str) {
        if let Some(t) = self.tenants.get_mut(tenant) {
            t.in_flight = t.in_flight.saturating_sub(1);
        }
    }

    /// Removes and returns every queued job whose deadline has passed at
    /// `now` (their in-flight slots are released here).
    pub fn shed_expired(&mut self, now: f64) -> Vec<TaggedJob> {
        let mut shed = Vec::new();
        for t in self.tenants.values_mut() {
            for q in t.queues.values_mut() {
                q.retain(|j| {
                    if j.request.expired(now) {
                        shed.push(j.clone());
                        false
                    } else {
                        true
                    }
                });
            }
            let remaining: usize = t.queues.values().map(VecDeque::len).sum();
            let dropped = t.queued - remaining;
            t.queued = remaining;
            t.in_flight = t.in_flight.saturating_sub(dropped);
        }
        self.queued_total = self.tenants.values().map(|t| t.queued).sum();
        // Deterministic shed order regardless of tenant-map iteration.
        shed.sort_by_key(|j| j.request.id);
        shed
    }

    /// Absolute time the oldest queued job forces a flush
    /// (`oldest arrival + max_wait_s`); `None` when empty.
    pub fn flush_deadline_s(&self) -> Option<f64> {
        self.oldest_arrival_s().map(|a| a + self.policy.max_wait_s)
    }

    fn oldest_arrival_s(&self) -> Option<f64> {
        let mut oldest: Option<f64> = None;
        for t in self.tenants.values() {
            for q in t.queues.values() {
                if let Some(j) = q.front() {
                    let a = j.request.arrival_s;
                    oldest = Some(oldest.map_or(a, |o: f64| o.min(a)));
                }
            }
        }
        oldest
    }

    /// Earliest finite request deadline among queued jobs.
    pub fn min_deadline_s(&self) -> Option<f64> {
        let mut min: Option<f64> = None;
        for t in self.tenants.values() {
            for q in t.queues.values() {
                for j in q {
                    if j.request.deadline_s.is_finite() {
                        let d = j.request.deadline_s;
                        min = Some(min.map_or(d, |m: f64| m.min(d)));
                    }
                }
            }
        }
        min
    }

    /// Jobs queued for `model` across every tenant.
    pub fn queued_for_model(&self, model: &str) -> usize {
        self.tenants
            .values()
            .map(|t| t.queues.get(model).map_or(0, VecDeque::len))
            .sum()
    }

    /// Whether a batch should flush at `now`: some model could fill a full
    /// batch, or the oldest queued job has waited out the window.
    pub fn ready(&self, now: f64) -> bool {
        if self.queued_total == 0 {
            return false;
        }
        if self.flush_deadline_s().is_some_and(|d| now >= d) {
            return true;
        }
        let mut per_model: BTreeMap<&str, usize> = BTreeMap::new();
        for t in self.tenants.values() {
            for (m, q) in &t.queues {
                *per_model.entry(m.as_str()).or_default() += q.len();
            }
        }
        per_model.values().any(|&n| n >= self.policy.max_batch)
    }

    /// The next tenant in stride order restricted to tenants with queued
    /// jobs for `model` (`None` for any model = unrestricted): smallest
    /// pass, ties on name.
    fn next_tenant(&self, model: Option<&str>) -> Option<(String, f64)> {
        let mut best: Option<(&str, u64, f64)> = None;
        for (name, t) in &self.tenants {
            let front_arrival = match model {
                Some(m) => t.queues.get(m).and_then(VecDeque::front),
                None => t
                    .queues
                    .values()
                    .filter_map(VecDeque::front)
                    .min_by(|a, b| a.request.arrival_s.total_cmp(&b.request.arrival_s)),
            }
            .map(|j| j.request.arrival_s);
            let Some(arrival) = front_arrival else {
                continue;
            };
            // BTreeMap iterates in name order, so strict `<` keeps the
            // lexicographically-first tenant on pass ties.
            if best.is_none_or(|(_, p, _)| t.pass < p) {
                best = Some((name, t.pass, arrival));
            }
        }
        best.map(|(n, _, a)| (n.to_string(), a))
    }

    /// The model the lead (smallest-pass) tenant's oldest job targets —
    /// what the next batch will execute against.
    fn lead_model(&self) -> Option<String> {
        let (lead, _) = self.next_tenant(None)?;
        let t = self.tenants.get(&lead)?;
        t.queues
            .iter()
            .filter_map(|(m, q)| q.front().map(|j| (m, j.request.arrival_s)))
            .min_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(b.0)))
            .map(|(m, _)| m.clone())
    }

    /// Forms the next model-uniform batch in stride order: the lead tenant
    /// defines the model, then up to `max_batch` jobs are popped from the
    /// smallest-pass tenants holding jobs for that model, each pop
    /// charging its tenant one stride. Returns the model name and the
    /// jobs; `None` when nothing is queued.
    pub fn take_batch(&mut self) -> Option<(String, Vec<TaggedJob>)> {
        let model = self.lead_model()?;
        let mut batch = Vec::new();
        while batch.len() < self.policy.max_batch {
            let Some((name, _)) = self.next_tenant(Some(&model)) else {
                break;
            };
            let Some(t) = self.tenants.get_mut(&name) else {
                break;
            };
            let Some(job) = t.queues.get_mut(&model).and_then(VecDeque::pop_front) else {
                break;
            };
            t.queued -= 1;
            self.queued_total -= 1;
            self.global_pass = self.global_pass.max(t.pass);
            t.pass = t.pass.saturating_add(t.quota.stride());
            batch.push(job);
        }
        if batch.is_empty() {
            None
        } else {
            Some((model, batch))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quota(weight: u64, max_in_flight: usize) -> TenantQuota {
        TenantQuota::new(weight, max_in_flight).unwrap()
    }

    fn job(id: u64, tenant: &str, model: &str) -> TaggedJob {
        TaggedJob {
            request: Request {
                id,
                arrival_s: id as f64 * 1e-4,
                deadline_s: f64::INFINITY,
                indices: Vec::new(),
                expected_checksum: 0.0,
            },
            tenant: tenant.to_string(),
            model: model.to_string(),
        }
    }

    fn batcher(capacity: usize, tenants: &[(&str, TenantQuota)]) -> FairBatcher {
        let tenants: Vec<(String, TenantQuota)> =
            tenants.iter().map(|(n, q)| (n.to_string(), *q)).collect();
        FairBatcher::new(
            BatchingPolicy {
                max_batch: 4,
                max_wait_s: 0.004,
            },
            capacity,
            &tenants,
            None,
        )
        .unwrap()
    }

    #[test]
    fn registry_registers_and_rejects_duplicates() {
        let mut reg = ModelRegistry::new();
        assert!(reg.is_empty());
        assert!(reg.register("bad name", dummy_replica()).is_err());
        reg.register("m-a", dummy_replica()).unwrap();
        assert!(reg.register("m-a", dummy_replica()).is_err());
        reg.register("m-b", dummy_replica()).unwrap();
        assert_eq!(reg.names(), vec!["m-a", "m-b"]);
        assert_eq!(reg.len(), 2);
        assert!(reg.get("m-a").is_some());
        assert!(reg.get("nope").is_none());
    }

    fn dummy_replica() -> Arc<ReplicaModel> {
        use pimdl_engine::pipeline::PimDlEngine;
        use pimdl_sim::{LutWorkload, PlatformConfig};
        let mut p = PlatformConfig::upmem();
        p.num_pes = 64;
        let engine = PimDlEngine::new(p);
        let w = LutWorkload::new(8, 8, 16, 32).unwrap();
        Arc::new(ReplicaModel::build(&engine, w, 7).unwrap())
    }

    #[test]
    fn admission_enforces_quota_capacity_and_tenancy() {
        let mut b = batcher(3, &[("a", quota(1, 2))]);
        assert!(b.admit(job(0, "a", "m")).is_ok());
        assert!(b.admit(job(1, "a", "m")).is_ok());
        // Per-tenant in-flight cap before global capacity.
        let (_, r) = b.admit(job(2, "a", "m")).unwrap_err();
        assert_eq!(r, AdmitRefusal::QuotaExceeded);
        // Unknown tenant with no default quota.
        let (_, r) = b.admit(job(3, "x", "m")).unwrap_err();
        assert_eq!(r, AdmitRefusal::UnknownTenant);
        assert_eq!(b.queued_total(), 2);
        assert_eq!(b.in_flight_of("a"), 2);
    }

    #[test]
    fn global_capacity_refuses_across_tenants() {
        let mut b = batcher(2, &[("a", quota(1, 8)), ("b", quota(1, 8))]);
        assert!(b.admit(job(0, "a", "m")).is_ok());
        assert!(b.admit(job(1, "b", "m")).is_ok());
        let (_, r) = b.admit(job(2, "a", "m")).unwrap_err();
        assert_eq!(r, AdmitRefusal::QueueFull);
    }

    #[test]
    fn default_quota_admits_unknown_tenants() {
        let mut b = FairBatcher::new(
            BatchingPolicy {
                max_batch: 4,
                max_wait_s: 0.004,
            },
            8,
            &[],
            Some(quota(1, 1)),
        )
        .unwrap();
        assert!(b.admit(job(0, "anyone", "m")).is_ok());
        let (_, r) = b.admit(job(1, "anyone", "m")).unwrap_err();
        assert_eq!(r, AdmitRefusal::QuotaExceeded);
        b.release("anyone");
        assert!(b.admit(job(2, "anyone", "m")).is_ok());
    }

    #[test]
    fn release_after_dispatch_frees_quota() {
        let mut b = batcher(8, &[("a", quota(1, 1))]);
        assert!(b.admit(job(0, "a", "m")).is_ok());
        let (model, batch) = b.take_batch().unwrap();
        assert_eq!(model, "m");
        assert_eq!(batch.len(), 1);
        // Still in flight (dispatched), so the quota still binds.
        let (_, r) = b.admit(job(1, "a", "m")).unwrap_err();
        assert_eq!(r, AdmitRefusal::QuotaExceeded);
        b.release("a");
        assert!(b.admit(job(2, "a", "m")).is_ok());
    }

    #[test]
    fn stride_schedule_serves_weights_proportionally() {
        // a:3, b:1, both saturated on the same model → stride order gives
        // a three slots for every one of b.
        let mut b = batcher(64, &[("a", quota(3, 64)), ("b", quota(1, 64))]);
        for k in 0..32u64 {
            // 3 a-jobs per b-job of supply so neither side runs dry.
            let tenant = if k % 4 == 3 { "b" } else { "a" };
            b.admit(job(k, tenant, "m")).unwrap();
        }
        let (mut served_a, mut served_b) = (0usize, 0usize);
        for _ in 0..6 {
            let (_, batch) = b.take_batch().unwrap();
            for j in &batch {
                match j.tenant.as_str() {
                    "a" => served_a += 1,
                    _ => served_b += 1,
                }
            }
        }
        assert_eq!(served_a + served_b, 24);
        assert_eq!(
            served_a, 18,
            "weight-3 tenant gets 3/4 of slots (a {served_a} vs b {served_b})"
        );
    }

    #[test]
    fn batches_are_model_uniform() {
        let mut b = batcher(64, &[("a", quota(1, 64)), ("b", quota(1, 64))]);
        b.admit(job(0, "a", "m1")).unwrap();
        b.admit(job(1, "b", "m2")).unwrap();
        b.admit(job(2, "a", "m1")).unwrap();
        b.admit(job(3, "b", "m2")).unwrap();
        let mut seen = Vec::new();
        while let Some((model, batch)) = b.take_batch() {
            assert!(batch.iter().all(|j| j.model == model));
            seen.push((model, batch.len()));
        }
        assert_eq!(seen.len(), 2, "two model-uniform batches: {seen:?}");
        assert!(b.is_empty());
    }

    #[test]
    fn idle_tenant_rejoins_at_current_virtual_time() {
        // b sleeps while a is served heavily; when b returns it must not
        // monopolize the batcher on its stale low pass for long: after its
        // first catch-up slot the schedule returns to stride order.
        let mut b = batcher(64, &[("a", quota(1, 64)), ("b", quota(1, 64))]);
        for id in 0..8 {
            b.admit(job(id, "a", "m")).unwrap();
        }
        let mut drained = 0;
        while let Some((_, batch)) = b.take_batch() {
            drained += batch.len();
        }
        assert_eq!(drained, 8);
        // b rejoins; both offer 4 jobs.
        for id in 8..12 {
            b.admit(job(id, "b", "m")).unwrap();
        }
        for id in 12..16 {
            b.admit(job(id, "a", "m")).unwrap();
        }
        let (_, first) = b.take_batch().unwrap();
        let b_count = first.iter().filter(|j| j.tenant == "b").count();
        assert_eq!(
            b_count, 2,
            "equal weights alternate after rejoin: {first:?}"
        );
    }

    #[test]
    fn shed_expired_releases_quota_slots() {
        let mut b = batcher(8, &[("a", quota(1, 2))]);
        let mut j0 = job(0, "a", "m");
        j0.request.deadline_s = 1.0;
        let mut j1 = job(1, "a", "m");
        j1.request.deadline_s = 5.0;
        b.admit(j0).unwrap();
        b.admit(j1).unwrap();
        assert_eq!(b.min_deadline_s(), Some(1.0));
        let shed = b.shed_expired(2.0);
        assert_eq!(shed.len(), 1);
        assert_eq!(shed[0].request.id, 0);
        assert_eq!(b.queued_total(), 1);
        assert_eq!(b.in_flight_of("a"), 1);
        assert!(b.admit(job(2, "a", "m")).is_ok());
    }

    #[test]
    fn flush_readiness_follows_policy() {
        let mut b = batcher(64, &[("a", quota(1, 64))]);
        assert!(!b.ready(0.0));
        let mut j = job(0, "a", "m");
        j.request.arrival_s = 1.0;
        b.admit(j).unwrap();
        assert_eq!(b.flush_deadline_s(), Some(1.004));
        assert!(!b.ready(1.003), "partial batch inside the window");
        assert!(b.ready(1.004), "window expiry flushes");
        for id in 1..4 {
            let mut j = job(id, "a", "m");
            j.request.arrival_s = 1.0;
            b.admit(j).unwrap();
        }
        assert!(b.ready(1.0), "full batch flushes immediately");
        assert_eq!(b.queued_for_model("m"), 4);
    }

    #[test]
    fn rejoin_clamp_only_raises_the_pass() {
        // The idle→active clamp is `pass = pass.max(global_pass)`: it may
        // lift a stale low pass up to the current virtual time, but must
        // never *lower* a pass. After `a` is served 8 times alone its pass
        // sits one stride *ahead* of `global_pass` (global is advanced to
        // the scheduled tenant's pass before the stride is charged). If
        // rejoining overwrote the pass with `global_pass`, `a` would tie
        // with a fresh tenant and win on the name tiebreak; keeping the
        // higher pass means the fresh tenant leads.
        let mut b = batcher(64, &[("a", quota(1, 64)), ("b", quota(1, 64))]);
        for id in 0..8 {
            b.admit(job(id, "a", "m")).unwrap();
        }
        while b.take_batch().is_some() {}
        assert!(b.is_empty());
        // b joins at the current virtual time, then a rejoins from idle.
        b.admit(job(8, "b", "m")).unwrap();
        for id in 9..12 {
            b.admit(job(id, "b", "m")).unwrap();
        }
        for id in 12..16 {
            b.admit(job(id, "a", "m")).unwrap();
        }
        let (_, batch) = b.take_batch().unwrap();
        assert_eq!(
            batch[0].tenant, "b",
            "a's retained (higher) pass must not be clamped down: {batch:?}"
        );
        let b_count = batch.iter().filter(|j| j.tenant == "b").count();
        assert_eq!(b_count, 2, "stride order resumes after the lead: {batch:?}");
    }

    #[test]
    fn model_name_validation_edge_cases() {
        let mut reg = ModelRegistry::new();
        // Empty and over-long names are refused.
        assert!(reg.register("", dummy_replica()).is_err());
        let max = "m".repeat(64);
        reg.register(&max, dummy_replica()).unwrap();
        let over = "m".repeat(65);
        assert!(reg.register(&over, dummy_replica()).is_err());
        // Non-ASCII is refused even when char count fits: names appear in
        // request paths and the byte-level check must not pass multi-byte
        // letters.
        assert!(reg.register("caf\u{e9}", dummy_replica()).is_err());
        assert!(reg.register("\u{6a21}\u{578b}", dummy_replica()).is_err());
        // The full permitted alphabet round-trips.
        reg.register("A-z0.9_ok", dummy_replica()).unwrap();
        assert!(reg.get("A-z0.9_ok").is_some());
        // Whitespace and path separators are refused.
        assert!(reg.register("a b", dummy_replica()).is_err());
        assert!(reg.register("a/b", dummy_replica()).is_err());
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn degenerate_configs_are_rejected() {
        let policy = BatchingPolicy {
            max_batch: 4,
            max_wait_s: 0.004,
        };
        assert!(FairBatcher::new(policy, 0, &[], None).is_err());
        assert!(FairBatcher::new(policy, 8, &[("a".to_string(), quota(1, 1))], None).is_ok());
        let dup = vec![
            ("a".to_string(), quota(1, 1)),
            ("a".to_string(), quota(2, 2)),
        ];
        assert!(FairBatcher::new(policy, 8, &dup, None).is_err());
        let bad = vec![(
            "a".to_string(),
            TenantQuota {
                weight: 0,
                max_in_flight: 1,
            },
        )];
        assert!(FairBatcher::new(policy, 8, &bad, None).is_err());
    }
}
