//! Shard supervisor for the distributed fabric (DESIGN.md §13): table
//! placement by consistent hashing, the per-shard/per-table state
//! machine, and dead-shard re-replication.
//!
//! The supervisor owns no sockets — the fabric loop
//! ([`crate::fabric::FabricServerLoop`]) feeds it protocol events
//! (`Hello`, `TableReady`, EOF, timeouts) and acts on its verdicts (which
//! shard to load a table on, where a query routes, which shards are
//! overdue). Keeping it transport-free means the same state machine runs
//! under the deterministic [`crate::SimPoller`] tests and the real epoll
//! reactor, and can be unit-tested without either.
//!
//! ## Placement
//!
//! Each non-dead shard contributes `vnodes` points to a hash ring
//! (FNV-1a, 64-bit); a table lives on the shard owning the first ring
//! point at or after the table's own hash. When a shard dies its points
//! leave the ring, so every table it held moves to its consistent-hash
//! successor — and only those tables move.
//!
//! ## States
//!
//! ```text
//! shard:  Connecting --Hello--> Ready --EOF/timeout--> Dead
//! table:  Loading(shard) --TableReady--> Ready(shard)
//!                        --owner died--> Loading(successor) | Lost
//! ```
//!
//! A `Lost` table (no live shard remains) is terminal until a new fabric
//! is built; the loop error-responds its queued queries instead of
//! dropping them.

use std::collections::BTreeMap;

use crate::error::ServeError;
use crate::reactor::Token;
use crate::Result;

/// 64-bit FNV-1a over `bytes`, pushed through a MurmurHash3-style
/// avalanche finalizer. Raw FNV-1a leaves the *high* bits of similar
/// short keys nearly identical (`table-0` … `table-9` all share their top
/// 16 bits), which would cluster every ring lookup onto one arc; the
/// finalizer spreads every input bit across the whole word. Deterministic
/// across runs and platforms — placement must be reproducible.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    h ^ (h >> 33)
}

/// Consistent-hash ring over shard ids.
#[derive(Debug, Clone, Default)]
pub struct HashRing {
    points: BTreeMap<u64, u32>,
    vnodes: usize,
}

impl HashRing {
    /// An empty ring with `vnodes` points per shard.
    pub fn new(vnodes: usize) -> Self {
        HashRing {
            points: BTreeMap::new(),
            vnodes,
        }
    }

    /// Adds `vnodes` points for a shard. Colliding hashes keep the
    /// smaller shard id (deterministic, and vanishingly rare at 64 bits).
    pub fn add_shard(&mut self, shard: u32) {
        for v in 0..self.vnodes {
            let key = fnv1a(format!("shard/{shard}/{v}").as_bytes());
            let entry = self.points.entry(key).or_insert(shard);
            *entry = (*entry).min(shard);
        }
    }

    /// Removes a shard's points (its tables move to their successors).
    pub fn remove_shard(&mut self, shard: u32) {
        self.points.retain(|_, s| *s != shard);
    }

    /// The shard owning `table`: the first ring point at or after the
    /// table's hash, wrapping. `None` on an empty ring.
    pub fn owner_of(&self, table: &str) -> Option<u32> {
        let h = fnv1a(table.as_bytes());
        self.points
            .range(h..)
            .next()
            .or_else(|| self.points.iter().next())
            .map(|(_, &s)| s)
    }

    /// Number of distinct shards on the ring.
    pub fn shards(&self) -> usize {
        let mut ids: Vec<u32> = self.points.values().copied().collect();
        ids.sort_unstable();
        ids.dedup();
        ids.len()
    }
}

/// Lifecycle of one worker process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardState {
    /// Spawned (or expected) but no `Hello` yet.
    Connecting,
    /// Hello'd; its connection token is live.
    Ready,
    /// EOF or timeout; its ring points are gone.
    Dead,
}

/// Residency of one LUT table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TableState {
    /// Assigned to a shard; `LoadTable` sent or pending its `Hello`.
    Loading(u32),
    /// `TableReady` received; queries route to this shard.
    Ready(u32),
    /// No live shard remains to hold it.
    Lost,
}

#[derive(Debug)]
struct ShardInfo {
    state: ShardState,
    token: Option<Token>,
    /// Absolute deadline for the next expected protocol step (`Hello`
    /// while `Connecting`, `TableReady` while tables load); `INFINITY`
    /// when nothing is owed.
    deadline_s: f64,
}

#[derive(Debug)]
struct TableInfo {
    seed: u64,
    state: TableState,
}

/// A re-replication order the fabric loop must act on: send
/// `LoadTable { table, seed }` to `shard` (now, if it is `Ready`, or on
/// its `Hello`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadOrder {
    /// Table to (re-)replicate.
    pub table: String,
    /// Its deterministic build seed.
    pub seed: u64,
    /// Destination shard.
    pub shard: u32,
}

/// The fabric's placement and liveness authority.
#[derive(Debug)]
pub struct Supervisor {
    ring: HashRing,
    shards: BTreeMap<u32, ShardInfo>,
    tables: BTreeMap<String, TableInfo>,
    timeout_s: f64,
}

impl Supervisor {
    /// A supervisor expecting `num_shards` workers and placing `tables`
    /// (name, build-seed pairs) over them. Every shard starts
    /// `Connecting` with a `Hello` deadline of `now + timeout_s`.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Config`] for zero shards/vnodes, a
    /// non-finite or non-positive timeout, empty table sets, or duplicate
    /// table names.
    pub fn new(
        num_shards: usize,
        vnodes: usize,
        timeout_s: f64,
        now: f64,
        tables: &[(String, u64)],
    ) -> Result<Self> {
        if num_shards == 0 || vnodes == 0 {
            return Err(ServeError::Config {
                detail: format!("supervisor needs >= 1 shard and vnode, got {num_shards}/{vnodes}"),
            });
        }
        if !timeout_s.is_finite() || timeout_s <= 0.0 {
            return Err(ServeError::Config {
                detail: format!("supervisor timeout must be finite and > 0, got {timeout_s}"),
            });
        }
        if tables.is_empty() {
            return Err(ServeError::Config {
                detail: "supervisor needs at least one table".to_string(),
            });
        }
        let mut ring = HashRing::new(vnodes);
        let mut shards = BTreeMap::new();
        for id in 0..num_shards as u32 {
            ring.add_shard(id);
            shards.insert(
                id,
                ShardInfo {
                    state: ShardState::Connecting,
                    token: None,
                    deadline_s: now + timeout_s,
                },
            );
        }
        let mut table_map = BTreeMap::new();
        for (name, seed) in tables {
            let owner = ring.owner_of(name).ok_or_else(|| ServeError::Config {
                detail: "empty hash ring".to_string(),
            })?;
            let prev = table_map.insert(
                name.clone(),
                TableInfo {
                    seed: *seed,
                    state: TableState::Loading(owner),
                },
            );
            if prev.is_some() {
                return Err(ServeError::Config {
                    detail: format!("duplicate fabric table {name:?}"),
                });
            }
        }
        Ok(Supervisor {
            ring,
            shards,
            tables: table_map,
            timeout_s,
        })
    }

    /// A worker's `Hello`: binds its connection token and returns the
    /// load orders for every table currently assigned to it.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Io`] for an unknown shard id, a duplicate
    /// `Hello`, or a `Hello` from a shard already declared dead.
    pub fn on_hello(&mut self, shard: u32, token: Token, now: f64) -> Result<Vec<LoadOrder>> {
        let info = self.shards.get_mut(&shard).ok_or_else(|| ServeError::Io {
            detail: format!("Hello from unknown shard {shard}"),
        })?;
        match info.state {
            ShardState::Connecting => {}
            ShardState::Ready => {
                return Err(ServeError::Io {
                    detail: format!("duplicate Hello from shard {shard}"),
                });
            }
            ShardState::Dead => {
                return Err(ServeError::Io {
                    detail: format!("Hello from dead shard {shard}"),
                });
            }
        }
        info.state = ShardState::Ready;
        info.token = Some(token);
        let orders = self.orders_for(shard);
        self.rearm_deadline(shard, now);
        Ok(orders)
    }

    /// A worker's `TableReady`: the table becomes routable on `shard`.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Io`] if the table is unknown or not loading
    /// on that shard (a stale ready from a previous owner is a protocol
    /// violation — the loop treats it as a poisoned shard stream).
    pub fn on_table_ready(&mut self, shard: u32, table: &str, now: f64) -> Result<()> {
        let info = self.tables.get_mut(table).ok_or_else(|| ServeError::Io {
            detail: format!("TableReady for unknown table {table:?}"),
        })?;
        if info.state != TableState::Loading(shard) {
            return Err(ServeError::Io {
                detail: format!(
                    "TableReady for {table:?} from shard {shard} but table is {:?}",
                    info.state
                ),
            });
        }
        info.state = TableState::Ready(shard);
        self.rearm_deadline(shard, now);
        Ok(())
    }

    /// Declares a shard dead (EOF or deadline): its ring points leave,
    /// and every table it held or was loading is re-placed on its
    /// consistent-hash successor. Returns the load orders for successors
    /// that are already `Ready` — orders for still-`Connecting`
    /// successors are delivered by their own `on_hello`. Tables with no
    /// live shard left become [`TableState::Lost`].
    pub fn mark_dead(&mut self, shard: u32, now: f64) -> Vec<LoadOrder> {
        let Some(info) = self.shards.get_mut(&shard) else {
            return Vec::new();
        };
        if info.state == ShardState::Dead {
            return Vec::new();
        }
        info.state = ShardState::Dead;
        info.token = None;
        info.deadline_s = f64::INFINITY;
        self.ring.remove_shard(shard);

        let mut orders = Vec::new();
        let names: Vec<String> = self.tables.keys().cloned().collect();
        for name in names {
            let Some(t) = self.tables.get(&name) else {
                continue;
            };
            let held = matches!(
                t.state,
                TableState::Loading(s) | TableState::Ready(s) if s == shard
            );
            if !held {
                continue;
            }
            let seed = t.seed;
            match self.ring.owner_of(&name) {
                Some(succ) => {
                    if let Some(t) = self.tables.get_mut(&name) {
                        t.state = TableState::Loading(succ);
                    }
                    if self.shards.get(&succ).map(|s| s.state) == Some(ShardState::Ready) {
                        orders.push(LoadOrder {
                            table: name.clone(),
                            seed,
                            shard: succ,
                        });
                        self.rearm_deadline(succ, now);
                    }
                }
                None => {
                    if let Some(t) = self.tables.get_mut(&name) {
                        t.state = TableState::Lost;
                    }
                }
            }
        }
        orders
    }

    /// Shards whose protocol deadline has passed at `now` (the loop marks
    /// them dead).
    pub fn expired(&self, now: f64) -> Vec<u32> {
        self.shards
            .iter()
            .filter(|(_, s)| s.state != ShardState::Dead && now > s.deadline_s)
            .map(|(&id, _)| id)
            .collect()
    }

    /// The earliest pending protocol deadline (for the loop's wait
    /// timeout); `None` when nothing is owed.
    pub fn next_deadline_s(&self) -> Option<f64> {
        let d = self
            .shards
            .values()
            .filter(|s| s.state != ShardState::Dead)
            .map(|s| s.deadline_s)
            .fold(f64::INFINITY, f64::min);
        d.is_finite().then_some(d)
    }

    /// Where queries for `table` route right now: the owning shard's
    /// connection token, only while the table is `Ready` on a `Ready`
    /// shard.
    pub fn route(&self, table: &str) -> Option<(u32, Token)> {
        let t = self.tables.get(table)?;
        let TableState::Ready(shard) = t.state else {
            return None;
        };
        let s = self.shards.get(&shard)?;
        if s.state != ShardState::Ready {
            return None;
        }
        Some((shard, s.token?))
    }

    /// The shard a connection token belongs to, if any.
    pub fn shard_by_token(&self, token: Token) -> Option<u32> {
        self.shards
            .iter()
            .find(|(_, s)| s.token == Some(token))
            .map(|(&id, _)| id)
    }

    /// A shard's live connection token.
    pub fn token_of(&self, shard: u32) -> Option<Token> {
        self.shards.get(&shard).and_then(|s| s.token)
    }

    /// A shard's lifecycle state (`None` for an unknown id).
    pub fn shard_state(&self, shard: u32) -> Option<ShardState> {
        self.shards.get(&shard).map(|s| s.state)
    }

    /// A table's residency state (`None` for an unknown name).
    pub fn table_state(&self, table: &str) -> Option<TableState> {
        self.tables.get(table).map(|t| t.state)
    }

    /// A table's deterministic build seed.
    pub fn seed_of(&self, table: &str) -> Option<u64> {
        self.tables.get(table).map(|t| t.seed)
    }

    /// Registered table names, sorted.
    pub fn table_names(&self) -> Vec<String> {
        self.tables.keys().cloned().collect()
    }

    /// Live (`Ready`) shard connection tokens, in shard-id order.
    pub fn live_tokens(&self) -> Vec<Token> {
        self.shards
            .values()
            .filter(|s| s.state == ShardState::Ready)
            .filter_map(|s| s.token)
            .collect()
    }

    /// Whether every table is routable (`Ready` on a live shard).
    pub fn all_tables_ready(&self) -> bool {
        self.tables.keys().all(|name| self.route(name).is_some())
    }

    /// Whether any table is terminally lost.
    pub fn any_table_lost(&self) -> bool {
        self.tables.values().any(|t| t.state == TableState::Lost)
    }

    /// Load orders owed to `shard` right now (tables assigned to it and
    /// still loading).
    fn orders_for(&self, shard: u32) -> Vec<LoadOrder> {
        self.tables
            .iter()
            .filter(|(_, t)| t.state == TableState::Loading(shard))
            .map(|(name, t)| LoadOrder {
                table: name.clone(),
                seed: t.seed,
                shard,
            })
            .collect()
    }

    /// Re-arms a shard's protocol deadline: `now + timeout` while it owes
    /// a `Hello` or any `TableReady`, else infinity.
    fn rearm_deadline(&mut self, shard: u32, now: f64) {
        let owes = match self.shards.get(&shard).map(|s| s.state) {
            Some(ShardState::Connecting) => true,
            Some(ShardState::Ready) => self
                .tables
                .values()
                .any(|t| t.state == TableState::Loading(shard)),
            _ => false,
        };
        if let Some(s) = self.shards.get_mut(&shard) {
            s.deadline_s = if owes {
                now + self.timeout_s
            } else {
                f64::INFINITY
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tables(names: &[&str]) -> Vec<(String, u64)> {
        names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.to_string(), 100 + i as u64))
            .collect()
    }

    #[test]
    fn ring_is_deterministic_and_moves_only_the_dead_shards_tables() {
        let names: Vec<String> = (0..40).map(|i| format!("table-{i}")).collect();
        let mut a = HashRing::new(32);
        let mut b = HashRing::new(32);
        for s in 0..4 {
            a.add_shard(s);
            b.add_shard(s);
        }
        let before: Vec<u32> = names.iter().map(|n| a.owner_of(n).unwrap()).collect();
        let again: Vec<u32> = names.iter().map(|n| b.owner_of(n).unwrap()).collect();
        assert_eq!(before, again, "placement must be deterministic");
        // Every shard owns something at 40 tables / 4 shards / 32 vnodes.
        let mut owners = before.clone();
        owners.sort_unstable();
        owners.dedup();
        assert_eq!(owners.len(), 4, "placement must spread: {before:?}");

        a.remove_shard(2);
        for (name, &old) in names.iter().zip(&before) {
            let new = a.owner_of(name).unwrap();
            if old != 2 {
                assert_eq!(new, old, "{name} moved although its shard lives");
            } else {
                assert_ne!(new, 2, "{name} still on the dead shard");
            }
        }
        assert_eq!(a.shards(), 3);
    }

    #[test]
    fn hello_returns_owed_loads_and_table_ready_routes() {
        let mut sup = Supervisor::new(2, 32, 5.0, 0.0, &tables(&["t-a", "t-b", "t-c"])).unwrap();
        assert!(sup.next_deadline_s().is_some());
        assert!(!sup.all_tables_ready());

        let mut all_orders = Vec::new();
        for shard in 0..2u32 {
            let orders = sup.on_hello(shard, Token(100 + shard as u64), 1.0).unwrap();
            for o in &orders {
                assert_eq!(o.shard, shard);
            }
            all_orders.extend(orders);
        }
        assert_eq!(all_orders.len(), 3, "every table ordered exactly once");
        assert!(sup.on_hello(0, Token(100), 1.0).is_err(), "duplicate Hello");
        assert!(sup.on_hello(9, Token(9), 1.0).is_err(), "unknown shard");

        for o in &all_orders {
            assert!(sup.route(&o.table).is_none(), "loading tables don't route");
            sup.on_table_ready(o.shard, &o.table, 2.0).unwrap();
            let (s, tok) = sup.route(&o.table).unwrap();
            assert_eq!(s, o.shard);
            assert_eq!(tok, Token(100 + o.shard as u64));
        }
        assert!(sup.all_tables_ready());
        assert_eq!(sup.next_deadline_s(), None, "nothing owed once ready");
        assert!(sup.on_table_ready(0, "ghost", 2.0).is_err());
    }

    #[test]
    fn dead_shard_replicates_to_the_successor_and_orphans_go_lost() {
        let names = ["t-a", "t-b", "t-c", "t-d", "t-e", "t-f"];
        let mut sup = Supervisor::new(2, 32, 5.0, 0.0, &tables(&names)).unwrap();
        for shard in 0..2u32 {
            let orders = sup.on_hello(shard, Token(100 + shard as u64), 1.0).unwrap();
            for o in orders {
                sup.on_table_ready(o.shard, &o.table, 1.5).unwrap();
            }
        }
        // Precompute the expected successor placement: the ring minus
        // shard 0 (everything must land on shard 1).
        let dead: Vec<String> = names
            .iter()
            .filter(|n| matches!(sup.table_state(n), Some(TableState::Ready(0))))
            .map(|n| n.to_string())
            .collect();
        assert!(!dead.is_empty(), "shard 0 must own something");

        let orders = sup.mark_dead(0, 2.0);
        assert_eq!(sup.shard_state(0), Some(ShardState::Dead));
        let ordered: Vec<String> = orders.iter().map(|o| o.table.clone()).collect();
        for name in &dead {
            assert!(ordered.contains(name), "{name} not re-ordered: {ordered:?}");
            assert_eq!(sup.table_state(name), Some(TableState::Loading(1)));
            assert!(sup.route(name).is_none(), "unrouteable while reloading");
        }
        for o in &orders {
            assert_eq!(o.shard, 1, "successor must be the surviving shard");
            assert_eq!(sup.seed_of(&o.table), Some(o.seed), "seed preserved");
            sup.on_table_ready(1, &o.table, 3.0).unwrap();
        }
        assert!(sup.all_tables_ready(), "all tables re-replicated");
        assert!(sup.mark_dead(0, 4.0).is_empty(), "idempotent");

        // Killing the last shard strands every table.
        let orders = sup.mark_dead(1, 5.0);
        assert!(orders.is_empty());
        assert!(sup.any_table_lost());
        for name in names {
            assert_eq!(sup.table_state(name), Some(TableState::Lost));
        }
    }

    #[test]
    fn timeouts_expire_silent_shards() {
        let mut sup = Supervisor::new(2, 8, 5.0, 0.0, &tables(&["t-a"])).unwrap();
        assert!(sup.expired(4.9).is_empty());
        assert_eq!(sup.expired(5.1), vec![0, 1], "both owe a Hello");
        // Shard 0 hello's; its deadline re-arms only if it owes loads.
        let orders = sup.on_hello(0, Token(50), 1.0).unwrap();
        let expired = sup.expired(5.1);
        assert!(!expired.contains(&0) || !orders.is_empty());
        assert!(expired.contains(&1), "silent shard 1 still expired");
        for o in orders {
            sup.on_table_ready(0, &o.table, 2.0).unwrap();
        }
        sup.mark_dead(1, 5.2);
        assert!(sup.expired(1e9).is_empty(), "nothing owed, nothing expires");
    }

    #[test]
    fn degenerate_supervisors_are_rejected() {
        assert!(Supervisor::new(0, 8, 5.0, 0.0, &tables(&["t"])).is_err());
        assert!(Supervisor::new(2, 0, 5.0, 0.0, &tables(&["t"])).is_err());
        assert!(Supervisor::new(2, 8, 0.0, 0.0, &tables(&["t"])).is_err());
        assert!(Supervisor::new(2, 8, f64::NAN, 0.0, &tables(&["t"])).is_err());
        assert!(Supervisor::new(2, 8, 5.0, 0.0, &[]).is_err());
        let dup = vec![("t".to_string(), 1), ("t".to_string(), 2)];
        assert!(Supervisor::new(2, 8, 5.0, 0.0, &dup).is_err());
    }
}
