//! Line-delimited wire protocol for the serving front end.
//!
//! One request / response per `\n`-terminated line, ASCII only, so the
//! protocol is inspectable with `nc` and trivially scriptable in the
//! deterministic tests:
//!
//! ```text
//! client → server:  Q <tag> <i1>,<i2>,...,<ik> [table]\n
//! server → client:  R <tag> ok|bad <checksum-bits-hex>\n
//!                   E <tag> rejected|deadline|invalid|shutdown\n
//! ```
//!
//! `<tag>` is an opaque client-chosen identifier echoed back verbatim, so
//! clients can pipeline. The checksum is the f64 host-reference checksum's
//! IEEE-754 bit pattern in hex — exact, no float formatting ambiguity.
//! The optional trailing `[table]` names the LUT table the query targets
//! (the shard-fabric front end routes on it, DESIGN.md §13); queries
//! without it go to the server's default table.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};

use crate::error::ServeError;
use crate::Result;

/// Longest accepted line in bytes (a flood-control guard; a batch-32 query
/// of 5-digit indices is under 256 bytes).
pub const MAX_LINE_BYTES: usize = 64 * 1024;

/// Why the server refused to answer a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// The admission queue was full.
    Rejected,
    /// The request's deadline expired before service.
    Deadline,
    /// The query line failed to parse.
    Invalid,
    /// The server is draining and no longer takes queries.
    Shutdown,
}

impl ErrorKind {
    fn as_str(self) -> &'static str {
        match self {
            ErrorKind::Rejected => "rejected",
            ErrorKind::Deadline => "deadline",
            ErrorKind::Invalid => "invalid",
            ErrorKind::Shutdown => "shutdown",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "rejected" => ErrorKind::Rejected,
            "deadline" => ErrorKind::Deadline,
            "invalid" => ErrorKind::Invalid,
            "shutdown" => ErrorKind::Shutdown,
            _ => return None,
        })
    }
}

/// A parsed server → client line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServerMsg {
    /// A completed query (`R` line).
    Result {
        /// The client's tag, echoed.
        tag: String,
        /// Whether the PIM result matched the host reference checksum.
        correct: bool,
        /// IEEE-754 bits of the checksum the server computed.
        checksum_bits: u64,
    },
    /// A refused query (`E` line).
    Error {
        /// The client's tag, echoed.
        tag: String,
        /// Refusal reason.
        kind: ErrorKind,
    },
}

/// A parsed client → server query line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Query {
    /// Opaque client identifier, echoed in the response.
    pub tag: String,
    /// LUT row indices to execute.
    pub indices: Vec<u16>,
    /// Target LUT table (fabric routing); `None` means the default table.
    pub table: Option<String>,
}

fn valid_tag(tag: &str) -> bool {
    !tag.is_empty()
        && tag.len() <= 64
        && tag
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_' || b == b'.')
}

/// Encodes a query line (includes the trailing `\n`, ready to write).
pub fn encode_query(tag: &str, indices: &[u16]) -> Vec<u8> {
    encode_query_for(tag, indices, None)
}

/// Encodes a query line targeting a named table (fabric routing); `None`
/// produces the plain three-field form.
pub fn encode_query_for(tag: &str, indices: &[u16], table: Option<&str>) -> Vec<u8> {
    let idx = indices
        .iter()
        .map(|i| i.to_string())
        .collect::<Vec<_>>()
        .join(",");
    match table {
        Some(t) => format!("Q {tag} {idx} {t}\n").into_bytes(),
        None => format!("Q {tag} {idx}\n").into_bytes(),
    }
}

/// Parses a `Q` line (already stripped of its newline).
///
/// # Errors
///
/// Returns [`ServeError::Io`] on malformed syntax, a bad tag, or empty /
/// unparsable indices.
pub fn parse_query(line: &[u8]) -> Result<Query> {
    let text = std::str::from_utf8(line).map_err(|_| ServeError::Io {
        detail: "query line is not UTF-8".into(),
    })?;
    let mut parts = text.splitn(4, ' ');
    let (kind, tag, rest) = (parts.next(), parts.next(), parts.next());
    let (Some("Q"), Some(tag), Some(rest)) = (kind, tag, rest) else {
        return Err(ServeError::Io {
            detail: format!("malformed query line: {text:?}"),
        });
    };
    if !valid_tag(tag) {
        return Err(ServeError::Io {
            detail: format!("invalid query tag: {tag:?}"),
        });
    }
    let table = match parts.next() {
        // Table names share the tag charset (they also travel in fabric
        // frames and metrics labels).
        Some(t) if valid_tag(t) => Some(t.to_string()),
        Some(t) => {
            return Err(ServeError::Io {
                detail: format!("invalid table name in query {tag}: {t:?}"),
            });
        }
        None => None,
    };
    let indices: Vec<u16> = rest
        .split(',')
        .map(|s| s.trim().parse::<u16>())
        .collect::<std::result::Result<_, _>>()
        .map_err(|_| ServeError::Io {
            detail: format!("unparsable indices in query {tag}: {rest:?}"),
        })?;
    if indices.is_empty() {
        return Err(ServeError::Io {
            detail: format!("query {tag} has no indices"),
        });
    }
    Ok(Query {
        tag: tag.to_string(),
        indices,
        table,
    })
}

/// Encodes an `R` result line (includes the `\n`).
pub fn encode_result(tag: &str, correct: bool, checksum_bits: u64) -> Vec<u8> {
    let verdict = if correct { "ok" } else { "bad" };
    format!("R {tag} {verdict} {checksum_bits:016x}\n").into_bytes()
}

/// Encodes an `E` error line (includes the `\n`).
pub fn encode_error(tag: &str, kind: ErrorKind) -> Vec<u8> {
    format!("E {tag} {}\n", kind.as_str()).into_bytes()
}

/// Parses a server → client line (already stripped of its newline).
///
/// # Errors
///
/// Returns [`ServeError::Io`] on malformed lines.
pub fn parse_server_msg(line: &[u8]) -> Result<ServerMsg> {
    let text = std::str::from_utf8(line).map_err(|_| ServeError::Io {
        detail: "server line is not UTF-8".into(),
    })?;
    let fields: Vec<&str> = text.split(' ').collect();
    match fields.as_slice() {
        ["R", tag, verdict, bits] if matches!(*verdict, "ok" | "bad") => {
            let checksum_bits = u64::from_str_radix(bits, 16).map_err(|_| ServeError::Io {
                detail: format!("bad checksum bits in result line: {text:?}"),
            })?;
            Ok(ServerMsg::Result {
                tag: (*tag).to_string(),
                correct: *verdict == "ok",
                checksum_bits,
            })
        }
        ["E", tag, kind] => match ErrorKind::parse(kind) {
            Some(kind) => Ok(ServerMsg::Error {
                tag: (*tag).to_string(),
                kind,
            }),
            None => Err(ServeError::Io {
                detail: format!("unknown error kind in line: {text:?}"),
            }),
        },
        _ => Err(ServeError::Io {
            detail: format!("malformed server line: {text:?}"),
        }),
    }
}

/// Incremental line splitter over a byte stream: push chunks as they
/// arrive, pop complete lines (newline stripped, trailing `\r` trimmed).
#[derive(Debug, Default)]
pub struct LineBuffer {
    buf: Vec<u8>,
    scanned: usize,
}

impl LineBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        LineBuffer::default()
    }

    /// Appends raw bytes from the transport.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Pops the next complete line, if any.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Io`] once the pending partial line exceeds
    /// [`MAX_LINE_BYTES`] (the caller should drop the connection).
    pub fn pop_line(&mut self) -> Result<Option<Vec<u8>>> {
        match self.buf[self.scanned..].iter().position(|&b| b == b'\n') {
            Some(rel) => {
                let pos = self.scanned + rel;
                let mut line: Vec<u8> = self.buf.drain(..=pos).collect();
                self.scanned = 0;
                line.pop(); // the newline
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                Ok(Some(line))
            }
            None => {
                self.scanned = self.buf.len();
                if self.buf.len() > MAX_LINE_BYTES {
                    return Err(ServeError::Io {
                        detail: format!(
                            "line exceeds {MAX_LINE_BYTES} bytes ({} pending)",
                            self.buf.len()
                        ),
                    });
                }
                Ok(None)
            }
        }
    }

    /// Bytes buffered but not yet returned as a line.
    pub fn pending(&self) -> usize {
        self.buf.len()
    }
}

/// A minimal blocking client for the line protocol, used by the example
/// and the loopback tests.
#[derive(Debug)]
pub struct LineClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl LineClient {
    /// Connects to a serving listener.
    ///
    /// # Errors
    ///
    /// Propagates connect / handle-duplication failures.
    pub fn connect(addr: SocketAddr) -> Result<Self> {
        let stream = TcpStream::connect(addr).map_err(ServeError::from_io("connect"))?;
        let writer = stream
            .try_clone()
            .map_err(ServeError::from_io("clone stream"))?;
        Ok(LineClient {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Sends one query line.
    ///
    /// # Errors
    ///
    /// Propagates socket write failures.
    pub fn send(&mut self, tag: &str, indices: &[u16]) -> Result<()> {
        self.send_to(tag, indices, None)
    }

    /// Sends one query line targeting a named table (fabric routing).
    ///
    /// # Errors
    ///
    /// Propagates socket write failures.
    pub fn send_to(&mut self, tag: &str, indices: &[u16], table: Option<&str>) -> Result<()> {
        self.writer
            .write_all(&encode_query_for(tag, indices, table))
            .map_err(ServeError::from_io("send query"))
    }

    /// Blocks until the next server message arrives.
    ///
    /// # Errors
    ///
    /// Fails on EOF before a full line or on a malformed line.
    pub fn recv(&mut self) -> Result<ServerMsg> {
        let mut line = String::new();
        let n = self
            .reader
            .read_line(&mut line)
            .map_err(ServeError::from_io("recv"))?;
        if n == 0 {
            return Err(ServeError::Io {
                detail: "server closed the connection".into(),
            });
        }
        let trimmed = line.trim_end_matches(['\n', '\r']);
        parse_server_msg(trimmed.as_bytes())
    }

    /// Sends a query and waits for its reply (assumes no pipelining on
    /// this connection).
    ///
    /// # Errors
    ///
    /// Propagates send/recv failures.
    pub fn query(&mut self, tag: &str, indices: &[u16]) -> Result<ServerMsg> {
        self.send(tag, indices)?;
        self.recv()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_round_trips() {
        let line = encode_query("req-7", &[1, 2, 300]);
        assert_eq!(line, b"Q req-7 1,2,300\n");
        let q = parse_query(&line[..line.len() - 1]).unwrap();
        assert_eq!(q.tag, "req-7");
        assert_eq!(q.indices, vec![1, 2, 300]);
        assert_eq!(q.table, None);
    }

    #[test]
    fn table_routed_query_round_trips() {
        let line = encode_query_for("req-8", &[4, 5], Some("bert.ffn1"));
        assert_eq!(line, b"Q req-8 4,5 bert.ffn1\n");
        let q = parse_query(&line[..line.len() - 1]).unwrap();
        assert_eq!(q.tag, "req-8");
        assert_eq!(q.indices, vec![4, 5]);
        assert_eq!(q.table.as_deref(), Some("bert.ffn1"));
    }

    #[test]
    fn malformed_queries_are_rejected() {
        for bad in [
            &b"R x ok 0"[..],
            b"Q",
            b"Q tag",
            b"Q tag ",
            b"Q tag 1,a,3",
            b"Q tag 99999999",
            b"Q bad tag 1",
            b"Q \xff 1",
            b"Q tag 1,2 bad~table",
            b"Q tag 1,2 table extra",
        ] {
            assert!(parse_query(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn server_messages_round_trip() {
        let bits = 1.25f64.to_bits();
        let r = encode_result("t1", true, bits);
        assert_eq!(
            parse_server_msg(&r[..r.len() - 1]).unwrap(),
            ServerMsg::Result {
                tag: "t1".into(),
                correct: true,
                checksum_bits: bits
            }
        );
        let e = encode_error("t2", ErrorKind::Deadline);
        assert_eq!(
            parse_server_msg(&e[..e.len() - 1]).unwrap(),
            ServerMsg::Error {
                tag: "t2".into(),
                kind: ErrorKind::Deadline
            }
        );
        assert!(parse_server_msg(b"R t1 maybe 0").is_err());
        assert!(parse_server_msg(b"E t2 what").is_err());
    }

    #[test]
    fn line_buffer_splits_partial_chunks() {
        let mut lb = LineBuffer::new();
        lb.push(b"Q a 1\r\nQ b");
        assert_eq!(lb.pop_line().unwrap().unwrap(), b"Q a 1");
        assert_eq!(lb.pop_line().unwrap(), None);
        lb.push(b" 2\nQ c 3\n");
        assert_eq!(lb.pop_line().unwrap().unwrap(), b"Q b 2");
        assert_eq!(lb.pop_line().unwrap().unwrap(), b"Q c 3");
        assert_eq!(lb.pop_line().unwrap(), None);
        assert_eq!(lb.pending(), 0);
    }

    #[test]
    fn line_buffer_caps_runaway_lines() {
        let mut lb = LineBuffer::new();
        lb.push(&vec![b'x'; MAX_LINE_BYTES + 1]);
        assert!(lb.pop_line().is_err());
    }
}
